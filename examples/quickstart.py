#!/usr/bin/env python
"""Quickstart: single-source SimRank with CrashSim in ~30 lines.

Builds a small citation-style graph, runs CrashSim from one paper, and
checks the estimates against the exact Power-Method SimRank.

Run:  python examples/quickstart.py
"""

from repro import CrashSimParams, GraphBuilder, crashsim, power_method_all_pairs


def main() -> None:
    # A toy citation graph: an edge u -> v means "u cites v".  SimRank's
    # reverse walks then say two papers are similar when similar papers
    # cite them both.
    citations = [
        ("survey", "foundations"),
        ("survey", "classic-a"),
        ("survey", "classic-b"),
        ("followup-a", "classic-a"),
        ("followup-a", "foundations"),
        ("followup-b", "classic-b"),
        ("followup-b", "foundations"),
        ("recent", "followup-a"),
        ("recent", "followup-b"),
        ("recent", "survey"),
    ]
    builder = GraphBuilder(directed=True)
    builder.add_edges(citations)
    graph = builder.build()
    print(f"graph: {graph}")

    source = builder.node_id("classic-a")
    params = CrashSimParams(c=0.6, epsilon=0.025, n_r_override=2000)
    print(f"CrashSim parameters: {params.describe(graph.num_nodes)}")

    # On a graph this small and cyclic, pairs of walks can meet repeatedly;
    # the exact first-meeting correction ("dp") removes that over-count and
    # is cheap here.  On large sparse graphs the default mode suffices.
    result = crashsim(graph, source, params=params, first_meeting="dp", seed=42)

    truth = power_method_all_pairs(graph, params.c)[source]
    labels = graph.node_labels
    print(f"\nSimRank w.r.t. {labels[source]!r}:")
    print(f"{'node':<14} {'crashsim':>9} {'exact':>9}")
    for node, score in result.top_k(len(labels)):
        print(f"{labels[node]:<14} {score:>9.4f} {truth[node]:>9.4f}")

    worst = max(
        abs(result.score(node) - truth[node]) for node in result.candidates
    )
    print(f"\nmax error vs Power Method: {worst:.4f} (ε = {params.epsilon})")


if __name__ == "__main__":
    main()
