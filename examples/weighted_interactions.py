#!/usr/bin/env python
"""Weighted SimRank: interaction *intensity* matters (extension feature).

An unweighted graph treats one co-purchase the same as fifty.  With edge
weights, the reverse √c-walk picks in-neighbours proportionally to weight,
so heavily-interacting pairs dominate the similarity — the weighted
SimRank generalisation this library supports end-to-end (Power Method,
CrashSim, ProbeSim, SLING).

The scenario: two users share the source's two suppliers, but user
"loyal" buys almost exclusively from the same main supplier as the source
while "occasional" spreads purchases evenly.  Unweighted SimRank ties
them; weighted SimRank ranks "loyal" clearly higher.

Run:  python examples/weighted_interactions.py
"""

import numpy as np

from repro import CrashSimParams, GraphBuilder, crashsim, power_method_all_pairs


def build(weighted: bool) -> tuple:
    builder = GraphBuilder(directed=True, weighted=weighted)
    # supplier -> customer edges, weight = purchase count.
    purchases = [
        ("main-supplier", "source", 40),
        ("side-supplier", "source", 10),
        ("main-supplier", "loyal", 45),
        ("side-supplier", "loyal", 5),
        ("main-supplier", "occasional", 25),
        ("side-supplier", "occasional", 25),
        ("main-supplier", "stranger", 1),
        ("other-supplier", "stranger", 30),
    ]
    for supplier, customer, count in purchases:
        if weighted:
            builder.add_edge(supplier, customer, float(count))
        else:
            builder.add_edge(supplier, customer)
    return builder.build(), builder


def main() -> None:
    for weighted in (False, True):
        graph, builder = build(weighted)
        source = builder.node_id("source")
        kind = "weighted" if weighted else "unweighted"
        print(f"\n=== {kind} graph: {graph}")

        truth = power_method_all_pairs(graph, 0.6)[source]
        params = CrashSimParams(c=0.6, epsilon=0.05, n_r_override=4000)
        result = crashsim(graph, source, params=params, seed=0)

        print(f"{'customer':<12} {'exact':>8} {'crashsim':>9}")
        for name in ("loyal", "occasional", "stranger"):
            node = builder.node_id(name)
            print(
                f"{name:<12} {truth[node]:>8.4f} {result.score(node):>9.4f}"
            )

        loyal = truth[builder.node_id("loyal")]
        occasional = truth[builder.node_id("occasional")]
        if weighted:
            assert loyal > occasional * 1.1, "weights must separate them"
            print("-> weighted SimRank separates loyal from occasional")
        else:
            print(
                f"-> unweighted SimRank barely separates them "
                f"(gap {loyal - occasional:+.4f})"
            )


if __name__ == "__main__":
    main()
