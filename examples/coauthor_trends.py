#!/usr/bin/env python
"""Rising collaborators in a temporal co-authorship network (paper §I).

The paper's introduction cites DBLP-style networks where "cooperative
relationships between authors are established and dissolved over time".
This example takes the HepTh synthetic stand-in and plants a *rising
collaborator*: one author who, snapshot by snapshot, co-authors with more
of the source's collaborators.  A temporal SimRank trend query (Definition
4) answered by CrashSim-T picks the rising author out, and the same query
run through the per-snapshot ProbeSim baseline shows the Fig. 7 time
comparison in miniature.

Run:  python examples/coauthor_trends.py
"""

import time

import numpy as np

from repro import CrashSimParams, TrendQuery, crashsim_t
from repro.baselines.temporal_adapters import (
    make_snapshot_algorithm,
    temporal_query_by_recompute,
)
from repro.datasets.registry import load_static_dataset
from repro.graph.temporal import TemporalGraphBuilder

NUM_SNAPSHOTS = 8


def plant_rising_collaborator(base, source):
    """Temporal graph where author ``rising`` joins one more of the
    source's co-authors per snapshot; everything else stays fixed."""
    neighbors = [int(v) for v in base.in_neighbors(source)]
    # Pick the least-connected author outside the source's circle as the
    # rising collaborator — the lower their base similarity, the clearer
    # the planted rise.
    excluded = set(neighbors) | {source}
    rising = min(
        (v for v in range(base.num_nodes) if v not in excluded),
        key=base.in_degree,
    )
    canonical = {
        (min(s, t), max(s, t)) for s, t in base.edges()
    }
    builder = TemporalGraphBuilder(
        base.num_nodes, directed=False, name="hepth-rising"
    )
    builder.push_snapshot(canonical)
    for step in range(1, NUM_SNAPSHOTS):
        new_partner = neighbors[(step - 1) % len(neighbors)]
        builder.push_delta(added=[(rising, new_partner)])
    return builder.build(), rising


def main() -> None:
    base = load_static_dataset("hepth", scale=0.03, seed=3)
    degrees = base.in_degrees()
    # A low-degree source makes each shared co-author count: SimRank's
    # 1/|I(u)| weighting dilutes the planted signal on hub authors.
    source = int(np.argsort(degrees)[len(degrees) // 10])
    temporal, rising = plant_rising_collaborator(base, source)
    print(f"temporal co-authorship network: {temporal}")
    print(
        f"source author: node {source} (degree {int(degrees[source])}); "
        f"planted rising collaborator: node {rising}"
    )

    query = TrendQuery(direction="increasing", tolerance=0.01)
    params = CrashSimParams(c=0.6, epsilon=0.025, n_r_override=400)

    start = time.perf_counter()
    ours = crashsim_t(temporal, source, query, params=params, seed=11)
    ours_time = time.perf_counter() - start

    # The non-strict trend also admits flat trajectories; insist on a net
    # rise over the window using the carried history.
    first, last = ours.history[0], ours.history[-1]
    risers = sorted(
        node
        for node in ours.survivors
        if last.get(node, 0.0) - first.get(node, 0.0) > 0.03
    )
    print(
        f"\nCrashSim-T: {len(ours.survivors)} monotone candidates, "
        f"{len(risers)} with a real net rise, in {ours_time:.2f}s"
    )
    print(f"  risers: {risers}  (planted: {rising})")
    assert rising in risers, "the planted collaborator must be detected"

    probesim = make_snapshot_algorithm("probesim", n_r=400, seed=11)
    start = time.perf_counter()
    baseline = temporal_query_by_recompute(temporal, source, query, probesim)
    baseline_time = time.perf_counter() - start
    print(
        f"ProbeSim x{temporal.num_snapshots} snapshots: "
        f"{len(baseline.survivors)} monotone candidates in {baseline_time:.2f}s "
        f"(CrashSim-T speedup: {baseline_time / max(ours_time, 1e-9):.1f}x)"
    )

    series = [
        f"{snapshot_scores[rising]:.3f}"
        for snapshot_scores in ours.history
        if rising in snapshot_scores
    ]
    print(f"\nSimRank trajectory of node {rising}: {' -> '.join(series)}")
    print(f"pruning stats: {ours.stats.as_dict()}")


if __name__ == "__main__":
    main()
