#!/usr/bin/env python
"""Top-k similarity, static and durable-over-time.

Two extension queries built on CrashSim's partial-computation design:

* :func:`repro.crashsim_topk` — adaptive static top-k: a cheap screening
  pass prunes hopeless candidates before the refinement pass spends the
  real trial budget;
* :func:`repro.durable_topk` — the k nodes with the best *worst-case*
  similarity across a whole snapshot window (``max-min`` — the "stable
  friends" of the paper's recommendation example, without hand-picking θ).

The scenario: a messaging network of tight groups; two accounts durably
co-located with the source, one account similar only in a burst.  The
static top-k at the burst snapshot ranks the burst account highly; the
durable top-k correctly drops it.

Run:  python examples/durable_topk.py
"""

import numpy as np

from repro import CrashSimParams, crashsim_topk, durable_topk
from repro.baselines.power_method import power_method_all_pairs
from repro.graph.temporal import TemporalGraphBuilder
from repro.rng import ensure_rng

NUM_USERS = 80
GROUP = 10
SNAPSHOTS = 6
SOURCE = 0
STEADY = (1, 2)  # always share the source's hubs
BURSTY = 5  # shares them only in snapshot 2


def build_network(seed: int = 0):
    rng = ensure_rng(seed)
    builder = TemporalGraphBuilder(NUM_USERS, directed=True, name="messaging")
    hubs = (70, 71, 72)
    for step in range(SNAPSHOTS):
        edges = set()
        # Hubs broadcast to the source and the steady accounts always...
        for hub in hubs:
            edges.add((hub, SOURCE))
            for steady in STEADY:
                edges.add((hub, steady))
            # ...and to the bursty account only during the burst.
            if step == 2:
                edges.add((hub, BURSTY))
        # Background noise: random chatter among the rest.
        for user in range(GROUP, 60):
            for target in rng.integers(GROUP, 60, size=3):
                if int(target) != user:
                    edges.add((user, int(target)))
        # The bursty account otherwise listens to unrelated chatter.
        if True:
            edges.add((40, BURSTY))
            edges.add((41, BURSTY))
        builder.push_snapshot(edges)
    return builder.build()


def main() -> None:
    temporal = build_network()
    params = CrashSimParams(c=0.6, epsilon=0.05, n_r_override=600)
    print(f"temporal graph: {temporal}")

    burst_graph = temporal.snapshot(2)
    static = crashsim_topk(burst_graph, SOURCE, 4, params=params, seed=1)
    print(
        f"\nStatic top-4 at the burst snapshot "
        f"(screened {burst_graph.num_nodes - 1} -> "
        f"{static.candidates_after_pruning} candidates):"
    )
    truth = power_method_all_pairs(burst_graph, params.c)[SOURCE]
    for node, score in static.ranking:
        print(f"  node {node:>2}  est {score:.3f}  exact {truth[node]:.3f}")
    assert BURSTY in static.nodes(), "the burst makes node 5 look similar"

    durable = durable_topk(temporal, SOURCE, 4, params=params, seed=2)
    print(
        f"\nDurable top-4 over all {temporal.num_snapshots} snapshots "
        f"(candidates per snapshot: {durable.candidates_per_snapshot}):"
    )
    for node, worst in durable.ranking:
        print(f"  node {node:>2}  worst-case similarity {worst:.3f}")
    assert set(STEADY) <= set(durable.nodes()), "steady accounts must rank"
    assert BURSTY not in durable.nodes(), "bursty account must be dropped"
    print(
        f"\nstatic ranking includes bursty node {BURSTY}; "
        f"durable ranking drops it — the burst was not durable."
    )


if __name__ == "__main__":
    main()
