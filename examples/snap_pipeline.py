#!/usr/bin/env python
"""End-to-end file pipeline: export, reload, query — the real-data path.

The experiment harness generates synthetic SNAP stand-ins in memory, but a
downstream user has *files*: SNAP edge lists and per-snapshot directories.
This example exercises that path end to end:

1. export a synthetic temporal dataset as a snapshot directory
   (`repro.graph.io.write_snapshot_directory` — the same layout AS-733
   ships in);
2. reload it with `read_snapshot_directory` (node labels preserved,
   isolated nodes kept — the paper's fixed-V temporal model);
3. verify the round trip snapshot by snapshot;
4. run a temporal threshold query on the reloaded graph.

Point `read_snapshot_directory` at a directory of real `asYYYYMMDD.txt`
files and everything downstream is identical.

Run:  python examples/snap_pipeline.py
"""

import tempfile
from pathlib import Path

from repro import CrashSimParams, ThresholdQuery, crashsim_t
from repro.datasets import load_dataset
from repro.graph.io import read_snapshot_directory, write_snapshot_directory


def main() -> None:
    temporal = load_dataset("as733", scale=0.05, num_snapshots=8, seed=1)
    print(f"generated: {temporal}")

    with tempfile.TemporaryDirectory() as workdir:
        directory = Path(workdir) / "as733"
        paths = write_snapshot_directory(temporal, directory, prefix="as733")
        total_bytes = sum(path.stat().st_size for path in paths)
        print(f"exported {len(paths)} snapshot files ({total_bytes} bytes)")

        reloaded = read_snapshot_directory(
            directory, directed=False, name="as733-from-disk"
        )
        print(f"reloaded:  {reloaded}")

        # Round-trip check: same edges per snapshot (modulo node renumbering
        # by first-seen order, resolved through the preserved labels).
        for index in range(temporal.num_snapshots):
            original = temporal.snapshot(index)
            loaded = reloaded.snapshot(index)
            labels = loaded.node_labels
            loaded_edges = {
                tuple(sorted((labels[s], labels[t])))
                for s, t in loaded.edges()
            }
            original_edges = {
                tuple(sorted((str(s), str(t)))) for s, t in original.edges()
            }
            assert loaded_edges == original_edges, f"snapshot {index} differs"
        print("round trip verified for every snapshot")

        result = crashsim_t(
            reloaded,
            source=0,
            query=ThresholdQuery(theta=0.03),
            params=CrashSimParams(c=0.6, epsilon=0.05, n_r_override=300),
            seed=2,
        )
        print(
            f"\nthreshold query on the reloaded data: "
            f"{len(result.survivors)} stable nodes, "
            f"stats {result.stats.as_dict()}"
        )


if __name__ == "__main__":
    main()
