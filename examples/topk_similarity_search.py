#!/usr/bin/env python
"""Top-k SimRank search: CrashSim vs every baseline on one static graph.

Fig. 5 in miniature: one Wiki-Vote-style snapshot, one source, and the
top-k most similar nodes according to CrashSim, ProbeSim, SLING, READS,
and the naive Monte-Carlo — each scored for time and top-k precision
against the Power-Method ground truth.

Run:  python examples/topk_similarity_search.py
"""

import time

import numpy as np

from repro import (
    CrashSimParams,
    ReadsIndex,
    SlingIndex,
    crashsim,
    naive_monte_carlo,
    power_method_all_pairs,
    probesim,
)
from repro.datasets import load_dataset
from repro.datasets.registry import load_static_dataset
from repro.metrics.accuracy import max_error, top_k_precision

K = 10


def main() -> None:
    graph = load_static_dataset("wiki_vote", scale=0.05, seed=0)
    print(f"graph: {graph}")
    source = int(np.argmax(graph.in_degrees()))
    print(f"source: node {source} (top in-degree); k = {K}\n")

    truth = power_method_all_pairs(graph, 0.6)[source]

    def crashsim_scores():
        result = crashsim(
            graph,
            source,
            params=CrashSimParams(c=0.6, epsilon=0.025, n_r_override=400),
            seed=1,
        )
        scores = np.zeros(graph.num_nodes)
        scores[result.candidates] = result.scores
        scores[source] = 1.0
        return scores

    sling_index = {}
    reads_index = {}

    def sling_scores():
        if "index" not in sling_index:
            sling_index["index"] = SlingIndex(
                graph, c=0.6, num_d_samples=100, seed=3
            )
        return sling_index["index"].query(source)

    def reads_scores():
        if "index" not in reads_index:
            reads_index["index"] = ReadsIndex(
                graph, r=100, t=10, r_q=10, c=0.6, seed=4
            )
        return reads_index["index"].query(source)

    contenders = {
        "crashsim": crashsim_scores,
        "probesim": lambda: probesim(graph, source, n_r=400, seed=2),
        "sling (incl. index)": sling_scores,
        "reads (incl. index)": reads_scores,
        "naive-mc": lambda: naive_monte_carlo(
            graph, source, num_samples=400, seed=5
        ),
    }

    print(f"{'algorithm':<22} {'time_s':>8} {'ME':>8} {'prec@k':>8}")
    for name, fn in contenders.items():
        start = time.perf_counter()
        scores = fn()
        elapsed = time.perf_counter() - start
        error = max_error(truth, scores, exclude=[source])
        precision = top_k_precision(truth, scores, K, exclude=source)
        print(f"{name:<22} {elapsed:>8.3f} {error:>8.4f} {precision:>8.2f}")

    order = np.argsort(-truth)
    top = [int(v) for v in order if v != source][:K]
    print(f"\nexact top-{K} (Power Method): {top}")


if __name__ == "__main__":
    main()
