#!/usr/bin/env python
"""Live monitoring with a streaming temporal query session.

A fraud-monitoring flavour of the paper's Example 1: transactions stream
in, the interaction graph mutates, and after every batch the monitor wants
"accounts that remain suspiciously similar to the flagged account" —
*above a threshold AND not fading*, a :class:`repro.CompositeQuery`.

Unlike `crashsim_t`, which needs the whole interval up front,
:class:`repro.TemporalQuerySession` is fed one snapshot (or one delta) at a
time and keeps O(n) state — the deployment shape of Algorithm 3.

Run:  python examples/streaming_monitor.py
"""

from repro import (
    CompositeQuery,
    CrashSimParams,
    TemporalQuerySession,
    ThresholdQuery,
    TrendQuery,
)
from repro.graph.digraph import DiGraph
from repro.rng import ensure_rng

NUM_ACCOUNTS = 90
FLAGGED = 0
RING = (1, 2, 3)        # accounts transacting through the same mules
DEFECTOR = 3            # leaves the ring midway through the stream
MULES = (80, 81)


def edge_batches(seed: int = 0):
    """Yield (description, edge-set) per monitoring tick."""
    rng = ensure_rng(seed)
    background = set()
    for account in range(10, 70):
        for target in rng.integers(10, 70, size=2):
            if int(target) != account:
                background.add((account, int(target)))
    ring_edges = {
        (mule, member) for mule in MULES for member in (FLAGGED,) + RING
    }
    for tick in range(6):
        edges = set(background) | set(ring_edges)
        if tick >= 3:
            # The defector re-routes through a clean counterparty.
            edges -= {(mule, DEFECTOR) for mule in MULES}
            edges |= {(40, DEFECTOR), (41, DEFECTOR)}
        # Background churn: a couple of random edges flip each tick.
        for _ in range(2):
            a, b = int(rng.integers(10, 70)), int(rng.integers(10, 70))
            if a != b:
                edges.symmetric_difference_update({(a, b)})
        yield f"tick {tick}", edges


def main() -> None:
    query = CompositeQuery(
        (
            ThresholdQuery(theta=0.05),
            TrendQuery(direction="increasing", tolerance=0.03),
        ),
        mode="all",
    )
    print(f"monitoring query: {query.describe()}")
    session = TemporalQuerySession(
        FLAGGED,
        query,
        params=CrashSimParams(c=0.6, epsilon=0.05, n_r_override=500),
        seed=7,
    )
    for label, edges in edge_batches():
        graph = DiGraph.from_edges(NUM_ACCOUNTS, edges)
        survivors = session.push_snapshot(graph)
        watched = sorted(set(survivors) & set(range(1, 10)))
        print(
            f"{label}: {len(survivors):3d} candidates alive; "
            f"ring-adjacent: {watched}"
        )
    final = set(session.survivors)
    print(
        f"\nafter the stream: ring members {sorted(set(RING) & final)} "
        f"still co-similar with account {FLAGGED}; "
        f"defector {DEFECTOR} {'dropped' if DEFECTOR not in final else 'STILL PRESENT'}"
    )
    assert set(RING[:2]) <= final
    assert DEFECTOR not in final


if __name__ == "__main__":
    main()
