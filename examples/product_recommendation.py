#!/usr/bin/env python
"""Product recommendation over a temporal co-purchase graph (paper Example 1).

The paper motivates temporal SimRank with recommendations: given a user
``u``, items should be recommended to users whose similarity to ``u`` is

* **stably high** — the temporal *threshold* query (Definition 5) finds the
  users with ``s_t(u, v) > θ`` at *every* instant of the window, and
* **not fading** — the temporal *trend* query (Definition 4) flags users
  whose similarity keeps falling, who should be dropped from the audience.

The script synthesises a user-user interaction graph (edges appear when two
accounts interact with the same products in a window, so communities emerge
and drift over time), then answers both queries with CrashSim-T.

Run:  python examples/product_recommendation.py
"""

import numpy as np

from repro import CrashSimParams, ThresholdQuery, TrendQuery, crashsim_t
from repro.graph.temporal import TemporalGraphBuilder
from repro.rng import ensure_rng

NUM_USERS = 120
NUM_SNAPSHOTS = 8
COMMUNITY_SIZE = 20


def synthesize_interactions(seed: int = 7):
    """Users in the same community interact heavily; a handful of 'drifters'
    start in the source's community and migrate away — at each snapshot one
    more of their interactions moves to the neighbouring community, so
    their similarity to the source decays steadily."""
    rng = ensure_rng(seed)
    communities = {u: u // COMMUNITY_SIZE for u in range(NUM_USERS)}
    drifters = list(range(3, COMMUNITY_SIZE, 5))  # users 3, 8, 13, 18
    edges_per_user = 6
    # Fix each user's interaction partners once so the only change over
    # time is the drifters' migration (keeps the rest of the graph static,
    # the regime temporal SimRank queries are designed for).
    home_partners = {}
    away_partners = {}
    for user in range(NUM_USERS):
        community = communities[user]
        members = [
            v for v in range(NUM_USERS) if communities[v] == community and v != user
        ]
        home_partners[user] = [
            int(v) for v in rng.choice(members, size=edges_per_user, replace=False)
        ]
        away = [v for v in range(NUM_USERS) if communities[v] == 1 and v != user]
        away_partners[user] = [
            int(v) for v in rng.choice(away, size=edges_per_user, replace=False)
        ]
    builder = TemporalGraphBuilder(NUM_USERS, directed=False, name="co-purchase")
    for step in range(NUM_SNAPSHOTS):
        moved = min(edges_per_user, step)  # drifter edges now in community 1
        edges = set()
        for user in range(NUM_USERS):
            if user in drifters:
                partners = (
                    home_partners[user][moved:] + away_partners[user][:moved]
                )
            else:
                partners = home_partners[user]
            for neighbor in partners:
                edges.add((user, neighbor))
        builder.push_snapshot(edges)
    return builder.build(), drifters


def main() -> None:
    temporal, drifters = synthesize_interactions()
    print(f"temporal graph: {temporal}")
    source = 0  # the user whose purchases we want to propagate
    params = CrashSimParams(c=0.6, epsilon=0.05, n_r_override=400)

    stable = crashsim_t(
        temporal,
        source,
        ThresholdQuery(theta=0.02),
        params=params,
        seed=1,
    )
    print(
        f"\nThreshold query (s > 0.02 at every instant): "
        f"{len(stable.survivors)} users form the stable audience"
    )
    community = [v for v in stable.survivors if v < COMMUNITY_SIZE]
    print(
        f"  {len(community)}/{len(stable.survivors)} of them are in the "
        f"source's community, e.g. {sorted(community)[:8]}"
    )

    trend = crashsim_t(
        temporal,
        source,
        TrendQuery(direction="decreasing", tolerance=0.01),
        params=params,
        seed=2,
    )
    # The non-strict trend predicate also admits flat trajectories (a score
    # stuck at 0 "never increases"); require a real net drop over the
    # window, read from the per-snapshot history the result carries.
    first, last = trend.history[0], trend.history[-1]
    fading = {
        node
        for node in trend.survivors
        if first.get(node, 0.0) - last.get(node, 0.0) > 0.02
    }
    flagged = sorted(fading & set(range(COMMUNITY_SIZE)))
    print(
        f"\nTrend query (continuously decreasing, net drop > 0.02): "
        f"{len(fading)} users, in-community: {flagged}"
    )
    caught = sorted(set(flagged) & set(drifters))
    print(f"  planted drifters {drifters} -> detected {caught}")

    audience = sorted(set(stable.survivors) - fading)
    print(
        f"\nRecommend user {source}'s items to the {len(audience)} "
        f"stable-and-not-fading users; first few: {audience[:10]}"
    )
    print(f"\npruning stats (threshold run): {stable.stats.as_dict()}")


if __name__ == "__main__":
    main()
