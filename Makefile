# Development shortcuts.  `pip install -e .` needs the `wheel` package;
# `make install` falls back to setup.py develop on minimal environments.

PYTHON ?= python

.PHONY: install test test-parallel test-chaos test-serve test-overload bench bench-tree bench-kernel bench-parallel serve-bench bench-overload bench-adaptive obs-smoke perf-smoke selftest experiments report examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Parallel subsystem only; set REPRO_START_METHOD=spawn (or fork) to pin
# the multiprocessing start method the pool tests use.
test-parallel:
	$(PYTHON) -m pytest tests/parallel/ tests/test_guarantee.py

# Chaos suite: injected worker kills, stalled shards, deadlines, mid-push
# failures (see docs/internals.md §9).  Honours REPRO_START_METHOD too.
test-chaos:
	$(PYTHON) -m pytest tests/test_failure_injection.py tests/parallel/test_executor.py

# Serving engine: batching invariance, threaded soak, shutdown-under-load,
# and worker-kill chaos through the engine (docs/internals.md §11).
# Honours REPRO_START_METHOD; CI runs it under both fork and spawn.
test-serve:
	$(PYTHON) -m pytest tests/serve/

# Overload-resilience suite (docs/internals.md §14): bounded-queue
# admission, circuit-breaker walk under executor stalls, dispatcher
# kill/hang recovery, concurrent close, HTTP 429/503/504 mapping.
# Honours REPRO_START_METHOD; CI runs it under both fork and spawn.
test-overload:
	$(PYTHON) -m pytest tests/serve/test_overload.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Sparse-vs-dense tree sweep; writes benchmarks/BENCH_tree.json and fails
# if the sparse representation misses its speedup targets.
bench-tree:
	$(PYTHON) benchmarks/bench_tree.py

# Fused walk–crash kernel vs the generator accumulator; writes
# benchmarks/BENCH_kernel.json and fails below the 2x / 1.5x targets.
bench-kernel:
	$(PYTHON) benchmarks/bench_kernel.py

# Parallel tiers (process + thread) vs serial on the 50k graph; writes
# benchmarks/BENCH_parallel.json and fails if any (mode, workers) row
# drifts from the workers=1 scores.  Scaling needs real cores to show.
bench-parallel:
	$(PYTHON) benchmarks/bench_parallel.py

# Serving-engine load generator: 8 concurrent clients vs sequential
# dispatch on the 50k PA graph; writes benchmarks/BENCH_serve.json and
# fails below the 1.5x batched-throughput target.
serve-bench:
	cd benchmarks && $(PYTHON) bench_serve.py

# Overload load generator: 2x-capacity open-loop offered load, shed
# (bounded queue) vs unbounded; writes benchmarks/BENCH_overload.json and
# fails if shed-mode goodput drops below 0.8x the at-capacity goodput or
# the queue bound is violated.
bench-overload:
	cd benchmarks && $(PYTHON) bench_overload.py

# Adaptive sampling vs fixed n_r on the pinned 50k power-law fixture;
# writes benchmarks/BENCH_adaptive.json and fails below 2x trials saved
# or past ε=0.05 exact error on the adaptive leg.
bench-adaptive:
	cd benchmarks && $(PYTHON) bench_adaptive.py

# Observability overhead gate: instrumented vs kill-switched kernel on
# the 50k PA graph; writes benchmarks/BENCH_obs.json and fails if the
# instrumented leg costs more than 3% (REPRO_OBS_OVERHEAD_BOUND).
obs-smoke:
	cd benchmarks && $(PYTHON) bench_obs.py

# CI timing gate: generous multiple of benchmarks/baselines/tree_smoke.json.
perf-smoke:
	cd benchmarks && $(PYTHON) perf_smoke.py

selftest:
	$(PYTHON) -m repro selftest

experiments:
	$(PYTHON) -m repro all --profile $${REPRO_PROFILE:-quick}

report:
	$(PYTHON) -m repro report --out report.md --profile $${REPRO_PROFILE:-quick}

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done; echo "all examples ok"

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
