"""Figure 7 benches: total trend-query time vs interval length (AS-733).

One benchmark per (snapshot count, algorithm) so pytest-benchmark's
comparison table *is* Fig. 7's series.  Asserts the paper's headline shape:
CrashSim-T's total time grows no faster than the recompute baselines'.
"""

import pytest

from repro.baselines.temporal_adapters import (
    make_snapshot_algorithm,
    temporal_query_by_recompute,
)
from repro.core.crashsim_t import crashsim_t
from repro.core.params import CrashSimParams
from repro.core.queries import TrendQuery
from repro.datasets.registry import load_dataset


@pytest.fixture(scope="module")
def horizon(profile):
    counts = list(profile.fig7_snapshot_counts)
    temporal = load_dataset(
        "as733",
        scale=profile.scale,
        num_snapshots=max(counts),
        seed=profile.seed,
    )
    return temporal, counts


@pytest.fixture(scope="module")
def query():
    return TrendQuery(direction="increasing", tolerance=0.01)


def _window(horizon, index):
    temporal, counts = horizon
    if index >= len(counts):
        pytest.skip("profile has fewer interval lengths")
    return temporal.window(0, counts[index]), counts[index]


@pytest.mark.parametrize("count_index", [0, 1, 2, 3])
def test_crashsim_t_by_interval(benchmark, horizon, query, profile, count_index):
    window, count = _window(horizon, count_index)
    params = CrashSimParams(
        c=profile.c, epsilon=0.025, delta=profile.delta, n_r_cap=profile.n_r_cap
    )
    source = window.num_nodes // 2
    result = benchmark.pedantic(
        lambda: crashsim_t(window, source, query, params=params, seed=profile.seed),
        rounds=1,
        iterations=1,
    )
    assert result.stats.snapshots_processed <= count


@pytest.mark.parametrize("algorithm_name", ["probesim", "sling", "reads"])
@pytest.mark.parametrize("count_index", [0, 1])
def test_baselines_by_interval(
    benchmark, horizon, query, profile, algorithm_name, count_index
):
    window, _ = _window(horizon, count_index)
    kwargs = {
        "probesim": dict(c=profile.c, n_r=profile.probesim_n_r),
        "sling": dict(c=profile.c, num_d_samples=profile.sling_d_samples),
        "reads": dict(
            r=profile.reads_r, t=profile.reads_t, r_q=profile.reads_r_q, c=profile.c
        ),
    }[algorithm_name]
    algorithm = make_snapshot_algorithm(algorithm_name, seed=profile.seed, **kwargs)
    source = window.num_nodes // 2
    result = benchmark.pedantic(
        lambda: temporal_query_by_recompute(window, source, query, algorithm),
        rounds=1,
        iterations=1,
    )
    assert len(result.history) >= 1
