"""Table III bench: dataset synthesis plus statistics."""

from repro.experiments.table3 import run_table3


def test_table3(benchmark, profile):
    rows = benchmark.pedantic(
        run_table3, args=(profile,), rounds=1, iterations=1
    )
    assert [row["dataset"] for row in rows] == list(profile.datasets)
