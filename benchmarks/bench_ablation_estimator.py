"""Estimator-variant ablation benches (DESIGN.md §2).

Benchmarks the ``tree_variant`` × ``first_meeting`` matrix and asserts the
accuracy hierarchy the design notes claim: the corrected tree beats the
paper-literal one on directed graphs.
"""

import numpy as np
import pytest

from repro.core.crashsim import crashsim
from repro.core.params import CrashSimParams
from repro.metrics.accuracy import max_error


@pytest.fixture(scope="module")
def workload(profile, static_graphs, ground_truths):
    name = next(iter(profile.datasets))
    graph = static_graphs[name]
    source = int(np.argmax(graph.in_degrees()))
    return graph, ground_truths[name][source], source


@pytest.mark.parametrize("tree_variant", ["corrected", "paper"])
def test_tree_variant(benchmark, workload, profile, tree_variant):
    graph, truth, source = workload
    params = CrashSimParams(
        c=profile.c, epsilon=0.025, delta=profile.delta, n_r_cap=profile.n_r_cap
    )
    result = benchmark(
        lambda: crashsim(
            graph,
            source,
            params=params,
            tree_variant=tree_variant,
            seed=profile.seed,
        )
    )
    estimate = np.zeros(graph.num_nodes)
    estimate[result.candidates] = result.scores
    estimate[source] = 1.0
    error = max_error(truth, estimate, exclude=[source])
    assert error <= 1.0


def test_dp_first_meeting(benchmark, workload, profile):
    graph, truth, source = workload
    params = CrashSimParams(
        c=profile.c,
        epsilon=0.025,
        delta=profile.delta,
        n_r_cap=max(5, profile.n_r_cap // 20),
    )
    result = benchmark.pedantic(
        lambda: crashsim(
            graph, source, params=params, first_meeting="dp", seed=profile.seed
        ),
        rounds=1,
        iterations=1,
    )
    assert result.scores.max() <= 1.0
