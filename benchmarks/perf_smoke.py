"""CI perf-smoke: catch order-of-magnitude regressions cheaply.

Runs the bench_tree, bench_kernel, bench_serve, bench_obs, bench_overload,
and bench_parallel sweeps on CI-sized graphs and compares wall-clock against
the recorded baselines in ``benchmarks/baselines/``.  Wall-clock gates are deliberately generous —
a timing fails only past ``PERF_SMOKE_MULTIPLIER`` (default 10×) of its
recorded value — so shared runners' jitter never breaks the build, while
a representation regression that reintroduces O(n)-per-level work still
trips it.  The structural ratios are machine-independent and gated
tightly: sparse-vs-dense and pruning keep their floors, and the fused
kernel's speedup over the generator accumulator fails on a **>30%
regression** from its recorded baseline ratio.

Usage:
    python benchmarks/perf_smoke.py            # gate against the baselines
    python benchmarks/perf_smoke.py --record   # re-record the baselines
"""

from __future__ import annotations

import json
import os
import pathlib
import sys

from bench_adaptive import BENCH_EPSILON, run_all as run_adaptive
from bench_kernel import run_all as run_kernel
from bench_obs import MAX_OVERHEAD_FRACTION, run_all as run_obs
from bench_overload import (
    MIN_GOODPUT_FRACTION,
    check as check_overload,
    run_all as run_overload,
)
from bench_parallel import effective_cpus, make_bench_graph, run_sweep
from bench_serve import run_all as run_serve
from bench_tree import run_all

BASELINE = pathlib.Path(__file__).parent / "baselines" / "tree_smoke.json"
KERNEL_BASELINE = pathlib.Path(__file__).parent / "baselines" / "kernel_smoke.json"
SERVE_BASELINE = pathlib.Path(__file__).parent / "baselines" / "serve_smoke.json"
OBS_BASELINE = pathlib.Path(__file__).parent / "baselines" / "obs_smoke.json"
PARALLEL_BASELINE = (
    pathlib.Path(__file__).parent / "baselines" / "parallel_smoke.json"
)
OVERLOAD_BASELINE = (
    pathlib.Path(__file__).parent / "baselines" / "overload_smoke.json"
)
ADAPTIVE_BASELINE = (
    pathlib.Path(__file__).parent / "baselines" / "adaptive_smoke.json"
)
SMOKE_NODES = 30_000
SMOKE_SOURCES = 32
KERNEL_SMOKE_NODES = 20_000
KERNEL_SMOKE_TRIALS = 32
SERVE_SMOKE_NODES = 15_000
SERVE_SMOKE_CLIENTS = 8
SERVE_SMOKE_QUERIES = 4
SERVE_SMOKE_CATALOG = 2_000
SERVE_SMOKE_N_R = 48
GATED_TIMINGS = (
    "sparse_build_seconds",
    "sparse_same_as_cold_seconds",
)
KERNEL_LEGS = ("unweighted", "weighted_alias")
MIN_COMBINED_SPEEDUP = 3.0  # headroom below the 5x full-size target
MIN_PRUNING_SPEEDUP = 0.8
KERNEL_REGRESSION_FRACTION = 0.7  # fail below 70% of the recorded speedup
# Batched dispatch must beat sequential even at smoke size; the full-size
# bench_serve gate demands 1.5x, the smoke leg keeps a reduced floor so
# runner jitter on a tiny workload cannot flake the build.
MIN_SERVE_SPEEDUP = 1.2
SERVE_REGRESSION_FRACTION = 0.5  # fail below half the recorded speedup
OBS_SMOKE_NODES = 20_000
OBS_SMOKE_PAIRS = 60
PARALLEL_SMOKE_NODES = 12_000
PARALLEL_SMOKE_EDGES = 36_000
PARALLEL_SMOKE_N_R = 128
# Overload smoke: tiny graph, short open-loop window.  The goodput-ratio
# and queue-bound gates come from bench_overload.check() and are
# machine-independent; only the capacity phase's wall-clock is gated
# against the recorded baseline (with the usual generous multiplier).
OVERLOAD_SMOKE_NODES = 10_000
OVERLOAD_SMOKE_CLIENTS = 8
OVERLOAD_SMOKE_CAPACITY_QUERIES = 4
OVERLOAD_SMOKE_CATALOG = 1_000
OVERLOAD_SMOKE_N_R = 32
OVERLOAD_SMOKE_DURATION = 2.5
OVERLOAD_SMOKE_QUEUE_DEPTH = 16
# Parallel dispatch must actually win on a multi-core runner: best tier at
# 4 workers ≥ 1.5x over serial when ≥ 4 effective CPUs are available, a
# reduced floor on 2–3 CPUs, and the scaling gate *skips* (identity still
# gated) below 2 — a single core can only measure pool overhead.
MIN_PARALLEL_SPEEDUP_4CPU = 1.5
MIN_PARALLEL_SPEEDUP_2CPU = 1.1
# Adaptive smoke: the pinned power-law fixture with the candidate set cut
# to 2000 nodes (n_r stays priced for the full 50k graph, the exact regime
# early stopping exploits).  The trials-saved ratio and the exact max
# error are fully deterministic for the pinned seeds, so both gate
# unconditionally; only the adaptive leg's wall-clock uses the generous
# baseline multiplier.
ADAPTIVE_SMOKE_CANDIDATES = 2_000
MIN_TRIALS_SAVED = 1.5


def gate_tree(payload, argv):
    tree = payload["tree"]
    pruning = payload["difference_pruning"]

    if "--record" in argv:
        record = {key: tree[key] for key in GATED_TIMINGS}
        record["nodes"] = SMOKE_NODES
        record["sources"] = SMOKE_SOURCES
        BASELINE.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")
        print(f"recorded baseline: {BASELINE}")
        return []

    baseline = json.loads(BASELINE.read_text())
    multiplier = float(os.environ.get("PERF_SMOKE_MULTIPLIER", "10"))
    failures = []
    for key in GATED_TIMINGS:
        allowed = baseline[key] * multiplier
        print(
            f"{key}: {tree[key]}s (baseline {baseline[key]}s, "
            f"allowed {allowed:.4f}s)"
        )
        if tree[key] > allowed:
            failures.append(f"{key} {tree[key]}s > {allowed:.4f}s allowed")
    print(f"combined_speedup: {tree['combined_speedup']}x")
    if tree["combined_speedup"] < MIN_COMBINED_SPEEDUP:
        failures.append(
            f"combined sparse speedup {tree['combined_speedup']}x "
            f"< {MIN_COMBINED_SPEEDUP}x floor"
        )
    print(f"difference pruning sweep: {pruning['speedup']}x")
    if pruning["speedup"] < MIN_PRUNING_SPEEDUP:
        failures.append(
            f"difference pruning sweep {pruning['speedup']}x "
            f"< {MIN_PRUNING_SPEEDUP}x floor"
        )
    return failures


def gate_kernel(payload, argv):
    if "--record" in argv:
        record = {
            "nodes": KERNEL_SMOKE_NODES,
            "trials": KERNEL_SMOKE_TRIALS,
        }
        for leg in KERNEL_LEGS:
            record[leg] = {
                "fused_seconds": payload[leg]["fused_seconds"],
                "speedup": payload[leg]["speedup"],
            }
        KERNEL_BASELINE.write_text(
            json.dumps(record, indent=1, sort_keys=True) + "\n"
        )
        print(f"recorded baseline: {KERNEL_BASELINE}")
        return []

    baseline = json.loads(KERNEL_BASELINE.read_text())
    multiplier = float(os.environ.get("PERF_SMOKE_MULTIPLIER", "10"))
    failures = []
    for leg in KERNEL_LEGS:
        seconds = payload[leg]["fused_seconds"]
        speedup = payload[leg]["speedup"]
        allowed_seconds = baseline[leg]["fused_seconds"] * multiplier
        # The speedup ratio is machine-independent: >30% below the
        # recorded baseline means the fused path itself regressed.
        floor = round(baseline[leg]["speedup"] * KERNEL_REGRESSION_FRACTION, 2)
        print(
            f"kernel {leg}: {seconds}s fused, {speedup}x vs generator "
            f"(allowed {allowed_seconds:.4f}s, speedup floor {floor}x)"
        )
        if seconds > allowed_seconds:
            failures.append(
                f"kernel {leg} {seconds}s > {allowed_seconds:.4f}s allowed"
            )
        if speedup < floor:
            failures.append(
                f"kernel {leg} speedup {speedup}x regressed >30% below "
                f"the recorded {baseline[leg]['speedup']}x"
            )
    return failures


def gate_serve(payload, argv):
    speedup = payload["speedup"]
    batched_seconds = payload["batched"]["total_seconds"]

    if "--record" in argv:
        record = {
            "nodes": SERVE_SMOKE_NODES,
            "clients": SERVE_SMOKE_CLIENTS,
            "queries_per_client": SERVE_SMOKE_QUERIES,
            "batched_total_seconds": batched_seconds,
            "speedup": speedup,
        }
        SERVE_BASELINE.write_text(
            json.dumps(record, indent=1, sort_keys=True) + "\n"
        )
        print(f"recorded baseline: {SERVE_BASELINE}")
        return []

    baseline = json.loads(SERVE_BASELINE.read_text())
    multiplier = float(os.environ.get("PERF_SMOKE_MULTIPLIER", "10"))
    allowed_seconds = baseline["batched_total_seconds"] * multiplier
    floor = max(
        MIN_SERVE_SPEEDUP,
        round(baseline["speedup"] * SERVE_REGRESSION_FRACTION, 2),
    )
    failures = []
    print(
        f"serve: batched {payload['batched']['qps']} q/s vs sequential "
        f"{payload['sequential']['qps']} q/s, speedup {speedup}x "
        f"(floor {floor}x, allowed {allowed_seconds:.4f}s batched)"
    )
    if batched_seconds > allowed_seconds:
        failures.append(
            f"serve batched {batched_seconds}s > "
            f"{allowed_seconds:.4f}s allowed"
        )
    if speedup < floor:
        failures.append(
            f"serve batched dispatch {speedup}x < {floor}x floor "
            f"(recorded {baseline['speedup']}x)"
        )
    return failures


def gate_obs(payload, argv):
    overhead = payload["overhead_fraction"]

    if "--record" in argv:
        record = {
            "nodes": OBS_SMOKE_NODES,
            "pairs": OBS_SMOKE_PAIRS,
            "plain_seconds": payload["plain_seconds"],
            "overhead_fraction": overhead,
        }
        OBS_BASELINE.write_text(
            json.dumps(record, indent=1, sort_keys=True) + "\n"
        )
        print(f"recorded baseline: {OBS_BASELINE}")
        return []

    baseline = json.loads(OBS_BASELINE.read_text())
    multiplier = float(os.environ.get("PERF_SMOKE_MULTIPLIER", "10"))
    allowed_seconds = baseline["plain_seconds"] * multiplier
    failures = []
    print(
        f"obs: overhead {overhead * 100:+.2f}% "
        f"(bound {MAX_OVERHEAD_FRACTION * 100:.0f}%), plain "
        f"{payload['plain_seconds']}s (allowed {allowed_seconds:.4f}s)"
    )
    # The overhead bound is absolute, not baseline-relative: the
    # observability layer's contract is "<3% on the kernel bench", full
    # stop, and the paired-median estimator is machine-independent enough
    # to hold it on shared runners.
    if overhead > MAX_OVERHEAD_FRACTION:
        failures.append(
            f"observability overhead {overhead * 100:.2f}% > "
            f"{MAX_OVERHEAD_FRACTION * 100:.0f}% bound"
        )
    if payload["plain_seconds"] > allowed_seconds:
        failures.append(
            f"obs plain leg {payload['plain_seconds']}s > "
            f"{allowed_seconds:.4f}s allowed"
        )
    return failures


def gate_overload(payload, argv):
    capacity = payload["capacity"]
    shed = payload["shed"]
    unbounded = payload["unbounded"]

    if "--record" in argv:
        record = {
            "nodes": OVERLOAD_SMOKE_NODES,
            "clients": OVERLOAD_SMOKE_CLIENTS,
            "capacity_seconds": capacity["total_seconds"],
            "capacity_qps": capacity["goodput_qps"],
            "shed_goodput_ratio": payload["shed_goodput_ratio"],
        }
        OVERLOAD_BASELINE.write_text(
            json.dumps(record, indent=1, sort_keys=True) + "\n"
        )
        print(f"recorded baseline: {OVERLOAD_BASELINE}")
        return []

    baseline = json.loads(OVERLOAD_BASELINE.read_text())
    multiplier = float(os.environ.get("PERF_SMOKE_MULTIPLIER", "10"))
    allowed_seconds = baseline["capacity_seconds"] * multiplier
    print(
        f"overload: capacity {capacity['goodput_qps']} q/s "
        f"({capacity['total_seconds']}s, allowed {allowed_seconds:.4f}s); "
        f"shed goodput {shed['goodput_qps']} q/s "
        f"(ratio {payload['shed_goodput_ratio']}x, floor "
        f"{MIN_GOODPUT_FRACTION}x), p99 {shed['p99_ms']}ms, "
        f"rejected {shed['rejected']}; unbounded p99 "
        f"{unbounded['p99_ms']}ms, max queue {unbounded['max_queue_depth_seen']}"
    )
    failures = check_overload(payload)
    if capacity["total_seconds"] > allowed_seconds:
        failures.append(
            f"overload capacity phase {capacity['total_seconds']}s > "
            f"{allowed_seconds:.4f}s allowed"
        )
    return failures


def run_parallel():
    graph = make_bench_graph(PARALLEL_SMOKE_NODES, PARALLEL_SMOKE_EDGES)
    rows = run_sweep(graph, worker_counts=(1, 4), n_r=PARALLEL_SMOKE_N_R)
    return {"rows": rows, "cpus": effective_cpus()}


def gate_parallel(payload, argv):
    rows = payload["rows"]
    cpus = payload["cpus"]
    w1_seconds = next(
        row["seconds"] for row in rows if row["mode"] == "serial"
    )

    if "--record" in argv:
        record = {
            "nodes": PARALLEL_SMOKE_NODES,
            "edges": PARALLEL_SMOKE_EDGES,
            "n_r": PARALLEL_SMOKE_N_R,
            "w1_seconds": w1_seconds,
            "cpus_at_record": cpus,
        }
        PARALLEL_BASELINE.write_text(
            json.dumps(record, indent=1, sort_keys=True) + "\n"
        )
        print(f"recorded baseline: {PARALLEL_BASELINE}")
        return []

    baseline = json.loads(PARALLEL_BASELINE.read_text())
    multiplier = float(os.environ.get("PERF_SMOKE_MULTIPLIER", "10"))
    allowed_seconds = baseline["w1_seconds"] * multiplier
    failures = []
    for row in rows:
        print(
            f"parallel {row['mode']} w{row['workers']}: {row['seconds']}s, "
            f"speedup {row['speedup']}x, identical={row['identical_to_w1']}"
        )
    # Identity is machine-independent and gated unconditionally: the tier
    # and worker count must never touch a score bit.
    for row in rows:
        if not row["identical_to_w1"]:
            failures.append(
                f"parallel {row['mode']} w{row['workers']} scores drifted "
                "from the workers=1 reference"
            )
    if w1_seconds > allowed_seconds:
        failures.append(
            f"parallel w1 {w1_seconds}s > {allowed_seconds:.4f}s allowed"
        )
    # Scaling is machine-dependent: gate by the CPUs actually available.
    best = max(row["speedup"] for row in rows if row["workers"] == 4)
    if cpus >= 4:
        floor = MIN_PARALLEL_SPEEDUP_4CPU
    elif cpus >= 2:
        floor = MIN_PARALLEL_SPEEDUP_2CPU
    else:
        print(
            f"parallel scaling: SKIPPED (only {cpus} effective CPU; "
            "identity still gated)"
        )
        return failures
    print(
        f"parallel scaling: best {best}x at 4 workers "
        f"(floor {floor}x on {cpus} CPUs)"
    )
    if best < floor:
        failures.append(
            f"parallel best speedup {best}x at 4 workers < {floor}x floor "
            f"on {cpus} effective CPUs"
        )
    return failures


def gate_adaptive(payload, argv):
    saved = payload["trials_saved_ratio"]
    error = payload["adaptive_max_error"]
    seconds = payload["adaptive_seconds"]

    if "--record" in argv:
        record = {
            "num_candidates": ADAPTIVE_SMOKE_CANDIDATES,
            "epsilon": payload["epsilon"],
            "adaptive_seconds": seconds,
            "trials_saved_ratio": saved,
        }
        ADAPTIVE_BASELINE.write_text(
            json.dumps(record, indent=1, sort_keys=True) + "\n"
        )
        print(f"recorded baseline: {ADAPTIVE_BASELINE}")
        return []

    baseline = json.loads(ADAPTIVE_BASELINE.read_text())
    multiplier = float(os.environ.get("PERF_SMOKE_MULTIPLIER", "10"))
    allowed_seconds = baseline["adaptive_seconds"] * multiplier
    failures = []
    print(
        f"adaptive: {payload['trials_used']}/{payload['n_r']} trials "
        f"({saved}x saved, floor {MIN_TRIALS_SAVED}x), max error {error} "
        f"(bound {BENCH_EPSILON}), {seconds}s (allowed {allowed_seconds:.4f}s)"
    )
    if saved < MIN_TRIALS_SAVED:
        failures.append(
            f"adaptive trials saved {saved}x < {MIN_TRIALS_SAVED}x floor "
            f"(recorded {baseline['trials_saved_ratio']}x)"
        )
    if error > BENCH_EPSILON:
        failures.append(
            f"adaptive max error {error} > ε={BENCH_EPSILON} bound"
        )
    if seconds > allowed_seconds:
        failures.append(
            f"adaptive leg {seconds}s > {allowed_seconds:.4f}s allowed"
        )
    return failures


def main(argv) -> int:
    BASELINE.parent.mkdir(parents=True, exist_ok=True)
    failures = gate_tree(
        run_all(num_nodes=SMOKE_NODES, num_sources=SMOKE_SOURCES), argv
    )
    failures += gate_kernel(
        run_kernel(num_nodes=KERNEL_SMOKE_NODES, n_trials=KERNEL_SMOKE_TRIALS),
        argv,
    )
    failures += gate_serve(
        run_serve(
            num_nodes=SERVE_SMOKE_NODES,
            n_clients=SERVE_SMOKE_CLIENTS,
            queries_per_client=SERVE_SMOKE_QUERIES,
            catalog_size=SERVE_SMOKE_CATALOG,
            n_r=SERVE_SMOKE_N_R,
        ),
        argv,
    )
    failures += gate_obs(
        run_obs(num_nodes=OBS_SMOKE_NODES, pairs=OBS_SMOKE_PAIRS), argv
    )
    failures += gate_overload(
        run_overload(
            num_nodes=OVERLOAD_SMOKE_NODES,
            n_clients=OVERLOAD_SMOKE_CLIENTS,
            capacity_queries_per_client=OVERLOAD_SMOKE_CAPACITY_QUERIES,
            catalog_size=OVERLOAD_SMOKE_CATALOG,
            n_r=OVERLOAD_SMOKE_N_R,
            duration=OVERLOAD_SMOKE_DURATION,
            max_queue_depth=OVERLOAD_SMOKE_QUEUE_DEPTH,
        ),
        argv,
    )
    failures += gate_parallel(run_parallel(), argv)
    failures += gate_adaptive(
        run_adaptive(num_candidates=ADAPTIVE_SMOKE_CANDIDATES), argv
    )
    for failure in failures:
        print(f"FAIL: {failure}")
    if "--record" in argv:
        return 0
    if not failures:
        print("perf-smoke ok")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
