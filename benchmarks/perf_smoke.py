"""CI perf-smoke: catch order-of-magnitude tree regressions cheaply.

Runs the bench_tree sweep on a CI-sized graph and compares wall-clock
against the recorded baseline in ``benchmarks/baselines/tree_smoke.json``.
The gate is deliberately generous — a timing fails only past
``PERF_SMOKE_MULTIPLIER`` (default 10×) of its recorded value — so shared
runners' jitter never breaks the build, while a representation regression
that reintroduces O(n)-per-level work (100×+ on these sizes) still trips
it.  The structural ratios (sparse-vs-dense speedup, pruning no slower)
are asserted directly: they are machine-independent.

Usage:
    python benchmarks/perf_smoke.py            # gate against the baseline
    python benchmarks/perf_smoke.py --record   # re-record the baseline
"""

from __future__ import annotations

import json
import os
import pathlib
import sys

from bench_tree import run_all

BASELINE = pathlib.Path(__file__).parent / "baselines" / "tree_smoke.json"
SMOKE_NODES = 30_000
SMOKE_SOURCES = 32
GATED_TIMINGS = (
    "sparse_build_seconds",
    "sparse_same_as_cold_seconds",
)
MIN_COMBINED_SPEEDUP = 3.0  # headroom below the 5x full-size target
MIN_PRUNING_SPEEDUP = 0.8


def main(argv) -> int:
    payload = run_all(num_nodes=SMOKE_NODES, num_sources=SMOKE_SOURCES)
    tree = payload["tree"]
    pruning = payload["difference_pruning"]

    if "--record" in argv:
        BASELINE.parent.mkdir(parents=True, exist_ok=True)
        record = {key: tree[key] for key in GATED_TIMINGS}
        record["nodes"] = SMOKE_NODES
        record["sources"] = SMOKE_SOURCES
        BASELINE.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")
        print(f"recorded baseline: {BASELINE}")
        return 0

    baseline = json.loads(BASELINE.read_text())
    multiplier = float(os.environ.get("PERF_SMOKE_MULTIPLIER", "10"))
    failures = []
    for key in GATED_TIMINGS:
        allowed = baseline[key] * multiplier
        print(
            f"{key}: {tree[key]}s (baseline {baseline[key]}s, "
            f"allowed {allowed:.4f}s)"
        )
        if tree[key] > allowed:
            failures.append(f"{key} {tree[key]}s > {allowed:.4f}s allowed")
    print(f"combined_speedup: {tree['combined_speedup']}x")
    if tree["combined_speedup"] < MIN_COMBINED_SPEEDUP:
        failures.append(
            f"combined sparse speedup {tree['combined_speedup']}x "
            f"< {MIN_COMBINED_SPEEDUP}x floor"
        )
    print(f"difference pruning sweep: {pruning['speedup']}x")
    if pruning["speedup"] < MIN_PRUNING_SPEEDUP:
        failures.append(
            f"difference pruning sweep {pruning['speedup']}x "
            f"< {MIN_PRUNING_SPEEDUP}x floor"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("perf-smoke ok")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
