"""Benches for the parameter-sensitivity sweeps."""

import pytest

from repro.experiments.sensitivity import run_c_sensitivity, run_theta_sensitivity


def test_c_sensitivity(benchmark, profile):
    dataset = profile.datasets[-1]
    rows = benchmark.pedantic(
        lambda: run_c_sensitivity(
            profile, dataset=dataset, c_values=(0.4, 0.6), repetitions=1
        ),
        rounds=1,
        iterations=1,
    )
    assert len(rows) == 4


def test_theta_sensitivity(benchmark, profile):
    dataset = profile.datasets[-1]
    rows = benchmark.pedantic(
        lambda: run_theta_sensitivity(
            profile, dataset=dataset, thetas=(0.02, 0.05)
        ),
        rounds=1,
        iterations=1,
    )
    assert len(rows) == 2
