"""Observability overhead bench: instrumented vs kill-switched kernel.

The observability layer promises to be *provably cheap*: the kernel hot
loop counts into local ints and flushes once per call, and ambient spans
cost one thread-local load when no trace is active.  This bench puts a
number on that promise, and re-checks the contract the identity suite
pins — the same fused-kernel accumulation runs with the registry live
(``REPRO_OBS`` default) and with the kill switch thrown
(:func:`repro.obs.set_enabled`), and the two totals are bit-compared,
because instrumentation that changed a single draw would be a correctness
bug, not an overhead problem.

Measurement: shared-runner wall clocks wander by tens of percent over
multi-second windows, so a min-of-each-leg estimate at full workload size
is hostage to whichever leg caught the quiet moment.  Instead the
overhead estimate is the **median of per-pair ratios** over many *short*
samples: each pair runs the two legs back to back (order alternating), so
slow drift cancels inside the pair, and the median over ``PAIRS`` pairs
shrugs off scheduler spikes.

Entry points:

* ``python benchmarks/bench_obs.py`` — full-size run (50k-node PA graph),
  prints the comparison, writes ``BENCH_obs.json``, exits non-zero if the
  instrumented leg is more than ``MAX_OVERHEAD_FRACTION`` slower;
* ``run_all()`` — the JSON payload, consumed by the CI perf-smoke gate at
  reduced size.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import time
from typing import Dict

import numpy as np

try:
    from bench_kernel import make_bench_graph, walkable_targets
except ImportError:  # collected by pytest as benchmarks.bench_obs
    from benchmarks.bench_kernel import make_bench_graph, walkable_targets
from repro import obs
from repro.core.revreach import revreach_levels
from repro.rng import ensure_rng
from repro.walks.kernel import WalkCrashKernel

BENCH_NODES = 50_000
BENCH_L_MAX = 11
BENCH_C = 0.6
N_TRIALS = 96
SOURCE = 0
#: Trials per overhead sample: short samples break the noise's time
#: correlation, which matters more than per-sample precision.
OVERHEAD_TRIALS = 16
#: Back-to-back leg pairs feeding the median.
PAIRS = 80
WARMUP_PAIRS = 3
#: The acceptance bound: instrumentation may cost at most this fraction of
#: the uninstrumented kernel time (override: REPRO_OBS_OVERHEAD_BOUND).
MAX_OVERHEAD_FRACTION = float(os.environ.get("REPRO_OBS_OVERHEAD_BOUND", "0.03"))

OUTPUT = pathlib.Path(__file__).with_name("BENCH_obs.json")


def _time_leg(kernel, tree, targets, n_trials: int):
    started = time.perf_counter()
    totals = kernel.accumulate(
        tree, targets, n_trials, l_max=BENCH_L_MAX, rng=ensure_rng(42)
    )
    return time.perf_counter() - started, totals


def run_all(
    *,
    num_nodes: int = BENCH_NODES,
    n_trials: int = N_TRIALS,
    overhead_trials: int = OVERHEAD_TRIALS,
    pairs: int = PAIRS,
) -> Dict[str, object]:
    graph = make_bench_graph(num_nodes)
    tree = revreach_levels(graph, SOURCE, BENCH_L_MAX, BENCH_C)
    targets = walkable_targets(graph)
    kernel = WalkCrashKernel(graph, BENCH_C)

    previous = obs.obs_enabled()
    try:
        # The identity contract first, at full workload size: flipping the
        # kill switch must not move a single bit.
        obs.set_enabled(True)
        _, instrumented_totals = _time_leg(kernel, tree, targets, n_trials)
        obs.set_enabled(False)
        _, plain_totals = _time_leg(kernel, tree, targets, n_trials)
        assert np.array_equal(instrumented_totals, plain_totals), (
            "instrumented and uninstrumented runs diverged"
        )

        instrumented_seconds = math.inf
        plain_seconds = math.inf
        ratios = []
        for repeat in range(WARMUP_PAIRS + pairs):
            timed: Dict[bool, float] = {}
            legs = [True, False] if repeat % 2 == 0 else [False, True]
            for enabled in legs:
                obs.set_enabled(enabled)
                elapsed, _ = _time_leg(kernel, tree, targets, overhead_trials)
                timed[enabled] = elapsed
            if repeat < WARMUP_PAIRS:
                continue
            ratios.append(timed[True] / timed[False] - 1.0)
            instrumented_seconds = min(instrumented_seconds, timed[True])
            plain_seconds = min(plain_seconds, timed[False])
    finally:
        obs.set_enabled(previous)

    return {
        "graph": {"num_nodes": graph.num_nodes, "generator": "preferential_attachment"},
        "n_trials": int(n_trials),
        "overhead_trials": int(overhead_trials),
        "pairs": int(pairs),
        "l_max": BENCH_L_MAX,
        "plain_seconds": round(plain_seconds, 4),
        "instrumented_seconds": round(instrumented_seconds, 4),
        "overhead_fraction": round(float(np.median(ratios)), 4),
        "bit_identical": True,
    }


def main() -> int:
    print(
        f"obs overhead: preferential_attachment(n={BENCH_NODES}), "
        f"{PAIRS} pairs of {OVERHEAD_TRIALS}-trial samples"
    )
    payload = run_all()
    print(
        f"plain {payload['plain_seconds']}s  "
        f"instrumented {payload['instrumented_seconds']}s  "
        f"overhead {payload['overhead_fraction'] * 100:+.2f}% "
        f"(bound {MAX_OVERHEAD_FRACTION * 100:.0f}%)"
    )
    OUTPUT.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote {OUTPUT}")
    if payload["overhead_fraction"] > MAX_OVERHEAD_FRACTION:
        print(
            f"FAIL: observability overhead "
            f"{payload['overhead_fraction'] * 100:.2f}% > "
            f"{MAX_OVERHEAD_FRACTION * 100:.0f}% bound"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
