"""Table II bench: Power-Method SimRank on the running-example graph."""

from repro.experiments.table2 import run_table2


def test_table2(benchmark):
    rows = benchmark(run_table2)
    assert [row["node"] for row in rows] == list("ABCDEFGH")
    assert rows[0]["sim(A, node)"] == 1.0
