"""Benches for the extension features (DESIGN.md "beyond the paper").

* adaptive top-k vs plain single-source + sort;
* durable top-k over a snapshot window;
* weighted vs unweighted CrashSim (the weighted sampler's overhead);
* the SLING stored index: build cost vs its O(list-join) query.
"""

import numpy as np
import pytest

from repro.baselines.sling import SlingStoredIndex
from repro.core.crashsim import crashsim
from repro.core.params import CrashSimParams
from repro.core.temporal_topk import durable_topk
from repro.core.topk import crashsim_topk
from repro.datasets.registry import load_dataset, load_static_dataset
from repro.graph.digraph import DiGraph
from repro.rng import ensure_rng


@pytest.fixture(scope="module")
def params(profile):
    return CrashSimParams(
        c=profile.c, epsilon=0.025, delta=profile.delta, n_r_cap=profile.n_r_cap
    )


@pytest.fixture(scope="module")
def graph(profile, static_graphs):
    return static_graphs[next(iter(profile.datasets))]


def test_adaptive_topk(benchmark, graph, params, profile):
    source = int(np.argmax(graph.in_degrees()))
    result = benchmark(
        lambda: crashsim_topk(graph, source, 10, params=params, seed=profile.seed)
    )
    assert len(result.ranking) <= 10


def test_plain_topk_via_single_source(benchmark, graph, params, profile):
    source = int(np.argmax(graph.in_degrees()))
    result = benchmark(
        lambda: crashsim(graph, source, params=params, seed=profile.seed).top_k(10)
    )
    assert len(result) <= 10


def test_durable_topk(benchmark, profile, params):
    temporal = load_dataset(
        profile.datasets[0],
        scale=profile.scale,
        num_snapshots=min(profile.fig6_snapshots, 8),
        seed=profile.seed,
    )
    source = temporal.num_nodes // 3
    result = benchmark.pedantic(
        lambda: durable_topk(temporal, source, 10, params=params, seed=profile.seed),
        rounds=1,
        iterations=1,
    )
    assert result.snapshots_processed >= 1


def test_weighted_crashsim(benchmark, graph, params, profile):
    rng = ensure_rng(profile.seed)
    arcs = list(graph.edges())
    weighted = DiGraph.from_edges(
        graph.num_nodes,
        arcs,
        weights=rng.uniform(0.5, 4.0, size=len(arcs)),
        directed=True,
    )
    source = int(np.argmax(weighted.in_degrees()))
    result = benchmark(
        lambda: crashsim(weighted, source, params=params, seed=profile.seed)
    )
    assert result.scores.max() <= 1.0


def test_sling_stored_index_build(benchmark, graph, profile):
    index = benchmark.pedantic(
        lambda: SlingStoredIndex(
            graph,
            c=profile.c,
            num_d_samples=profile.sling_d_samples,
            threshold=0.005,
            seed=profile.seed,
        ),
        rounds=1,
        iterations=1,
    )
    assert index.size_entries > 0


def test_sling_stored_index_query(benchmark, graph, profile):
    index = SlingStoredIndex(
        graph,
        c=profile.c,
        num_d_samples=profile.sling_d_samples,
        threshold=0.005,
        seed=profile.seed,
    )
    source = int(np.argmax(graph.in_degrees()))
    scores = benchmark(lambda: index.query(source))
    assert scores[source] == 1.0


def test_multi_source_shared_walks(benchmark, graph, params, profile):
    from repro.core.multi_source import crashsim_multi_source

    sources = list(range(min(8, graph.num_nodes)))
    results = benchmark.pedantic(
        lambda: crashsim_multi_source(
            graph, sources, params=params, seed=profile.seed
        ),
        rounds=1,
        iterations=1,
    )
    assert len(results) == len(sources)


def test_independent_sources_baseline(benchmark, graph, params, profile):
    sources = list(range(min(8, graph.num_nodes)))
    results = benchmark.pedantic(
        lambda: [
            crashsim(graph, source, params=params, seed=profile.seed)
            for source in sources
        ],
        rounds=1,
        iterations=1,
    )
    assert len(results) == len(sources)
