"""Shared fixtures for the benchmark harness.

Profile selection follows the experiment harness: ``REPRO_PROFILE`` picks
``quick`` (default; CI-sized), ``default``, or ``full``.  Dataset graphs are
generated once per session so benchmark iterations measure the algorithms,
not the generators.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.power_method import power_method_all_pairs
from repro.datasets.registry import load_static_dataset
from repro.experiments.config import get_profile


@pytest.fixture(scope="session")
def profile():
    return get_profile()


@pytest.fixture(scope="session")
def static_graphs(profile):
    """``{dataset: DiGraph}`` for the profile's datasets."""
    return {
        name: load_static_dataset(name, scale=profile.scale, seed=profile.seed)
        for name in profile.datasets
    }


@pytest.fixture(scope="session")
def ground_truths(profile, static_graphs):
    """Power-Method all-pairs matrices, one per dataset."""
    return {
        name: power_method_all_pairs(graph, profile.c)
        for name, graph in static_graphs.items()
    }
