"""Adaptive-sampling bench: trials saved and wall-clock vs fixed n_r.

Runs single-source CrashSim twice on the pinned 50k-node power-law fixture
(:func:`repro.datasets.powerlaw_fixture`) at ε=0.05 — once with the fixed
Theorem-1 trial count, once with ``adaptive=True`` (empirical-Bernstein
early stopping + hub-contribution caching) — and reports

* ``trials_saved_ratio`` = fixed ``n_r`` / adaptive ``trials_used``
  (the headline number; the perf-smoke gate demands ≥ 1.5x),
* wall-clock for both legs and the resulting speedup,
* the *exact* maximum estimation error of each leg, measured against
  :func:`repro.core.adaptive.exact_expectation` — the closed-form
  expectation of the truncated estimator, computable in O(l_max·m) —
  which must stay within ε for the adaptive leg.

Everything is deterministic for the pinned seeds, so the error figures
are reproducible numbers, not flaky samples.

Usage:
    python benchmarks/bench_adaptive.py          # full fixture, writes
                                                 # BENCH_adaptive.json
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.adaptive import exact_expectation
from repro.core.crashsim import crashsim
from repro.core.params import CrashSimParams
from repro.core.revreach import revreach_levels
from repro.datasets.powerlaw import POWERLAW_FIXTURE_SEED, zipf_powerlaw

BENCH_NODES = 50_000
BENCH_EDGES = 300_000
BENCH_EPSILON = 0.05
BENCH_SEED = 42
OUTPUT = pathlib.Path(__file__).with_name("BENCH_adaptive.json")


def run_all(
    num_nodes: int = BENCH_NODES,
    num_edges: int = BENCH_EDGES,
    *,
    epsilon: float = BENCH_EPSILON,
    num_candidates: Optional[int] = None,
    seed: int = BENCH_SEED,
) -> Dict[str, object]:
    """Time fixed vs adaptive CrashSim; exact errors via closed form.

    ``num_candidates`` restricts the query to the first that many
    walkable nodes (id order) — the CI smoke leg uses this to keep the
    fixed reference cheap while *n_r stays priced for the full graph*,
    which is exactly the regime the adaptive stopper exploits.  The
    source is node 0, the fixture's heaviest hub.
    """
    graph = zipf_powerlaw(num_nodes, num_edges, seed=POWERLAW_FIXTURE_SEED)
    params = CrashSimParams(epsilon=epsilon)
    source = 0
    walkable = np.flatnonzero(graph.in_degrees() > 0)
    walkable = walkable[walkable != source]
    if num_candidates is not None:
        candidates: Optional[Sequence[int]] = walkable[:num_candidates]
    else:
        candidates = None
    tree = revreach_levels(graph, source, params.l_max, params.c)

    def timed(adaptive: bool):
        started = time.perf_counter()
        result = crashsim(
            graph,
            source,
            candidates=candidates,
            params=params,
            tree=tree,
            seed=seed,
            adaptive=adaptive,
        )
        return result, time.perf_counter() - started

    fixed, fixed_seconds = timed(False)
    adaptive, adaptive_seconds = timed(True)

    # Exact expectation of the truncated estimator — the quantity both
    # estimators are unbiased for — gives exact (not sampled) error.
    exact = exact_expectation(graph, tree, l_max=params.l_max, c=params.c)

    def max_error(result) -> float:
        mask = result.candidates != source
        dense = np.zeros(graph.num_nodes)
        dense[result.candidates] = result.scores
        nodes = (
            np.asarray(candidates) if candidates is not None else walkable
        )
        return float(np.abs(dense[nodes] - exact[nodes]).max())

    n_r = fixed.n_r
    trials_used = adaptive.trials_completed
    payload = {
        "graph": {
            "generator": "zipf_powerlaw",
            "num_nodes": num_nodes,
            "num_edges_requested": num_edges,
            "num_edges": graph.num_edges,
            "seed": POWERLAW_FIXTURE_SEED,
        },
        "epsilon": epsilon,
        "source": source,
        "num_candidates": (
            int(len(candidates)) if candidates is not None else int(walkable.size)
        ),
        "n_r": int(n_r),
        "trials_used": int(trials_used),
        "trials_saved_ratio": round(n_r / max(trials_used, 1), 3),
        "stopped_early": bool(adaptive.stopped_early),
        "achieved_epsilon": round(float(adaptive.achieved_epsilon), 6),
        "fixed_seconds": round(fixed_seconds, 4),
        "adaptive_seconds": round(adaptive_seconds, 4),
        "speedup": round(fixed_seconds / max(adaptive_seconds, 1e-9), 3),
        "fixed_max_error": round(max_error(fixed), 6),
        "adaptive_max_error": round(max_error(adaptive), 6),
    }
    return payload


def main() -> int:
    print(
        f"adaptive bench: n={BENCH_NODES} fixture, ε={BENCH_EPSILON}, "
        f"seed {BENCH_SEED}"
    )
    payload = run_all()
    print(
        f"fixed:    {payload['n_r']} trials, {payload['fixed_seconds']}s, "
        f"max error {payload['fixed_max_error']}"
    )
    print(
        f"adaptive: {payload['trials_used']} trials "
        f"({payload['trials_saved_ratio']}x saved), "
        f"{payload['adaptive_seconds']}s ({payload['speedup']}x), "
        f"max error {payload['adaptive_max_error']}, "
        f"achieved ε={payload['achieved_epsilon']}"
    )
    OUTPUT.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote {OUTPUT}")
    failures = []
    if payload["trials_saved_ratio"] < 2.0:
        failures.append(
            f"trials saved {payload['trials_saved_ratio']}x < 2.0x "
            "(full-size target)"
        )
    if payload["adaptive_max_error"] > BENCH_EPSILON:
        failures.append(
            f"adaptive max error {payload['adaptive_max_error']} > "
            f"ε={BENCH_EPSILON}"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
