"""Figure 6 benches: temporal query answering, per algorithm.

Benchmarks the end-to-end temporal trend query (CrashSim-T vs each
per-snapshot-recompute adapter) on one dataset, and asserts the precision
hierarchy the paper reports holds against the Power-Method oracle.
"""

import pytest

from repro.baselines.temporal_adapters import (
    make_snapshot_algorithm,
    temporal_query_by_recompute,
)
from repro.core.crashsim_t import crashsim_t
from repro.core.params import CrashSimParams
from repro.core.queries import ThresholdQuery, TrendQuery
from repro.datasets.registry import load_dataset
from repro.metrics.accuracy import result_set_precision


@pytest.fixture(scope="module")
def temporal(profile):
    return load_dataset(
        profile.datasets[0],
        scale=profile.scale,
        num_snapshots=profile.fig6_snapshots,
        seed=profile.seed,
    )


@pytest.fixture(scope="module")
def query():
    return TrendQuery(direction="increasing", tolerance=0.01)


@pytest.fixture(scope="module")
def source(temporal):
    return temporal.num_nodes // 3


@pytest.fixture(scope="module")
def oracle_survivors(temporal, query, source):
    oracle = make_snapshot_algorithm("power")
    return temporal_query_by_recompute(
        temporal, source, query, oracle
    ).survivor_set


def test_crashsim_t_trend_query(benchmark, temporal, query, source, profile, oracle_survivors):
    params = CrashSimParams(
        c=profile.c, epsilon=0.025, delta=profile.delta, n_r_cap=profile.n_r_cap
    )
    result = benchmark.pedantic(
        lambda: crashsim_t(
            temporal, source, query, params=params, seed=profile.seed
        ),
        rounds=1,
        iterations=1,
    )
    precision = result_set_precision(oracle_survivors, result.survivor_set)
    assert precision > 0.3


@pytest.mark.parametrize("algorithm_name", ["probesim", "sling", "reads"])
def test_baseline_trend_query(
    benchmark, temporal, query, source, profile, algorithm_name, oracle_survivors
):
    kwargs = {
        "probesim": dict(c=profile.c, n_r=profile.probesim_n_r),
        "sling": dict(c=profile.c, num_d_samples=profile.sling_d_samples),
        "reads": dict(
            r=profile.reads_r, t=profile.reads_t, r_q=profile.reads_r_q, c=profile.c
        ),
    }[algorithm_name]
    algorithm = make_snapshot_algorithm(
        algorithm_name, seed=profile.seed, **kwargs
    )
    result = benchmark.pedantic(
        lambda: temporal_query_by_recompute(temporal, source, query, algorithm),
        rounds=1,
        iterations=1,
    )
    precision = result_set_precision(oracle_survivors, result.survivor_set)
    assert 0.0 <= precision <= 1.0


def test_crashsim_t_threshold_query(benchmark, temporal, source, profile):
    params = CrashSimParams(
        c=profile.c, epsilon=0.025, delta=profile.delta, n_r_cap=profile.n_r_cap
    )
    result = benchmark.pedantic(
        lambda: crashsim_t(
            temporal,
            source,
            ThresholdQuery(theta=profile.threshold_theta),
            params=params,
            seed=profile.seed,
        ),
        rounds=1,
        iterations=1,
    )
    assert result.stats.snapshots_processed >= 1
