"""Figure 5 benches: single-source response time per algorithm per dataset.

Each benchmark measures one single-source query (the quantity Fig. 5's time
axis plots) and asserts the ME against the Power-Method ground truth stays
within the profile's expectations.  Index construction for SLING / READS is
benchmarked separately — the paper folds it into response time; the split
here makes the trade-off visible.
"""

import numpy as np
import pytest

from repro.baselines.probesim import probesim
from repro.baselines.reads import ReadsIndex
from repro.baselines.sling import SlingIndex
from repro.core.crashsim import crashsim
from repro.core.params import CrashSimParams
from repro.metrics.accuracy import max_error


def _source_for(graph):
    """A deterministic, well-connected source (max in-degree node)."""
    return int(np.argmax(graph.in_degrees()))


def _dataset_params(profile):
    return [(name, idx) for idx, name in enumerate(profile.datasets)]


@pytest.fixture(params=["as733", "as_caida", "wiki_vote", "hepth", "hepph"])
def dataset(request, profile):
    if request.param not in profile.datasets:
        pytest.skip(f"{request.param} not in profile {profile.name!r}")
    return request.param


@pytest.mark.parametrize("epsilon", [0.1, 0.05, 0.025, 0.0125])
def test_crashsim_single_source(benchmark, dataset, epsilon, profile, static_graphs, ground_truths):
    graph = static_graphs[dataset]
    source = _source_for(graph)
    params = CrashSimParams(
        c=profile.c,
        epsilon=epsilon,
        delta=profile.delta,
        n_r_cap=max(1, int(profile.n_r_cap * (0.025 / epsilon) ** 2)),
    )
    result = benchmark(
        lambda: crashsim(graph, source, params=params, seed=profile.seed)
    )
    estimate = np.zeros(graph.num_nodes)
    estimate[result.candidates] = result.scores
    estimate[source] = 1.0
    error = max_error(ground_truths[dataset][source], estimate, exclude=[source])
    assert error < max(4 * epsilon, 0.3)


def test_probesim_single_source(benchmark, dataset, profile, static_graphs, ground_truths):
    graph = static_graphs[dataset]
    source = _source_for(graph)
    scores = benchmark(
        lambda: probesim(
            graph,
            source,
            c=profile.c,
            n_r=profile.probesim_n_r,
            seed=profile.seed,
        )
    )
    error = max_error(ground_truths[dataset][source], scores, exclude=[source])
    assert error < 0.2


def test_sling_index_build(benchmark, dataset, profile, static_graphs):
    graph = static_graphs[dataset]
    index = benchmark(
        lambda: SlingIndex(
            graph,
            c=profile.c,
            num_d_samples=profile.sling_d_samples,
            seed=profile.seed,
        )
    )
    assert index.d.shape == (graph.num_nodes,)


def test_sling_query(benchmark, dataset, profile, static_graphs, ground_truths):
    graph = static_graphs[dataset]
    source = _source_for(graph)
    index = SlingIndex(
        graph, c=profile.c, num_d_samples=profile.sling_d_samples, seed=profile.seed
    )
    scores = benchmark(lambda: index.query(source))
    error = max_error(ground_truths[dataset][source], scores, exclude=[source])
    assert error < 0.2


def test_reads_index_build(benchmark, dataset, profile, static_graphs):
    graph = static_graphs[dataset]
    index = benchmark(
        lambda: ReadsIndex(
            graph,
            r=profile.reads_r,
            t=profile.reads_t,
            r_q=profile.reads_r_q,
            c=profile.c,
            seed=profile.seed,
        )
    )
    assert index.pointers.shape == (profile.reads_r, graph.num_nodes)


def test_reads_query(benchmark, dataset, profile, static_graphs, ground_truths):
    graph = static_graphs[dataset]
    source = _source_for(graph)
    index = ReadsIndex(
        graph,
        r=profile.reads_r,
        t=profile.reads_t,
        r_q=profile.reads_r_q,
        c=profile.c,
        seed=profile.seed,
    )
    scores = benchmark(lambda: index.query(source))
    # READS has no error guarantee (paper §V-A): sanity bound only.
    error = max_error(ground_truths[dataset][source], scores, exclude=[source])
    assert error < 0.5
