"""Reverse-tree benches: sparse vs dense build/compare + pruning sweep.

Three entry points:

* ``pytest benchmarks/bench_tree.py --benchmark-only`` — records tree
  construction and comparison per representation on a 50k-node power-law
  graph;
* ``python benchmarks/bench_tree.py`` — runs the full sweep once, prints
  tables, writes machine-readable ``BENCH_tree.json`` next to this file,
  and exits non-zero if the acceptance targets are missed (sparse build +
  ``same_as`` ≥ 5× faster than dense over the source workload; the
  CrashSim-T sweep with difference pruning no slower than without);
* ``run_all()`` — the JSON payload, for the CI perf-smoke harness.

The dense baseline is the pre-sparse ``revreach_levels`` implementation
(length-``n`` scatter rows per level), preserved verbatim below so the
comparison keeps measuring the representation change itself rather than a
strawman.  Both builders are verified bit-identical before timing.
"""

from __future__ import annotations

import json
import math
import pathlib
import time
from typing import Dict, List, Sequence

import numpy as np
import pytest

from repro.core.crashsim_t import crashsim_t
from repro.core.params import CrashSimParams
from repro.core.queries import ThresholdQuery
from repro.core.revreach import ReverseReachableTree, revreach_levels
from repro.graph.digraph import DiGraph
from repro.graph.generators import preferential_attachment
from repro.graph.temporal import TemporalGraphBuilder

BENCH_NODES = 50_000
BENCH_M = 3
BENCH_SEED = 0
BENCH_L_MAX = 10
BENCH_C = 0.6
NUM_SOURCES = 64
SOURCE_SEED = 1

TEMPORAL_NODES = 1_000
TEMPORAL_SNAPSHOTS = 16
TEMPORAL_SOURCE = 0
TEMPORAL_CANDIDATES = 40
TEMPORAL_N_R = 1_024
TEMPORAL_THETA = 0.3

OUTPUT = pathlib.Path(__file__).with_name("BENCH_tree.json")


def make_bench_graph(
    num_nodes: int = BENCH_NODES, edges_per_node: int = BENCH_M
) -> DiGraph:
    return preferential_attachment(
        num_nodes, edges_per_node, directed=True, seed=BENCH_SEED
    )


def bench_sources(graph: DiGraph, count: int = NUM_SOURCES) -> List[int]:
    """A fixed uniform sample of query sources — the single-source workload
    the paper's experiments draw (power-law graphs are dominated by late,
    low in-degree nodes, so most reverse balls are small)."""
    rng = np.random.default_rng(SOURCE_SEED)
    return [int(s) for s in rng.integers(0, graph.num_nodes, size=count)]


def dense_revreach_levels(
    graph: DiGraph, source: int, l_max: int, c: float
) -> ReverseReachableTree:
    """The seed's dense builder, kept as the benchmark baseline.

    Each level is a length-``n`` scatter (``bincount(..., minlength=n)``)
    plus an ``np.nonzero`` frontier re-scan — O(l_max · n) regardless of
    the tree's support.  This is exactly what ``revreach_levels`` did
    before the sparse representation landed.
    """
    n = graph.num_nodes
    sqrt_c = math.sqrt(c)
    matrix = np.zeros((l_max + 1, n), dtype=np.float64)
    matrix[0, source] = 1.0
    indptr = graph.in_indptr
    indices = graph.in_indices
    frontier_nodes = np.array([source], dtype=np.int64)
    frontier_probs = np.array([1.0], dtype=np.float64)
    for step in range(l_max):
        if frontier_nodes.size == 0:
            break
        counts = (
            indptr[frontier_nodes + 1] - indptr[frontier_nodes]
        ).astype(np.int64)
        keep = counts > 0
        nodes = frontier_nodes[keep]
        probs = frontier_probs[keep]
        counts = counts[keep]
        if nodes.size == 0:
            break
        total = int(counts.sum())
        starts = indptr[nodes]
        cum = np.zeros(nodes.size, dtype=np.int64)
        np.cumsum(counts[:-1], out=cum[1:])
        flat = np.repeat(starts - cum, counts) + np.arange(total, dtype=np.int64)
        children = indices[flat].astype(np.int64)
        weights = np.repeat(sqrt_c * probs / counts, counts)
        level = np.bincount(children, weights=weights, minlength=n)
        matrix[step + 1] = level
        frontier_nodes = np.nonzero(level)[0]
        frontier_probs = level[frontier_nodes]
    matrix.setflags(write=False)
    return ReverseReachableTree(
        source=int(source),
        c=float(c),
        l_max=int(l_max),
        variant="corrected",
        matrix=matrix,
    )


def bench_build_and_compare(
    graph: DiGraph, sources: Sequence[int]
) -> Dict[str, object]:
    """Time tree construction and ``same_as`` per representation.

    ``same_as`` is timed both cold (fingerprints computed on first use)
    and warm (cached — the steady state inside the difference-pruning
    loop, where each tree is compared once per transition).  Every
    quantity is best-of-``repeats`` so a single scheduler hiccup on a
    shared runner cannot fake a regression; cold ``same_as`` rebuilds its
    comparison trees each round so fingerprints are genuinely uncached.
    """
    repeats = 3
    dense_build = sparse_build = math.inf
    dense_same_as = sparse_same_as_cold = sparse_same_as_warm = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        dense = [
            dense_revreach_levels(graph, s, BENCH_L_MAX, BENCH_C) for s in sources
        ]
        dense_build = min(dense_build, time.perf_counter() - started)

        started = time.perf_counter()
        sparse = [revreach_levels(graph, s, BENCH_L_MAX, BENCH_C) for s in sources]
        sparse_build = min(sparse_build, time.perf_counter() - started)

        for d, s in zip(dense, sparse):
            assert np.array_equal(d.matrix, s.matrix), "representations diverged"

        dense_other = [
            dense_revreach_levels(graph, s, BENCH_L_MAX, BENCH_C) for s in sources
        ]
        sparse_other = [
            revreach_levels(graph, s, BENCH_L_MAX, BENCH_C) for s in sources
        ]

        started = time.perf_counter()
        for a, b in zip(dense, dense_other):
            assert a.same_as(b)
        dense_same_as = min(dense_same_as, time.perf_counter() - started)

        started = time.perf_counter()
        for a, b in zip(sparse, sparse_other):
            assert a.same_as(b)
        sparse_same_as_cold = min(
            sparse_same_as_cold, time.perf_counter() - started
        )

        started = time.perf_counter()
        for a, b in zip(sparse, sparse_other):
            assert a.same_as(b)
        sparse_same_as_warm = min(
            sparse_same_as_warm, time.perf_counter() - started
        )

    dense_total = dense_build + dense_same_as
    sparse_total = sparse_build + sparse_same_as_cold
    return {
        "num_sources": len(sources),
        "l_max": BENCH_L_MAX,
        "total_nnz": int(sum(t.nnz for t in sparse)),
        "dense_cells": int(len(sources) * (BENCH_L_MAX + 1) * graph.num_nodes),
        "dense_build_seconds": round(dense_build, 4),
        "sparse_build_seconds": round(sparse_build, 4),
        "build_speedup": round(dense_build / sparse_build, 2),
        "dense_same_as_seconds": round(dense_same_as, 4),
        "sparse_same_as_cold_seconds": round(sparse_same_as_cold, 4),
        "sparse_same_as_warm_seconds": round(sparse_same_as_warm, 4),
        "same_as_speedup": round(dense_same_as / sparse_same_as_cold, 2),
        "combined_speedup": round(dense_total / sparse_total, 2),
    }


def make_temporal_graph():
    """A stable query community over a churning background.

    Difference pruning targets Algorithm 3's trigger regime: Ω small
    relative to the walk budget (``edge_count(Ω) < n_r``), with most
    candidates' neighbourhoods untouched per transition.  Here a hub
    (the last node) points at the source and ``TEMPORAL_CANDIDATES``
    community members, so every member holds ``sim = c`` with the source
    and Ω stays put across snapshots; the background nodes carry churn
    that never enters a community reverse ball.  Without pruning, every
    transition re-estimates all of Ω at ``n_r`` walks per candidate; with
    it, the cached-tree comparisons carry the lot.
    """
    hub = TEMPORAL_NODES - 1
    community = [
        (hub, node) for node in range(TEMPORAL_SOURCE, TEMPORAL_CANDIDATES + 1)
    ]
    rng = np.random.default_rng(2)
    background = set()
    while len(background) < 3 * TEMPORAL_NODES:
        s, t = rng.integers(TEMPORAL_CANDIDATES + 1, hub, size=2)
        if s != t:
            background.add((int(s), int(t)))
    builder = TemporalGraphBuilder(TEMPORAL_NODES, directed=True)
    edges = set(community) | background
    builder.push_snapshot(sorted(edges))
    for index in range(1, TEMPORAL_SNAPSHOTS):
        if index % 3 != 0:  # quiet transition
            builder.push_snapshot(sorted(edges))
            continue
        toggles = set()
        while len(toggles) < 8:
            s, t = rng.integers(TEMPORAL_CANDIDATES + 1, hub, size=2)
            if s != t:
                toggles.add((int(s), int(t)))
        edges ^= toggles
        builder.push_snapshot(sorted(edges))
    return builder.build()


def bench_difference_pruning(temporal) -> Dict[str, object]:
    """CrashSim-T sweep with difference pruning on vs off.

    Delta pruning is disabled in both runs so the comparison isolates the
    mechanism under test: tree comparison + candidate-tree cache versus
    unconditional re-estimation.  Each configuration is run once untimed
    (allocator/caches warm-up dominates cold first runs) and then timed
    best-of-2.
    """
    params = CrashSimParams(n_r_override=TEMPORAL_N_R)
    rows: Dict[str, object] = {}
    survivor_sets: Dict[str, set] = {}
    for label, use_difference in (("with_difference", True), ("without", False)):
        run = lambda: crashsim_t(
            temporal,
            TEMPORAL_SOURCE,
            ThresholdQuery(theta=TEMPORAL_THETA),
            params=params,
            seed=5,
            use_delta_pruning=False,
            use_difference_pruning=use_difference,
        )
        run()  # warm-up, untimed
        seconds = math.inf
        for _ in range(2):
            started = time.perf_counter()
            result = run()
            seconds = min(seconds, time.perf_counter() - started)
        stats = result.stats
        survivor_sets[label] = set(result.survivors)
        rows[label] = {
            "seconds": round(seconds, 4),
            "survivors": len(result.survivors),
            "candidates_carried": stats.candidates_carried,
            "candidates_recomputed": stats.candidates_recomputed,
            "candidate_trees_built": stats.candidate_trees_built,
            "candidate_trees_cached": stats.candidate_trees_cached,
            "candidate_trees_advanced": stats.candidate_trees_advanced,
        }
    with_s = rows["with_difference"]["seconds"]
    without_s = rows["without"]["seconds"]
    rows["speedup"] = round(without_s / with_s, 3)
    # Carried estimates are exact reuses, but the two runs re-draw walks
    # for different residual sets, so Monte-Carlo wobble near the threshold
    # keeps survivor sets from matching exactly; report the overlap.
    union = survivor_sets["with_difference"] | survivor_sets["without"]
    both = survivor_sets["with_difference"] & survivor_sets["without"]
    rows["survivor_jaccard"] = round(len(both) / len(union), 3) if union else 1.0
    return rows


def run_all(
    *,
    num_nodes: int = BENCH_NODES,
    num_sources: int = NUM_SOURCES,
) -> Dict[str, object]:
    graph = make_bench_graph(num_nodes)
    payload: Dict[str, object] = {
        "graph": {
            "generator": "preferential_attachment",
            "num_nodes": graph.num_nodes,
            "num_edges": int(graph.in_indices.size),
            "edges_per_node": BENCH_M,
            "seed": BENCH_SEED,
        },
        "tree": bench_build_and_compare(graph, bench_sources(graph, num_sources)),
        "difference_pruning": bench_difference_pruning(make_temporal_graph()),
    }
    return payload


# ----------------------------------------------------------------------
# pytest-benchmark harness
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def tree_graph():
    return make_bench_graph()


def test_bench_sparse_build(benchmark, tree_graph):
    sources = bench_sources(tree_graph)
    benchmark.pedantic(
        lambda: [
            revreach_levels(tree_graph, s, BENCH_L_MAX, BENCH_C) for s in sources
        ],
        iterations=1,
        rounds=3,
    )


def test_bench_dense_build(benchmark, tree_graph):
    sources = bench_sources(tree_graph)
    benchmark.pedantic(
        lambda: [
            dense_revreach_levels(tree_graph, s, BENCH_L_MAX, BENCH_C)
            for s in sources
        ],
        iterations=1,
        rounds=3,
    )


def test_bench_difference_pruning_sweep(benchmark):
    temporal = make_temporal_graph()
    rows = benchmark.pedantic(
        lambda: bench_difference_pruning(temporal), iterations=1, rounds=1
    )
    assert rows["with_difference"]["candidate_trees_cached"] > 0


def main() -> int:
    print(
        f"graph: preferential_attachment(n={BENCH_NODES}, m={BENCH_M}, "
        f"seed={BENCH_SEED}); l_max={BENCH_L_MAX}, {NUM_SOURCES} sources"
    )
    payload = run_all()
    tree = payload["tree"]
    print(
        f"build:   dense {tree['dense_build_seconds']}s  "
        f"sparse {tree['sparse_build_seconds']}s  "
        f"({tree['build_speedup']}x)"
    )
    print(
        f"same_as: dense {tree['dense_same_as_seconds']}s  "
        f"sparse {tree['sparse_same_as_cold_seconds']}s cold / "
        f"{tree['sparse_same_as_warm_seconds']}s warm  "
        f"({tree['same_as_speedup']}x)"
    )
    print(f"combined build+same_as speedup: {tree['combined_speedup']}x")
    pruning = payload["difference_pruning"]
    print(
        f"crashsim_t sweep: with difference pruning "
        f"{pruning['with_difference']['seconds']}s, without "
        f"{pruning['without']['seconds']}s ({pruning['speedup']}x); "
        f"carried {pruning['with_difference']['candidates_carried']}, "
        f"cached trees {pruning['with_difference']['candidate_trees_cached']}"
    )
    OUTPUT.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote {OUTPUT}")

    failures = []
    if tree["combined_speedup"] < 5.0:
        failures.append(
            f"combined sparse speedup {tree['combined_speedup']}x < 5x target"
        )
    if pruning["speedup"] < 0.95:  # "no slower", with timer jitter headroom
        failures.append(
            f"difference pruning slowed the sweep ({pruning['speedup']}x)"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
