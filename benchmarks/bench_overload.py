"""Overload bench: goodput and tail latency at 2x capacity, shed vs unbounded.

Three phases:

1. **capacity** — a closed loop of ``N_CLIENTS`` threads measures the
   engine's at-capacity goodput (queries/second with clients waiting for
   each answer — the sustainable service rate).
2. **shed** — an *open* loop offers requests at twice that rate against a
   bounded queue (``max_queue_depth``, ``shed_policy="reject"``).  The
   engine sheds what it cannot serve: rejected submissions cost the
   client a cheap :class:`~repro.errors.EngineOverloadedError` instead of
   an unbounded wait, and the accepted ones keep a bounded p99.
3. **unbounded** — the same offered load with the legacy unbounded queue:
   everything is accepted, the queue grows to ~capacity x duration, and
   the p99 inflates toward the full backlog drain time.

The headline gate is machine-independent: shed-mode goodput must stay
within ``MIN_GOODPUT_FRACTION`` of the measured at-capacity goodput —
shedding protects latency, it must not collapse throughput — and the
observed queue depth must respect the configured bound.

Entry points: ``python benchmarks/bench_overload.py`` (full size, writes
``BENCH_overload.json``, non-zero exit on gate failure) and ``run_all()``
(smoke size, consumed by ``perf_smoke.py``'s ``gate_overload``).
"""

from __future__ import annotations

import json
import pathlib
import threading
import time
from typing import Dict, List, Tuple

try:
    from bench_kernel import make_bench_graph
except ImportError:  # collected by pytest as benchmarks.bench_overload
    from benchmarks.bench_kernel import make_bench_graph
from repro.errors import EngineOverloadedError
from repro.metrics.timing import TimingStats
from repro.serve import Engine, EngineConfig, QueryRequest

BENCH_NODES = 20_000
N_CLIENTS = 8
CAPACITY_QUERIES_PER_CLIENT = 6
N_R = 48
CATALOG_SIZE = 2_000
OVERLOAD_FACTOR = 2.0
OPEN_LOOP_DURATION = 6.0
MAX_QUEUE_DEPTH = 2 * N_CLIENTS
MIN_GOODPUT_FRACTION = 0.8

OUTPUT = pathlib.Path(__file__).with_name("BENCH_overload.json")


def _source_for(num_nodes: int, k: int) -> int:
    """Deterministic query sources from the upper (non-catalogue) half."""
    base = num_nodes // 2
    return base + (k * 131 + 17) % (num_nodes - base)


def _engine_config(n_r: int, max_queue_depth) -> EngineConfig:
    return EngineConfig(
        n_r=n_r,
        batch_window=0.005,
        max_batch=64,
        seed=0,
        max_queue_depth=max_queue_depth,
        shed_policy="reject",
    )


def measure_capacity(
    graph, catalog, *, n_r: int, clients: int, per_client: int
) -> Dict[str, float]:
    """Closed-loop goodput: every client waits for its answer."""
    errors: List[BaseException] = []
    barrier = threading.Barrier(clients + 1)
    with Engine(graph, _engine_config(n_r, None)) as engine:

        def client(slot: int):
            try:
                barrier.wait()
                for i in range(per_client):
                    k = slot * per_client + i
                    engine.query(
                        _source_for(graph.num_nodes, k),
                        candidates=catalog,
                        seed=k + 1,
                        timeout=600,
                    )
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(slot,), daemon=True)
            for slot in range(clients)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started
    if errors:
        raise errors[0]
    total = clients * per_client
    return {
        "queries": total,
        "total_seconds": round(wall, 4),
        "goodput_qps": round(total / wall, 2),
    }


def run_open_loop(
    graph,
    catalog,
    *,
    n_r: int,
    rate: float,
    duration: float,
    max_queue_depth,
) -> Dict[str, object]:
    """Offer ``rate`` requests/second for ``duration`` seconds, no waiting.

    One pacing thread submits on schedule (futures are collected, never
    awaited in-loop, so submission pressure is independent of service
    speed); afterwards every accepted future is drained and measured via
    the engine's own submission-to-answer ``elapsed``.
    """
    total = max(1, int(rate * duration))
    accepted: List[Tuple[int, object]] = []
    rejected = 0
    max_depth_seen = 0
    with Engine(graph, _engine_config(n_r, max_queue_depth)) as engine:
        started = time.perf_counter()
        for k in range(total):
            target = started + k / rate
            delay = target - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            request = QueryRequest.make(
                _source_for(graph.num_nodes, k),
                candidates=catalog,
                seed=k + 1,
            )
            try:
                accepted.append((k, engine.submit(request)))
            except EngineOverloadedError:
                rejected += 1
            depth = engine.stats()["queue_depth"]
            if depth > max_depth_seen:
                max_depth_seen = depth
        offered_wall = time.perf_counter() - started
        latencies = [
            future.result(timeout=600).elapsed for _, future in accepted
        ]
        drain_wall = time.perf_counter() - started
    stats = TimingStats(samples=latencies)
    return {
        "offered": total,
        "offered_qps": round(total / offered_wall, 2),
        "accepted": len(accepted),
        "rejected": rejected,
        "goodput_qps": round(len(accepted) / drain_wall, 2),
        "p50_ms": round(stats.p50 * 1000, 2),
        "p99_ms": round(stats.p99 * 1000, 2),
        "max_queue_depth_seen": max_depth_seen,
        "max_queue_depth": max_queue_depth,
        "total_seconds": round(drain_wall, 4),
    }


def run_all(
    *,
    num_nodes: int = BENCH_NODES,
    n_clients: int = N_CLIENTS,
    capacity_queries_per_client: int = CAPACITY_QUERIES_PER_CLIENT,
    catalog_size: int = CATALOG_SIZE,
    n_r: int = N_R,
    duration: float = OPEN_LOOP_DURATION,
    max_queue_depth: int = MAX_QUEUE_DEPTH,
) -> Dict[str, object]:
    graph = make_bench_graph(num_nodes)
    catalog = tuple(range(catalog_size))
    capacity = measure_capacity(
        graph,
        catalog,
        n_r=n_r,
        clients=n_clients,
        per_client=capacity_queries_per_client,
    )
    rate = OVERLOAD_FACTOR * capacity["goodput_qps"]
    shed = run_open_loop(
        graph,
        catalog,
        n_r=n_r,
        rate=rate,
        duration=duration,
        max_queue_depth=max_queue_depth,
    )
    unbounded = run_open_loop(
        graph,
        catalog,
        n_r=n_r,
        rate=rate,
        duration=duration,
        max_queue_depth=None,
    )
    return {
        "graph": {
            "generator": "preferential_attachment",
            "num_nodes": graph.num_nodes,
            "num_edges": int(graph.in_indices.size),
        },
        "workload": {
            "n_clients": n_clients,
            "catalog_size": catalog_size,
            "n_r": n_r,
            "overload_factor": OVERLOAD_FACTOR,
            "open_loop_duration": duration,
            "max_queue_depth": max_queue_depth,
        },
        "capacity": capacity,
        "shed": shed,
        "unbounded": unbounded,
        "shed_goodput_ratio": round(
            shed["goodput_qps"] / capacity["goodput_qps"], 3
        ),
    }


def check(payload: Dict[str, object]) -> List[str]:
    """Machine-independent overload invariants; empty list means pass."""
    failures = []
    ratio = payload["shed_goodput_ratio"]
    if ratio < MIN_GOODPUT_FRACTION:
        failures.append(
            f"shed goodput {payload['shed']['goodput_qps']} q/s is "
            f"{ratio}x of capacity "
            f"{payload['capacity']['goodput_qps']} q/s "
            f"(floor {MIN_GOODPUT_FRACTION}x)"
        )
    shed = payload["shed"]
    if shed["max_queue_depth_seen"] > shed["max_queue_depth"]:
        failures.append(
            f"bounded queue reached depth {shed['max_queue_depth_seen']} "
            f"> configured {shed['max_queue_depth']}"
        )
    if shed["rejected"] == 0:
        failures.append(
            "2x-capacity offered load never tripped admission control"
        )
    return failures


def main() -> int:
    print(
        f"overload bench: n={BENCH_NODES}, n_r={N_R}, "
        f"catalog={CATALOG_SIZE}, {OVERLOAD_FACTOR}x offered load for "
        f"{OPEN_LOOP_DURATION}s, max_queue_depth={MAX_QUEUE_DEPTH}"
    )
    payload = run_all()
    capacity = payload["capacity"]
    print(
        f"capacity (closed loop): {capacity['goodput_qps']} q/s over "
        f"{capacity['queries']} queries"
    )
    for leg in ("shed", "unbounded"):
        row = payload[leg]
        print(
            f"{leg}: offered {row['offered_qps']} q/s, accepted "
            f"{row['accepted']}, rejected {row['rejected']}, goodput "
            f"{row['goodput_qps']} q/s, p99 {row['p99_ms']}ms, "
            f"max queue depth {row['max_queue_depth_seen']}"
        )
    print(
        f"shed goodput ratio: {payload['shed_goodput_ratio']}x of capacity "
        f"(floor {MIN_GOODPUT_FRACTION}x)"
    )
    OUTPUT.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote {OUTPUT}")
    failures = check(payload)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
