"""Pruning-rule ablation benches (DESIGN.md §5).

One benchmark per pruning configuration on the low-churn workload where
Properties 1-2 are designed to fire; pytest-benchmark's comparison table
shows how much each rule saves.
"""

import pytest

from repro.core.crashsim_t import crashsim_t
from repro.core.params import CrashSimParams
from repro.core.queries import ThresholdQuery
from repro.datasets.registry import load_static_dataset
from repro.graph.generators import evolve_snapshots

CONFIGS = {
    "none": (False, False),
    "delta_only": (True, False),
    "difference_only": (False, True),
    "both": (True, True),
}


@pytest.fixture(scope="module")
def workload(profile):
    base = load_static_dataset("as_caida", scale=profile.scale, seed=profile.seed)
    temporal = evolve_snapshots(
        base,
        max(profile.fig6_snapshots, 8),
        churn_rate=1 / max(base.num_edges, 1),
        seed=profile.seed,
        name="as_caida-lowchurn",
    )
    return temporal


@pytest.mark.parametrize("config", list(CONFIGS))
def test_pruning_configuration(benchmark, workload, profile, config):
    use_delta, use_difference = CONFIGS[config]
    params = CrashSimParams(
        c=profile.c, epsilon=0.025, delta=profile.delta, n_r_cap=profile.n_r_cap
    )
    result = benchmark.pedantic(
        lambda: crashsim_t(
            workload,
            workload.num_nodes // 2,
            ThresholdQuery(theta=profile.threshold_theta),
            params=params,
            use_delta_pruning=use_delta,
            use_difference_pruning=use_difference,
            seed=profile.seed,
        ),
        rounds=1,
        iterations=1,
    )
    if config == "none":
        assert result.stats.candidates_carried == 0
