"""Serving-engine load bench: batched dispatch vs sequential queries.

Simulates the workload the engine exists for — ``N_CLIENTS`` concurrent
clients firing single-source similarity queries against one fixed
candidate catalogue (an item corpus the query sources are not members of)
— and compares:

* **sequential** — each request served by a direct
  :func:`repro.api.single_source` call, one at a time: the cost an
  application pays without a resident engine (fresh tree, cold buffers,
  no walk sharing per query);
* **batched** — the same requests pushed through one
  :class:`repro.serve.Engine` from ``N_CLIENTS`` real threads: the
  batching window groups what arrives together, seedless requests over
  the shared catalogue coalesce into single ``accumulate_multi`` passes,
  and trees/kernels stay warm.

Entry points:

* ``python benchmarks/bench_serve.py`` — full-size run (50k-node PA
  graph, 8 clients), prints the table, writes ``BENCH_serve.json``, exits
  non-zero unless batched throughput ≥ 1.5× sequential;
* ``run_all()`` — the JSON payload, consumed by the CI perf-smoke gate
  at reduced size.

Latency is measured client-side (submit → result), so the batched p50/p99
include time spent waiting for the window and for batch-mates — the
honest serving latency, not just kernel time.
"""

from __future__ import annotations

import json
import pathlib
import sys
import threading
import time
from typing import Dict, List, Sequence, Tuple

import numpy as np
import pytest

try:
    from bench_kernel import make_bench_graph
except ImportError:  # collected by pytest as benchmarks.bench_serve
    from benchmarks.bench_kernel import make_bench_graph
from repro.api import single_source
from repro.metrics.timing import TimingStats
from repro.serve import Engine, EngineConfig

BENCH_NODES = 50_000
N_CLIENTS = 8
QUERIES_PER_CLIENT = 8
N_R = 64
CATALOG_SIZE = 4_000
BATCH_WINDOW = 0.01
MIN_SPEEDUP = 1.5

OUTPUT = pathlib.Path(__file__).with_name("BENCH_serve.json")


def make_catalog(num_nodes: int, size: int) -> Tuple[int, ...]:
    """A fixed candidate catalogue: the well-connected low-id core.

    In a preferential-attachment graph the early nodes hold the in-degree
    mass, so catalogue walks actually run (high-id nodes have almost no
    in-edges and their walks die immediately).  Query sources come from
    the upper half of the id space, outside the catalogue, so every
    request shares one walk-target array — the shape that lets the engine
    coalesce.
    """
    return tuple(range(size))


def make_specs(
    num_nodes: int, n_clients: int, per_client: int
) -> List[List[int]]:
    """Deterministic per-client source lists, all above the catalogue."""
    base = num_nodes // 2
    span = num_nodes - base
    return [
        [base + (client * 131 + i * 17) % span for i in range(per_client)]
        for client in range(n_clients)
    ]


def _latency_stats(latencies: Sequence[float], wall: float) -> Dict[str, float]:
    stats = TimingStats(samples=list(latencies))
    return {
        "queries": stats.count,
        "total_seconds": round(wall, 4),
        "qps": round(stats.count / wall, 2),
        "p50_ms": round(stats.p50 * 1000, 2),
        "p99_ms": round(stats.p99 * 1000, 2),
        "max_ms": round(stats.maximum * 1000, 2),
    }


def run_sequential(
    graph, specs: List[List[int]], catalog, *, n_r: int
) -> Dict[str, float]:
    """All requests served one at a time by direct api calls."""
    latencies = []
    started = time.perf_counter()
    seed = 0
    for client_sources in specs:
        for source in client_sources:
            seed += 1
            t0 = time.perf_counter()
            single_source(graph, source, n_r=n_r, seed=seed, candidates=catalog)
            latencies.append(time.perf_counter() - t0)
    return _latency_stats(latencies, time.perf_counter() - started)


def run_batched(
    graph,
    specs: List[List[int]],
    catalog,
    *,
    n_r: int,
    batch_window: float = BATCH_WINDOW,
) -> Dict[str, object]:
    """The same requests from real concurrent client threads, one engine."""
    config = EngineConfig(
        n_r=n_r,
        batch_window=batch_window,
        # Closed-loop clients: a batch is full once every client's current
        # request is in, so the window rarely runs to its timeout.
        max_batch=len(specs),
        seed=0,
    )
    latencies_per_client: List[List[float]] = [[] for _ in specs]
    errors: List[BaseException] = []
    barrier = threading.Barrier(len(specs) + 1)

    with Engine(graph, config) as engine:

        def client(slot: int, sources: List[int]):
            try:
                barrier.wait()
                for source in sources:
                    t0 = time.perf_counter()
                    engine.query(source, candidates=catalog, timeout=600)
                    latencies_per_client[slot].append(
                        time.perf_counter() - t0
                    )
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(slot, sources), daemon=True)
            for slot, sources in enumerate(specs)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started
        stats = engine.stats()
    if errors:
        raise errors[0]
    latencies = [lat for client in latencies_per_client for lat in client]
    payload = _latency_stats(latencies, wall)
    payload["engine"] = {
        "batches": stats["batches"],
        "coalesced_queries": stats["coalesced_queries"],
        "shared_walk_groups": stats["shared_walk_groups"],
        "solo_queries": stats["solo_queries"],
        "tree_cache_hits": stats["tree_cache_hits"],
    }
    return payload


def run_all(
    *,
    num_nodes: int = BENCH_NODES,
    n_clients: int = N_CLIENTS,
    queries_per_client: int = QUERIES_PER_CLIENT,
    catalog_size: int = CATALOG_SIZE,
    n_r: int = N_R,
) -> Dict[str, object]:
    graph = make_bench_graph(num_nodes)
    catalog = make_catalog(graph.num_nodes, catalog_size)
    specs = make_specs(graph.num_nodes, n_clients, queries_per_client)
    sequential = run_sequential(graph, specs, catalog, n_r=n_r)
    batched = run_batched(graph, specs, catalog, n_r=n_r)
    return {
        "graph": {
            "generator": "preferential_attachment",
            "num_nodes": graph.num_nodes,
            "num_edges": int(graph.in_indices.size),
        },
        "workload": {
            "n_clients": n_clients,
            "queries_per_client": queries_per_client,
            "catalog_size": catalog_size,
            "n_r": n_r,
            "batch_window": BATCH_WINDOW,
        },
        "sequential": sequential,
        "batched": batched,
        "speedup": round(batched["qps"] / sequential["qps"], 2),
    }


# ----------------------------------------------------------------------
# pytest-benchmark harness (smoke-sized; `make bench`)
# ----------------------------------------------------------------------

SMOKE_NODES = 15_000
SMOKE_CATALOG = 2_000
SMOKE_N_R = 48
SMOKE_QUERIES = 4


@pytest.fixture(scope="module")
def serve_bench_graph():
    return make_bench_graph(SMOKE_NODES)


def test_bench_sequential_dispatch(benchmark, serve_bench_graph):
    catalog = make_catalog(SMOKE_NODES, SMOKE_CATALOG)
    specs = make_specs(SMOKE_NODES, N_CLIENTS, SMOKE_QUERIES)
    benchmark.pedantic(
        lambda: run_sequential(
            serve_bench_graph, specs, catalog, n_r=SMOKE_N_R
        ),
        iterations=1,
        rounds=3,
    )


def test_bench_batched_dispatch(benchmark, serve_bench_graph):
    catalog = make_catalog(SMOKE_NODES, SMOKE_CATALOG)
    specs = make_specs(SMOKE_NODES, N_CLIENTS, SMOKE_QUERIES)
    benchmark.pedantic(
        lambda: run_batched(serve_bench_graph, specs, catalog, n_r=SMOKE_N_R),
        iterations=1,
        rounds=3,
    )


def main() -> int:
    print(
        f"serve bench: {N_CLIENTS} clients x {QUERIES_PER_CLIENT} queries, "
        f"n={BENCH_NODES}, catalog={CATALOG_SIZE}, n_r={N_R}"
    )
    payload = run_all()
    for leg in ("sequential", "batched"):
        row = payload[leg]
        print(
            f"{leg}: {row['qps']} q/s  p50 {row['p50_ms']}ms  "
            f"p99 {row['p99_ms']}ms  ({row['total_seconds']}s total)"
        )
    engine = payload["batched"]["engine"]
    print(
        f"engine: {engine['batches']} batches, "
        f"{engine['coalesced_queries']} coalesced / "
        f"{engine['solo_queries']} solo, "
        f"{engine['tree_cache_hits']} tree-cache hits"
    )
    print(f"speedup: {payload['speedup']}x (target >= {MIN_SPEEDUP}x)")
    OUTPUT.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote {OUTPUT}")
    if payload["speedup"] < MIN_SPEEDUP:
        print(
            f"FAIL: batched dispatch {payload['speedup']}x < "
            f"{MIN_SPEEDUP}x sequential"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
