"""Fused walk–crash kernel benches: fused kernel vs generator accumulation.

Three entry points:

* ``pytest benchmarks/bench_kernel.py --benchmark-only`` — records the
  fused and generator accumulators on the 50k-node power-law graph;
* ``python benchmarks/bench_kernel.py`` — runs the full sweep once, prints
  tables, writes machine-readable ``BENCH_kernel.json`` next to this file,
  and exits non-zero if the acceptance targets are missed (fused ≥ 2×
  the generator path unweighted, alias sampling ≥ 1.5× on the weighted
  graph);
* ``run_all()`` — the JSON payload, for the CI perf-smoke harness.

The baseline is :func:`accumulate_crash_totals_reference` — the seed's
generator-driven accumulation preserved verbatim in ``core/crashsim.py``
— so the comparison measures the kernel change itself.  The default-CDF
legs are verified **bit-identical** before timing; the alias leg draws a
different (exactly distributed) stream and is verified statistically.
"""

from __future__ import annotations

import json
import math
import pathlib
import time
from typing import Dict

import numpy as np
import pytest

from repro.core.crashsim import accumulate_crash_totals_reference
from repro.core.revreach import revreach_levels
from repro.graph.digraph import DiGraph
from repro.graph.generators import preferential_attachment
from repro.rng import ensure_rng
from repro.walks.engine import BatchWalkStepper
from repro.walks.kernel import WalkCrashKernel

BENCH_NODES = 50_000
BENCH_M = 3
BENCH_SEED = 0
BENCH_L_MAX = 11
BENCH_C = 0.6
N_TRIALS = 96
SOURCE = 0
MULTI_SOURCES = (0, 3, 11, 42)
REPEATS = 3

OUTPUT = pathlib.Path(__file__).with_name("BENCH_kernel.json")


def make_bench_graph(num_nodes: int = BENCH_NODES, *, weighted: bool = False):
    graph = preferential_attachment(
        num_nodes, BENCH_M, directed=True, seed=BENCH_SEED
    )
    if not weighted:
        return graph
    arcs = list(graph.edges())
    weights = ensure_rng(BENCH_SEED + 1).uniform(0.5, 4.0, size=len(arcs))
    return DiGraph.from_edges(num_nodes, arcs, weights=weights)


def walkable_targets(graph) -> np.ndarray:
    nodes = np.arange(graph.num_nodes, dtype=np.int64)
    return nodes[graph.in_degrees()[nodes] > 0]


def bench_accumulate(
    graph, *, sampler: str, n_trials: int = N_TRIALS, repeats: int = REPEATS
) -> Dict[str, object]:
    """Best-of-``repeats`` timing of reference vs fused accumulation.

    The kernel instance is shared across repeats — the steady state of
    CrashSim-T loops, where buffers stay warm — while every run replays
    the same seed so the comparison is draw-for-draw fair.
    """
    tree = revreach_levels(graph, SOURCE, BENCH_L_MAX, BENCH_C)
    targets = walkable_targets(graph)

    reference_seconds = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        reference = accumulate_crash_totals_reference(
            graph,
            tree,
            targets,
            n_trials,
            c=BENCH_C,
            l_max=BENCH_L_MAX,
            rng=ensure_rng(42),
        )
        reference_seconds = min(reference_seconds, time.perf_counter() - started)

    kernel = WalkCrashKernel(graph, BENCH_C, sampler=sampler)
    fused_seconds = math.inf
    steps = 0
    for _ in range(repeats):
        kernel.steps_processed = 0
        started = time.perf_counter()
        fused = kernel.accumulate(
            tree, targets, n_trials, l_max=BENCH_L_MAX, rng=ensure_rng(42)
        )
        fused_seconds = min(fused_seconds, time.perf_counter() - started)
        steps = kernel.steps_processed

    if sampler == "cdf":
        assert np.array_equal(reference, fused), "fused kernel diverged"
    else:
        # Different (exactly distributed) stream: the per-candidate score
        # estimates must agree within Monte-Carlo noise.
        drift = np.abs(reference - fused).max() / n_trials
        assert drift < 0.05, f"alias estimates drifted by {drift}"

    return {
        "num_targets": int(targets.size),
        "n_trials": int(n_trials),
        "l_max": BENCH_L_MAX,
        "sampler": sampler,
        "weighted": bool(graph.is_weighted),
        "reference_seconds": round(reference_seconds, 4),
        "fused_seconds": round(fused_seconds, 4),
        "speedup": round(reference_seconds / fused_seconds, 2),
        "steps_processed": int(steps),
        "steps_per_second": int(steps / fused_seconds),
    }


def bench_multi_source(
    graph, *, n_trials: int = N_TRIALS // 2, repeats: int = REPEATS
) -> Dict[str, object]:
    """Shared-walk multi-source: combined-key fold vs per-tree bincounts.

    The reference walks once through the generator path and folds each
    tree with its own ``np.bincount`` — ``q`` scatters per step.  The
    fused kernel does the same walk with one segmented bincount over
    combined ``(source, candidate)`` keys; both sides are bit-compared.
    """
    sources = [s for s in MULTI_SOURCES if s < graph.num_nodes]
    trees = [revreach_levels(graph, s, BENCH_L_MAX, BENCH_C) for s in sources]
    targets = walkable_targets(graph)
    owner = np.tile(np.arange(targets.size, dtype=np.int64), n_trials)
    starts = np.tile(targets, n_trials)

    reference_seconds = math.inf
    for _ in range(repeats):
        stepper = BatchWalkStepper(graph, BENCH_C)
        expected = np.zeros((len(trees), targets.size))
        started = time.perf_counter()
        for batch in stepper.walk(starts, BENCH_L_MAX, seed=ensure_rng(99)):
            for row, tree in enumerate(trees):
                expected[row] += np.bincount(
                    owner[batch.walk_ids],
                    weights=tree.gather(batch.step, batch.positions),
                    minlength=targets.size,
                )
        reference_seconds = min(reference_seconds, time.perf_counter() - started)

    kernel = WalkCrashKernel(graph, BENCH_C)
    fused_seconds = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        fused = kernel.accumulate_multi(
            trees, targets, n_trials, l_max=BENCH_L_MAX, rng=ensure_rng(99)
        )
        fused_seconds = min(fused_seconds, time.perf_counter() - started)

    assert np.array_equal(expected, fused), "multi-source fold diverged"
    return {
        "num_sources": len(sources),
        "num_targets": int(targets.size),
        "n_trials": int(n_trials),
        "reference_seconds": round(reference_seconds, 4),
        "fused_seconds": round(fused_seconds, 4),
        "speedup": round(reference_seconds / fused_seconds, 2),
    }


def run_all(
    *,
    num_nodes: int = BENCH_NODES,
    n_trials: int = N_TRIALS,
) -> Dict[str, object]:
    unweighted = make_bench_graph(num_nodes)
    weighted = make_bench_graph(num_nodes, weighted=True)
    return {
        "graph": {
            "generator": "preferential_attachment",
            "num_nodes": unweighted.num_nodes,
            "num_edges": int(unweighted.in_indices.size),
            "edges_per_node": BENCH_M,
            "seed": BENCH_SEED,
        },
        "unweighted": bench_accumulate(
            unweighted, sampler="cdf", n_trials=n_trials
        ),
        "weighted_cdf": bench_accumulate(
            weighted, sampler="cdf", n_trials=n_trials
        ),
        "weighted_alias": bench_accumulate(
            weighted, sampler="alias", n_trials=n_trials
        ),
        "multi_source": bench_multi_source(unweighted, n_trials=n_trials // 2),
    }


# ----------------------------------------------------------------------
# pytest-benchmark harness
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def kernel_graph():
    return make_bench_graph()


def test_bench_fused_accumulate(benchmark, kernel_graph):
    tree = revreach_levels(kernel_graph, SOURCE, BENCH_L_MAX, BENCH_C)
    targets = walkable_targets(kernel_graph)
    kernel = WalkCrashKernel(kernel_graph, BENCH_C)
    benchmark.pedantic(
        lambda: kernel.accumulate(
            tree, targets, N_TRIALS, l_max=BENCH_L_MAX, rng=ensure_rng(42)
        ),
        iterations=1,
        rounds=3,
    )


def test_bench_reference_accumulate(benchmark, kernel_graph):
    tree = revreach_levels(kernel_graph, SOURCE, BENCH_L_MAX, BENCH_C)
    targets = walkable_targets(kernel_graph)
    benchmark.pedantic(
        lambda: accumulate_crash_totals_reference(
            kernel_graph,
            tree,
            targets,
            N_TRIALS,
            c=BENCH_C,
            l_max=BENCH_L_MAX,
            rng=ensure_rng(42),
        ),
        iterations=1,
        rounds=3,
    )


def main() -> int:
    print(
        f"graph: preferential_attachment(n={BENCH_NODES}, m={BENCH_M}, "
        f"seed={BENCH_SEED}); l_max={BENCH_L_MAX}, {N_TRIALS} trials"
    )
    payload = run_all()
    for label in ("unweighted", "weighted_cdf", "weighted_alias"):
        row = payload[label]
        print(
            f"{label}: reference {row['reference_seconds']}s  "
            f"fused {row['fused_seconds']}s  ({row['speedup']}x, "
            f"{row['steps_per_second']:,} steps/s)"
        )
    multi = payload["multi_source"]
    print(
        f"multi_source ({multi['num_sources']} trees): "
        f"reference {multi['reference_seconds']}s  "
        f"fused {multi['fused_seconds']}s  ({multi['speedup']}x)"
    )
    OUTPUT.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote {OUTPUT}")

    failures = []
    if payload["unweighted"]["speedup"] < 2.0:
        failures.append(
            f"unweighted fused speedup {payload['unweighted']['speedup']}x "
            f"< 2x target"
        )
    if payload["weighted_alias"]["speedup"] < 1.5:
        failures.append(
            f"weighted alias speedup {payload['weighted_alias']['speedup']}x "
            f"< 1.5x target"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
