"""Parallel-executor benches: speedup and determinism vs. worker count.

Two entry points:

* ``pytest benchmarks/bench_parallel.py --benchmark-only`` — records one
  single-source parallel CrashSim query per worker count on a 50k-node
  generated graph (the quantity the speedup claim is about);
* ``python benchmarks/bench_parallel.py`` — runs the full sweep once,
  prints a speedup table, and verifies that every worker count produced
  byte-identical scores for the same master seed.

Speedup is bounded by physical cores: on a single-core container the
parallel rows only measure pool + shared-memory overhead, so the ≥ 2×
assertion is skipped below 4 CPUs.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Dict, List, Sequence

import numpy as np
import pytest

from repro.core.params import CrashSimParams
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi
from repro.parallel import parallel_crashsim

BENCH_NODES = 50_000
BENCH_EDGES = 150_000
BENCH_N_R = 512
BENCH_SEED = 0
WORKER_COUNTS = (1, 2, 4)
OUTPUT = pathlib.Path(__file__).with_name("BENCH_parallel.json")


def make_bench_graph(
    num_nodes: int = BENCH_NODES, num_edges: int = BENCH_EDGES
) -> DiGraph:
    return erdos_renyi(num_nodes, num_edges, seed=BENCH_SEED)


def run_sweep(
    graph: DiGraph,
    worker_counts: Sequence[int] = WORKER_COUNTS,
    *,
    n_r: int = BENCH_N_R,
    source: int = 0,
    seed: int = 1,
) -> List[Dict[str, object]]:
    """Time one query per worker count; report speedup vs. ``workers=1``.

    Every row also records whether its scores are byte-identical to the
    ``workers=1`` run — the seed-sharding determinism contract.
    """
    params = CrashSimParams(n_r_override=n_r)
    rows: List[Dict[str, object]] = []
    baseline_scores = None
    baseline_seconds = None
    for workers in worker_counts:
        started = time.perf_counter()
        result = parallel_crashsim(
            graph, source, params=params, seed=seed, workers=workers
        )
        seconds = time.perf_counter() - started
        if baseline_scores is None:
            baseline_scores = result.scores
            baseline_seconds = seconds
        rows.append(
            {
                "workers": workers,
                "seconds": round(seconds, 4),
                "speedup": round(baseline_seconds / seconds, 3),
                "identical_to_w1": bool(
                    np.array_equal(baseline_scores, result.scores)
                ),
            }
        )
    return rows


# ----------------------------------------------------------------------
# pytest-benchmark harness
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def parallel_graph():
    return make_bench_graph()


@pytest.mark.parametrize("workers", list(WORKER_COUNTS))
def test_parallel_crashsim_workers(benchmark, parallel_graph, workers):
    params = CrashSimParams(n_r_override=BENCH_N_R)
    result = benchmark.pedantic(
        lambda: parallel_crashsim(
            parallel_graph, 0, params=params, seed=1, workers=workers
        ),
        iterations=1,
        rounds=1,
    )
    assert result.n_r == BENCH_N_R


def test_scores_identical_across_worker_counts(parallel_graph):
    params = CrashSimParams(n_r_override=64)
    reference = parallel_crashsim(parallel_graph, 0, params=params, seed=7, workers=1)
    for workers in (2, 4):
        other = parallel_crashsim(
            parallel_graph, 0, params=params, seed=7, workers=workers
        )
        assert np.array_equal(reference.scores, other.scores)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="speedup needs >= 4 physical CPUs; fewer cores only measure overhead",
)
def test_speedup_at_four_workers(parallel_graph):
    rows = run_sweep(parallel_graph, worker_counts=(1, 4))
    assert all(row["identical_to_w1"] for row in rows)
    assert rows[-1]["speedup"] >= 2.0, rows


def main() -> int:
    print(
        f"generating graph: n={BENCH_NODES} m={BENCH_EDGES} "
        f"(seed {BENCH_SEED}), n_r={BENCH_N_R}, cpus={os.cpu_count()}"
    )
    graph = make_bench_graph()
    rows = run_sweep(graph)
    header = f"{'workers':>8} {'seconds':>10} {'speedup':>9} {'identical':>10}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['workers']:>8} {row['seconds']:>10} "
            f"{row['speedup']:>9} {str(row['identical_to_w1']):>10}"
        )
    payload = {
        "graph": {
            "generator": "erdos_renyi",
            "num_nodes": BENCH_NODES,
            "num_edges": BENCH_EDGES,
            "seed": BENCH_SEED,
        },
        "n_r": BENCH_N_R,
        "cpus": os.cpu_count(),
        "rows": rows,
    }
    OUTPUT.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote {OUTPUT}")
    if not all(row["identical_to_w1"] for row in rows):
        print("FAIL: scores drifted across worker counts")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
