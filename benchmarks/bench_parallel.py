"""Parallel-executor benches: per-tier speedup and determinism vs. workers.

Two entry points:

* ``pytest benchmarks/bench_parallel.py --benchmark-only`` — records one
  single-source parallel CrashSim query per (mode, worker count) on a
  50k-node generated graph (the quantity the speedup claim is about);
* ``python benchmarks/bench_parallel.py`` — runs the full sweep once,
  prints a speedup table per execution tier, verifies that every
  (mode, worker count) produced byte-identical scores for the same master
  seed, and writes ``BENCH_parallel.json``.

Speedup is bounded by the CPUs this process may actually use —
``os.sched_getaffinity`` where available (cgroup/affinity-limited CI
runners often expose fewer cores than ``os.cpu_count`` reports), falling
back to ``os.cpu_count``.  On a single-core runner the parallel rows only
measure pool + dispatch overhead, so the scaling assertions below *skip*
(never fail) under 2 effective CPUs; the byte-identity assertions always
run — determinism holds at any core count.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Dict, List, Sequence

import numpy as np
import pytest

from repro.core.params import CrashSimParams
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi
from repro.parallel import parallel_crashsim

BENCH_NODES = 50_000
BENCH_EDGES = 150_000
BENCH_N_R = 512
BENCH_SEED = 0
WORKER_COUNTS = (1, 2, 4)
MODES = ("process", "thread")
OUTPUT = pathlib.Path(__file__).with_name("BENCH_parallel.json")


def effective_cpus() -> int:
    """CPUs this process may run on (affinity-aware, ≥ 1)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def make_bench_graph(
    num_nodes: int = BENCH_NODES, num_edges: int = BENCH_EDGES
) -> DiGraph:
    return erdos_renyi(num_nodes, num_edges, seed=BENCH_SEED)


def run_sweep(
    graph: DiGraph,
    worker_counts: Sequence[int] = WORKER_COUNTS,
    modes: Sequence[str] = MODES,
    *,
    n_r: int = BENCH_N_R,
    source: int = 0,
    seed: int = 1,
) -> List[Dict[str, object]]:
    """Time one query per (mode, worker count); speedup vs. ``workers=1``.

    ``workers=1`` short-circuits to the serial in-process path on every
    tier, so it is timed once (reported as ``mode="serial"``) and shared
    as the baseline of both tiers' speedup columns.  Every row records
    whether its scores are byte-identical to that baseline — the
    determinism contract says the tier and the worker count never touch a
    score bit.
    """
    params = CrashSimParams(n_r_override=n_r)
    rows: List[Dict[str, object]] = []

    def timed(workers: int, mode: str):
        started = time.perf_counter()
        result = parallel_crashsim(
            graph, source, params=params, seed=seed, workers=workers,
            mode=mode,
        )
        return result, time.perf_counter() - started

    baseline, baseline_seconds = timed(1, "process")
    rows.append(
        {
            "mode": "serial",
            "workers": 1,
            "seconds": round(baseline_seconds, 4),
            "speedup": 1.0,
            "identical_to_w1": True,
        }
    )
    for mode in modes:
        for workers in worker_counts:
            if workers == 1:
                continue
            result, seconds = timed(workers, mode)
            rows.append(
                {
                    "mode": mode,
                    "workers": workers,
                    "seconds": round(seconds, 4),
                    "speedup": round(baseline_seconds / seconds, 3),
                    "identical_to_w1": bool(
                        np.array_equal(baseline.scores, result.scores)
                    ),
                }
            )
    return rows


# ----------------------------------------------------------------------
# pytest-benchmark harness
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def parallel_graph():
    return make_bench_graph()


@pytest.mark.parametrize("mode", list(MODES))
@pytest.mark.parametrize("workers", list(WORKER_COUNTS))
def test_parallel_crashsim_workers(benchmark, parallel_graph, workers, mode):
    params = CrashSimParams(n_r_override=BENCH_N_R)
    result = benchmark.pedantic(
        lambda: parallel_crashsim(
            parallel_graph, 0, params=params, seed=1, workers=workers,
            mode=mode,
        ),
        iterations=1,
        rounds=1,
    )
    assert result.n_r == BENCH_N_R


@pytest.mark.parametrize("mode", list(MODES))
def test_scores_identical_across_worker_counts(parallel_graph, mode):
    # Identity is not a scaling property: it must hold on any runner,
    # including single-core containers where the pool is pure overhead.
    params = CrashSimParams(n_r_override=64)
    reference = parallel_crashsim(
        parallel_graph, 0, params=params, seed=7, workers=1
    )
    for workers in (2, 4):
        other = parallel_crashsim(
            parallel_graph, 0, params=params, seed=7, workers=workers,
            mode=mode,
        )
        assert np.array_equal(reference.scores, other.scores)


def test_speedup_at_four_workers(parallel_graph):
    if effective_cpus() < 4:
        pytest.skip(
            f"speedup needs >= 4 effective CPUs (have {effective_cpus()}); "
            "fewer cores only measure overhead"
        )
    rows = run_sweep(parallel_graph, worker_counts=(1, 4))
    assert all(row["identical_to_w1"] for row in rows)
    best = max(row["speedup"] for row in rows if row["workers"] == 4)
    assert best >= 2.0, rows


def main() -> int:
    cpus = effective_cpus()
    print(
        f"generating graph: n={BENCH_NODES} m={BENCH_EDGES} "
        f"(seed {BENCH_SEED}), n_r={BENCH_N_R}, cpus={cpus}"
    )
    graph = make_bench_graph()
    rows = run_sweep(graph)
    header = (
        f"{'mode':>8} {'workers':>8} {'seconds':>10} {'speedup':>9} "
        f"{'identical':>10}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['mode']:>8} {row['workers']:>8} {row['seconds']:>10} "
            f"{row['speedup']:>9} {str(row['identical_to_w1']):>10}"
        )
    payload = {
        "graph": {
            "generator": "erdos_renyi",
            "num_nodes": BENCH_NODES,
            "num_edges": BENCH_EDGES,
            "seed": BENCH_SEED,
        },
        "n_r": BENCH_N_R,
        "cpus": cpus,
        "rows": rows,
    }
    OUTPUT.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote {OUTPUT}")
    if not all(row["identical_to_w1"] for row in rows):
        print("FAIL: scores drifted across modes / worker counts")
        return 1
    if cpus < 2:
        print("single effective CPU: scaling not assessable, identity ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
