"""Temporal graphs as snapshot sequences with edge deltas (paper Def. 2).

A temporal graph ``G = {G_1, ..., G_T}`` shares one node set across all
snapshots; only edges appear and disappear.  Storing ``T`` full CSR graphs
is wasteful when adjacent snapshots differ by a handful of edges (the regime
in which the paper's pruning rules pay off), so :class:`TemporalGraph` keeps
the first snapshot plus an :class:`EdgeDelta` per transition and materialises
:class:`~repro.graph.DiGraph` snapshots lazily with a small LRU cache.

The delta between adjacent snapshots is exactly the ``Δ = G_{t+1} - G_t``
set that delta pruning (paper Property 1) consumes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import SnapshotIndexError, TemporalError
from repro.graph.digraph import DiGraph

__all__ = ["EdgeDelta", "TemporalGraph", "TemporalGraphBuilder"]

Edge = Tuple[int, int]


@dataclass(frozen=True)
class EdgeDelta:
    """The edge difference between two adjacent snapshots.

    ``added`` and ``removed`` are disjoint sets of canonical arcs
    (for undirected graphs, the pair with the smaller id first).
    """

    added: frozenset
    removed: frozenset

    @property
    def num_changed(self) -> int:
        """``|E(Δ)|`` — total changed edges, as used by delta pruning."""
        return len(self.added) + len(self.removed)

    def is_empty(self) -> bool:
        return not self.added and not self.removed

    @classmethod
    def between(cls, old_edges: Set[Edge], new_edges: Set[Edge]) -> "EdgeDelta":
        """Compute the delta taking ``old_edges`` to ``new_edges``."""
        return cls(
            added=frozenset(new_edges - old_edges),
            removed=frozenset(old_edges - new_edges),
        )

    def apply(self, edges: Set[Edge]) -> Set[Edge]:
        """Apply this delta to an edge set, returning a new set."""
        missing = self.removed - edges
        if missing:
            raise TemporalError(
                f"delta removes {len(missing)} edges absent from the snapshot"
            )
        overlap = self.added & edges
        if overlap:
            raise TemporalError(
                f"delta adds {len(overlap)} edges already present in the snapshot"
            )
        return (edges - self.removed) | self.added


class TemporalGraph:
    """An immutable sequence of snapshots over a fixed node set.

    Parameters
    ----------
    num_nodes:
        Shared node count of all snapshots.
    initial_edges:
        Canonical edge set of snapshot 0.
    deltas:
        One :class:`EdgeDelta` per transition; the horizon is
        ``len(deltas) + 1`` snapshots.
    directed:
        Directedness shared by every snapshot.
    node_labels:
        Optional external labels propagated to every materialised snapshot.
    name:
        Optional dataset name (used by experiment reports).
    """

    _CACHE_SIZE = 8

    def __init__(
        self,
        num_nodes: int,
        initial_edges: Iterable[Edge],
        deltas: Sequence[EdgeDelta],
        *,
        directed: bool = True,
        node_labels: Optional[Sequence[object]] = None,
        name: Optional[str] = None,
    ):
        self.num_nodes = int(num_nodes)
        self.directed = bool(directed)
        self.node_labels = tuple(node_labels) if node_labels is not None else None
        self.name = name
        self._initial_edges = frozenset(
            self._canonical(int(s), int(t)) for s, t in initial_edges if s != t
        )
        self._deltas: Tuple[EdgeDelta, ...] = tuple(deltas)
        self._snapshot_cache: "OrderedDict[int, DiGraph]" = OrderedDict()
        self._edge_cache: "OrderedDict[int, frozenset]" = OrderedDict()

    def _canonical(self, source: int, target: int) -> Edge:
        if not self.directed and source > target:
            return target, source
        return source, target

    # ------------------------------------------------------------------
    # Horizon / indexing
    # ------------------------------------------------------------------

    @property
    def num_snapshots(self) -> int:
        return len(self._deltas) + 1

    def __len__(self) -> int:
        return self.num_snapshots

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        label = f" {self.name!r}" if self.name else ""
        return (
            f"TemporalGraph({kind}{label}, n={self.num_nodes}, "
            f"t={self.num_snapshots})"
        )

    def _check_index(self, index: int) -> int:
        index = int(index)
        if index < 0:
            index += self.num_snapshots
        if not 0 <= index < self.num_snapshots:
            raise SnapshotIndexError(index, self.num_snapshots)
        return index

    # ------------------------------------------------------------------
    # Snapshot access
    # ------------------------------------------------------------------

    def edges_at(self, index: int) -> frozenset:
        """Canonical edge set of snapshot ``index`` (cached, O(Δ) amortised)."""
        index = self._check_index(index)
        cached = self._edge_cache.get(index)
        if cached is not None:
            self._edge_cache.move_to_end(index)
            return cached
        # Walk forward from the nearest earlier cached state (or snapshot 0).
        base_index = 0
        base_edges: Set[Edge] = set(self._initial_edges)
        for cached_index in sorted(self._edge_cache):
            if base_index < cached_index <= index:
                base_index = cached_index
                base_edges = set(self._edge_cache[cached_index])
        for step in range(base_index, index):
            base_edges = self._deltas[step].apply(base_edges)
        result = frozenset(base_edges)
        self._edge_cache[index] = result
        if len(self._edge_cache) > self._CACHE_SIZE:
            self._edge_cache.popitem(last=False)
        return result

    def snapshot(self, index: int) -> DiGraph:
        """Materialise snapshot ``index`` as a frozen :class:`DiGraph`."""
        index = self._check_index(index)
        cached = self._snapshot_cache.get(index)
        if cached is not None:
            self._snapshot_cache.move_to_end(index)
            return cached
        graph = DiGraph.from_edges(
            self.num_nodes,
            self.edges_at(index),
            directed=self.directed,
            node_labels=self.node_labels,
        )
        self._snapshot_cache[index] = graph
        if len(self._snapshot_cache) > self._CACHE_SIZE:
            self._snapshot_cache.popitem(last=False)
        return graph

    def __getitem__(self, index: int) -> DiGraph:
        return self.snapshot(index)

    def snapshots(self) -> Iterator[DiGraph]:
        """Iterate every snapshot in order (materialising lazily)."""
        for index in range(self.num_snapshots):
            yield self.snapshot(index)

    def delta(self, index: int) -> EdgeDelta:
        """``Δ = G_{index} - G_{index-1}`` for ``index ≥ 1``."""
        index = self._check_index(index)
        if index == 0:
            raise TemporalError("snapshot 0 has no predecessor delta")
        return self._deltas[index - 1]

    def window(self, start: int, stop: int) -> "TemporalGraph":
        """Sub-horizon ``[start, stop)`` as a new temporal graph."""
        start = self._check_index(start)
        if stop <= start or stop > self.num_snapshots:
            raise TemporalError(
                f"invalid window [{start}, {stop}) for horizon {self.num_snapshots}"
            )
        return TemporalGraph(
            self.num_nodes,
            self.edges_at(start),
            self._deltas[start : stop - 1],
            directed=self.directed,
            node_labels=self.node_labels,
            name=self.name,
        )

    def edge_counts(self) -> List[int]:
        """Logical edge count per snapshot (for dataset summaries)."""
        counts = []
        edges = len(self._initial_edges)
        counts.append(edges)
        for delta in self._deltas:
            edges += len(delta.added) - len(delta.removed)
            counts.append(edges)
        return counts


class TemporalGraphBuilder:
    """Assemble a :class:`TemporalGraph` one snapshot at a time.

    ``push_snapshot`` accepts the *full* edge set of the next snapshot and
    computes the delta internally; ``push_delta`` accepts explicit add /
    remove sets (for streams that arrive as deltas).
    """

    def __init__(
        self,
        num_nodes: int,
        *,
        directed: bool = True,
        node_labels: Optional[Sequence[object]] = None,
        name: Optional[str] = None,
    ):
        self.num_nodes = int(num_nodes)
        self.directed = bool(directed)
        self.node_labels = node_labels
        self.name = name
        self._initial: Optional[frozenset] = None
        self._current: Set[Edge] = set()
        self._deltas: List[EdgeDelta] = []

    def _canonical_set(self, edges: Iterable[Edge]) -> Set[Edge]:
        out: Set[Edge] = set()
        for source, target in edges:
            source, target = int(source), int(target)
            if source == target:
                continue
            if source >= self.num_nodes or target >= self.num_nodes or source < 0 or target < 0:
                raise TemporalError(
                    f"edge ({source}, {target}) outside node range [0, {self.num_nodes})"
                )
            if not self.directed and source > target:
                source, target = target, source
            out.add((source, target))
        return out

    def push_snapshot(self, edges: Iterable[Edge]) -> None:
        """Append a snapshot given its complete edge set."""
        canonical = self._canonical_set(edges)
        if self._initial is None:
            self._initial = frozenset(canonical)
        else:
            self._deltas.append(EdgeDelta.between(self._current, canonical))
        self._current = canonical

    def push_delta(
        self, added: Iterable[Edge] = (), removed: Iterable[Edge] = ()
    ) -> None:
        """Append a snapshot expressed as a delta over the previous one."""
        if self._initial is None:
            raise TemporalError("push an initial snapshot before any delta")
        add_set = self._canonical_set(added)
        remove_set = self._canonical_set(removed)
        delta = EdgeDelta(
            added=frozenset(add_set - self._current),
            removed=frozenset(remove_set & self._current),
        )
        self._current = delta.apply(self._current)
        self._deltas.append(delta)

    @property
    def num_snapshots(self) -> int:
        return 0 if self._initial is None else len(self._deltas) + 1

    def build(self) -> TemporalGraph:
        if self._initial is None:
            raise TemporalError("temporal graph needs at least one snapshot")
        return TemporalGraph(
            self.num_nodes,
            self._initial,
            self._deltas,
            directed=self.directed,
            node_labels=self.node_labels,
            name=self.name,
        )
