"""Descriptive statistics for graphs and temporal graphs (Table III data)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.graph.digraph import DiGraph
from repro.graph.temporal import TemporalGraph

__all__ = ["GraphStats", "TemporalStats", "graph_stats", "temporal_stats"]


@dataclass(frozen=True)
class GraphStats:
    """Summary of a single (snapshot) graph."""

    num_nodes: int
    num_edges: int
    directed: bool
    max_in_degree: int
    max_out_degree: int
    mean_in_degree: float
    dangling_nodes: int  # nodes with no in-neighbours: reverse walks die here

    def as_row(self) -> Dict[str, object]:
        return {
            "type": "Directed" if self.directed else "Undirected",
            "n": self.num_nodes,
            "m": self.num_edges,
            "max_in_deg": self.max_in_degree,
            "mean_in_deg": round(self.mean_in_degree, 2),
            "dangling": self.dangling_nodes,
        }


@dataclass(frozen=True)
class TemporalStats:
    """Summary of a temporal graph across its horizon."""

    name: Optional[str]
    num_nodes: int
    num_snapshots: int
    directed: bool
    first_snapshot: GraphStats
    last_snapshot: GraphStats
    mean_delta_size: float
    max_delta_size: int

    def as_row(self) -> Dict[str, object]:
        return {
            "dataset": self.name or "?",
            "type": "Directed" if self.directed else "Undirected",
            "n": self.num_nodes,
            "m": self.last_snapshot.num_edges,
            "t": self.num_snapshots,
            "mean_delta": round(self.mean_delta_size, 2),
        }


def graph_stats(graph: DiGraph) -> GraphStats:
    """Compute :class:`GraphStats` for one graph."""
    in_degrees = graph.in_degrees()
    out_degrees = graph.out_degrees()
    return GraphStats(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        directed=graph.directed,
        max_in_degree=int(in_degrees.max(initial=0)),
        max_out_degree=int(out_degrees.max(initial=0)),
        mean_in_degree=float(in_degrees.mean()) if graph.num_nodes else 0.0,
        dangling_nodes=int(np.count_nonzero(in_degrees == 0)),
    )


def temporal_stats(temporal: TemporalGraph) -> TemporalStats:
    """Compute :class:`TemporalStats`; materialises only the end snapshots."""
    delta_sizes: List[int] = [
        temporal.delta(index).num_changed
        for index in range(1, temporal.num_snapshots)
    ]
    return TemporalStats(
        name=temporal.name,
        num_nodes=temporal.num_nodes,
        num_snapshots=temporal.num_snapshots,
        directed=temporal.directed,
        first_snapshot=graph_stats(temporal.snapshot(0)),
        last_snapshot=graph_stats(temporal.snapshot(temporal.num_snapshots - 1)),
        mean_delta_size=float(np.mean(delta_sizes)) if delta_sizes else 0.0,
        max_delta_size=int(max(delta_sizes)) if delta_sizes else 0,
    )
