"""Immutable directed graph stored in compressed-sparse-row (CSR) form.

SimRank computation is dominated by two access patterns:

* enumerating the **in-neighbours** ``I(u)`` of a node (every reverse
  √c-walk step, the revReach propagation, and the Power Method all consume
  them), and
* enumerating the **out-neighbours** (ProbeSim's probe phase and the
  affected-area computation of delta pruning walk *forwards*).

:class:`DiGraph` therefore stores both directions as CSR index arrays.  The
structure is frozen after construction: algorithms can cache derived data
(transition matrices, degree arrays) keyed by the graph object without
invalidation logic, and temporal snapshots can share node identity.

Undirected graphs are represented by storing each edge as two opposite arcs,
exactly as the paper treats its undirected datasets: ``I(u)`` is then the
ordinary neighbour set.  :attr:`DiGraph.num_edges` reports logical edges
(undirected edges counted once) to match the paper's Table III convention.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.errors import EdgeNotFoundError, GraphError, NodeNotFoundError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    import networkx
    import scipy.sparse

__all__ = ["DiGraph", "build_alias_tables"]


def build_alias_tables(
    indptr: np.ndarray,
    weights: np.ndarray,
    totals: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-node Vose alias tables over CSR-blocked neighbour weights.

    For each node ``u`` whose block ``indptr[u]:indptr[u+1]`` carries
    weights ``w_0..w_{d-1}`` with positive total ``W``, the returned
    ``(prob, alias)`` arrays (aligned with the CSR ``indices`` layout)
    satisfy the alias-method invariant: throwing a uniform dart at cell
    ``j`` and keeping it with probability ``prob[j]`` (else redirecting to
    local neighbour ``alias[j]``) selects neighbour ``i`` with probability
    exactly ``w_i / W`` — O(1) per sample instead of an O(log d) CDF
    search.  Construction is O(d) per node and fully deterministic (the
    small/large worklists are filled in ascending local index), so tables
    built from equal inputs are bit-identical.

    Nodes whose weight total is zero or negative are skipped: their cells
    keep the ``prob = 1, alias = 0`` filler, and the walk engines treat
    such nodes as dangling so the filler is never sampled.
    """
    m = int(weights.size)
    prob = np.ones(m, dtype=np.float64)
    alias = np.zeros(m, dtype=np.int64)
    num_nodes = int(indptr.size) - 1
    for u in range(num_nodes):
        lo = int(indptr[u])
        hi = int(indptr[u + 1])
        degree = hi - lo
        if degree <= 1:
            continue  # 0 neighbours: dangling; 1 neighbour: filler is exact
        total = float(totals[u])
        if total <= 0.0:
            continue  # zero in-weight: dangling by weight (never sampled)
        scaled = weights[lo:hi] * (degree / total)
        small = [j for j in range(degree) if scaled[j] < 1.0]
        large = [j for j in range(degree) if scaled[j] >= 1.0]
        while small and large:
            s = small.pop()
            g = large.pop()
            prob[lo + s] = scaled[s]
            alias[lo + s] = g
            scaled[g] = (scaled[g] + scaled[s]) - 1.0
            if scaled[g] < 1.0:
                small.append(g)
            else:
                large.append(g)
        # Leftovers (numerically ~1.0) keep prob 1: the dart always lands.
    prob.setflags(write=False)
    alias.setflags(write=False)
    return prob, alias


def _csr_from_pairs(
    n: int,
    sources: np.ndarray,
    targets: np.ndarray,
    values: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Build (indptr, indices[, values]) grouping ``targets`` by ``sources``.

    ``sources``/``targets`` must be parallel int arrays with values in
    ``[0, n)``.  Neighbour lists come out sorted, which makes membership
    checks binary-searchable and equality checks canonical; ``values``
    (e.g. edge weights) are permuted along.
    """
    order = np.lexsort((targets, sources))
    sorted_sources = sources[order]
    sorted_targets = targets[order]
    counts = np.bincount(sorted_sources, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    sorted_values = values[order] if values is not None else None
    return indptr, sorted_targets.astype(np.int32, copy=False), sorted_values


class DiGraph:
    """A frozen directed graph over nodes ``0..n-1`` with CSR adjacency.

    Instances are normally produced by :class:`repro.graph.GraphBuilder`,
    :meth:`DiGraph.from_edges`, or a dataset loader; the constructor below is
    the low-level entry point taking pre-validated edge arrays.

    Parameters
    ----------
    num_nodes:
        Number of nodes; node ids are the integers ``0..num_nodes-1``.
    sources, targets:
        Parallel arrays of arc endpoints (``sources[i] -> targets[i]``).  For
        an undirected graph these must already contain both directions of
        every edge (use :meth:`from_edges` with ``directed=False`` to get
        that for free).
    directed:
        Whether the graph is logically directed.  Affects only
        :attr:`num_edges` accounting and I/O round-trips; adjacency is always
        stored as arcs.
    node_labels:
        Optional external labels (e.g. original SNAP ids), one per node.
    weights:
        Optional positive arc weights, parallel to ``sources``/``targets``.
        A weighted graph's reverse walks pick in-neighbours with probability
        proportional to the incoming arc's weight (weighted SimRank); an
        unweighted graph stores no weight arrays at all.
    """

    __slots__ = (
        "num_nodes",
        "directed",
        "node_labels",
        "_out_indptr",
        "_out_indices",
        "_out_weights",
        "_in_indptr",
        "_in_indices",
        "_in_weights",
        "_num_arcs",
        "_edge_set",
        "_in_degrees64",
        "_alias_tables",
        # Lazily attached by repro.parallel.runner: per-(c, sampler, jit)
        # KernelPools so the executor's thread tier reuses warm per-thread
        # kernel buffers across queries on the same graph.
        "_kernel_pools",
    )

    def __init__(
        self,
        num_nodes: int,
        sources: np.ndarray,
        targets: np.ndarray,
        *,
        directed: bool = True,
        node_labels: Optional[Sequence[object]] = None,
        weights: Optional[np.ndarray] = None,
    ):
        if num_nodes < 0:
            raise GraphError(f"num_nodes must be non-negative, got {num_nodes}")
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if sources.shape != targets.shape or sources.ndim != 1:
            raise GraphError("sources and targets must be parallel 1-D arrays")
        if sources.size:
            low = min(sources.min(), targets.min())
            high = max(sources.max(), targets.max())
            if low < 0 or high >= num_nodes:
                raise GraphError(
                    f"edge endpoint out of range [0, {num_nodes}): "
                    f"saw values in [{low}, {high}]"
                )
        if node_labels is not None and len(node_labels) != num_nodes:
            raise GraphError(
                f"node_labels has {len(node_labels)} entries for {num_nodes} nodes"
            )
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != sources.shape:
                raise GraphError(
                    "weights must be parallel to sources/targets "
                    f"(got {weights.shape} for {sources.shape})"
                )
            if weights.size and (not np.isfinite(weights).all() or weights.min() <= 0):
                raise GraphError("arc weights must be positive and finite")

        self.num_nodes = int(num_nodes)
        self.directed = bool(directed)
        self.node_labels = tuple(node_labels) if node_labels is not None else None
        self._out_indptr, self._out_indices, self._out_weights = _csr_from_pairs(
            num_nodes, sources, targets, weights
        )
        self._in_indptr, self._in_indices, self._in_weights = _csr_from_pairs(
            num_nodes, targets, sources, weights
        )
        self._num_arcs = int(sources.size)
        self._edge_set: Optional[frozenset] = None
        self._in_degrees64: Optional[np.ndarray] = None
        self._alias_tables: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        edges: Iterable[Tuple[int, int]],
        *,
        directed: bool = True,
        node_labels: Optional[Sequence[object]] = None,
        dedup: bool = True,
        weights: Optional[Iterable[float]] = None,
    ) -> "DiGraph":
        """Build a graph from an iterable of ``(source, target)`` pairs.

        Self-loops are dropped (SimRank's ``sim(u, u) = 1`` base case makes
        them meaningless) and, when ``dedup`` is true, parallel edges are
        collapsed (last weight wins).  With ``directed=False`` each pair is
        mirrored, carrying its weight to both arcs.
        """
        edge_list = [(int(s), int(t)) for s, t in edges]
        if weights is not None:
            weight_list = [float(w) for w in weights]
            if len(weight_list) != len(edge_list):
                raise GraphError(
                    f"{len(weight_list)} weights supplied for {len(edge_list)} edges"
                )
        else:
            weight_list = None

        weighted_pairs: dict = {}
        ordered: list = []
        for index, (s, t) in enumerate(edge_list):
            if s == t:
                continue
            weight = weight_list[index] if weight_list is not None else 1.0
            arcs = [(s, t)] if directed else [(s, t), (t, s)]
            for arc in arcs:
                if dedup:
                    if arc not in weighted_pairs:
                        ordered.append(arc)
                    weighted_pairs[arc] = weight
                else:
                    ordered.append(arc)
                    weighted_pairs[arc] = weight
        pairs = ordered
        if pairs:
            arr = np.array(pairs, dtype=np.int64)
            sources, targets = arr[:, 0], arr[:, 1]
            weight_array = (
                np.array([weighted_pairs[arc] for arc in pairs])
                if weight_list is not None
                else None
            )
        else:
            sources = targets = np.empty(0, dtype=np.int64)
            weight_array = (
                np.empty(0, dtype=np.float64) if weight_list is not None else None
            )
        return cls(
            num_nodes,
            sources,
            targets,
            directed=directed,
            node_labels=node_labels,
            weights=weight_array,
        )

    @classmethod
    def from_networkx(cls, nx_graph: "networkx.Graph") -> "DiGraph":
        """Convert a networkx (Di)Graph; node order follows ``nx_graph.nodes``."""
        nodes = list(nx_graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        directed = nx_graph.is_directed()
        edges = ((index[s], index[t]) for s, t in nx_graph.edges())
        return cls.from_edges(
            len(nodes), edges, directed=directed, node_labels=nodes
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def num_arcs(self) -> int:
        """Number of stored arcs (directed edge slots)."""
        return self._num_arcs

    @property
    def num_edges(self) -> int:
        """Logical edge count — undirected edges counted once (Table III)."""
        if self.directed:
            return self._num_arcs
        return self._num_arcs // 2

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (
            f"DiGraph({kind}, n={self.num_nodes}, m={self.num_edges})"
        )

    def _check_node(self, node: int) -> int:
        node = int(node)
        if not 0 <= node < self.num_nodes:
            raise NodeNotFoundError(node)
        return node

    def nodes(self) -> range:
        """Iterate node ids ``0..n-1``."""
        return range(self.num_nodes)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate arcs as ``(source, target)`` pairs, grouped by source."""
        for source in range(self.num_nodes):
            start, stop = self._out_indptr[source], self._out_indptr[source + 1]
            for target in self._out_indices[start:stop]:
                yield source, int(target)

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------

    def in_neighbors(self, node: int) -> np.ndarray:
        """``I(node)`` — the sorted array of in-neighbours (read-only view)."""
        node = self._check_node(node)
        view = self._in_indices[self._in_indptr[node] : self._in_indptr[node + 1]]
        return view

    def out_neighbors(self, node: int) -> np.ndarray:
        """Sorted array of out-neighbours (read-only view)."""
        node = self._check_node(node)
        return self._out_indices[self._out_indptr[node] : self._out_indptr[node + 1]]

    def in_degree(self, node: int) -> int:
        """``|I(node)|``."""
        node = self._check_node(node)
        return int(self._in_indptr[node + 1] - self._in_indptr[node])

    def out_degree(self, node: int) -> int:
        node = self._check_node(node)
        return int(self._out_indptr[node + 1] - self._out_indptr[node])

    def in_degrees(self) -> np.ndarray:
        """Array of all in-degrees, ``shape (n,)``."""
        return np.diff(self._in_indptr)

    def out_degrees(self) -> np.ndarray:
        """Array of all out-degrees, ``shape (n,)``."""
        return np.diff(self._out_indptr)

    def in_degrees64(self) -> np.ndarray:
        """Cached read-only int64 in-degree array.

        Walk steppers and the fused kernel index this array per step; the
        graph is frozen, so one shared copy serves every construction (the
        CrashSim-T snapshot loop builds a stepper per snapshot query).
        """
        if self._in_degrees64 is None:
            degrees = np.diff(self._in_indptr).astype(np.int64, copy=False)
            degrees.setflags(write=False)
            self._in_degrees64 = degrees
        return self._in_degrees64

    def has_edge(self, source: int, target: int) -> bool:
        """Whether the arc ``source -> target`` exists (binary search)."""
        source = self._check_node(source)
        target = self._check_node(target)
        row = self._out_indices[
            self._out_indptr[source] : self._out_indptr[source + 1]
        ]
        pos = np.searchsorted(row, target)
        return bool(pos < row.size and row[pos] == target)

    @property
    def in_indptr(self) -> np.ndarray:
        """CSR row pointer for in-adjacency (for vectorised walk engines)."""
        return self._in_indptr

    @property
    def in_indices(self) -> np.ndarray:
        """CSR column indices for in-adjacency."""
        return self._in_indices

    @property
    def out_indptr(self) -> np.ndarray:
        return self._out_indptr

    @property
    def out_indices(self) -> np.ndarray:
        return self._out_indices

    # ------------------------------------------------------------------
    # Weights
    # ------------------------------------------------------------------

    @property
    def is_weighted(self) -> bool:
        """Whether arcs carry explicit weights (reverse walks then pick
        in-neighbours proportionally to weight — weighted SimRank)."""
        return self._in_weights is not None

    @property
    def in_weights(self) -> np.ndarray:
        """Arc weights aligned with :attr:`in_indices` (weighted graphs)."""
        if self._in_weights is None:
            raise GraphError("graph is unweighted; check is_weighted first")
        return self._in_weights

    @property
    def out_weights(self) -> np.ndarray:
        """Arc weights aligned with :attr:`out_indices` (weighted graphs)."""
        if self._out_weights is None:
            raise GraphError("graph is unweighted; check is_weighted first")
        return self._out_weights

    def in_weight_totals(self) -> np.ndarray:
        """Per-node total incoming weight ``W(u) = Σ_{x∈I(u)} w(x, u)``.

        For unweighted graphs this equals :meth:`in_degrees` (every arc
        counts 1), so callers can use it uniformly.
        """
        if self._in_weights is None:
            return self.in_degrees().astype(np.float64)
        totals = np.zeros(self.num_nodes, dtype=np.float64)
        np.add.at(
            totals,
            np.repeat(np.arange(self.num_nodes), np.diff(self._in_indptr)),
            self._in_weights,
        )
        return totals

    def in_alias_tables(self) -> Tuple[np.ndarray, np.ndarray]:
        """Cached ``(prob, alias)`` Vose tables for weighted in-sampling.

        Aligned with :attr:`in_indices`; built once on first request (O(m))
        and reused by every stepper/kernel and shipped zero-copy through
        ``SharedGraph``.  Only meaningful for weighted graphs.
        """
        if self._in_weights is None:
            raise GraphError("graph is unweighted; check is_weighted first")
        if self._alias_tables is None:
            self._alias_tables = build_alias_tables(
                self._in_indptr, self._in_weights, self.in_weight_totals()
            )
        return self._alias_tables

    def edge_weight(self, source: int, target: int) -> float:
        """Weight of the arc ``source -> target`` (1.0 when unweighted)."""
        source = self._check_node(source)
        target = self._check_node(target)
        start, stop = self._out_indptr[source], self._out_indptr[source + 1]
        row = self._out_indices[start:stop]
        pos = np.searchsorted(row, target)
        if pos >= row.size or row[pos] != target:
            raise EdgeNotFoundError(source, target)
        if self._out_weights is None:
            return 1.0
        return float(self._out_weights[start + pos])

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------

    def edge_set(self) -> frozenset:
        """Frozen set of arcs; cached, used by snapshot diffing."""
        if self._edge_set is None:
            self._edge_set = frozenset(
                zip(self.arc_sources().tolist(), self._out_indices.tolist())
            )
        return self._edge_set

    def arc_sources(self) -> np.ndarray:
        """Source node of every stored arc, aligned with ``out_indices``."""
        return np.repeat(
            np.arange(self.num_nodes, dtype=np.int32), np.diff(self._out_indptr)
        )

    def reverse_transition_matrix(self) -> "scipy.sparse.csr_matrix":
        """Row-stochastic matrix ``P`` of the reverse walk.

        Unweighted: ``P[x, y] = 1/|I(x)|`` for ``y ∈ I(x)``; weighted:
        ``P[x, y] = w(y, x) / W(x)``.  Rows of nodes with no in-neighbours
        are zero (the walk dies there).  A √c-walk's one-step occupancy
        update is ``next = sqrt(c) * (cur @ P)``.
        """
        import scipy.sparse

        totals = self.in_weight_totals()
        with np.errstate(divide="ignore"):
            inv = np.where(totals > 0, 1.0 / totals, 0.0)
        if self._in_weights is None:
            data = np.repeat(inv, self.in_degrees())
        else:
            data = self._in_weights * np.repeat(inv, self.in_degrees())
        return scipy.sparse.csr_matrix(
            (data, self._in_indices, self._in_indptr),
            shape=(self.num_nodes, self.num_nodes),
        )

    def to_networkx(self) -> "networkx.Graph":
        """Export to networkx, preserving directedness and node labels."""
        import networkx

        nx_graph = networkx.DiGraph() if self.directed else networkx.Graph()
        labels = self.node_labels or range(self.num_nodes)
        nx_graph.add_nodes_from(labels)
        label = list(labels)
        for source, target in self.edges():
            if not self.directed and source > target:
                continue
            nx_graph.add_edge(label[source], label[target])
        return nx_graph

    # ------------------------------------------------------------------
    # Equality / hashing
    # ------------------------------------------------------------------

    def same_structure(self, other: "DiGraph") -> bool:
        """Whether two graphs have identical node count and arc sets."""
        return (
            self.num_nodes == other.num_nodes
            and self._num_arcs == other._num_arcs
            and np.array_equal(self._out_indptr, other._out_indptr)
            and np.array_equal(self._out_indices, other._out_indices)
        )
