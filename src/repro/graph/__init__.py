"""Graph substrate: static CSR digraphs, builders, temporal graphs, I/O.

The SimRank algorithms in :mod:`repro.core` and :mod:`repro.baselines` all
operate on the immutable :class:`DiGraph`, which stores both in- and
out-adjacency in CSR form so that reverse (√c-)walks and forward
reachability are both O(degree) per step.  Mutable construction goes through
:class:`GraphBuilder`; temporal data through :class:`TemporalGraph`.
"""

from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph
from repro.graph.temporal import EdgeDelta, TemporalGraph, TemporalGraphBuilder

__all__ = [
    "DiGraph",
    "GraphBuilder",
    "TemporalGraph",
    "TemporalGraphBuilder",
    "EdgeDelta",
]
