"""Synthetic graph generators used as dataset substitutes.

The paper evaluates on SNAP graphs whose in-degree distributions are heavy
tailed.  With no network access we generate structurally similar graphs:

* :func:`preferential_attachment` — Barabási–Albert style power-law graphs
  (models the citation networks HepTh / HepPh and the AS topologies);
* :func:`copying_model` — directed copying model with tunable copy factor
  (models Wiki-Vote's skewed voting in-degrees);
* :func:`erdos_renyi` — uniform G(n, m), mainly as a test fixture;
* :func:`evolve_snapshots` — derives a snapshot sequence from a base graph
  by per-step edge churn, matching the paper's synthetic "100 snapshots"
  construction for the three static datasets;
* :func:`growing_snapshots` — a growth process (edges only added), matching
  the flavour of AS-733 where the topology accretes over time.

All generators take a seed (see :mod:`repro.rng`) and are deterministic for
a fixed seed, so experiments are exactly repeatable.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

import numpy as np

from repro.errors import GraphError, TemporalError
from repro.graph.digraph import DiGraph
from repro.graph.temporal import TemporalGraph, TemporalGraphBuilder
from repro.rng import RngLike, ensure_rng

__all__ = [
    "erdos_renyi",
    "preferential_attachment",
    "copying_model",
    "evolve_snapshots",
    "growing_snapshots",
]

Edge = Tuple[int, int]


def erdos_renyi(
    num_nodes: int,
    num_edges: int,
    *,
    directed: bool = True,
    seed: RngLike = None,
) -> DiGraph:
    """Uniform random graph with exactly ``num_edges`` distinct edges."""
    if num_nodes < 2 and num_edges > 0:
        raise GraphError("need at least two nodes to place an edge")
    max_edges = num_nodes * (num_nodes - 1)
    if not directed:
        max_edges //= 2
    if num_edges > max_edges:
        raise GraphError(
            f"requested {num_edges} edges but only {max_edges} are possible"
        )
    rng = ensure_rng(seed)
    edges: Set[Edge] = set()
    while len(edges) < num_edges:
        batch = rng.integers(0, num_nodes, size=(2 * (num_edges - len(edges)) + 8, 2))
        for source, target in batch:
            if source == target:
                continue
            if not directed and source > target:
                source, target = target, source
            edges.add((int(source), int(target)))
            if len(edges) == num_edges:
                break
    return DiGraph.from_edges(num_nodes, edges, directed=directed)


def preferential_attachment(
    num_nodes: int,
    edges_per_node: int,
    *,
    directed: bool = True,
    seed: RngLike = None,
) -> DiGraph:
    """Barabási–Albert growth: each new node attaches to ``edges_per_node``
    existing nodes chosen proportionally to their current degree.

    For directed output the new node points *at* the chosen targets, which
    concentrates in-degree on early nodes — the shape SimRank's reverse
    walks are sensitive to.
    """
    if edges_per_node < 1:
        raise GraphError("edges_per_node must be at least 1")
    if num_nodes <= edges_per_node:
        raise GraphError(
            f"num_nodes ({num_nodes}) must exceed edges_per_node ({edges_per_node})"
        )
    rng = ensure_rng(seed)
    # Repeated-nodes trick: sampling uniformly from the endpoint multiset is
    # equivalent to degree-proportional sampling.
    endpoint_pool: List[int] = list(range(edges_per_node + 1))
    edges: Set[Edge] = set()
    for new_node in range(edges_per_node + 1):
        for target in range(new_node):
            edges.add((new_node, target) if directed else (target, new_node))
    for new_node in range(edges_per_node + 1, num_nodes):
        chosen: Set[int] = set()
        while len(chosen) < edges_per_node:
            pick = endpoint_pool[int(rng.integers(0, len(endpoint_pool)))]
            chosen.add(pick)
        for target in chosen:
            edges.add((new_node, target) if directed else (target, new_node))
            endpoint_pool.append(target)
        endpoint_pool.append(new_node)
    return DiGraph.from_edges(num_nodes, edges, directed=directed)


def copying_model(
    num_nodes: int,
    out_degree: int,
    *,
    copy_probability: float = 0.5,
    directed: bool = True,
    seed: RngLike = None,
) -> DiGraph:
    """Directed copying model (Kleinberg et al.): each new node emits
    ``out_degree`` arcs; each arc copies the target of a random existing
    arc with probability ``copy_probability`` and otherwise picks a uniform
    existing node.  Produces power-law in-degrees with tunable skew.
    """
    if not 0.0 <= copy_probability <= 1.0:
        raise GraphError("copy_probability must be in [0, 1]")
    if out_degree < 1:
        raise GraphError("out_degree must be at least 1")
    seed_nodes = out_degree + 1
    if num_nodes <= seed_nodes:
        raise GraphError(
            f"num_nodes ({num_nodes}) must exceed out_degree + 1 ({seed_nodes})"
        )
    rng = ensure_rng(seed)
    edges: Set[Edge] = set()
    targets_pool: List[int] = []
    for node in range(seed_nodes):
        for target in range(seed_nodes):
            if node != target:
                edges.add((node, target))
                targets_pool.append(target)
    for node in range(seed_nodes, num_nodes):
        emitted: Set[int] = set()
        while len(emitted) < out_degree:
            if targets_pool and rng.random() < copy_probability:
                target = targets_pool[int(rng.integers(0, len(targets_pool)))]
            else:
                target = int(rng.integers(0, node))
            if target != node:
                emitted.add(target)
        for target in emitted:
            edges.add((node, target))
            targets_pool.append(target)
    return DiGraph.from_edges(num_nodes, edges, directed=directed)


def _canonical(edge: Edge, directed: bool) -> Edge:
    source, target = edge
    if not directed and source > target:
        return target, source
    return source, target


def _sample_absent_edges(
    num_nodes: int,
    present: Set[Edge],
    count: int,
    directed: bool,
    rng: np.random.Generator,
) -> Set[Edge]:
    """Sample ``count`` distinct non-self edges not in ``present``."""
    out: Set[Edge] = set()
    attempts = 0
    limit = 50 * max(count, 1) + 1000
    while len(out) < count and attempts < limit:
        attempts += 1
        source = int(rng.integers(0, num_nodes))
        target = int(rng.integers(0, num_nodes))
        if source == target:
            continue
        edge = _canonical((source, target), directed)
        if edge in present or edge in out:
            continue
        out.add(edge)
    return out


def evolve_snapshots(
    base: DiGraph,
    num_snapshots: int,
    *,
    churn_rate: float = 0.005,
    seed: RngLike = None,
    name: Optional[str] = None,
) -> TemporalGraph:
    """Turn a static graph into a temporal one by per-step edge churn.

    Each transition removes ``churn_rate * m`` uniformly chosen edges and
    adds the same number of fresh ones, keeping the edge count roughly
    constant — the construction the paper uses to synthesise 100-snapshot
    versions of Wiki-Vote, HepTh, and HepPh.
    """
    if num_snapshots < 1:
        raise TemporalError("need at least one snapshot")
    if not 0.0 <= churn_rate <= 1.0:
        raise TemporalError("churn_rate must be in [0, 1]")
    rng = ensure_rng(seed)
    directed = base.directed
    current: Set[Edge] = {
        _canonical(edge, directed)
        for edge in base.edges()
    }
    builder = TemporalGraphBuilder(
        base.num_nodes,
        directed=directed,
        node_labels=base.node_labels,
        name=name,
    )
    builder.push_snapshot(current)
    changes_per_step = max(1, int(round(churn_rate * len(current))))
    for _ in range(num_snapshots - 1):
        removable = list(current)
        remove_count = min(changes_per_step, len(removable))
        removed_idx = rng.choice(len(removable), size=remove_count, replace=False)
        removed = {removable[int(i)] for i in removed_idx}
        added = _sample_absent_edges(
            base.num_nodes, current, changes_per_step, directed, rng
        )
        builder.push_delta(added=added, removed=removed)
        current = (current - removed) | added
    return builder.build()


def growing_snapshots(
    final: DiGraph,
    num_snapshots: int,
    *,
    initial_fraction: float = 0.5,
    seed: RngLike = None,
    name: Optional[str] = None,
) -> TemporalGraph:
    """Temporal graph in which edges only accrete towards ``final``.

    Snapshot 0 holds a random ``initial_fraction`` of the final edges; the
    remainder arrive in roughly equal batches, mimicking the accretive
    AS-733 / AS-Caida topologies.
    """
    if num_snapshots < 1:
        raise TemporalError("need at least one snapshot")
    if not 0.0 < initial_fraction <= 1.0:
        raise TemporalError("initial_fraction must be in (0, 1]")
    rng = ensure_rng(seed)
    directed = final.directed
    all_edges = sorted({_canonical(edge, directed) for edge in final.edges()})
    order = rng.permutation(len(all_edges))
    initial_count = max(1, int(round(initial_fraction * len(all_edges))))
    builder = TemporalGraphBuilder(
        final.num_nodes,
        directed=directed,
        node_labels=final.node_labels,
        name=name,
    )
    current = {all_edges[int(i)] for i in order[:initial_count]}
    builder.push_snapshot(current)
    remaining = [all_edges[int(i)] for i in order[initial_count:]]
    transitions = num_snapshots - 1
    for step in range(transitions):
        start = (step * len(remaining)) // transitions if transitions else 0
        stop = ((step + 1) * len(remaining)) // transitions if transitions else 0
        builder.push_delta(added=remaining[start:stop])
    return builder.build()
