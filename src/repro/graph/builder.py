"""Mutable construction of :class:`~repro.graph.DiGraph` instances.

:class:`GraphBuilder` accepts arbitrary hashable node labels, interns them to
dense integer ids, supports edge insertion and removal, and produces a frozen
:class:`DiGraph` via :meth:`GraphBuilder.build`.  Temporal snapshot synthesis
uses it heavily: a builder can be primed ``from_graph`` and perturbed.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Tuple

import numpy as np

from repro.errors import EdgeNotFoundError, GraphError
from repro.graph.digraph import DiGraph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Incrementally assemble a graph, then :meth:`build` a frozen snapshot.

    Parameters
    ----------
    directed:
        Logical directedness of the result.  An undirected builder treats
        ``add_edge(u, v)`` and ``add_edge(v, u)`` as the same edge.
    weighted:
        When true, edges carry weights (``add_edge(..., weight=...)``,
        default 1.0) and the built graph samples reverse walks
        proportionally to them.

    Examples
    --------
    >>> builder = GraphBuilder(directed=True)
    >>> builder.add_edge("b", "a")
    >>> builder.add_edge("c", "a")
    >>> graph = builder.build()
    >>> graph.in_degree(builder.node_id("a"))
    2
    """

    def __init__(self, directed: bool = True, weighted: bool = False):
        self.directed = bool(directed)
        self.weighted = bool(weighted)
        self._labels: list[Hashable] = []
        self._ids: dict[Hashable, int] = {}
        self._edges: dict[Tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def add_node(self, label: Hashable) -> int:
        """Intern ``label`` (idempotent) and return its dense id."""
        node_id = self._ids.get(label)
        if node_id is None:
            node_id = len(self._labels)
            self._ids[label] = node_id
            self._labels.append(label)
        return node_id

    def node_id(self, label: Hashable) -> int:
        """Return the dense id of ``label``; raises if never added."""
        try:
            return self._ids[label]
        except KeyError:
            raise GraphError(f"node {label!r} was never added") from None

    def has_node(self, label: Hashable) -> bool:
        return label in self._ids

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------

    def _canonical(self, source: int, target: int) -> Tuple[int, int]:
        if not self.directed and source > target:
            return target, source
        return source, target

    def add_edge(
        self, source: Hashable, target: Hashable, weight: float = 1.0
    ) -> None:
        """Add the edge; endpoints are interned on first sight.

        Self-loops are ignored (consistent with :meth:`DiGraph.from_edges`)
        and re-adding an existing edge updates its weight (a no-op for
        unweighted builders).
        """
        if self.weighted:
            weight = float(weight)
            if not weight > 0:
                raise GraphError(f"edge weight must be positive, got {weight}")
        source_id = self.add_node(source)
        target_id = self.add_node(target)
        if source_id == target_id:
            return
        self._edges[self._canonical(source_id, target_id)] = weight

    def add_edges(self, edges: Iterable[Tuple[Hashable, Hashable]]) -> None:
        for source, target in edges:
            self.add_edge(source, target)

    def add_weighted_edges(
        self, edges: Iterable[Tuple[Hashable, Hashable, float]]
    ) -> None:
        """Add ``(source, target, weight)`` triples (weighted builders)."""
        for source, target, weight in edges:
            self.add_edge(source, target, weight)

    def remove_edge(self, source: Hashable, target: Hashable) -> None:
        """Remove the edge; raises :class:`EdgeNotFoundError` if absent."""
        if source not in self._ids or target not in self._ids:
            raise EdgeNotFoundError(source, target)
        key = self._canonical(self._ids[source], self._ids[target])
        try:
            del self._edges[key]
        except KeyError:
            raise EdgeNotFoundError(source, target) from None

    def has_edge(self, source: Hashable, target: Hashable) -> bool:
        if source not in self._ids or target not in self._ids:
            return False
        return self._canonical(self._ids[source], self._ids[target]) in self._edges

    def edge_ids(self) -> set[Tuple[int, int]]:
        """The current edge set in canonical dense-id form (a copy)."""
        return set(self._edges)

    # ------------------------------------------------------------------
    # Round-trips
    # ------------------------------------------------------------------

    @classmethod
    def from_graph(cls, graph: DiGraph) -> "GraphBuilder":
        """Prime a builder with an existing graph's nodes, edges, weights."""
        builder = cls(directed=graph.directed, weighted=graph.is_weighted)
        labels = graph.node_labels or list(range(graph.num_nodes))
        for label in labels:
            builder.add_node(label)
        label_of = list(labels)
        for source, target in graph.edges():
            if not graph.directed and source > target:
                continue
            weight = graph.edge_weight(source, target) if graph.is_weighted else 1.0
            builder.add_edge(label_of[source], label_of[target], weight)
        return builder

    def build(self) -> DiGraph:
        """Freeze the current state into a :class:`DiGraph`."""
        if self._edges:
            ordered = sorted(self._edges)
            arr = np.array(ordered, dtype=np.int64)
            sources, targets = arr[:, 0], arr[:, 1]
            weight_array = (
                np.array([self._edges[edge] for edge in ordered])
                if self.weighted
                else None
            )
            if not self.directed:
                sources = np.concatenate([arr[:, 0], arr[:, 1]])
                targets = np.concatenate([arr[:, 1], arr[:, 0]])
                if weight_array is not None:
                    weight_array = np.concatenate([weight_array, weight_array])
        else:
            sources = targets = np.empty(0, dtype=np.int64)
            weight_array = np.empty(0, dtype=np.float64) if self.weighted else None
        labels = self._labels if self._labels else None
        return DiGraph(
            self.num_nodes,
            sources,
            targets,
            directed=self.directed,
            node_labels=labels,
            weights=weight_array,
        )
