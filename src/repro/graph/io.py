"""Edge-list I/O compatible with the SNAP dataset formats.

``read_edge_list`` parses the whitespace-separated ``FromNodeId ToNodeId``
format used by Wiki-Vote / HepTh / HepPh (``#`` comment lines ignored);
``read_snapshot_directory`` assembles a temporal graph from one edge-list
file per snapshot, covering the AS-733 distribution layout.  Writers produce
files the readers round-trip, so synthetic datasets can be exported for use
by other tools.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import DatasetError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph
from repro.graph.temporal import TemporalGraph, TemporalGraphBuilder

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_caida_asrel",
    "read_snapshot_directory",
    "write_snapshot_directory",
]

PathLike = Union[str, os.PathLike]


def _parse_edge_lines(path: Path) -> List[Tuple[str, str, Optional[float]]]:
    edges: List[Tuple[str, str, Optional[float]]] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(("#", "%")):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise DatasetError(
                    f"{path}:{line_number}: expected two node ids, got {stripped!r}"
                )
            weight: Optional[float] = None
            if len(parts) >= 3:
                try:
                    weight = float(parts[2])
                except ValueError:
                    raise DatasetError(
                        f"{path}:{line_number}: third column is not a weight: "
                        f"{parts[2]!r}"
                    ) from None
            edges.append((parts[0], parts[1], weight))
    return edges


def read_edge_list(path: PathLike, *, directed: bool = True) -> DiGraph:
    """Read a SNAP-style edge list into a :class:`DiGraph`.

    Node ids may be arbitrary tokens; they are interned in first-seen order
    and preserved as :attr:`DiGraph.node_labels`.  A third numeric column,
    when present on every line, is read as edge weights.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"edge list not found: {path}")
    parsed = _parse_edge_lines(path)
    weighted = bool(parsed) and all(weight is not None for _, _, weight in parsed)
    builder = GraphBuilder(directed=directed, weighted=weighted)
    for source, target, weight in parsed:
        if weighted:
            builder.add_edge(source, target, weight)
        else:
            builder.add_edge(source, target)
    return builder.build()


def write_edge_list(graph: DiGraph, path: PathLike, *, header: Optional[str] = None) -> None:
    """Write a graph as a SNAP-style edge list (labels if present; a third
    weight column when the graph is weighted)."""
    path = Path(path)
    labels: Sequence[object] = graph.node_labels or list(range(graph.num_nodes))
    with path.open("w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# Nodes: {graph.num_nodes} Edges: {graph.num_edges}\n")
        for source, target in graph.edges():
            if not graph.directed and source > target:
                continue
            if graph.is_weighted:
                weight = graph.edge_weight(source, target)
                handle.write(f"{labels[source]}\t{labels[target]}\t{weight:g}\n")
            else:
                handle.write(f"{labels[source]}\t{labels[target]}\n")


def read_caida_asrel(path: PathLike, *, directed: bool = True) -> DiGraph:
    """Read a CAIDA AS-relationships file (the AS-Caida dataset's format).

    Lines are pipe-separated ``provider|customer|relationship`` records
    (relationship -1 = provider-to-customer, 0 = peer); ``#`` comment lines
    are skipped.  Peers become a single undirected-style pair of arcs; the
    relationship value itself is not retained (SimRank only consumes the
    topology).
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"AS-relationships file not found: {path}")
    builder = GraphBuilder(directed=directed)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split("|")
            if len(parts) < 2:
                raise DatasetError(
                    f"{path}:{line_number}: expected 'src|dst[|rel]', got "
                    f"{stripped!r}"
                )
            source, target = parts[0], parts[1]
            relationship = parts[2] if len(parts) >= 3 else "-1"
            builder.add_edge(source, target)
            if relationship.strip() == "0" and directed:
                # Peering is mutual: add the reverse arc explicitly.
                builder.add_edge(target, source)
    return builder.build()


def read_snapshot_directory(
    directory: PathLike,
    *,
    directed: bool = True,
    pattern: str = "*.txt",
    name: Optional[str] = None,
) -> TemporalGraph:
    """Assemble a temporal graph from per-snapshot edge-list files.

    Files are ordered lexicographically (AS-733's ``asYYYYMMDD.txt`` naming
    sorts chronologically).  All files share one label space: a node id seen
    in any snapshot exists (possibly isolated) in every snapshot, matching
    the paper's fixed-``V`` temporal model.
    """
    directory = Path(directory)
    files = sorted(directory.glob(pattern))
    if not files:
        raise DatasetError(f"no snapshot files matching {pattern!r} in {directory}")
    per_snapshot = [_parse_edge_lines(path) for path in files]
    interner: dict = {}
    labels: List[object] = []

    def intern(token: str) -> int:
        node = interner.get(token)
        if node is None:
            node = len(labels)
            interner[token] = node
            labels.append(token)
        return node

    # Temporal snapshots are unweighted (paper Def. 2); weights, if any,
    # are ignored here.
    id_snapshots = [
        [(intern(source), intern(target)) for source, target, _ in edges]
        for edges in per_snapshot
    ]
    builder = TemporalGraphBuilder(
        len(labels), directed=directed, node_labels=labels, name=name or directory.name
    )
    for edges in id_snapshots:
        builder.push_snapshot(edges)
    return builder.build()


def write_snapshot_directory(
    temporal: TemporalGraph, directory: PathLike, *, prefix: str = "snapshot"
) -> List[Path]:
    """Write one edge-list file per snapshot; returns the written paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    width = len(str(max(temporal.num_snapshots - 1, 1)))
    paths: List[Path] = []
    for index in range(temporal.num_snapshots):
        path = directory / f"{prefix}_{index:0{width}d}.txt"
        write_edge_list(temporal.snapshot(index), path)
        paths.append(path)
    return paths
