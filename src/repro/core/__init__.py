"""The paper's contribution: CrashSim (§III) and CrashSim-T (§IV).

Public surface:

* :class:`CrashSimParams` — Theorem 1's derived quantities (``l_max``, ``p``,
  ``ε_t``, ``n_r``) from ``(c, ε, δ)``.
* :func:`crashsim` — single-source / partial SimRank on one static graph
  (Algorithm 1), returning a :class:`CrashSimResult`.
* :func:`revreach_levels` / :func:`revreach_queue` — the reverse reachable
  tree of Algorithm 2 (level-synchronous default and the literal queue
  formulation).
* :class:`ThresholdQuery` / :class:`TrendQuery` — temporal SimRank query
  predicates (Definitions 4 and 5).
* :func:`crashsim_t` — Algorithm 3 with delta and difference pruning,
  returning a :class:`TemporalQueryResult`.
"""

from repro.core.adaptive import (
    AdaptiveStopper,
    HubCache,
    build_hub_cache,
    exact_expectation,
    plan_rounds,
    walk_value_bound,
)
from repro.core.batch import BatchQuery, crashsim_batch
from repro.core.crashsim import CrashSimResult, crashsim
from repro.core.crashsim_t import CrashSimTStats, TemporalQueryResult, crashsim_t
from repro.core.multi_source import crashsim_multi_source
from repro.core.params import CrashSimParams
from repro.core.pruning import (
    CandidateTreeCache,
    affected_area,
    edge_subgraph,
    tree_unaffected_by_delta,
    tree_unchanged,
)
from repro.core.queries import (
    CompositeQuery,
    TemporalQuery,
    ThresholdQuery,
    TrendQuery,
)
from repro.core.revreach import (
    ReverseReachableTree,
    SparseReverseTree,
    revreach_levels,
    revreach_queue,
    revreach_update,
)
from repro.core.streaming import TemporalQuerySession
from repro.core.temporal_topk import DurableTopKResult, durable_topk
from repro.core.topk import TopKResult, crashsim_topk

__all__ = [
    "AdaptiveStopper",
    "HubCache",
    "build_hub_cache",
    "exact_expectation",
    "plan_rounds",
    "walk_value_bound",
    "BatchQuery",
    "CrashSimParams",
    "CrashSimResult",
    "crashsim",
    "crashsim_batch",
    "crashsim_multi_source",
    "ReverseReachableTree",
    "SparseReverseTree",
    "revreach_levels",
    "revreach_queue",
    "TemporalQuery",
    "ThresholdQuery",
    "TrendQuery",
    "CompositeQuery",
    "TemporalQuerySession",
    "revreach_update",
    "crashsim_t",
    "TemporalQueryResult",
    "CrashSimTStats",
    "affected_area",
    "tree_unchanged",
    "tree_unaffected_by_delta",
    "edge_subgraph",
    "CandidateTreeCache",
    "crashsim_topk",
    "TopKResult",
    "durable_topk",
    "DurableTopKResult",
]
