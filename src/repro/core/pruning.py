"""Delta and difference pruning primitives (paper Theorem 2, Props. 1–2).

Both pruning rules of CrashSim-T reduce to deciding, per candidate, whether
its SimRank estimate can possibly have changed between adjacent snapshots:

* **Delta pruning** (Property 1) walks *forward* from the head ``y`` of each
  changed edge ``x → y``: every node reachable from ``y`` via out-edges
  within ``l_max - 1`` steps might route a reverse √c-walk through the
  changed edge (Theorem 2); everything else is exempt.  Worth paying when
  ``|E(Δ)| < |Ω|·n_r / |E(Ω)|``.
* **Difference pruning** (Property 2) compares each candidate's own reverse
  reachable tree between the two snapshots (on the ``Ω``-induced subgraph,
  as Algorithm 3 lines 16–17 prescribe); an unchanged tree means an
  unchanged estimate.  Worth paying when ``|E(Ω)| < n_r``.

Soundness of both rules is pinned by property tests
(``tests/core/test_pruning.py``): pruned and unpruned CrashSim-T runs must
select the same nodes when fed identical walk randomness.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, Iterable, Optional, Sequence, Set, Tuple

import numpy as np

from repro import obs
from repro.core.revreach import (
    SparseReverseTree,
    _changed_heads,
    revreach_levels,
    revreach_update,
)
from repro.errors import ParameterError
from repro.graph.digraph import DiGraph

__all__ = [
    "CandidateTreeCache",
    "affected_area",
    "edge_subgraph",
    "tree_unchanged",
    "tree_unaffected_by_delta",
    "count_candidate_edges",
]

Edge = Tuple[int, int]

# Registry mirrors of the per-instance CandidateTreeCache counters: the
# instance attributes stay the externally visible API (CrashSimTStats reads
# them), the registry aggregates across every cache in the process.
# Increments happen at event time, so clone() copying the instance counters
# never double-counts here.
_M_CTC_HITS = obs.REGISTRY.counter(
    "repro_candidate_tree_cache_hits_total",
    "Candidate-tree cache lookups served from a stamped entry.",
)
_M_CTC_BUILDS = obs.REGISTRY.counter(
    "repro_candidate_tree_cache_builds_total",
    "Candidate trees built from scratch on a cache miss or rebuild.",
)
_M_CTC_ADVANCES = obs.REGISTRY.counter(
    "repro_candidate_tree_cache_advances_total",
    "Candidate trees advanced incrementally across a snapshot transition.",
)
_M_CTC_EVICTIONS = obs.REGISTRY.counter(
    "repro_candidate_tree_cache_evictions_total",
    "Candidate-tree cache entries dropped because their node left Omega.",
)


def affected_area(
    graph: DiGraph,
    changed_edges: Iterable[Edge],
    l_max: int,
    *,
    include_tails: bool = True,
) -> Set[int]:
    """Nodes whose SimRank to the source may change (Theorem 2 part ii).

    For each changed edge ``x → y``, collects ``y`` and every node
    forward-reachable from ``y`` within ``l_max - 1`` out-steps on
    ``graph``.  ``include_tails`` additionally marks ``x`` itself: a
    removed edge leaves ``x`` with a changed in-neighbour *sharing* at ``y``
    only, but ``x``'s own estimate is affected when walks from other nodes
    pass through it — including the tail is the conservative choice our
    soundness tests require for undirected graphs (where a changed edge
    touches both endpoints' neighbourhoods).
    """
    if l_max < 1:
        raise ParameterError(f"l_max must be at least 1, got {l_max}")
    seeds: Set[int] = set()
    for x, y in changed_edges:
        x, y = int(x), int(y)
        seeds.add(y)
        if include_tails:
            seeds.add(x)
    affected: Set[int] = set(seeds)
    frontier = deque((node, 0) for node in seeds)
    limit = l_max - 1
    while frontier:
        node, depth = frontier.popleft()
        if depth >= limit:
            continue
        for successor in graph.out_neighbors(node):
            successor = int(successor)
            if successor not in affected:
                affected.add(successor)
                frontier.append((successor, depth + 1))
    return affected


def edge_subgraph(graph: DiGraph, nodes: Sequence[int]) -> DiGraph:
    """Subgraph ``G(V, E_Ω)``: same node-id space, only edges within ``Ω``.

    Algorithm 3 evaluates revReach on this restriction for the
    difference-pruning comparisons; keeping the full id space means trees of
    different snapshots stay directly comparable.
    """
    mask = np.zeros(graph.num_nodes, dtype=bool)
    node_array = np.asarray(list(nodes), dtype=np.int64)
    if node_array.size and (node_array.min() < 0 or node_array.max() >= graph.num_nodes):
        raise ParameterError("candidate node outside the graph's node range")
    mask[node_array] = True
    sources = graph.arc_sources()
    targets = graph.out_indices
    keep = mask[sources] & mask[targets]
    return DiGraph(
        graph.num_nodes,
        sources[keep].astype(np.int64),
        targets[keep].astype(np.int64),
        directed=graph.directed,
        node_labels=graph.node_labels,
    )


def count_candidate_edges(graph: DiGraph, nodes: Sequence[int]) -> int:
    """``|E(Ω)|`` — arcs with both endpoints in the candidate set."""
    mask = np.zeros(graph.num_nodes, dtype=bool)
    node_array = np.asarray(list(nodes), dtype=np.int64)
    if node_array.size == 0:
        return 0
    mask[node_array] = True
    sources = graph.arc_sources()
    targets = graph.out_indices
    return int(np.count_nonzero(mask[sources] & mask[targets]))


def tree_unaffected_by_delta(
    tree,
    added: Iterable[Edge],
    removed: Iterable[Edge],
    *,
    directed: bool = True,
) -> bool:
    """Exact O(|Δ|) gate: does the snapshot delta leave ``tree`` intact?

    A changed arc ``x → y`` alters the source's reverse reachable tree iff
    ``y`` carries occupancy mass at some step ``< l_max`` — only then does
    the walk's transition out of ``y`` (whose in-neighbour set changed)
    participate in any propagated level.  Checking the tree's occupancy at
    every changed head costs O(|Δ| · l_max) instead of the O(l_max · m)
    rebuild, which is what makes per-snapshot tree reuse in CrashSim-T
    essentially free on low-churn horizons.

    For undirected graphs each edge is two arcs, so both endpoints are
    checked.
    """
    heads = _changed_heads(added, removed, directed)
    if heads.size == 0:
        return True
    if isinstance(tree, SparseReverseTree):
        return tree.first_level_containing(heads, limit=tree.l_max) is None
    occupancy = tree.matrix[: tree.l_max][:, heads]
    return not bool(np.any(occupancy > 0.0))


def tree_unchanged(
    previous_graph: DiGraph,
    current_graph: DiGraph,
    node: int,
    l_max: int,
    c: float,
    *,
    variant: str = "corrected",
    tol: float = 0.0,
) -> bool:
    """Whether ``node``'s reverse reachable tree matches across snapshots.

    The literal Algorithm 3 check (lines 16–18): build both trees and
    compare.  Used by difference pruning; delta pruning's forward BFS is
    the cheaper sufficient test.
    """
    previous_tree = revreach_levels(previous_graph, node, l_max, c, variant=variant)
    current_tree = revreach_levels(current_graph, node, l_max, c, variant=variant)
    return previous_tree.same_as(current_tree, tol=tol)


class CandidateTreeCache:
    """Per-candidate reverse-tree cache across snapshot transitions.

    Difference pruning (Property 2) compares each residual candidate's
    reverse reachable tree between adjacent snapshots.  Rebuilding *both*
    trees from scratch per candidate per transition — as Algorithm 3
    literally prescribes — costs ``O(|Ω| · l_max · m)`` per snapshot.  This
    cache keeps each candidate's most recent tree stamped with the snapshot
    index it is valid for, so a transition ``t → t+1`` needs at most one
    fresh build per candidate (the first time it is compared) and afterwards
    only an :func:`~repro.core.revreach.revreach_update` advance, whose cost
    is proportional to the delta's reach into the tree.

    Entries are exact: a cached tree is bit-identical to a fresh
    ``revreach_levels`` on its stamped snapshot (``revreach_update`` is
    bit-exact — pinned by tests), so pruning decisions are unchanged.

    The cache is thread-safe: lookups, advances, clones, and retention all
    run under one re-entrant lock, so a serving engine can share a single
    instance across concurrent request threads.  Trees themselves are
    immutable, so a tree returned to one thread stays valid even if another
    thread replaces or drops its cache entry.

    Attributes
    ----------
    hits, builds, advances:
        Running counters, mirrored into ``CrashSimTStats``.
    """

    def __init__(self):
        self._entries: Dict[int, Tuple[int, object]] = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.builds = 0
        self.advances = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def tree_for(
        self,
        node: int,
        stamp: int,
        graph: DiGraph,
        l_max: int,
        c: float,
        *,
        variant: str = "corrected",
    ):
        """The candidate's tree on the snapshot stamped ``stamp``.

        Returns the cached tree when its stamp matches; otherwise builds
        fresh on ``graph`` (which must be that snapshot) and records it.
        The build itself runs outside the lock so concurrent misses on
        different candidates overlap; racing builds of the *same* candidate
        are deterministic duplicates, and the first recorded entry wins.
        """
        with self._lock:
            entry = self._entries.get(int(node))
            if entry is not None and entry[0] == stamp:
                self.hits += 1
                _M_CTC_HITS.inc()
                return entry[1]
        tree = revreach_levels(graph, int(node), l_max, c, variant=variant)
        with self._lock:
            entry = self._entries.get(int(node))
            if entry is not None and entry[0] == stamp:
                self.hits += 1
                _M_CTC_HITS.inc()
                return entry[1]
            self.builds += 1
            self._entries[int(node)] = (stamp, tree)
        _M_CTC_BUILDS.inc()
        return tree

    def advance(
        self,
        node: int,
        prev_tree,
        new_stamp: int,
        new_graph: DiGraph,
        added: Iterable[Edge],
        removed: Iterable[Edge],
        *,
        directed: bool = True,
    ):
        """Advance ``prev_tree`` one transition and cache it at ``new_stamp``.

        Corrected-variant trees are rebased incrementally; the literal
        "paper" variant (whose transition depends on the child's in-degree)
        is rebuilt in full.
        """
        if prev_tree.variant == "corrected":
            tree = revreach_update(
                prev_tree, new_graph, added, removed, directed=directed
            )
            advanced = tree is not prev_tree
            rebuilt = False
        else:
            tree = revreach_levels(
                new_graph,
                int(node),
                prev_tree.l_max,
                prev_tree.c,
                variant=prev_tree.variant,
            )
            advanced = False
            rebuilt = True
        with self._lock:
            if advanced:
                self.advances += 1
            if rebuilt:
                self.builds += 1
            self._entries[int(node)] = (new_stamp, tree)
        if advanced:
            _M_CTC_ADVANCES.inc()
        if rebuilt:
            _M_CTC_BUILDS.inc()
        return tree

    def clone(self) -> "CandidateTreeCache":
        """A shallow copy safe to mutate speculatively.

        Trees are immutable (``revreach_update`` returns new objects), so
        copying the entry dict is enough.  The streaming session advances a
        clone during each push and commits it only on success, keeping the
        published cache consistent when a push fails mid-flight.
        """
        other = CandidateTreeCache()
        with self._lock:
            other._entries = dict(self._entries)
            other.hits = self.hits
            other.builds = self.builds
            other.advances = self.advances
        return other

    def retain(self, nodes: Iterable[int]) -> None:
        """Drop entries for candidates no longer alive (Ω only shrinks)."""
        alive = {int(node) for node in nodes}
        dropped = 0
        with self._lock:
            for node in list(self._entries):
                if node not in alive:
                    del self._entries[node]
                    dropped += 1
        if dropped:
            _M_CTC_EVICTIONS.inc(dropped)
