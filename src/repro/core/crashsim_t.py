"""CrashSim-T (paper Algorithm 3): temporal SimRank queries with pruning.

The driver walks the query interval snapshot by snapshot, maintaining the
candidate set ``Ω`` (which only ever shrinks) and the previous snapshot's
scores.  Per transition it:

1. builds the source's reverse reachable tree on both snapshots (the
   Algorithm-3 line-7 gate); if they differ, everything is recomputed;
2. otherwise applies **delta pruning** when
   ``|E(Δ)| < |Ω| · n_r / |E(Ω)|`` — candidates outside the affected area
   of the changed edges keep their previous estimate;
3. and **difference pruning** when ``|E(Ω)| < n_r`` — candidates whose own
   reverse reachable tree is unchanged keep their previous estimate (the
   trees are compared on the full snapshots, not the paper's Ω-induced
   subgraph, which is unsound — DESIGN.md §2.6).  Candidate trees come out
   of a :class:`~repro.core.pruning.CandidateTreeCache`: the previous
   snapshot's tree is reused (never rebuilt) when the candidate was already
   compared last transition, the current tree is advanced incrementally via
   :func:`~repro.core.revreach.revreach_update`, and equality fast-rejects
   through level fingerprints before touching any array;
4. runs CrashSim only on the residual set ``Ω'``, merges carried and fresh
   scores, and filters ``Ω`` through the query predicate.

The affected area is computed on *both* snapshots and unioned, so removed
edges (whose paths exist only in the older snapshot) are covered — a
conservative strengthening of Theorem 2 that the soundness tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.crashsim import crashsim
from repro.core.params import CrashSimParams
from repro.core.pruning import (
    CandidateTreeCache,
    affected_area,
    count_candidate_edges,
)
from repro.core.queries import TemporalQuery
from repro.core.revreach import revreach_levels, revreach_update
from repro.errors import ParameterError, QueryError
from repro.graph.temporal import TemporalGraph
from repro.rng import RngLike, ensure_rng

__all__ = ["CrashSimTStats", "TemporalQueryResult", "crashsim_t"]


@dataclass
class CrashSimTStats:
    """Instrumentation of one CrashSim-T run (for the pruning ablation)."""

    snapshots_processed: int = 0
    source_tree_stable: int = 0
    source_tree_reused: int = 0
    delta_pruning_applied: int = 0
    difference_pruning_applied: int = 0
    candidates_carried: int = 0
    candidates_recomputed: int = 0
    candidate_trees_built: int = 0
    candidate_trees_cached: int = 0
    candidate_trees_advanced: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "snapshots_processed": self.snapshots_processed,
            "source_tree_stable": self.source_tree_stable,
            "source_tree_reused": self.source_tree_reused,
            "delta_pruning_applied": self.delta_pruning_applied,
            "difference_pruning_applied": self.difference_pruning_applied,
            "candidates_carried": self.candidates_carried,
            "candidates_recomputed": self.candidates_recomputed,
            "candidate_trees_built": self.candidate_trees_built,
            "candidate_trees_cached": self.candidate_trees_cached,
            "candidate_trees_advanced": self.candidate_trees_advanced,
        }


@dataclass(frozen=True)
class TemporalQueryResult:
    """Outcome of a temporal SimRank query.

    Attributes
    ----------
    source:
        Query source ``u``.
    interval:
        The processed ``[start, stop)`` snapshot range.
    survivors:
        Node ids in the final ``Ω`` (sorted).
    history:
        Per processed snapshot, the ``{node: score}`` mapping of candidates
        still alive *entering* that snapshot.
    stats:
        Pruning instrumentation.
    degraded:
        Whether the interval was cut short by a deadline or lost snapshot
        evaluations (resilient parallel driver only): the survivors then
        reflect a *prefix* of the requested interval — every processed
        transition is exact, but later snapshots never filtered Ω.  The
        batch driver always completes, so this stays ``False`` there.
    """

    source: int
    interval: Tuple[int, int]
    survivors: Tuple[int, ...]
    history: Tuple[Dict[int, float], ...]
    stats: CrashSimTStats
    degraded: bool = False

    @property
    def survivor_set(self) -> Set[int]:
        return set(self.survivors)


def crashsim_t(
    temporal: TemporalGraph,
    source: int,
    query: TemporalQuery,
    *,
    interval: Optional[Tuple[int, int]] = None,
    params: Optional[CrashSimParams] = None,
    use_delta_pruning: bool = True,
    use_difference_pruning: bool = True,
    incremental_tree_gate: bool = True,
    tree_variant: str = "corrected",
    seed: RngLike = None,
    sampler: str = "cdf",
) -> TemporalQueryResult:
    """Answer a temporal SimRank query with CrashSim-T (Algorithm 3).

    Parameters
    ----------
    temporal:
        The temporal graph ``G = {G_1, ..., G_T}``.
    source:
        Query source ``u``.
    query:
        A :class:`~repro.core.queries.TemporalQuery`
        (:class:`ThresholdQuery` or :class:`TrendQuery`).
    interval:
        Half-open snapshot range ``[start, stop)``; defaults to the full
        horizon.
    params:
        CrashSim parameters; defaults match the paper's temporal setting
        (``c = 0.6``, ``ε = 0.025``).
    use_delta_pruning, use_difference_pruning:
        Ablation switches for Properties 1 and 2.
    incremental_tree_gate:
        Skip rebuilding the source's reverse reachable tree when the
        snapshot delta provably cannot touch it
        (:func:`~repro.core.pruning.tree_unaffected_by_delta`) — an exact
        O(|Δ|) optimisation of Algorithm 3's line-7 comparison.
    tree_variant:
        Forwarded to CrashSim / revReach (see DESIGN.md §2.1).
    seed:
        Anything :func:`repro.rng.ensure_rng` accepts.
    sampler:
        Weighted neighbour-sampling strategy forwarded to every
        per-snapshot CrashSim run (``"cdf"`` default / ``"alias"`` opt-in).
    """
    params = params or CrashSimParams()
    rng = ensure_rng(seed)
    start, stop = interval if interval is not None else (0, temporal.num_snapshots)
    if not 0 <= start < stop <= temporal.num_snapshots:
        raise QueryError(
            f"invalid interval [{start}, {stop}) for horizon {temporal.num_snapshots}"
        )
    if not 0 <= int(source) < temporal.num_nodes:
        raise ParameterError(
            f"source {source} outside the node range [0, {temporal.num_nodes})"
        )
    source = int(source)
    stats = CrashSimTStats()
    l_max = params.l_max

    # --- First snapshot: full single-source CrashSim over all candidates.
    graph_prev = temporal.snapshot(start)
    result = crashsim(
        graph_prev,
        source,
        params=params,
        tree_variant=tree_variant,
        seed=rng,
        sampler=sampler,
    )
    stats.snapshots_processed += 1
    stats.candidates_recomputed += result.candidates.size
    scores_prev: Dict[int, float] = result.as_dict()
    history: List[Dict[int, float]] = [dict(scores_prev)]
    candidates = result.candidates
    mask = query.initial_mask(result.scores)
    omega: List[int] = [int(node) for node in candidates[mask]]
    tree_prev = result.tree

    n_r = params.n_r(max(temporal.num_nodes, 2))
    candidate_trees = CandidateTreeCache()

    for index in range(start + 1, stop):
        if not omega:
            break
        graph_cur = temporal.snapshot(index)
        delta_cur = temporal.delta(index)
        if incremental_tree_gate and tree_variant == "corrected":
            # Exact incremental rebase: untouched levels are reused and a
            # delta outside the tree's support returns the same object.
            tree_cur = revreach_update(
                tree_prev,
                graph_cur,
                delta_cur.added,
                delta_cur.removed,
                directed=temporal.directed,
            )
            if tree_cur is tree_prev:
                stats.source_tree_reused += 1
        else:
            tree_cur = revreach_levels(
                graph_cur, source, l_max, params.c, variant=tree_variant
            )
        stats.snapshots_processed += 1

        residual: Set[int] = set(omega)
        carried: Set[int] = set()
        if tree_cur is tree_prev or tree_cur.same_as(tree_prev):
            stats.source_tree_stable += 1
            delta = delta_cur
            edge_count_omega = max(count_candidate_edges(graph_cur, omega), 1)

            if (
                use_delta_pruning
                and not delta.is_empty()
                and delta.num_changed < len(omega) * n_r / edge_count_omega
            ):
                stats.delta_pruning_applied += 1
                changed = set(delta.added) | set(delta.removed)
                affected = affected_area(graph_cur, changed, l_max) | affected_area(
                    graph_prev, changed, l_max
                )
                exempt = residual - affected
                carried |= exempt
                residual -= exempt
            elif use_delta_pruning and delta.is_empty():
                # Identical snapshots: every candidate's estimate carries.
                stats.delta_pruning_applied += 1
                carried |= residual
                residual = set()

            if (
                use_difference_pruning
                and residual
                and edge_count_omega < n_r
            ):
                stats.difference_pruning_applied += 1
                # Algorithm 3 lines 16-17 compare the candidates' trees on
                # the Ω-induced subgraph G(V, E_Ω); that restriction is
                # unsound when a candidate's reverse ball leaves Ω (its
                # estimate can change while the restricted tree does not),
                # so we compare on the full snapshots — same trigger
                # condition, sound carry (DESIGN.md §2.6).  The cache keeps
                # each candidate's latest tree, so the previous-snapshot
                # side is never rebuilt once seen and the current side is
                # an incremental advance over the delta.
                for node in sorted(residual):
                    prev_candidate_tree = candidate_trees.tree_for(
                        node,
                        index - 1,
                        graph_prev,
                        l_max,
                        params.c,
                        variant=tree_variant,
                    )
                    cur_candidate_tree = candidate_trees.advance(
                        node,
                        prev_candidate_tree,
                        index,
                        graph_cur,
                        delta_cur.added,
                        delta_cur.removed,
                        directed=temporal.directed,
                    )
                    if (
                        cur_candidate_tree is prev_candidate_tree
                        or cur_candidate_tree.same_as(prev_candidate_tree)
                    ):
                        carried.add(node)
                        residual.discard(node)

        stats.candidates_carried += len(carried)
        stats.candidates_recomputed += len(residual)

        scores_cur: Dict[int, float] = {node: scores_prev[node] for node in carried}
        if residual:
            partial = crashsim(
                graph_cur,
                source,
                candidates=sorted(residual),
                params=params,
                tree=tree_cur,
                tree_variant=tree_variant,
                seed=rng,
                sampler=sampler,
            )
            scores_cur.update(partial.as_dict())
        history.append(dict(scores_cur))

        ordered = np.array(sorted(omega), dtype=np.int64)
        prev_vector = np.array([scores_prev[int(v)] for v in ordered])
        cur_vector = np.array([scores_cur[int(v)] for v in ordered])
        keep = query.step_mask(prev_vector, cur_vector)
        omega = [int(v) for v in ordered[keep]]
        candidate_trees.retain(omega)

        scores_prev = scores_cur
        graph_prev = graph_cur
        tree_prev = tree_cur

    stats.candidate_trees_built = candidate_trees.builds
    stats.candidate_trees_cached = candidate_trees.hits
    stats.candidate_trees_advanced = candidate_trees.advances
    return TemporalQueryResult(
        source=source,
        interval=(start, stop),
        survivors=tuple(sorted(omega)),
        history=tuple(history),
        stats=stats,
    )
