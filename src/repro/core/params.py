"""Theorem 1's derived parameters: ``l_max``, ``p``, ``ε_t``, and ``n_r``.

Paper §III-C:

* Lemma 1 — the √c-walk length is geometric; truncating at
  ``l_max = (1 + √c) / (1 - √c)²`` covers probability
  ``p = Σ_{k=1..l_max} (√c)^{k-1} (1 - √c) = 1 - (√c)^{l_max}``.
* Lemma 2 — truncation displaces the estimator by at most
  ``p · ε_t`` with ``ε_t = (√c)^{l_max}``.
* Lemma 3 — ``n_r = 3c / (ε - p·ε_t)² · ln(n/δ)`` trials suffice for
  ``|s(u,v) - sim(u,v)| ≤ ε`` with probability ``≥ 1 - δ``.

The theoretical ``n_r`` is a worst-case Chernoff count: for the paper's own
settings (``c = 0.6``, ``ε = 0.025``, ``n ≈ 10⁴``) it exceeds 30 000 trials,
which neither the paper's reported response times nor ProbeSim's published
evaluation actually pay.  :class:`CrashSimParams` therefore exposes the
exact theoretical value via :meth:`n_r_theoretical` and lets callers bound
the practical trial count with ``n_r_override`` / ``n_r_cap`` — experiments
record both (see DESIGN.md §2.3 and EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import ParameterError

__all__ = ["CrashSimParams", "DEFAULT_C", "DEFAULT_EPSILON", "DEFAULT_DELTA"]

DEFAULT_C = 0.6
DEFAULT_EPSILON = 0.025
DEFAULT_DELTA = 0.01


@dataclass(frozen=True)
class CrashSimParams:
    """Validated CrashSim parameters and their Theorem-1 derivations.

    Parameters
    ----------
    c:
        SimRank decay factor, in (0, 1).  The paper uses 0.6.
    epsilon:
        Maximum tolerated absolute error ε, in (0, 1).
    delta:
        Failure probability δ of the Monte-Carlo guarantee, in (0, 1).
    n_r_override:
        If set, use exactly this many trials instead of the theoretical
        count.  Must be positive.
    n_r_cap:
        If set, clamp the theoretical count to at most this many trials.
        Ignored when ``n_r_override`` is given.
    """

    c: float = DEFAULT_C
    epsilon: float = DEFAULT_EPSILON
    delta: float = DEFAULT_DELTA
    n_r_override: Optional[int] = None
    n_r_cap: Optional[int] = None

    def __post_init__(self):
        if not 0.0 < self.c < 1.0:
            raise ParameterError(f"decay factor c must be in (0, 1), got {self.c}")
        if not 0.0 < self.epsilon < 1.0:
            raise ParameterError(f"epsilon must be in (0, 1), got {self.epsilon}")
        if not 0.0 < self.delta < 1.0:
            raise ParameterError(f"delta must be in (0, 1), got {self.delta}")
        if self.n_r_override is not None and self.n_r_override < 1:
            raise ParameterError(
                f"n_r_override must be positive, got {self.n_r_override}"
            )
        if self.n_r_cap is not None and self.n_r_cap < 1:
            raise ParameterError(f"n_r_cap must be positive, got {self.n_r_cap}")
        if self.epsilon <= self.truncation_slack:
            raise ParameterError(
                f"epsilon={self.epsilon} does not exceed the truncation slack "
                f"p·ε_t={self.truncation_slack:.3g}; increase epsilon or c"
            )

    # ------------------------------------------------------------------
    # Lemma 1
    # ------------------------------------------------------------------

    @property
    def sqrt_c(self) -> float:
        return math.sqrt(self.c)

    @property
    def l_max(self) -> int:
        """Truncated walk length ``⌈(1 + √c) / (1 - √c)²⌉`` (Lemma 1)."""
        return math.ceil((1.0 + self.sqrt_c) / (1.0 - self.sqrt_c) ** 2)

    @property
    def p(self) -> float:
        """``Pr(l ≤ l_max) = 1 - (√c)^{l_max}`` — geometric CDF at l_max."""
        return 1.0 - self.sqrt_c ** self.l_max

    # ------------------------------------------------------------------
    # Lemma 2
    # ------------------------------------------------------------------

    @property
    def epsilon_t(self) -> float:
        """Truncation error bound ``ε_t = (√c)^{l_max}`` (Lemma 2)."""
        return self.sqrt_c ** self.l_max

    @property
    def truncation_slack(self) -> float:
        """``p · ε_t`` — the part of the ε budget consumed by truncation."""
        return self.p * self.epsilon_t

    # ------------------------------------------------------------------
    # Lemma 3
    # ------------------------------------------------------------------

    def n_r_theoretical(self, num_nodes: int) -> int:
        """Exact Lemma-3 trial count ``⌈3c/(ε - p·ε_t)² · ln(n/δ)⌉``."""
        if num_nodes < 1:
            raise ParameterError(f"num_nodes must be positive, got {num_nodes}")
        margin = self.epsilon - self.truncation_slack
        return math.ceil(
            3.0 * self.c / margin**2 * math.log(num_nodes / self.delta)
        )

    def n_r(self, num_nodes: int) -> int:
        """Effective trial count after override / cap (what experiments run)."""
        if self.n_r_override is not None:
            return self.n_r_override
        theoretical = self.n_r_theoretical(num_nodes)
        if self.n_r_cap is not None:
            return min(theoretical, self.n_r_cap)
        return theoretical

    def achieved_epsilon(self, num_nodes: int, trials_completed: int) -> float:
        """Lemma 3 inverted: the ε actually guaranteed by ``trials_completed``.

        Solving ``n_r = 3c / (ε - p·ε_t)² · ln(n/δ)`` for ε at the
        completed trial count gives

        ``ε = √(3c · ln(n/δ) / n_completed) + p·ε_t``.

        This is how a degraded (partially completed) run reports its honest
        error bound: any prefix of trial shards is still an unbiased
        estimator, just with a wider ε.  Clamped to 1.0 — SimRank lives in
        ``[0, 1]`` so no absolute error can exceed 1.

        Running *more* trials than Lemma 3 demands (an ``n_r_override``
        above the theoretical count, or capped runs on tiny graphs) is
        clamped the other way: the formula would then advertise an ε
        tighter than the δ the Chernoff argument actually supports at the
        nominal confidence, so the nominal ε is returned instead.
        """
        if num_nodes < 1:
            raise ParameterError(f"num_nodes must be positive, got {num_nodes}")
        if trials_completed <= 0:
            raise ParameterError(
                f"trials_completed must be positive, got {trials_completed}"
            )
        if trials_completed > self.n_r_theoretical(num_nodes):
            return self.epsilon
        epsilon = (
            math.sqrt(
                3.0 * self.c * math.log(num_nodes / self.delta) / trials_completed
            )
            + self.truncation_slack
        )
        return min(1.0, epsilon)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def with_epsilon(self, epsilon: float) -> "CrashSimParams":
        """Copy with a different ε (used by the Fig. 5 ε sweep)."""
        return CrashSimParams(
            c=self.c,
            epsilon=epsilon,
            delta=self.delta,
            n_r_override=self.n_r_override,
            n_r_cap=self.n_r_cap,
        )

    def describe(self, num_nodes: int) -> str:
        """One-line human summary, used in experiment logs."""
        return (
            f"c={self.c} ε={self.epsilon} δ={self.delta} "
            f"l_max={self.l_max} p={self.p:.6f} ε_t={self.epsilon_t:.3g} "
            f"n_r={self.n_r(num_nodes)} (theoretical {self.n_r_theoretical(num_nodes)})"
        )
