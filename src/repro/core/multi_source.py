"""Multi-source CrashSim: amortise candidate walks across sources.

Algorithm 1's Monte-Carlo randomness lives entirely in the *candidate*
walks — the source only contributes its (deterministic) reverse reachable
tree ``U``.  A walk sampled from candidate ``v`` is therefore valid for
scoring against *every* source's tree simultaneously:

    s_k(u_j, v) += U_j[step, position]      for each source u_j

So for ``q`` sources, :func:`crashsim_multi_source` pays the walk
generation (the dominant cost) once instead of ``q`` times, plus one
gather+scatter per source per step.  Each per-source estimator is exactly
the single-source CrashSim estimator — unbiased with the same Theorem-1
trial math — but estimates *across* sources are positively correlated
(they share walks).  That is irrelevant for per-source results and for
averaged benchmarks like Fig. 5; it only matters if one needed independent
errors across sources, which nothing in the paper does.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.core.crashsim import CrashSimResult
from repro.core.params import CrashSimParams
from repro.core.revreach import revreach_levels
from repro.errors import ParameterError
from repro.graph.digraph import DiGraph
from repro.rng import RngLike, ensure_rng
from repro.walks.kernel import WalkCrashKernel

__all__ = ["crashsim_multi_source"]

_WALK_CHUNK = 1 << 20


def crashsim_multi_source(
    graph: DiGraph,
    sources: Sequence[int],
    *,
    candidates: Optional[Iterable[int]] = None,
    params: Optional[CrashSimParams] = None,
    tree_variant: str = "corrected",
    seed: RngLike = None,
    sampler: str = "cdf",
    adaptive: bool = False,
) -> List[CrashSimResult]:
    """Single-source CrashSim for several sources, sharing candidate walks.

    Parameters mirror :func:`repro.core.crashsim.crashsim`; ``candidates``
    defaults to *all* nodes (each result then drops its own source).
    Returns one :class:`CrashSimResult` per source, in input order.

    The accumulation runs through the fused
    :class:`~repro.walks.kernel.WalkCrashKernel`: the per-step cost is one
    walk advance plus a *single* segmented bincount over combined
    ``(source, candidate)`` keys instead of ``q`` separate bincounts.

    ``adaptive=True`` runs the trials in geometrically growing rounds with
    empirical-Bernstein early stopping (:mod:`repro.core.adaptive`).  The
    shared walk stream *is* a common-random-number design — all ``q``
    per-source estimates are driven by the same walks — so the stopper
    watches every ``(source, candidate)`` marginal variance on one walk
    budget and stops when the worst half-width is within ε.  All results
    share one honest ``trials_completed`` / ``achieved_epsilon`` /
    ``stopped_early``.
    """
    params = params or CrashSimParams()
    source_list = [int(s) for s in sources]
    if not source_list:
        return []
    for source in source_list:
        if not 0 <= source < graph.num_nodes:
            raise ParameterError(
                f"source {source} outside the node range [0, {graph.num_nodes})"
            )
    rng = ensure_rng(seed)
    l_max = params.l_max
    n_r = params.n_r(max(graph.num_nodes, 2))

    if candidates is None:
        candidate_array = np.arange(graph.num_nodes, dtype=np.int64)
    else:
        candidate_array = np.unique(np.asarray(list(candidates), dtype=np.int64))
        if candidate_array.size and (
            candidate_array.min() < 0 or candidate_array.max() >= graph.num_nodes
        ):
            raise ParameterError("candidate node outside the graph's node range")

    trees = [
        revreach_levels(graph, source, l_max, params.c, variant=tree_variant)
        for source in source_list
    ]

    # Walk once for every candidate that can walk at all.
    walk_targets = candidate_array[graph.in_degrees()[candidate_array] > 0]
    trials_completed = n_r
    degraded = False
    achieved: Optional[float] = None
    stopped_early = False
    totals = np.zeros((len(source_list), walk_targets.size), dtype=np.float64)
    if adaptive:
        from repro.core.adaptive import adaptive_crash_totals_multi

        outcome = adaptive_crash_totals_multi(
            graph,
            trees,
            walk_targets,
            params,
            num_nodes=max(graph.num_nodes, 2),
            seed=seed,
            sampler=sampler,
        )
        trials_completed = outcome.trials_used
        degraded = outcome.degraded
        achieved = outcome.achieved_epsilon
        stopped_early = outcome.stopped_early
        totals = outcome.totals.reshape(len(source_list), walk_targets.size)
    elif walk_targets.size:
        kernel = WalkCrashKernel(graph, params.c, sampler=sampler)
        totals = kernel.accumulate_multi(
            trees, walk_targets, n_r, l_max=l_max, rng=rng, walk_chunk=_WALK_CHUNK
        )

    results: List[CrashSimResult] = []
    walk_positions = np.searchsorted(candidate_array, walk_targets)
    for row, (source, tree) in enumerate(zip(source_list, trees)):
        per_source = candidate_array[candidate_array != source]
        scores = np.zeros(candidate_array.size, dtype=np.float64)
        scores[walk_positions] = totals[row] / max(trials_completed, 1)
        scores[candidate_array == source] = 1.0
        keep = candidate_array != source
        results.append(
            CrashSimResult(
                source=source,
                candidates=per_source,
                scores=np.clip(scores[keep], 0.0, 1.0),
                n_r=n_r,
                params=params,
                tree=tree,
                trials_completed=trials_completed,
                degraded=degraded,
                achieved_epsilon=achieved,
                stopped_early=stopped_early,
            )
        )
    return results
