"""Durable top-k temporal SimRank (extension; paper §VI cites durable
pattern queries [15] as the neighbouring problem).

A *durable top-k* query asks for the ``k`` nodes with the largest
**worst-case similarity** to the source across the whole interval:
maximise ``min_t s_t(u, v)``.  It generalises the threshold query
(Definition 5): the threshold query is "durable top-∞ above θ".

The implementation follows CrashSim-T's playbook — partial computation
with a shrinking candidate set — plus an adaptive cut: after each snapshot
a candidate is dropped once its running minimum, even credited with a
Bernstein-style Monte-Carlo confidence radius (single-trial values lie in
``[0, c]``, so variance ≤ ``c·s``), cannot reach the current k-th best
running minimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


from repro.core.crashsim import crashsim
from repro.core.params import CrashSimParams
from repro.errors import ParameterError, QueryError
from repro.graph.temporal import TemporalGraph
from repro.rng import RngLike, ensure_rng

__all__ = ["DurableTopKResult", "durable_topk"]


@dataclass(frozen=True)
class DurableTopKResult:
    """Outcome of a durable top-k query.

    Attributes
    ----------
    source:
        Query source ``u``.
    ranking:
        ``(node, worst_case_score)`` pairs, best first, length ≤ k.
    snapshots_processed:
        Number of snapshots evaluated.
    candidates_per_snapshot:
        Candidate-set size entering each snapshot — the adaptive cut's
        effectiveness measure.
    """

    source: int
    ranking: Tuple[Tuple[int, float], ...]
    snapshots_processed: int
    candidates_per_snapshot: Tuple[int, ...]

    def nodes(self) -> List[int]:
        return [node for node, _ in self.ranking]


def durable_topk(
    temporal: TemporalGraph,
    source: int,
    k: int,
    *,
    interval: Optional[Tuple[int, int]] = None,
    params: Optional[CrashSimParams] = None,
    seed: RngLike = None,
) -> DurableTopKResult:
    """Find the ``k`` nodes maximising ``min_t s_t(source, ·)``.

    Parameters mirror :func:`repro.core.crashsim_t.crashsim_t`; the result
    ranks survivors by their running-minimum similarity.
    """
    params = params or CrashSimParams()
    if k < 1:
        raise ParameterError(f"k must be positive, got {k}")
    start, stop = interval if interval is not None else (0, temporal.num_snapshots)
    if not 0 <= start < stop <= temporal.num_snapshots:
        raise QueryError(
            f"invalid interval [{start}, {stop}) for horizon {temporal.num_snapshots}"
        )
    if not 0 <= int(source) < temporal.num_nodes:
        raise ParameterError(
            f"source {source} outside the node range [0, {temporal.num_nodes})"
        )
    source = int(source)
    rng = ensure_rng(seed)
    n_r = params.n_r(max(temporal.num_nodes, 2))

    def radius_of(value: float) -> float:
        from repro.core.bounds import bernstein_radius

        return float(bernstein_radius(value, params.c, n_r))

    running_min: Dict[int, float] = {}
    candidates: Optional[List[int]] = None
    sizes: List[int] = []
    processed = 0
    for index in range(start, stop):
        graph = temporal.snapshot(index)
        sizes.append(
            temporal.num_nodes - 1 if candidates is None else len(candidates)
        )
        result = crashsim(
            graph, source, candidates=candidates, params=params, seed=rng
        )
        processed += 1
        scores = result.as_dict()
        if candidates is None:
            running_min = dict(scores)
        else:
            for node in candidates:
                running_min[node] = min(running_min[node], scores[node])
        # Adaptive cut: a candidate is hopeless once even its optimistic
        # value (running min + radius) is below the pessimistic k-th best.
        ordered = sorted(running_min.values(), reverse=True)
        if len(ordered) > k:
            kth = ordered[k - 1]
            kth_lower = kth - radius_of(kth)
            running_min = {
                node: value
                for node, value in running_min.items()
                if value + radius_of(value) >= kth_lower
            }
        candidates = sorted(running_min)
        if not candidates:
            break

    ranking = sorted(running_min.items(), key=lambda item: (-item[1], item[0]))[:k]
    return DurableTopKResult(
        source=source,
        ranking=tuple((int(node), float(value)) for node, value in ranking),
        snapshots_processed=processed,
        candidates_per_snapshot=tuple(sizes),
    )
