"""Streaming temporal SimRank: answer queries over an unbounded snapshot feed.

:func:`~repro.core.crashsim_t.crashsim_t` needs the whole interval up
front; a monitoring deployment instead *receives* snapshots one at a time
and wants the surviving candidate set after each.  :class:`TemporalQuerySession`
is that online form of Algorithm 3: push a snapshot (or just its delta),
read the current ``Ω`` — with the same partial computation, pruning rules,
and incremental source-tree reuse as the batch driver.

    session = TemporalQuerySession(source, ThresholdQuery(theta=0.05))
    session.push_snapshot(graph_t0)
    session.push_delta(added=[(3, 7)], removed=[])
    session.survivors            # Ω after the latest snapshot

The session holds O(n) state (previous scores, the source's tree, the last
snapshot) regardless of how many snapshots have streamed through.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro import faults
from repro.core.crashsim import crashsim
from repro.core.params import CrashSimParams
from repro.core.pruning import (
    CandidateTreeCache,
    affected_area,
    count_candidate_edges,
)
from repro.core.queries import TemporalQuery
from repro.core.revreach import revreach_update
from repro.errors import ParameterError, TemporalError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph
from repro.graph.temporal import EdgeDelta
from repro.rng import RngLike, ensure_rng

__all__ = ["TemporalQuerySession"]

Edge = Tuple[int, int]


class TemporalQuerySession:
    """Online CrashSim-T over a snapshot stream.

    Parameters
    ----------
    source:
        Query source ``u``.
    query:
        Any :class:`~repro.core.queries.TemporalQuery` (threshold, trend,
        composite, ...).
    params:
        CrashSim parameters (defaults match the paper's temporal setting).
    use_delta_pruning, use_difference_pruning:
        Property 1 / 2 switches, as in the batch driver.
    seed:
        Drives all Monte-Carlo trials of the session.
    sampler:
        Weighted neighbour-sampling strategy forwarded to every CrashSim
        run of the session (``"cdf"`` default / ``"alias"`` opt-in).
    """

    def __init__(
        self,
        source: int,
        query: TemporalQuery,
        *,
        params: Optional[CrashSimParams] = None,
        use_delta_pruning: bool = True,
        use_difference_pruning: bool = True,
        seed: RngLike = None,
        sampler: str = "cdf",
    ):
        self.source = int(source)
        self.query = query
        self.params = params or CrashSimParams()
        self.use_delta_pruning = use_delta_pruning
        self.use_difference_pruning = use_difference_pruning
        self.sampler = sampler
        self._rng = ensure_rng(seed)
        self._graph: Optional[DiGraph] = None
        self._tree = None
        self._scores: Dict[int, float] = {}
        self._omega: List[int] = []
        self._candidate_trees = CandidateTreeCache()
        self.snapshots_seen = 0

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._graph is not None

    @property
    def survivors(self) -> Tuple[int, ...]:
        """Ω after the most recent snapshot (empty before the first)."""
        return tuple(self._omega)

    @property
    def scores(self) -> Dict[int, float]:
        """Latest SimRank estimates of the still-alive candidates."""
        return {node: self._scores[node] for node in self._omega}

    # ------------------------------------------------------------------
    # Feeding the stream
    # ------------------------------------------------------------------

    def push_snapshot(self, graph: DiGraph) -> Tuple[int, ...]:
        """Process the next snapshot given in full; returns the new Ω."""
        if self._graph is None:
            return self._start(graph)
        old_edges = self._graph.edge_set()
        new_edges = graph.edge_set()
        delta = EdgeDelta.between(set(old_edges), set(new_edges))
        return self._advance(graph, delta)

    def push_delta(
        self, added: Iterable[Edge] = (), removed: Iterable[Edge] = ()
    ) -> Tuple[int, ...]:
        """Process the next snapshot expressed as a delta; returns Ω."""
        if self._graph is None:
            raise TemporalError("push an initial snapshot before any delta")
        added = [(int(s), int(t)) for s, t in added]
        removed = [(int(s), int(t)) for s, t in removed]
        builder = GraphBuilder.from_graph(self._graph)
        # Deltas arrive as dense node ids; translate through the label
        # space the builder interns (identity for unlabelled graphs).
        labels = self._graph.node_labels or tuple(range(self._graph.num_nodes))
        for s, t in removed:
            builder.remove_edge(labels[s], labels[t])
        for s, t in added:
            builder.add_edge(labels[s], labels[t])
        graph = builder.build()
        delta = EdgeDelta(
            added=frozenset(added), removed=frozenset(removed)
        )
        return self._advance(graph, delta)

    # ------------------------------------------------------------------
    # Internals (the Algorithm 3 loop body)
    # ------------------------------------------------------------------

    def _start(self, graph: DiGraph) -> Tuple[int, ...]:
        if not 0 <= self.source < graph.num_nodes:
            raise ParameterError(
                f"source {self.source} outside the node range "
                f"[0, {graph.num_nodes})"
            )
        result = crashsim(
            graph,
            self.source,
            params=self.params,
            seed=self._rng,
            sampler=self.sampler,
        )
        self._graph = graph
        self._tree = result.tree
        self._scores = result.as_dict()
        mask = self.query.initial_mask(result.scores)
        self._omega = [int(v) for v in result.candidates[mask]]
        self.snapshots_seen = 1
        return self.survivors

    def _advance(self, graph: DiGraph, delta: EdgeDelta) -> Tuple[int, ...]:
        """Process one transition **transactionally**.

        Everything — the advanced source tree, pruning decisions, candidate
        -tree cache mutations, Monte-Carlo scores, the new Ω — is computed
        into locals (and a cloned cache) first; session state is assigned
        only in the commit block at the end.  If anything raises mid-push
        (a worker crash surfacing as an exception, a fault injection, a
        keyboard interrupt), the session stays exactly in its pre-push
        state — including the RNG, whose bit-generator state is restored so
        a retried push reproduces the same trial bits.
        """
        if graph.num_nodes != self._graph.num_nodes:
            raise TemporalError("snapshot streams share one node set")
        rng_state = self._rng.bit_generator.state
        try:
            return self._advance_or_raise(graph, delta)
        except BaseException:
            self._rng.bit_generator.state = rng_state
            raise

    def _advance_or_raise(self, graph: DiGraph, delta: EdgeDelta) -> Tuple[int, ...]:
        next_seen = self.snapshots_seen + 1
        if not self._omega:
            self._graph = graph
            self.snapshots_seen = next_seen
            return self.survivors
        tree_cur = revreach_update(
            self._tree,
            graph,
            delta.added,
            delta.removed,
            directed=graph.directed,
        )
        n_r = self.params.n_r(max(graph.num_nodes, 2))

        candidate_trees = self._candidate_trees.clone()
        residual: Set[int] = set(self._omega)
        carried: Set[int] = set()
        if tree_cur is self._tree or tree_cur.same_as(self._tree):
            edge_count = max(count_candidate_edges(graph, self._omega), 1)
            if (
                self.use_delta_pruning
                and not delta.is_empty()
                and delta.num_changed < len(self._omega) * n_r / edge_count
            ):
                changed = set(delta.added) | set(delta.removed)
                affected = affected_area(
                    graph, changed, self.params.l_max
                ) | affected_area(self._graph, changed, self.params.l_max)
                exempt = residual - affected
                carried |= exempt
                residual -= exempt
            elif self.use_delta_pruning and delta.is_empty():
                carried |= residual
                residual = set()
            if self.use_difference_pruning and residual and edge_count < n_r:
                # Full-graph tree comparison; the paper's E_Ω restriction
                # is unsound (see crashsim_t / DESIGN.md §2.6).  Candidate
                # trees come from the cloned cache: reused across pushes,
                # advanced incrementally over the delta, committed below.
                for node in sorted(residual):
                    prev_tree = candidate_trees.tree_for(
                        node,
                        next_seen - 1,
                        self._graph,
                        self.params.l_max,
                        self.params.c,
                    )
                    cur_tree = candidate_trees.advance(
                        node,
                        prev_tree,
                        next_seen,
                        graph,
                        delta.added,
                        delta.removed,
                        directed=graph.directed,
                    )
                    if cur_tree is prev_tree or cur_tree.same_as(prev_tree):
                        carried.add(node)
                        residual.discard(node)

        faults.inject("advance", next_seen)
        scores_cur: Dict[int, float] = {
            node: self._scores[node] for node in carried
        }
        if residual:
            partial = crashsim(
                graph,
                self.source,
                candidates=sorted(residual),
                params=self.params,
                tree=tree_cur,
                seed=self._rng,
                sampler=self.sampler,
            )
            scores_cur.update(partial.as_dict())

        ordered = np.array(sorted(self._omega), dtype=np.int64)
        prev_vector = np.array([self._scores[int(v)] for v in ordered])
        cur_vector = np.array([scores_cur[int(v)] for v in ordered])
        keep = self.query.step_mask(prev_vector, cur_vector)
        omega = [int(v) for v in ordered[keep]]
        candidate_trees.retain(omega)

        # --- Commit: the push can no longer fail past this point.
        self._omega = omega
        self._candidate_trees = candidate_trees
        self._scores = scores_cur
        self._graph = graph
        self._tree = tree_cur
        self.snapshots_seen = next_seen
        return self.survivors
