"""Temporal SimRank query predicates (paper Definitions 3–5).

A :class:`TemporalQuery` decides, per snapshot, which candidates survive.
CrashSim-T and the baseline adapters both drive these objects, so "the
query" is defined exactly once:

* :class:`ThresholdQuery` — keep ``v`` while ``s_t(u, v) > θ`` at *every*
  instant of the interval (Definition 5);
* :class:`TrendQuery` — keep ``v`` while ``s_t(u, v)`` is continuously
  increasing (or decreasing) across the interval (Definition 4).

Scores arrive as parallel NumPy arrays; predicates return boolean masks so
filtering stays vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Protocol, runtime_checkable

import numpy as np

from repro.errors import QueryError

__all__ = ["TemporalQuery", "ThresholdQuery", "TrendQuery", "CompositeQuery"]


@runtime_checkable
class TemporalQuery(Protocol):
    """Protocol every temporal SimRank query implements."""

    def initial_mask(self, scores: np.ndarray) -> np.ndarray:
        """Survivors after the interval's *first* snapshot."""
        ...

    def step_mask(self, previous_scores: np.ndarray, scores: np.ndarray) -> np.ndarray:
        """Survivors after a subsequent snapshot, given both score vectors."""
        ...

    def describe(self) -> str:
        """Human-readable one-liner for experiment reports."""
        ...


@dataclass(frozen=True)
class ThresholdQuery:
    """Temporal SimRank Thresholds Query (Definition 5).

    ``v ∈ Ω`` iff ``s_t(u, v) > theta`` for every ``t`` in the interval.
    """

    theta: float

    def __post_init__(self):
        if not 0.0 <= self.theta < 1.0:
            raise QueryError(f"theta must be in [0, 1), got {self.theta}")

    def initial_mask(self, scores: np.ndarray) -> np.ndarray:
        return np.asarray(scores) > self.theta

    def step_mask(self, previous_scores: np.ndarray, scores: np.ndarray) -> np.ndarray:
        return np.asarray(scores) > self.theta

    def describe(self) -> str:
        return f"threshold(theta={self.theta})"


@dataclass(frozen=True)
class TrendQuery:
    """Temporal SimRank Trend Query (Definition 4).

    ``v ∈ Ω`` iff ``s_t(u, v)`` is continuously increasing (or decreasing)
    over the interval.  ``tolerance`` absorbs Monte-Carlo noise: with the
    default 0 the comparison is the literal ``s_t ≥ s_{t-1}`` (monotone
    non-strict); a positive tolerance accepts ``s_t ≥ s_{t-1} - tolerance``.
    """

    direction: Literal["increasing", "decreasing"] = "increasing"
    tolerance: float = 0.0

    def __post_init__(self):
        if self.direction not in ("increasing", "decreasing"):
            raise QueryError(
                f"direction must be 'increasing' or 'decreasing', got {self.direction!r}"
            )
        if self.tolerance < 0.0:
            raise QueryError(f"tolerance must be non-negative, got {self.tolerance}")

    def initial_mask(self, scores: np.ndarray) -> np.ndarray:
        # A trend needs at least two observations; everyone survives the
        # first snapshot.
        return np.ones(np.asarray(scores).shape, dtype=bool)

    def step_mask(self, previous_scores: np.ndarray, scores: np.ndarray) -> np.ndarray:
        previous_scores = np.asarray(previous_scores)
        scores = np.asarray(scores)
        if self.direction == "increasing":
            return scores >= previous_scores - self.tolerance
        return scores <= previous_scores + self.tolerance

    def describe(self) -> str:
        return f"trend({self.direction}, tol={self.tolerance})"


@dataclass(frozen=True)
class CompositeQuery:
    """Conjunction / disjunction of temporal queries.

    The paper's motivating Example 1 wants users whose similarity is
    *stably high* — a threshold condition AND a non-decreasing trend — in
    one interval scan.  ``mode="all"`` keeps a candidate only while every
    sub-query keeps it; ``mode="any"`` while at least one does.

    >>> import numpy as np
    >>> query = CompositeQuery(
    ...     (ThresholdQuery(theta=0.1), TrendQuery(direction="increasing")),
    ...     mode="all",
    ... )
    >>> query.step_mask(np.array([0.2, 0.2]), np.array([0.25, 0.05])).tolist()
    [True, False]
    """

    queries: tuple
    mode: Literal["all", "any"] = "all"

    def __post_init__(self):
        if not self.queries:
            raise QueryError("CompositeQuery needs at least one sub-query")
        if self.mode not in ("all", "any"):
            raise QueryError(f"mode must be 'all' or 'any', got {self.mode!r}")
        object.__setattr__(self, "queries", tuple(self.queries))

    def _combine(self, masks) -> np.ndarray:
        stacked = np.vstack(masks)
        if self.mode == "all":
            return stacked.all(axis=0)
        return stacked.any(axis=0)

    def initial_mask(self, scores: np.ndarray) -> np.ndarray:
        return self._combine([q.initial_mask(scores) for q in self.queries])

    def step_mask(self, previous_scores: np.ndarray, scores: np.ndarray) -> np.ndarray:
        return self._combine(
            [q.step_mask(previous_scores, scores) for q in self.queries]
        )

    def describe(self) -> str:
        joiner = " & " if self.mode == "all" else " | "
        return "(" + joiner.join(q.describe() for q in self.queries) + ")"
