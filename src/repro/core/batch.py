"""Cross-query batch scoring: many single-source queries, one kernel pass.

A long-lived query server collects concurrent single-source requests into
small batches (see :mod:`repro.serve`).  This module is the *deterministic
core* of that batching: :func:`crashsim_batch` scores a list of
:class:`BatchQuery` objects and returns, for each, a
:class:`~repro.core.crashsim.CrashSimResult` that is **byte-identical** to
what a sequential :func:`~repro.core.crashsim.crashsim` call with the same
``(source, candidates, seed, sampler)`` would produce — no matter how the
queries are partitioned into batches.  That *batch-composition invariance*
is what lets a server coalesce whatever happens to be in its queue without
changing any caller-visible bit (pinned by the Hypothesis suite in
``tests/serve/test_batching_properties.py``).

Where the speedup comes from
----------------------------
Walk draws are the dominant cost, and CrashSim's randomness lives entirely
in the *candidate* walks — the source only contributes its deterministic
reverse reachable tree.  Two queries can therefore share one walk stream
iff they would consume **identical draws**: same replayable seed and same
walk-target array.  Queries in a batch are grouped by that coalescing key:

* a group of ``q ≥ 2`` compatible queries runs through
  :meth:`~repro.walks.kernel.WalkCrashKernel.accumulate_multi` — one shared
  walk stream scored against all ``q`` trees at once (the 3.1x multi-source
  path), and because ``accumulate_multi`` consumes the RNG exactly like
  ``q`` identically-seeded ``accumulate`` calls would, every row is
  bit-equal to its query's solo run;
* everything else (distinct seeds, live ``Generator`` seeds, ``None``
  seeds, distinct target sets) is scored individually — but still through
  one shared kernel with warm buffers, and with trees supplied by the
  caller's cache instead of rebuilt per query.

The practical coalescing case is a fixed candidate *catalogue* that query
sources are not members of (similarity search over an item corpus): every
query then shares one walk-target array, and a server that assigns one
replayable seed per batching window gets the shared-stream path for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.crashsim import CrashSimResult, resolve_candidates
from repro.core.params import CrashSimParams
from repro.core.revreach import revreach_levels
from repro.errors import ParameterError
from repro.graph.digraph import DiGraph
from repro.rng import RngLike, ensure_rng
from repro.walks.kernel import WalkCrashKernel

__all__ = ["BatchQuery", "crashsim_batch", "coalesce_seed_key"]


@dataclass(frozen=True)
class BatchQuery:
    """One single-source query inside a batch.

    Parameters mirror :func:`~repro.core.crashsim.crashsim`:

    source:
        Query source node.
    seed:
        Anything :func:`repro.rng.ensure_rng` accepts.  Only *replayable*
        seeds (``int`` / :class:`numpy.random.SeedSequence`) can coalesce
        with other queries; a live ``Generator`` or ``None`` is consumed
        exactly as a solo :func:`crashsim` call would consume it.
    candidates:
        Candidate set Ω, or ``None`` for all nodes except the source.
    """

    source: int
    seed: RngLike = None
    candidates: Optional[Iterable[int]] = None


def coalesce_seed_key(seed: RngLike) -> Optional[Tuple]:
    """A hashable replay key for ``seed``, or ``None`` if not replayable.

    Two queries may share one walk stream only when re-seeding would
    reproduce identical draws for each of them individually: plain integers
    and :class:`~numpy.random.SeedSequence` qualify; ``None`` (OS entropy)
    and live generators (stateful, single-use) never do.
    """
    if isinstance(seed, (int, np.integer)):
        return ("int", int(seed))
    if isinstance(seed, np.random.SeedSequence):
        entropy = seed.entropy
        if isinstance(entropy, (list, tuple)):
            entropy = tuple(int(e) for e in entropy)
        elif entropy is not None:
            entropy = int(entropy)
        return (
            "seq",
            entropy,
            tuple(int(k) for k in seed.spawn_key),
            int(seed.pool_size),
        )
    return None


@dataclass
class _Prepared:
    """A query with its layout resolved: candidates, targets, tree."""

    query: BatchQuery
    source: int
    candidate_array: np.ndarray
    walk_targets: np.ndarray
    tree: object
    totals: Optional[np.ndarray] = None
    group: Optional[Tuple] = field(default=None, compare=False)


def _validate_tree(tree, source: int, l_max: int, c: float, variant: str):
    import math

    if (
        getattr(tree, "source", source) != source
        or getattr(tree, "l_max", l_max) != l_max
        or getattr(tree, "variant", variant) != variant
        or not math.isclose(getattr(tree, "c", c), c)
    ):
        raise ParameterError(
            "tree_provider returned a tree that does not match the query's "
            "source/c/l_max/variant"
        )
    return tree


def crashsim_batch(
    graph: DiGraph,
    queries: Sequence[BatchQuery],
    *,
    params: Optional[CrashSimParams] = None,
    tree_variant: str = "corrected",
    sampler: str = "cdf",
    kernel: Optional[WalkCrashKernel] = None,
    tree_provider: Optional[Callable[[int], object]] = None,
    stats: Optional[Dict[str, int]] = None,
) -> List[CrashSimResult]:
    """Score a batch of single-source queries, coalescing shared walks.

    Parameters
    ----------
    graph, params, tree_variant, sampler:
        As :func:`~repro.core.crashsim.crashsim`; one parameter set covers
        the whole batch (a server partitions incompatible requests into
        separate batches *before* calling this).
    kernel:
        A warm :class:`~repro.walks.kernel.WalkCrashKernel` to reuse across
        batches (its ``sampler`` takes precedence, as in
        :func:`~repro.core.crashsim.accumulate_crash_totals`); built fresh
        when omitted.
    tree_provider:
        ``source -> tree`` callable (a server's LRU cache); defaults to
        building each tree with :func:`revreach_levels`.  Returned trees
        are validated against the query's ``source``/``c``/``l_max``/
        ``variant``.
    stats:
        Optional dict; when given, ``coalesced_queries``,
        ``shared_walk_groups``, and ``solo_queries`` counters are
        accumulated into it.

    Returns
    -------
    list of CrashSimResult
        One per query, in input order, each byte-identical to the
        corresponding sequential ``crashsim`` call.
    """
    params = params or CrashSimParams()
    if kernel is None:
        kernel = WalkCrashKernel(graph, params.c, sampler=sampler)
    l_max = params.l_max
    n_r = params.n_r(max(graph.num_nodes, 2))
    if tree_provider is None:
        built: Dict[int, object] = {}

        def tree_provider(source: int):
            tree = built.get(source)
            if tree is None:
                tree = revreach_levels(
                    graph, source, l_max, params.c, variant=tree_variant
                )
                built[source] = tree
            return tree

    in_degrees = graph.in_degrees()
    prepared: List[_Prepared] = []
    groups: Dict[Tuple, List[_Prepared]] = {}
    for position, query in enumerate(queries):
        source = int(query.source)
        if not 0 <= source < graph.num_nodes:
            raise ParameterError(
                f"source {source} outside the graph's node range "
                f"[0, {graph.num_nodes})"
            )
        candidate_array = resolve_candidates(graph, source, query.candidates)
        walk_targets = candidate_array[candidate_array != source]
        walk_targets = walk_targets[in_degrees[walk_targets] > 0]
        tree = _validate_tree(
            tree_provider(source), source, l_max, params.c, tree_variant
        )
        item = _Prepared(query, source, candidate_array, walk_targets, tree)
        seed_key = coalesce_seed_key(query.seed)
        if seed_key is not None and walk_targets.size:
            item.group = (seed_key, walk_targets.tobytes())
            groups.setdefault(item.group, []).append(item)
        prepared.append(item)

    shared_groups = 0
    coalesced = 0
    for group in groups.values():
        if len(group) < 2:
            continue
        # Shared walk stream: one accumulate_multi over the group's trees.
        # Every member consumes the same draws its solo run would, so each
        # row is bit-equal to that member's individual accumulate().
        rng = ensure_rng(group[0].query.seed)
        with obs.span("batch_coalesce", queries=len(group)):
            matrix = kernel.accumulate_multi(
                [item.tree for item in group],
                group[0].walk_targets,
                n_r,
                l_max=l_max,
                rng=rng,
            )
        for row, item in enumerate(group):
            item.totals = matrix[row]
        shared_groups += 1
        coalesced += len(group)

    solo = 0
    for item in prepared:
        if item.totals is None:
            rng = ensure_rng(item.query.seed)
            item.totals = kernel.accumulate(
                item.tree, item.walk_targets, n_r, l_max=l_max, rng=rng
            )
            solo += 1

    if stats is not None:
        stats["shared_walk_groups"] = stats.get("shared_walk_groups", 0) + shared_groups
        stats["coalesced_queries"] = stats.get("coalesced_queries", 0) + coalesced
        stats["solo_queries"] = stats.get("solo_queries", 0) + solo

    results: List[CrashSimResult] = []
    for item in prepared:
        # Exactly crashsim()'s assembly, op for op: the byte-identity
        # contract depends on replicating its float-op order.
        scores = np.zeros(item.candidate_array.size, dtype=np.float64)
        walk_positions = np.searchsorted(item.candidate_array, item.walk_targets)
        scores[walk_positions] = item.totals / n_r
        scores[item.candidate_array == item.source] = 1.0
        scores = np.clip(scores, 0.0, 1.0)
        results.append(
            CrashSimResult(
                source=item.source,
                candidates=item.candidate_array,
                scores=scores,
                n_r=n_r,
                params=params,
                tree=item.tree,
            )
        )
    return results
