"""revReach (paper Algorithm 2): the reverse reachable tree of a source.

The tree ``U`` describes the source's √c-walk ``W(u)``: ``U[step, x]`` is
the occupancy mass of node ``x`` at distance ``step``.  Two transition
variants are supported (DESIGN.md §2.1):

* ``"corrected"`` (default) — ``U[step+1, v] += √c / |I(tu)| · U[step, tu]``
  for ``v ∈ I(tu)``: the exact occupancy distribution of ``W(u)``, which
  makes CrashSim's crash estimator unbiased for the meeting probability.
* ``"paper"`` — ``U[step+1, v] += √c / |I(v)| · U[step, tu]``: the literal
  Algorithm 2 / Example 2 arithmetic.

Representations
---------------

√c-walk occupancy is geometrically sparse — level ``step`` carries total
mass ``(√c)^step`` spread over at most ``min(m, Δ^step)`` nodes — so the
default representation is :class:`SparseReverseTree`: per-level sorted
``(nodes, probs)`` arrays packed CSR-style, built in ``O(touched)`` by
frontier propagation.  Construction never allocates anything of size
``O(n)``; equality tests (:meth:`SparseReverseTree.same_as`) fast-reject
through per-level content fingerprints; and the crash-accumulation gather
(:meth:`SparseReverseTree.gather`) binary-searches each level's support,
falling back to a lazily materialised dense row only for levels whose
support exceeds :data:`DENSITY_THRESHOLD` of ``n``.

The legacy dense matrix form lives on as :class:`ReverseReachableTree`
(``revreach_levels(..., dense=True)``, and :func:`revreach_queue` output);
both classes expose ``.matrix`` / ``probability()`` / ``same_as`` so every
consumer works with either.  Sparse and dense construction are bit-for-bit
identical (property-tested): the sparse aggregation replays exactly the
accumulation order of the dense scatter-add.

Traversals
----------

* :func:`revreach_levels` — level-synchronous frontier propagation,
  ``O(l_max · m)`` worst case but ``O(touched)`` in practice (default);
* :func:`revreach_update` — incremental rebase onto a changed graph,
  re-propagating only below the shallowest occupied head of a changed arc;
* :func:`revreach_queue` — the literal queue/BFS of Algorithm 2, including
  its parent-exclusion rule, kept for fidelity tests (the parent exclusion
  drops some cyclic mass, so its ``U`` can differ on graphs with 2-cycles —
  tests pin exactly where).
"""

from __future__ import annotations

import hashlib
import math
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Literal, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.errors import ParameterError
from repro.graph.digraph import DiGraph

__all__ = [
    "DENSITY_THRESHOLD",
    "ReverseReachableTree",
    "SparseReverseTree",
    "revreach_levels",
    "revreach_queue",
    "revreach_update",
]

TreeVariant = Literal["corrected", "paper"]

#: Fraction of ``n`` above which a level's support is considered dense:
#: :meth:`SparseReverseTree.gather` materialises (and caches) a full
#: length-``n`` row for such levels instead of binary-searching, because a
#: direct index costs ``O(walks)`` while searchsorted costs
#: ``O(walks · log support)`` without saving meaningful memory.
DENSITY_THRESHOLD = 0.25

_FINGERPRINT_BYTES = 16

# Every full tree construction in the process funnels through
# revreach_levels, so one counter here covers api, serve, parallel, and
# temporal call sites alike; incremental rebases count separately.
_M_TREE_BUILDS = obs.REGISTRY.counter(
    "repro_tree_builds_total",
    "Full reverse reachable tree constructions (revreach_levels).",
)
_M_TREE_UPDATES = obs.REGISTRY.counter(
    "repro_tree_updates_total",
    "Incremental tree rebases that re-propagated at least one level.",
)
_M_TREE_UPDATE_SKIPS = obs.REGISTRY.counter(
    "repro_tree_update_skips_total",
    "Incremental rebases returned unchanged (no occupied changed head).",
)


def _level_fingerprint(nodes: np.ndarray, probs: np.ndarray) -> bytes:
    """Content hash of one level — the ``same_as`` fast-reject token."""
    digest = hashlib.blake2b(digest_size=_FINGERPRINT_BYTES)
    digest.update(nodes.tobytes())
    digest.update(probs.tobytes())
    return digest.digest()


class SparseReverseTree:
    """Sparse per-level reverse reachable tree (the default representation).

    Levels are packed CSR-style: ``nodes[level_indptr[s]:level_indptr[s+1]]``
    holds the sorted node ids occupied at step ``s`` and ``probs`` the
    aligned occupancy masses (strictly positive — zero entries are never
    stored).  All arrays are read-only so trees can be shared safely.

    Attributes
    ----------
    source, c, l_max, variant:
        Provenance, as for :class:`ReverseReachableTree`.
    num_nodes:
        ``n`` of the graph the tree was built on (needed to densify).
    level_indptr:
        ``int64 (l_max + 2,)`` — level boundaries into ``nodes``/``probs``.
    nodes:
        ``int64 (nnz,)`` — occupied node ids, sorted within each level.
    probs:
        ``float64 (nnz,)`` — occupancy masses aligned with ``nodes``.
    """

    def __init__(
        self,
        source: int,
        c: float,
        l_max: int,
        variant: str,
        num_nodes: int,
        level_indptr: np.ndarray,
        nodes: np.ndarray,
        probs: np.ndarray,
    ):
        self.source = int(source)
        self.c = float(c)
        self.l_max = int(l_max)
        self.variant = str(variant)
        self.num_nodes = int(num_nodes)
        self.level_indptr = np.ascontiguousarray(level_indptr, dtype=np.int64)
        self.nodes = np.ascontiguousarray(nodes, dtype=np.int64)
        self.probs = np.ascontiguousarray(probs, dtype=np.float64)
        if self.level_indptr.shape != (self.l_max + 2,):
            raise ParameterError(
                f"level_indptr must have shape ({self.l_max + 2},), "
                f"got {self.level_indptr.shape}"
            )
        if self.nodes.shape != self.probs.shape:
            raise ParameterError("nodes and probs must be aligned")
        for array in (self.level_indptr, self.nodes, self.probs):
            array.setflags(write=False)
        self._fingerprints: Optional[Tuple[bytes, ...]] = None
        self._dense: Optional[np.ndarray] = None
        self._dense_rows: Dict[int, np.ndarray] = {}

    # -- construction ---------------------------------------------------

    @classmethod
    def from_levels(
        cls,
        source: int,
        c: float,
        l_max: int,
        variant: str,
        num_nodes: int,
        levels: Sequence[Tuple[np.ndarray, np.ndarray]],
    ) -> "SparseReverseTree":
        """Pack per-level ``(nodes, probs)`` pairs; missing levels are empty."""
        level_indptr = np.zeros(l_max + 2, dtype=np.int64)
        for step, (nodes, _) in enumerate(levels):
            level_indptr[step + 1] = level_indptr[step] + nodes.size
        level_indptr[len(levels) + 1 :] = level_indptr[len(levels)]
        if levels:
            nodes = np.concatenate([nodes for nodes, _ in levels])
            probs = np.concatenate([probs for _, probs in levels])
        else:
            nodes = np.empty(0, dtype=np.int64)
            probs = np.empty(0, dtype=np.float64)
        return cls(source, c, l_max, variant, num_nodes, level_indptr, nodes, probs)

    @classmethod
    def from_dense(cls, tree: "ReverseReachableTree", num_nodes: Optional[int] = None) -> "SparseReverseTree":
        """Sparsify a dense tree (exact: keeps every non-zero entry)."""
        matrix = tree.matrix
        levels = []
        for step in range(tree.l_max + 1):
            row = matrix[step]
            nodes = np.nonzero(row)[0].astype(np.int64)
            levels.append((nodes, row[nodes].astype(np.float64)))
        return cls.from_levels(
            tree.source,
            tree.c,
            tree.l_max,
            tree.variant,
            num_nodes if num_nodes is not None else matrix.shape[1],
            levels,
        )

    # -- level access ---------------------------------------------------

    def level_arrays(self, step: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(nodes, probs)`` of one level — zero-copy slices."""
        if not 0 <= step <= self.l_max:
            raise ParameterError(f"step {step} outside [0, {self.l_max}]")
        lo, hi = int(self.level_indptr[step]), int(self.level_indptr[step + 1])
        return self.nodes[lo:hi], self.probs[lo:hi]

    def level_size(self, step: int) -> int:
        """Support size of one level."""
        if not 0 <= step <= self.l_max:
            raise ParameterError(f"step {step} outside [0, {self.l_max}]")
        return int(self.level_indptr[step + 1] - self.level_indptr[step])

    @property
    def nnz(self) -> int:
        """Total stored entries across all levels."""
        return int(self.nodes.size)

    def probability(self, step: int, node: int) -> float:
        """``U[step, node]`` with bounds checking."""
        nodes, probs = self.level_arrays(step)
        index = int(np.searchsorted(nodes, node))
        if index < nodes.size and nodes[index] == node:
            return float(probs[index])
        return 0.0

    def level(self, step: int) -> Dict[int, float]:
        """Sparse view of one level as ``{node: probability}``."""
        nodes, probs = self.level_arrays(step)
        return {
            int(node): float(prob)
            for node, prob in zip(nodes.tolist(), probs.tolist())
        }

    def support(self) -> np.ndarray:
        """Nodes with non-zero probability at any level (sorted ids)."""
        return np.unique(self.nodes)

    def total_mass(self, step: int) -> float:
        """Σ_x U[step, x] — equals ``(√c)^step`` for the corrected variant
        on graphs with no dangling nodes."""
        _, probs = self.level_arrays(step)
        return float(probs.sum())

    # -- dense compatibility surface ------------------------------------

    def to_dense(self) -> "ReverseReachableTree":
        """The equivalent dense :class:`ReverseReachableTree`."""
        return ReverseReachableTree(
            source=self.source,
            c=self.c,
            l_max=self.l_max,
            variant=self.variant,
            matrix=self.matrix,
        )

    @property
    def matrix(self) -> np.ndarray:
        """Dense ``(l_max + 1, n)`` view, materialised lazily and cached.

        Compatibility surface only — hot paths (crash accumulation, tree
        comparison, incremental update) never touch it.
        """
        if self._dense is None:
            dense = np.zeros((self.l_max + 1, self.num_nodes), dtype=np.float64)
            for step in range(self.l_max + 1):
                nodes, probs = self.level_arrays(step)
                dense[step, nodes] = probs
            dense.setflags(write=False)
            self._dense = dense
        return self._dense

    # -- hot-path operations --------------------------------------------

    def gather(self, step: int, positions: np.ndarray) -> np.ndarray:
        """``U[step, positions]`` — the crash-accumulation read.

        Binary-searches the level's sorted support (``O(log support)`` per
        walk); levels denser than :data:`DENSITY_THRESHOLD` · ``n`` are
        materialised once into a cached dense row and indexed directly.
        """
        nodes, probs = self.level_arrays(step)
        if nodes.size == 0:
            return np.zeros(np.shape(positions), dtype=np.float64)
        if nodes.size >= DENSITY_THRESHOLD * self.num_nodes:
            row = self._dense_rows.get(step)
            if row is None:
                row = np.zeros(self.num_nodes, dtype=np.float64)
                row[nodes] = probs
                self._dense_rows[step] = row
            return row[positions]
        index = np.searchsorted(nodes, positions)
        np.minimum(index, nodes.size - 1, out=index)
        return np.where(nodes[index] == positions, probs[index], 0.0)

    def first_level_containing(
        self, heads: np.ndarray, *, limit: Optional[int] = None
    ) -> Optional[int]:
        """Shallowest level ``< limit`` occupying any of ``heads`` (or None).

        One vectorised membership pass over the packed ``nodes`` array —
        the head-occupancy scan of :func:`revreach_update` and the
        ``tree_unaffected_by_delta`` gate.
        """
        limit = self.l_max if limit is None else min(int(limit), self.l_max + 1)
        heads = np.asarray(heads, dtype=np.int64)
        end = int(self.level_indptr[max(limit, 0)])
        if end == 0 or heads.size == 0:
            return None
        hits = np.nonzero(np.isin(self.nodes[:end], heads))[0]
        if hits.size == 0:
            return None
        return int(np.searchsorted(self.level_indptr, hits[0], side="right") - 1)

    # -- equality -------------------------------------------------------

    def fingerprints(self) -> Tuple[bytes, ...]:
        """Per-level content hashes, computed once and cached."""
        if self._fingerprints is None:
            self._fingerprints = tuple(
                _level_fingerprint(*self.level_arrays(step))
                for step in range(self.l_max + 1)
            )
        return self._fingerprints

    def same_as(self, other, *, tol: float = 0.0) -> bool:
        """Whether two trees are (numerically) identical — the comparison
        both pruning gates of Algorithm 3 perform.

        Sparse-vs-sparse exact comparison fast-rejects through level sizes
        and fingerprints before touching the payload arrays; a full array
        comparison confirms fingerprint agreement, so the answer never
        depends on hash collisions.
        """
        if self is other:
            return True
        if (
            self.source != getattr(other, "source", None)
            or self.l_max != getattr(other, "l_max", None)
            or self.variant != getattr(other, "variant", None)
        ):
            return False
        if isinstance(other, SparseReverseTree) and tol == 0.0:
            if self.num_nodes != other.num_nodes:
                return False
            if not np.array_equal(self.level_indptr, other.level_indptr):
                return False
            if self.fingerprints() != other.fingerprints():
                return False
            return bool(
                np.array_equal(self.nodes, other.nodes)
                and np.array_equal(self.probs, other.probs)
            )
        # Cross-representation or tolerant comparison: fall back to the
        # dense surface (cold path — ablation/test tooling only).
        if self.matrix.shape != other.matrix.shape:
            return False
        if tol == 0.0:
            return bool(np.array_equal(self.matrix, other.matrix))
        return bool(np.allclose(self.matrix, other.matrix, atol=tol, rtol=0.0))

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"SparseReverseTree(source={self.source}, l_max={self.l_max}, "
            f"variant={self.variant!r}, nnz={self.nnz}, n={self.num_nodes})"
        )


@dataclass(frozen=True)
class ReverseReachableTree:
    """Dense ``U`` matrix of Algorithm 2 plus its provenance (legacy form).

    Attributes
    ----------
    source:
        The source node ``u``.
    c:
        Decay factor the tree was built with.
    l_max:
        Number of propagated levels; ``matrix`` has ``l_max + 1`` rows.
    variant:
        Transition variant (see module docstring).
    matrix:
        Dense float64 array, ``shape (l_max + 1, n)``; row ``step`` holds
        ``U[step, ·]``.  Marked read-only so trees can be shared safely.
    """

    source: int
    c: float
    l_max: int
    variant: str
    matrix: np.ndarray

    def probability(self, step: int, node: int) -> float:
        """``U[step, node]`` with bounds checking."""
        if not 0 <= step <= self.l_max:
            raise ParameterError(f"step {step} outside [0, {self.l_max}]")
        return float(self.matrix[step, node])

    def level(self, step: int) -> Dict[int, float]:
        """Sparse view of one level as ``{node: probability}``."""
        row = self.matrix[step]
        nonzero = np.nonzero(row)[0]
        return {int(node): float(row[node]) for node in nonzero}

    def support(self) -> np.ndarray:
        """Nodes with non-zero probability at any level (sorted ids)."""
        return np.nonzero(self.matrix.any(axis=0))[0]

    def total_mass(self, step: int) -> float:
        """Σ_x U[step, x] — equals ``(√c)^step`` for the corrected variant
        on graphs with no dangling nodes."""
        return float(self.matrix[step].sum())

    def gather(self, step: int, positions: np.ndarray) -> np.ndarray:
        """``U[step, positions]`` — dense fancy-indexing read."""
        return self.matrix[step, positions]

    def to_sparse(self) -> SparseReverseTree:
        """The equivalent :class:`SparseReverseTree`."""
        return SparseReverseTree.from_dense(self)

    def same_as(self, other, *, tol: float = 0.0) -> bool:
        """Whether two trees are (numerically) identical — the comparison
        both pruning gates of Algorithm 3 perform."""
        if (
            self.source != getattr(other, "source", None)
            or self.l_max != getattr(other, "l_max", None)
            or self.variant != getattr(other, "variant", None)
            or self.matrix.shape != other.matrix.shape
        ):
            return False
        if tol == 0.0:
            return bool(np.array_equal(self.matrix, other.matrix))
        return bool(np.allclose(self.matrix, other.matrix, atol=tol, rtol=0.0))


def _validate(graph: DiGraph, source: int, l_max: int, c: float) -> None:
    if not 0.0 < c < 1.0:
        raise ParameterError(f"decay factor c must be in (0, 1), got {c}")
    if l_max < 0:
        raise ParameterError(f"l_max must be non-negative, got {l_max}")
    if not 0 <= source < graph.num_nodes:
        raise ParameterError(
            f"source {source} outside the graph's node range [0, {graph.num_nodes})"
        )


def revreach_levels(
    graph: DiGraph,
    source: int,
    l_max: int,
    c: float,
    *,
    variant: TreeVariant = "corrected",
    prune_below: float = 0.0,
    dense: bool = False,
):
    """Level-synchronous revReach: exact ``U`` in ``O(touched)``.

    Returns a :class:`SparseReverseTree` by default; ``dense=True`` keeps
    the legacy :class:`ReverseReachableTree` (same values bit-for-bit —
    property-tested).  ``prune_below`` optionally drops per-level entries
    smaller than the given mass before propagating — a speed knob for huge
    graphs; 0 keeps the computation exact.
    """
    _validate(graph, source, l_max, c)
    if variant not in ("corrected", "paper"):
        raise ParameterError(f"unknown tree variant {variant!r}")
    if variant == "paper" and graph.is_weighted:
        raise ParameterError(
            "the literal Algorithm-2 variant is defined for unweighted "
            "graphs only; use variant='corrected'"
        )
    with obs.span("tree_build", source=int(source), l_max=int(l_max)):
        root_nodes = np.array([source], dtype=np.int64)
        root_probs = np.array([1.0], dtype=np.float64)
        levels = [(root_nodes, root_probs)]
        levels.extend(
            _propagate_sparse(
                graph, root_nodes, root_probs, l_max, math.sqrt(c), variant, prune_below
            )
        )
        tree = SparseReverseTree.from_levels(
            int(source), float(c), int(l_max), variant, graph.num_nodes, levels
        )
    _M_TREE_BUILDS.inc()
    return tree.to_dense() if dense else tree


def _propagate_sparse(
    graph: DiGraph,
    frontier_nodes: np.ndarray,
    frontier_probs: np.ndarray,
    steps: int,
    sqrt_c: float,
    variant: str,
    prune_below: float = 0.0,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Propagate ``steps`` levels from a frontier; returns one
    ``(nodes, probs)`` pair per level (possibly empty).

    The duplicate-child aggregation (``unique`` + ``bincount`` over the
    inverse index) replays the accumulation order of a dense
    ``bincount(children, weights, minlength=n)`` scatter-add exactly, so
    sparse and dense construction agree bit-for-bit.
    """
    n = graph.num_nodes
    indptr = graph.in_indptr
    indices = graph.in_indices
    in_degrees = graph.in_degrees().astype(np.float64) if variant == "paper" else None
    weight_totals = graph.in_weight_totals() if graph.is_weighted else None

    empty = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))
    levels: List[Tuple[np.ndarray, np.ndarray]] = []
    for _ in range(steps):
        if frontier_nodes.size == 0:
            levels.append(empty)
            continue
        counts = (
            indptr[frontier_nodes + 1] - indptr[frontier_nodes]
        ).astype(np.int64)
        keep = counts > 0
        nodes = frontier_nodes[keep]
        probs = frontier_probs[keep]
        counts = counts[keep]
        if nodes.size == 0:
            frontier_nodes, frontier_probs = empty
            levels.append(empty)
            continue
        total = int(counts.sum())
        # Flatten every frontier node's in-neighbour CSR block.
        starts = indptr[nodes]
        cum = np.zeros(nodes.size, dtype=np.int64)
        np.cumsum(counts[:-1], out=cum[1:])
        flat = np.repeat(starts - cum, counts) + np.arange(total, dtype=np.int64)
        children = indices[flat].astype(np.int64)
        if variant == "corrected":
            if weight_totals is None:
                weights = np.repeat(sqrt_c * probs / counts, counts)
            else:
                # Weighted walk: arc (child -> node) is taken with
                # probability w / W(node).
                weights = (
                    np.repeat(sqrt_c * probs / weight_totals[nodes], counts)
                    * graph.in_weights[flat]
                )
        else:
            child_degrees = in_degrees[children]
            with np.errstate(divide="ignore", invalid="ignore"):
                weights = np.where(
                    child_degrees > 0,
                    sqrt_c * np.repeat(probs, counts) / child_degrees,
                    0.0,
                )
        level_nodes, inverse = np.unique(children, return_inverse=True)
        level_probs = np.bincount(
            inverse, weights=weights, minlength=level_nodes.size
        )
        occupied = level_probs != 0.0
        if prune_below > 0.0:
            occupied &= level_probs >= prune_below
        if not occupied.all():
            level_nodes = level_nodes[occupied]
            level_probs = level_probs[occupied]
        frontier_nodes = level_nodes
        frontier_probs = level_probs
        levels.append((level_nodes, level_probs))
    return levels


def _changed_heads(added, removed, directed: bool) -> np.ndarray:
    """Sorted unique heads (and tails when undirected) of a delta."""
    heads = set()
    for collection in (added, removed):
        for x, y in collection:
            heads.add(int(y))
            if not directed:
                heads.add(int(x))
    return np.fromiter(sorted(heads), dtype=np.int64, count=len(heads))


def revreach_update(
    tree,
    new_graph: DiGraph,
    added,
    removed,
    *,
    directed: bool = True,
):
    """Incrementally rebase a reverse reachable tree onto a changed graph.

    A changed arc ``x → y`` first takes effect at the *shallowest* step
    ``t₀`` at which ``y`` carries occupancy mass: levels ``0..t₀`` of the
    old tree are still exact on ``new_graph``, so only levels
    ``t₀+1..l_max`` are re-propagated.  When no changed head is occupied
    at all, the old tree object is returned untouched (the
    :func:`~repro.core.pruning.tree_unaffected_by_delta` case).

    Accepts either representation and returns the same kind it was given.
    The result is bit-identical to a full :func:`revreach_levels` on
    ``new_graph`` (tests pin this); the saving grows with how deep the
    change sits relative to the source.
    """
    if tree.variant != "corrected":
        # The literal variant divides by the *child's* in-degree, so a
        # changed arc perturbs transitions wherever any parent of its head
        # is occupied — the shallowest-occupied-head analysis below does
        # not apply.
        raise ParameterError(
            "revreach_update supports the corrected variant only"
        )
    heads = _changed_heads(added, removed, directed)
    if heads.size == 0:
        _M_TREE_UPDATE_SKIPS.inc()
        return tree

    if isinstance(tree, SparseReverseTree):
        first_affected = tree.first_level_containing(heads, limit=tree.l_max)
        if first_affected is None:
            _M_TREE_UPDATE_SKIPS.inc()
            return tree
        with obs.span("tree_build", source=tree.source, rebase_from=first_affected):
            levels = [tree.level_arrays(step) for step in range(first_affected + 1)]
            frontier_nodes, frontier_probs = levels[-1]
            levels.extend(
                _propagate_sparse(
                    new_graph,
                    frontier_nodes,
                    frontier_probs,
                    tree.l_max - first_affected,
                    math.sqrt(tree.c),
                    tree.variant,
                )
            )
            rebased = SparseReverseTree.from_levels(
                tree.source, tree.c, tree.l_max, tree.variant, tree.num_nodes, levels
            )
        _M_TREE_UPDATES.inc()
        return rebased

    # Dense tree: one vectorised reduction over the heads' columns finds
    # the shallowest occupied head (no per-step Python loop).
    occupied = tree.matrix[: tree.l_max][:, heads] > 0.0
    affected_rows = np.nonzero(occupied.any(axis=1))[0]
    if affected_rows.size == 0:
        _M_TREE_UPDATE_SKIPS.inc()
        return tree
    first_affected = int(affected_rows[0])
    frontier = tree.matrix[first_affected]
    frontier_nodes = np.nonzero(frontier)[0].astype(np.int64)
    levels = _propagate_sparse(
        new_graph,
        frontier_nodes,
        frontier[frontier_nodes],
        tree.l_max - first_affected,
        math.sqrt(tree.c),
        tree.variant,
    )
    matrix = tree.matrix.copy()
    matrix.setflags(write=True)
    for offset, (nodes, probs) in enumerate(levels):
        row = matrix[first_affected + 1 + offset]
        row[:] = 0.0
        row[nodes] = probs
    matrix.setflags(write=False)
    _M_TREE_UPDATES.inc()
    return ReverseReachableTree(
        source=tree.source,
        c=tree.c,
        l_max=tree.l_max,
        variant=tree.variant,
        matrix=matrix,
    )


def revreach_queue(
    graph: DiGraph,
    source: int,
    l_max: int,
    c: float,
    *,
    variant: TreeVariant = "paper",
) -> ReverseReachableTree:
    """Literal Algorithm 2: queue traversal with parent exclusion.

    Kept for fidelity testing and the Example-2 arithmetic; the parent
    exclusion (line 9, ``v ≠ tpr``) prevents an item from re-entering via
    the node it came from, so on graphs with 2-cycles this under-counts
    relative to :func:`revreach_levels`.  Cost is proportional to the number
    of tree paths, which can be exponential in ``l_max`` — use only on small
    graphs.
    """
    _validate(graph, source, l_max, c)
    if variant not in ("corrected", "paper"):
        raise ParameterError(f"unknown tree variant {variant!r}")
    if variant == "paper" and graph.is_weighted:
        raise ParameterError(
            "the literal Algorithm-2 variant is defined for unweighted "
            "graphs only; use variant='corrected'"
        )
    n = graph.num_nodes
    sqrt_c = math.sqrt(c)
    weight_totals = graph.in_weight_totals() if graph.is_weighted else None
    matrix = np.zeros((l_max + 1, n), dtype=np.float64)
    matrix[0, source] = 1.0

    # Queue items are (level, node, probability-of-this-tree-path); PR of
    # Algorithm 2 rides along as the parent entry of each item.
    queue: deque = deque([(0, int(source), 1.0)])
    parents: deque = deque([-1])
    while queue:
        level, node, prob = queue.popleft()
        parent = parents.popleft()
        if level >= l_max:
            continue
        in_neighbors = graph.in_neighbors(node)
        for child in in_neighbors:
            child = int(child)
            if child == parent:
                continue
            if variant == "paper":
                degree = graph.in_degree(child)
                contribution = sqrt_c / degree * prob if degree else 0.0
            elif weight_totals is not None:
                contribution = (
                    sqrt_c
                    * graph.edge_weight(child, node)
                    / weight_totals[node]
                    * prob
                )
            else:
                contribution = sqrt_c / in_neighbors.size * prob
            if contribution == 0.0:
                continue
            matrix[level + 1, child] += contribution
            queue.append((level + 1, child, contribution))
            parents.append(node)

    matrix.setflags(write=False)
    return ReverseReachableTree(
        source=int(source), c=float(c), l_max=int(l_max), variant=variant, matrix=matrix
    )
