"""revReach (paper Algorithm 2): the reverse reachable tree of a source.

The output is a matrix ``U`` whose entry ``U[step, x]`` describes the
source's √c-walk ``W(u)`` at distance ``step``.  Two transition variants are
supported (DESIGN.md §2.1):

* ``"corrected"`` (default) — ``U[step+1, v] += √c / |I(tu)| · U[step, tu]``
  for ``v ∈ I(tu)``: the exact occupancy distribution of ``W(u)``, which
  makes CrashSim's crash estimator unbiased for the meeting probability.
* ``"paper"`` — ``U[step+1, v] += √c / |I(v)| · U[step, tu]``: the literal
  Algorithm 2 / Example 2 arithmetic.

Two traversal strategies compute the same per-variant matrix:

* :func:`revreach_levels` — level-synchronous sparse propagation with NumPy
  scatter-adds, ``O(l_max · m)`` worst case (default everywhere);
* :func:`revreach_queue` — the literal queue/BFS of Algorithm 2, including
  its parent-exclusion rule, kept for fidelity tests (the parent exclusion
  drops some cyclic mass, so its ``U`` can differ on graphs with 2-cycles —
  tests pin exactly where).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Dict, Literal

import numpy as np

from repro.errors import ParameterError
from repro.graph.digraph import DiGraph

__all__ = [
    "ReverseReachableTree",
    "revreach_levels",
    "revreach_queue",
    "revreach_update",
]

TreeVariant = Literal["corrected", "paper"]


@dataclass(frozen=True)
class ReverseReachableTree:
    """The ``U`` matrix of Algorithm 2 plus its provenance.

    Attributes
    ----------
    source:
        The source node ``u``.
    c:
        Decay factor the tree was built with.
    l_max:
        Number of propagated levels; ``matrix`` has ``l_max + 1`` rows.
    variant:
        Transition variant (see module docstring).
    matrix:
        Dense float64 array, ``shape (l_max + 1, n)``; row ``step`` holds
        ``U[step, ·]``.  Marked read-only so trees can be shared safely.
    """

    source: int
    c: float
    l_max: int
    variant: str
    matrix: np.ndarray

    def probability(self, step: int, node: int) -> float:
        """``U[step, node]`` with bounds checking."""
        if not 0 <= step <= self.l_max:
            raise ParameterError(f"step {step} outside [0, {self.l_max}]")
        return float(self.matrix[step, node])

    def level(self, step: int) -> Dict[int, float]:
        """Sparse view of one level as ``{node: probability}``."""
        row = self.matrix[step]
        nonzero = np.nonzero(row)[0]
        return {int(node): float(row[node]) for node in nonzero}

    def support(self) -> np.ndarray:
        """Nodes with non-zero probability at any level (sorted ids)."""
        return np.nonzero(self.matrix.any(axis=0))[0]

    def total_mass(self, step: int) -> float:
        """Σ_x U[step, x] — equals ``(√c)^step`` for the corrected variant
        on graphs with no dangling nodes."""
        return float(self.matrix[step].sum())

    def same_as(self, other: "ReverseReachableTree", *, tol: float = 0.0) -> bool:
        """Whether two trees are (numerically) identical — the comparison
        both pruning gates of Algorithm 3 perform."""
        if (
            self.source != other.source
            or self.l_max != other.l_max
            or self.variant != other.variant
            or self.matrix.shape != other.matrix.shape
        ):
            return False
        if tol == 0.0:
            return bool(np.array_equal(self.matrix, other.matrix))
        return bool(np.allclose(self.matrix, other.matrix, atol=tol, rtol=0.0))


def _validate(graph: DiGraph, source: int, l_max: int, c: float) -> None:
    if not 0.0 < c < 1.0:
        raise ParameterError(f"decay factor c must be in (0, 1), got {c}")
    if l_max < 0:
        raise ParameterError(f"l_max must be non-negative, got {l_max}")
    if not 0 <= source < graph.num_nodes:
        raise ParameterError(
            f"source {source} outside the graph's node range [0, {graph.num_nodes})"
        )


def revreach_levels(
    graph: DiGraph,
    source: int,
    l_max: int,
    c: float,
    *,
    variant: TreeVariant = "corrected",
    prune_below: float = 0.0,
) -> ReverseReachableTree:
    """Level-synchronous revReach: exact ``U`` in ``O(l_max · m)``.

    ``prune_below`` optionally drops per-level entries smaller than the
    given mass before propagating — a speed knob for huge graphs; 0 keeps
    the computation exact.
    """
    _validate(graph, source, l_max, c)
    if variant not in ("corrected", "paper"):
        raise ParameterError(f"unknown tree variant {variant!r}")
    if variant == "paper" and graph.is_weighted:
        raise ParameterError(
            "the literal Algorithm-2 variant is defined for unweighted "
            "graphs only; use variant='corrected'"
        )
    n = graph.num_nodes
    matrix = np.zeros((l_max + 1, n), dtype=np.float64)
    matrix[0, source] = 1.0
    _propagate_levels(
        graph, matrix, 0, l_max, math.sqrt(c), variant, prune_below
    )
    matrix.setflags(write=False)
    return ReverseReachableTree(
        source=int(source), c=float(c), l_max=int(l_max), variant=variant, matrix=matrix
    )


def _propagate_levels(
    graph: DiGraph,
    matrix: np.ndarray,
    start_step: int,
    l_max: int,
    sqrt_c: float,
    variant: str,
    prune_below: float = 0.0,
) -> None:
    """Fill ``matrix[start_step+1 .. l_max]`` by propagating level by level
    from ``matrix[start_step]`` over ``graph``'s in-adjacency (in place)."""
    n = graph.num_nodes
    in_degrees = graph.in_degrees().astype(np.float64)
    indptr = graph.in_indptr
    indices = graph.in_indices
    weight_totals = graph.in_weight_totals() if graph.is_weighted else None

    frontier_nodes = np.nonzero(matrix[start_step])[0].astype(np.int64)
    frontier_probs = matrix[start_step, frontier_nodes]
    for step in range(start_step, l_max):
        if frontier_nodes.size == 0:
            matrix[step + 1 :] = 0.0
            return
        counts = (indptr[frontier_nodes + 1] - indptr[frontier_nodes]).astype(np.int64)
        keep = counts > 0
        nodes = frontier_nodes[keep]
        probs = frontier_probs[keep]
        counts = counts[keep]
        if nodes.size == 0:
            matrix[step + 1 :] = 0.0
            return
        total = int(counts.sum())
        # Flatten every frontier node's in-neighbour CSR block.
        starts = indptr[nodes]
        cum = np.zeros(nodes.size, dtype=np.int64)
        np.cumsum(counts[:-1], out=cum[1:])
        flat = np.repeat(starts - cum, counts) + np.arange(total, dtype=np.int64)
        children = indices[flat].astype(np.int64)
        if variant == "corrected":
            if weight_totals is None:
                weights = np.repeat(sqrt_c * probs / counts, counts)
            else:
                # Weighted walk: arc (child -> node) is taken with
                # probability w / W(node).
                weights = (
                    np.repeat(sqrt_c * probs / weight_totals[nodes], counts)
                    * graph.in_weights[flat]
                )
        else:
            child_degrees = in_degrees[children]
            with np.errstate(divide="ignore", invalid="ignore"):
                weights = np.where(
                    child_degrees > 0,
                    sqrt_c * np.repeat(probs, counts) / child_degrees,
                    0.0,
                )
        level = np.bincount(children, weights=weights, minlength=n)
        if prune_below > 0.0:
            level[level < prune_below] = 0.0
        matrix[step + 1] = level
        frontier_nodes = np.nonzero(level)[0]
        frontier_probs = level[frontier_nodes]


def revreach_update(
    tree: ReverseReachableTree,
    new_graph: DiGraph,
    added,
    removed,
    *,
    directed: bool = True,
) -> ReverseReachableTree:
    """Incrementally rebase a reverse reachable tree onto a changed graph.

    A changed arc ``x → y`` first takes effect at the *shallowest* step
    ``t₀`` at which ``y`` carries occupancy mass: levels ``0..t₀`` of the
    old tree are still exact on ``new_graph``, so only levels
    ``t₀+1..l_max`` are re-propagated.  When no changed head is occupied
    at all, the old tree object is returned untouched (the
    :func:`~repro.core.pruning.tree_unaffected_by_delta` case).

    The result is bit-identical to a full :func:`revreach_levels` on
    ``new_graph`` (tests pin this); the saving grows with how deep the
    change sits relative to the source.
    """
    if tree.variant != "corrected":
        # The literal variant divides by the *child's* in-degree, so a
        # changed arc perturbs transitions wherever any parent of its head
        # is occupied — the shallowest-occupied-head analysis below does
        # not apply.
        raise ParameterError(
            "revreach_update supports the corrected variant only"
        )
    heads = set()
    for collection in (added, removed):
        for x, y in collection:
            heads.add(int(y))
            if not directed:
                heads.add(int(x))
    first_affected = None
    for step in range(tree.l_max):
        row = tree.matrix[step]
        if any(row[head] > 0.0 for head in heads):
            first_affected = step
            break
    if first_affected is None:
        return tree
    matrix = tree.matrix.copy()
    matrix.setflags(write=True)
    _propagate_levels(
        new_graph,
        matrix,
        first_affected,
        tree.l_max,
        math.sqrt(tree.c),
        tree.variant,
    )
    matrix.setflags(write=False)
    return ReverseReachableTree(
        source=tree.source,
        c=tree.c,
        l_max=tree.l_max,
        variant=tree.variant,
        matrix=matrix,
    )


def revreach_queue(
    graph: DiGraph,
    source: int,
    l_max: int,
    c: float,
    *,
    variant: TreeVariant = "paper",
) -> ReverseReachableTree:
    """Literal Algorithm 2: queue traversal with parent exclusion.

    Kept for fidelity testing and the Example-2 arithmetic; the parent
    exclusion (line 9, ``v ≠ tpr``) prevents an item from re-entering via
    the node it came from, so on graphs with 2-cycles this under-counts
    relative to :func:`revreach_levels`.  Cost is proportional to the number
    of tree paths, which can be exponential in ``l_max`` — use only on small
    graphs.
    """
    _validate(graph, source, l_max, c)
    if variant not in ("corrected", "paper"):
        raise ParameterError(f"unknown tree variant {variant!r}")
    if variant == "paper" and graph.is_weighted:
        raise ParameterError(
            "the literal Algorithm-2 variant is defined for unweighted "
            "graphs only; use variant='corrected'"
        )
    n = graph.num_nodes
    sqrt_c = math.sqrt(c)
    weight_totals = graph.in_weight_totals() if graph.is_weighted else None
    matrix = np.zeros((l_max + 1, n), dtype=np.float64)
    matrix[0, source] = 1.0

    # Queue items are (level, node, probability-of-this-tree-path); PR of
    # Algorithm 2 rides along as the parent entry of each item.
    queue: deque = deque([(0, int(source), 1.0)])
    parents: deque = deque([-1])
    while queue:
        level, node, prob = queue.popleft()
        parent = parents.popleft()
        if level >= l_max:
            continue
        in_neighbors = graph.in_neighbors(node)
        for child in in_neighbors:
            child = int(child)
            if child == parent:
                continue
            if variant == "paper":
                degree = graph.in_degree(child)
                contribution = sqrt_c / degree * prob if degree else 0.0
            elif weight_totals is not None:
                contribution = (
                    sqrt_c
                    * graph.edge_weight(child, node)
                    / weight_totals[node]
                    * prob
                )
            else:
                contribution = sqrt_c / in_neighbors.size * prob
            if contribution == 0.0:
                continue
            matrix[level + 1, child] += contribution
            queue.append((level + 1, child, contribution))
            parents.append(node)

    matrix.setflags(write=False)
    return ReverseReachableTree(
        source=int(source), c=float(c), l_max=int(l_max), variant=variant, matrix=matrix
    )
