"""CrashSim (paper Algorithm 1): single-source / partial SimRank.

The algorithm:

1. derive ``l_max`` and ``n_r`` from ``(c, ε, δ)`` (:class:`CrashSimParams`);
2. build the source's reverse reachable tree ``U`` once (Algorithm 2);
3. for each of ``n_r`` trials, sample one truncated √c-walk from every
   candidate ``v ∈ Ω`` and accumulate the probability that it *crashes*
   into ``W(u)`` — read off as ``U[step, position]`` at every step;
4. average the trials.

Step 3 runs through :class:`repro.walks.BatchWalkStepper`, so a trial is
``O(l_max)`` vectorised operations over the whole candidate set, and the
accumulation ``totals += U[step, positions]`` is a single fancy-indexing
gather per step.

Estimator switches (DESIGN.md §2):

* ``tree_variant`` — ``"corrected"`` (unbiased occupancy; default) or
  ``"paper"`` (literal Algorithm 2 arithmetic).
* ``first_meeting`` — ``"none"`` (paper literal: sum every meeting
  opportunity; default) or ``"dp"`` (exact per-walk first-meeting dynamic
  program; unbiased for the first-meeting series but ``O(l·m)`` per walk —
  an accuracy-ablation mode for small graphs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Literal, Optional, Tuple

import numpy as np

from repro.core.adaptive import adaptive_crash_totals
from repro.core.params import CrashSimParams
from repro.core.revreach import ReverseReachableTree, revreach_levels
from repro.errors import ParameterError
from repro.graph.digraph import DiGraph
from repro.rng import RngLike, ensure_rng
from repro.walks.engine import BatchWalkStepper
from repro.walks.kernel import WalkCrashKernel

__all__ = [
    "CrashSimResult",
    "crashsim",
    "accumulate_crash_totals",
    "accumulate_crash_totals_reference",
    "resolve_candidates",
]

FirstMeeting = Literal["none", "dp"]


@dataclass(frozen=True)
class CrashSimResult:
    """SimRank estimators ``s(u, v)`` for every candidate ``v ∈ Ω``.

    Attributes
    ----------
    source:
        The query source ``u``.
    candidates:
        Candidate node ids, sorted ascending, ``shape (k,)``.
    scores:
        Estimated SimRank per candidate, aligned with ``candidates``.
    n_r:
        Number of Monte-Carlo trials the run *planned*.
    params:
        The parameter object the run used.
    tree:
        The source's reverse reachable tree (reusable by CrashSim-T).
    trials_completed:
        Trials that actually finished; ``n_r`` unless shards were lost to
        a deadline, worker death, or in-shard errors (resilient parallel
        drivers only — the serial estimator always completes).
    degraded:
        Whether the estimate averages fewer than ``n_r`` trials.  Degraded
        scores are still unbiased, just with the wider Lemma-3 bound below.
    achieved_epsilon:
        Lemma 3 inverted at ``trials_completed``
        (:meth:`CrashSimParams.achieved_epsilon`); for adaptive runs the
        *better* of that bound and the final empirical-Bernstein bound;
        ``None`` when the driver did not compute it (plain serial
        :func:`crashsim`).
    stopped_early:
        Adaptive runs only: the empirical-Bernstein stopper converged
        before ``n_r`` trials, so the run skipped the rest.  Unlike
        ``degraded`` this is a *full-quality* outcome — the ε guarantee is
        met by the data, not cut short by a deadline.
    """

    source: int
    candidates: np.ndarray
    scores: np.ndarray
    n_r: int
    params: CrashSimParams
    tree: ReverseReachableTree
    trials_completed: Optional[int] = None
    degraded: bool = False
    achieved_epsilon: Optional[float] = None
    stopped_early: bool = False

    def __post_init__(self):
        if self.trials_completed is None:
            object.__setattr__(self, "trials_completed", self.n_r)

    def score(self, node: int) -> float:
        """``s(u, node)``; raises if ``node`` was not a candidate."""
        position = np.searchsorted(self.candidates, node)
        if position >= self.candidates.size or self.candidates[position] != node:
            raise ParameterError(f"node {node} was not in the candidate set")
        return float(self.scores[position])

    def as_dict(self) -> Dict[int, float]:
        """``{candidate: score}`` mapping."""
        return {
            int(node): float(value)
            for node, value in zip(self.candidates, self.scores)
        }

    def top_k(self, k: int) -> List[Tuple[int, float]]:
        """The ``k`` highest-scoring candidates as ``(node, score)`` pairs.

        The order is deterministic: score **descending**, ties broken by
        node id **ascending** — so equal-scoring candidates always come out
        lowest-id first, independent of the candidate array's layout.  A
        ``k`` larger than the candidate set returns every candidate; an
        empty candidate set returns ``[]`` for any ``k``.
        """
        if k < 0:
            raise ParameterError(f"k must be non-negative, got {k}")
        order = np.lexsort((self.candidates, -self.scores))
        return [
            (int(self.candidates[i]), float(self.scores[i])) for i in order[:k]
        ]


def resolve_candidates(
    graph: DiGraph, source: int, candidates: Optional[Iterable[int]]
) -> np.ndarray:
    """Normalise a candidate spec to a sorted unique id array (``Ω``).

    ``None`` means every node except the source.  Shared by the serial
    estimator and the parallel drivers so both agree on candidate layout.
    """
    if candidates is None:
        others = np.arange(graph.num_nodes, dtype=np.int64)
        return others[others != source]
    arr = np.unique(np.asarray(list(candidates), dtype=np.int64))
    if arr.size and (arr.min() < 0 or arr.max() >= graph.num_nodes):
        raise ParameterError("candidate node outside the graph's node range")
    return arr


_resolve_candidates = resolve_candidates  # backwards-compatible alias


def crashsim(
    graph: DiGraph,
    source: int,
    *,
    candidates: Optional[Iterable[int]] = None,
    params: Optional[CrashSimParams] = None,
    tree: Optional[ReverseReachableTree] = None,
    tree_variant: str = "corrected",
    first_meeting: FirstMeeting = "none",
    seed: RngLike = None,
    sampler: str = "cdf",
    adaptive: bool = False,
) -> CrashSimResult:
    """Run CrashSim from ``source`` over candidate set ``Ω`` (Algorithm 1).

    Parameters
    ----------
    graph:
        Snapshot graph ``G(V, E)``.
    source:
        Query source ``u``.
    candidates:
        Candidate set ``Ω``; ``None`` means all nodes except the source
        (single-source mode).  If ``source`` is included its score is the
        SimRank base case 1.0.
    params:
        :class:`CrashSimParams`; defaults to the paper's ``c = 0.6``,
        ``ε = 0.025``, ``δ = 0.01``.
    tree:
        A precomputed reverse reachable tree for ``source`` (CrashSim-T
        reuses the tree it built for the pruning gate); must match
        ``source``, ``c``, ``l_max``, and ``tree_variant``.
    tree_variant, first_meeting:
        Estimator switches, see module docstring.
    seed:
        Anything :func:`repro.rng.ensure_rng` accepts.
    sampler:
        Weighted neighbour-sampling strategy: ``"cdf"`` (default; byte-
        identical to the pinned fixtures) or ``"alias"`` (O(1) per sample
        via per-node alias tables; opt-in, different RNG-variate use so
        scores differ bit-wise while the estimator stays exact).  Ignored
        for unweighted graphs.  Incompatible with ``first_meeting="dp"``,
        which walks through the generator engine.
    adaptive:
        Run trials in geometrically growing rounds and stop as soon as the
        empirical-Bernstein half-width plus the truncation slack is ≤ ε
        for every candidate (:mod:`repro.core.adaptive`).  Deterministic
        for a fixed seed and byte-identical to the parallel adaptive
        drivers at any worker count, but a *different* RNG-stream use than
        the fixed-``n_r`` path, so adaptive scores are not bit-comparable
        to non-adaptive runs.  The result carries honest
        ``trials_completed`` / ``achieved_epsilon`` / ``stopped_early``
        metadata with ``degraded=False``.  Requires
        ``first_meeting="none"``.

    Returns
    -------
    CrashSimResult
        Scores satisfying Theorem 1's guarantee when ``params`` uses the
        theoretical ``n_r``.
    """
    params = params or CrashSimParams()
    if not 0 <= int(source) < graph.num_nodes:
        raise ParameterError(
            f"source {source} outside the graph's node range [0, {graph.num_nodes})"
        )
    source = int(source)
    rng = ensure_rng(seed)
    candidate_array = resolve_candidates(graph, source, candidates)
    l_max = params.l_max
    n_r = params.n_r(max(graph.num_nodes, 2))

    if tree is None:
        tree = revreach_levels(graph, source, l_max, params.c, variant=tree_variant)
    elif (
        tree.source != source
        or tree.l_max != l_max
        or tree.variant != tree_variant
        or not math.isclose(tree.c, params.c)
    ):
        raise ParameterError(
            "precomputed tree does not match this query's source/c/l_max/variant"
        )

    walk_targets = candidate_array[candidate_array != source]
    # A candidate with no in-neighbours cannot take a single walk step, so
    # its estimator is exactly 0 — drop it before paying n_r walks for it.
    walk_targets = walk_targets[graph.in_degrees()[walk_targets] > 0]
    if adaptive:
        if first_meeting != "none":
            raise ParameterError(
                'adaptive=True supports only first_meeting="none", '
                f"got {first_meeting!r}"
            )
        outcome = adaptive_crash_totals(
            graph,
            tree,
            walk_targets,
            params,
            num_nodes=max(graph.num_nodes, 2),
            seed=seed,
            sampler=sampler,
        )
        divisor = max(outcome.trials_used, 1)
        scores = np.zeros(candidate_array.size, dtype=np.float64)
        walk_positions = np.searchsorted(candidate_array, walk_targets)
        scores[walk_positions] = outcome.totals / divisor
        scores[candidate_array == source] = 1.0
        scores = np.clip(scores, 0.0, 1.0)
        return CrashSimResult(
            source=source,
            candidates=candidate_array,
            scores=scores,
            n_r=n_r,
            params=params,
            tree=tree,
            trials_completed=outcome.trials_used,
            degraded=outcome.degraded,
            achieved_epsilon=outcome.achieved_epsilon,
            stopped_early=outcome.stopped_early,
        )
    if first_meeting == "none":
        totals = _accumulate_crashes(
            graph, tree, walk_targets, n_r, params, rng, sampler=sampler
        )
    elif first_meeting == "dp":
        if sampler != "cdf":
            raise ParameterError(
                'first_meeting="dp" samples paths through the generator '
                f"engine and supports only sampler=\"cdf\", got {sampler!r}"
            )
        totals = _accumulate_crashes_dp(
            graph, tree, walk_targets, n_r, params, rng
        )
    else:
        raise ParameterError(f"unknown first_meeting mode {first_meeting!r}")

    scores = np.zeros(candidate_array.size, dtype=np.float64)
    walk_positions = np.searchsorted(candidate_array, walk_targets)
    scores[walk_positions] = totals / n_r
    scores[candidate_array == source] = 1.0
    scores = np.clip(scores, 0.0, 1.0)
    return CrashSimResult(
        source=source,
        candidates=candidate_array,
        scores=scores,
        n_r=n_r,
        params=params,
        tree=tree,
    )


_WALK_CHUNK = 1 << 20  # max simultaneous walks per batched pass


def accumulate_crash_totals(
    graph: DiGraph,
    tree,
    targets: np.ndarray,
    n_trials: int,
    *,
    c: float,
    l_max: int,
    rng: np.random.Generator,
    walk_chunk: int = _WALK_CHUNK,
    sampler: str = "cdf",
    use_jit: Optional[bool] = None,
    kernel: Optional[WalkCrashKernel] = None,
) -> np.ndarray:
    """Paper-literal accumulation: ``Σ_k Σ_step U[step, W_k(v)_step]``.

    Runs through the fused :class:`~repro.walks.kernel.WalkCrashKernel`:
    one call advances a whole chunk of walks (trials × candidates) through
    all ``l_max`` steps in preallocated buffers and folds the crash reads
    in place.  With the default ``sampler="cdf"`` the totals are
    **bit-identical** to the historical generator-driven implementation
    (kept as :func:`accumulate_crash_totals_reference`), which the pinned
    seed fixtures enforce.

    ``tree`` is anything with a ``gather(step, positions)`` read — a
    :class:`~repro.core.revreach.SparseReverseTree` (default), a dense
    :class:`~repro.core.revreach.ReverseReachableTree`, or a raw 2-D
    ``(l_max + 1, n)`` matrix.  The gathered values are identical floats in
    every case, so scores are byte-identical across representations.

    ``graph`` only needs the walk-facing protocol (in-CSR arrays, degrees,
    weight totals), so a :class:`repro.parallel.CsrGraphView` attached to
    shared memory works as well as a full :class:`DiGraph` — this is the
    unit of work the parallel executor ships to each trial shard, and the
    serial estimator runs through the exact same code path.

    ``kernel`` lets a caller that issues many accumulations over the same
    graph (CrashSim-T snapshot loops, benchmarks) reuse one kernel's
    buffers instead of constructing a fresh one per call; when provided,
    ``sampler``/``use_jit`` are ignored in favour of the kernel's own.
    """
    if kernel is None:
        kernel = WalkCrashKernel(graph, c, sampler=sampler, use_jit=use_jit)
    return kernel.accumulate(
        tree, targets, n_trials, l_max=l_max, rng=rng, walk_chunk=walk_chunk
    )


def accumulate_crash_totals_reference(
    graph: DiGraph,
    tree,
    targets: np.ndarray,
    n_trials: int,
    *,
    c: float,
    l_max: int,
    rng: np.random.Generator,
    walk_chunk: int = _WALK_CHUNK,
) -> np.ndarray:
    """The pre-kernel generator-driven accumulation, kept as the oracle.

    Byte-identity tests and the kernel benchmark compare the fused kernel
    against this implementation; production paths should call
    :func:`accumulate_crash_totals`.
    """
    totals = np.zeros(targets.size, dtype=np.float64)
    if targets.size == 0 or n_trials <= 0:
        return totals
    if isinstance(tree, np.ndarray):
        matrix = tree
        gather = lambda step, positions: matrix[step, positions]  # noqa: E731
    else:
        gather = tree.gather
    stepper = BatchWalkStepper(graph, c)
    trials_per_chunk = max(1, walk_chunk // targets.size)
    candidate_index = np.arange(targets.size, dtype=np.int64)
    remaining = n_trials
    while remaining > 0:
        trials = min(trials_per_chunk, remaining)
        remaining -= trials
        starts = np.tile(targets, trials)
        walk_owner = np.tile(candidate_index, trials)
        for batch in stepper.walk(starts, l_max, seed=rng):
            contributions = gather(batch.step, batch.positions)
            totals += np.bincount(
                walk_owner[batch.walk_ids],
                weights=contributions,
                minlength=targets.size,
            )
    return totals


def _accumulate_crashes(
    graph: DiGraph,
    tree: ReverseReachableTree,
    targets: np.ndarray,
    n_r: int,
    params: CrashSimParams,
    rng: np.random.Generator,
    *,
    sampler: str = "cdf",
) -> np.ndarray:
    return accumulate_crash_totals(
        graph,
        tree,
        targets,
        n_r,
        c=params.c,
        l_max=params.l_max,
        rng=rng,
        sampler=sampler,
    )


def _accumulate_crashes_dp(
    graph: DiGraph,
    tree: ReverseReachableTree,
    targets: np.ndarray,
    n_r: int,
    params: CrashSimParams,
    rng: np.random.Generator,
) -> np.ndarray:
    """Exact first-meeting accumulation.

    For each sampled candidate walk ``(v_1, v_2, ...)`` the contribution of
    step ``i`` must be ``Pr[W(u)_i = v_i ∧ ∀j<i: W(u)_j ≠ v_j]``.  We
    re-propagate the source's occupancy ``D_j`` along the walk, zeroing the
    entry at ``v_j`` after harvesting it — a per-walk dynamic program over
    the corrected transition.  ``O(l · m)`` per walk: an accuracy-ablation
    mode, not a performance path.
    """
    totals = np.zeros(targets.size, dtype=np.float64)
    if targets.size == 0:
        return totals
    transition = graph.reverse_transition_matrix()  # rows: current, cols: next
    sqrt_c = params.sqrt_c
    stepper = BatchWalkStepper(graph, params.c)
    n = graph.num_nodes
    for _ in range(n_r):
        paths = stepper.sample_paths(targets, params.l_max, seed=rng)
        for index in range(targets.size):
            path = paths[index]
            occupancy = np.zeros(n, dtype=np.float64)
            occupancy[tree.source] = 1.0
            for step in range(1, params.l_max + 1):
                position = path[step]
                if position < 0:
                    break
                occupancy = sqrt_c * (occupancy @ transition)
                totals[index] += occupancy[position]
                occupancy[position] = 0.0
    return totals
