"""Top-k single-source SimRank on top of CrashSim.

The paper positions top-k SimRank search as a key application (§I cites
[13], and ProbeSim's own evaluation is built around top-k queries).
CrashSim's *partial* computation — the candidate set ``Ω`` is an input —
makes an adaptive scheme natural:

1. run a cheap pass (a fraction of the trial budget) over all candidates;
2. keep only candidates whose score could still reach the current k-th
   place once the Monte-Carlo confidence radius is accounted for;
3. re-run the surviving candidates with the remaining budget.

The confidence radius after ``n`` trials is Bernstein-style (single-trial
values lie in ``[0, c]``, so the variance is at most ``c·s``); see
:func:`_confidence_radii` for why this prunes where Lemma 3's worst-case
Chernoff radius would not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.crashsim import crashsim
from repro.core.params import CrashSimParams
from repro.core.revreach import revreach_levels
from repro.errors import ParameterError
from repro.graph.digraph import DiGraph
from repro.rng import RngLike, ensure_rng

__all__ = ["TopKResult", "crashsim_topk"]


@dataclass(frozen=True)
class TopKResult:
    """Outcome of an adaptive top-k query.

    Attributes
    ----------
    source:
        Query source ``u``.
    ranking:
        The ``(node, score)`` pairs, best first, length ≤ k.
    candidates_after_pruning:
        How many candidates survived into the refinement pass — the
        measure of how much work the adaptive stage saved.
    trials_spent:
        Total Monte-Carlo trials consumed across both passes.
    """

    source: int
    ranking: Tuple[Tuple[int, float], ...]
    candidates_after_pruning: int
    trials_spent: int

    def nodes(self) -> List[int]:
        return [node for node, _ in self.ranking]


def _confidence_radii(scores: np.ndarray, c: float, trials: int) -> np.ndarray:
    """Per-candidate pruning radii (see :mod:`repro.core.bounds`).

    Much tighter than the worst-case Chernoff radius of Lemma 3 (which
    never prunes at practical trial counts) while still conservative — and
    any mistake only affects which candidates receive refinement trials,
    not the validity of the refined estimates themselves.
    """
    from repro.core.bounds import bernstein_radius

    return np.asarray(bernstein_radius(scores, c, max(trials, 1)))


def crashsim_topk(
    graph: DiGraph,
    source: int,
    k: int,
    *,
    params: Optional[CrashSimParams] = None,
    screening_fraction: float = 0.25,
    seed: RngLike = None,
) -> TopKResult:
    """Adaptive top-k single-source SimRank (paper §I application).

    Parameters
    ----------
    graph, source:
        Query graph and source node.
    k:
        Result size; the ranking may be shorter when fewer than ``k`` nodes
        have non-zero estimates.
    params:
        CrashSim parameters; the effective trial budget ``params.n_r(n)``
        is split between the screening and refinement passes.
    screening_fraction:
        Fraction of the budget spent on the first (all-candidates) pass.
    seed:
        Anything :func:`repro.rng.ensure_rng` accepts.
    """
    params = params or CrashSimParams()
    if k < 1:
        raise ParameterError(f"k must be positive, got {k}")
    if not 0.0 < screening_fraction < 1.0:
        raise ParameterError(
            f"screening_fraction must be in (0, 1), got {screening_fraction}"
        )
    rng = ensure_rng(seed)
    n = graph.num_nodes
    budget = params.n_r(max(n, 2))
    screening_trials = max(1, int(budget * screening_fraction))
    refinement_trials = max(1, budget - screening_trials)

    # The source tree is identical in both passes; build once.
    tree = revreach_levels(graph, int(source), params.l_max, params.c)

    screening_params = CrashSimParams(
        c=params.c,
        epsilon=params.epsilon,
        delta=params.delta,
        n_r_override=screening_trials,
    )
    screening = crashsim(
        graph, source, params=screening_params, tree=tree, seed=rng
    )

    scores = screening.scores
    radii = _confidence_radii(scores, params.c, screening_trials)
    order = np.argsort(-scores)
    if order.size > k:
        # A candidate stays if its optimistic value can still beat the
        # pessimistic k-th best.
        kth_index = order[k - 1]
        kth_lower = scores[kth_index] - radii[kth_index]
        keep = scores + radii >= kth_lower
    else:
        keep = np.ones(scores.shape, dtype=bool)
    survivors = screening.candidates[keep]

    refinement_params = CrashSimParams(
        c=params.c,
        epsilon=params.epsilon,
        delta=params.delta,
        n_r_override=refinement_trials,
    )
    refinement = crashsim(
        graph,
        source,
        candidates=survivors.tolist(),
        params=refinement_params,
        tree=tree,
        seed=rng,
    )

    # Blend both passes (each trial is an i.i.d. estimate, so the weighted
    # average by trial count is the combined estimator).
    combined = {}
    screening_map = screening.as_dict()
    total = screening_trials + refinement_trials
    for node, refined in refinement.as_dict().items():
        coarse = screening_map[node]
        combined[node] = (
            coarse * screening_trials + refined * refinement_trials
        ) / total
    ranking = sorted(combined.items(), key=lambda item: (-item[1], item[0]))[:k]
    return TopKResult(
        source=int(source),
        ranking=tuple((int(node), float(score)) for node, score in ranking),
        candidates_after_pruning=int(survivors.size),
        trials_spent=screening_trials + refinement_trials,
    )
