"""Adaptive trial control: stop Monte-Carlo trials once the data says stop.

Lemma 3's ``n_r`` is a *worst-case* Chernoff count: it assumes nothing about
the variance of the per-walk crash totals, so CrashSim runs tens of
thousands of trials even when the running estimate converged after a few
hundred.  This module runs the confidence bound *forward during the trial
loop* instead:

* Trials execute in **geometrically growing rounds** (:func:`plan_rounds`)
  mapped onto the deterministic shard plan
  (:func:`repro.parallel.plan_shards`), so early stopping composes with the
  parallel tiers — the stop decision happens between rounds, shard totals
  are still summed in shard order, and an adaptive run is byte-identical at
  any worker count and on any execution tier.
* After every round an :class:`AdaptiveStopper` folds the new per-candidate
  first and second moments into running Welford-style aggregates
  (vectorised across candidates) and evaluates the **empirical-Bernstein**
  half-width (Maurer & Pontil 2009).  Once the half-width plus the Lemma-2
  truncation slack is ≤ ε for every candidate, remaining rounds are
  skipped.
* The per-walk crash total is bounded by ``b = Σ_step max_x U[step, x]``
  (:func:`walk_value_bound`) — the range the Bernstein term needs — and
  the per-round union bound ``δ' = δ / (k · R)`` keeps the simultaneous
  guarantee over all ``k`` candidates and all ``R`` possible stopping
  points at the configured δ.
* Hub-contribution caching (:class:`HubCache`): on power-law graphs walks
  concentrate through a few high-in-degree hubs.  A backward recursion
  over the in-CSR precomputes, for every step ``t`` and hub ``h``, the
  *exact expected remainder* ``g_t(h) = E[Σ_{s>t} U[s, X_s] | X_t = h]``;
  a walk arriving at a hub retires immediately, folding the cached tail
  instead of walking on.  This is Rao-Blackwellisation: the estimator
  stays unbiased and its per-walk variance can only shrink, so the
  stopper converges *sooner* on exactly the graphs where walks are most
  expensive.  The cache's bytes are accounted against the kernel's
  ``dense_row_budget``.

Common-random-numbers (CRN) in the multi-source path: ``accumulate_multi``
already scores *one* shared walk stream against every source's tree, so
the per-source estimates are positively correlated by construction.  The
stopper's variance estimate is computed per ``(source, candidate)`` on that
shared stream — the correlation cancels out of each marginal variance, and
the shared stream means the stop decision (the max half-width over all
sources) is reached with one walk budget instead of ``q``.

The honest quality report: an adaptive result's ``achieved_epsilon`` is the
*better* (smaller) of the inverted Lemma-3 bound at the trials actually
used and the final empirical-Bernstein bound — so an early-stopped result
never reports worse metadata than a fixed run of the same length.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.core.params import CrashSimParams
from repro.errors import ParameterError

__all__ = [
    "AdaptiveOutcome",
    "AdaptiveStopper",
    "HubCache",
    "build_hub_cache",
    "exact_expectation",
    "plan_rounds",
    "walk_value_bound",
    "drive_adaptive_rounds",
    "adaptive_crash_totals",
    "adaptive_crash_totals_multi",
    "record_adaptive_stop",
    "DEFAULT_HUB_COUNT",
]

#: Default hub-cache size (top-K in-degree nodes).  Tails cost
#: ``(l_max + 1) · K`` floats plus a dense ``n``-entry lookup, so the cache
#: is cheap; 64 hubs already cover the landing mass on Zipf-like graphs.
DEFAULT_HUB_COUNT = 64

_M_ROUNDS = obs.REGISTRY.counter(
    "repro_adaptive_rounds_total",
    "Adaptive trial rounds executed across all adaptive queries.",
)
_M_TRIALS_SAVED = obs.REGISTRY.counter(
    "repro_adaptive_trials_saved_total",
    "Monte-Carlo trials skipped by empirical-Bernstein early stopping.",
)
_M_STOPS = obs.REGISTRY.counter(
    "repro_adaptive_stops_total",
    "Adaptive runs finished, by stop reason (converged/exhausted/deadline).",
)


def record_adaptive_stop(
    reason: str, rounds_run: int, trials_used: int, n_r: int
) -> None:
    """Flush one adaptive run's counters (shared by serial and parallel)."""
    _M_ROUNDS.inc(rounds_run)
    saved = max(0, int(n_r) - int(trials_used))
    if saved:
        _M_TRIALS_SAVED.inc(saved)
    _M_STOPS.inc()
    _M_STOPS.labels(reason=reason).inc()


def plan_rounds(num_shards: int) -> List[int]:
    """Group ``num_shards`` shards into geometrically growing rounds.

    Returns per-round shard counts ``[1, 1, 2, 4, 8, ...]`` summing to
    ``num_shards`` (the last round absorbs the remainder).  Geometric
    growth bounds the overshoot past the true stopping point at 2x while
    keeping the number of stop checks — and hence the union-bound penalty
    ``R`` in ``δ' = δ/(k·R)`` — logarithmic in the shard count.  A pure
    function of the shard plan's length, so serial and parallel adaptive
    runs agree on every round boundary.
    """
    if num_shards < 0:
        raise ParameterError(f"num_shards must be non-negative, got {num_shards}")
    rounds: List[int] = []
    size = 1
    remaining = num_shards
    while remaining > 0:
        take = min(size, remaining)
        rounds.append(take)
        remaining -= take
        size *= 2
    return rounds


def walk_value_bound(tree, l_max: int) -> float:
    """``b = Σ_{step=1..l_max} max_x U[step, x]`` — the per-walk value range.

    Every per-trial crash total (one walk's summed reads, hub tails
    included — a tail is an expectation of exactly such remainders) lies in
    ``[0, b]``, which is the range the empirical-Bernstein bound needs.
    Accepts a sparse tree, a dense tree, or a raw ``(l_max + 1, n)`` matrix.
    """
    if isinstance(tree, np.ndarray):
        top = min(l_max, tree.shape[0] - 1)
        if top < 1:
            return 0.0
        return float(tree[1 : top + 1].max(axis=1, initial=0.0).sum())
    if hasattr(tree, "level_arrays"):
        bound = 0.0
        for step in range(1, l_max + 1):
            _, probs = tree.level_arrays(step)
            if probs.size:
                bound += float(probs.max())
        return bound
    return walk_value_bound(tree.matrix, l_max)


class AdaptiveStopper:
    """Running moments + empirical-Bernstein stop rule over ``k`` estimates.

    Per-round first/second moments are merged into running sums (the
    vectorised Chan/Welford form: with raw sums and sum-of-squares the
    merge is plain addition, so shard order — not round shape — determines
    the float result, which is what makes serial and parallel adaptive
    runs byte-identical).

    The stop rule is Maurer & Pontil's empirical-Bernstein bound for
    variables in ``[0, b]``: with probability ≥ 1 − δ',

        |mean_t − E| ≤ √(2 V_t ln(2/δ') / t) + 7 b ln(2/δ') / (3 (t − 1))

    where ``V_t`` is the unbiased sample variance.  ``δ' = δ / (k · R)``
    union-bounds over the ``k`` tracked estimates and the ``R`` possible
    stopping points, so the simultaneous guarantee holds at δ.  The run
    stops when ``max_i halfwidth_i + p·ε_t ≤ ε``.
    """

    def __init__(
        self,
        params: CrashSimParams,
        num_estimates: int,
        value_bound: Union[float, np.ndarray],
        max_rounds: int,
    ):
        if num_estimates < 0:
            raise ParameterError(
                f"num_estimates must be non-negative, got {num_estimates}"
            )
        if max_rounds < 1:
            max_rounds = 1
        self.params = params
        self.num_estimates = int(num_estimates)
        self.value_bound = np.asarray(value_bound, dtype=np.float64)
        if np.any(self.value_bound < 0.0):
            raise ParameterError("value_bound must be non-negative")
        self.max_rounds = int(max_rounds)
        self.delta_prime = params.delta / max(self.num_estimates * self.max_rounds, 1)
        self.trials = 0
        self.rounds_seen = 0
        self.total = np.zeros(self.num_estimates, dtype=np.float64)
        self.sumsq = np.zeros(self.num_estimates, dtype=np.float64)

    def update(self, totals: np.ndarray, sumsq: np.ndarray, trials: int) -> None:
        """Fold one shard's (sum, sum-of-squares, count) into the aggregate."""
        if trials < 0:
            raise ParameterError(f"trials must be non-negative, got {trials}")
        flat_totals = np.asarray(totals, dtype=np.float64).ravel()
        flat_sumsq = np.asarray(sumsq, dtype=np.float64).ravel()
        if flat_totals.size != self.num_estimates or flat_sumsq.size != self.num_estimates:
            raise ParameterError(
                f"moment update of size {flat_totals.size} does not match "
                f"{self.num_estimates} tracked estimates"
            )
        self.total += flat_totals
        self.sumsq += flat_sumsq
        self.trials += int(trials)

    def half_widths(self) -> np.ndarray:
        """Per-estimate empirical-Bernstein half-width at the current count."""
        t = self.trials
        if self.num_estimates == 0:
            return np.zeros(0, dtype=np.float64)
        if t < 2:
            return np.full(self.num_estimates, np.inf)
        mean = self.total / t
        variance = np.maximum(self.sumsq / t - mean * mean, 0.0) * (t / (t - 1.0))
        log_term = math.log(2.0 / self.delta_prime)
        return np.sqrt(2.0 * variance * log_term / t) + (
            7.0 * self.value_bound * log_term / (3.0 * (t - 1.0))
        )

    def bound_epsilon(self) -> float:
        """Worst half-width plus the Lemma-2 truncation slack."""
        if self.num_estimates == 0:
            return self.params.truncation_slack
        return float(self.half_widths().max()) + self.params.truncation_slack

    def converged(self) -> bool:
        """True once every tracked estimate is within ε (at this round)."""
        if self.num_estimates == 0:
            return True
        if self.trials < 2:
            return False
        return self.bound_epsilon() <= self.params.epsilon

    def achieved_epsilon(self, num_nodes: int) -> float:
        """The honest ε: better of inverted Lemma 3 and the EB bound.

        An adaptive result never reports *worse* metadata than a fixed run
        of the same trial count would — the Chernoff inversion is always
        available as the fallback bound.
        """
        if self.num_estimates == 0:
            # Nothing was estimated (every candidate's score is exact).
            return float(self.params.epsilon)
        if self.trials < 1:
            return 1.0
        chernoff = self.params.achieved_epsilon(num_nodes, self.trials)
        return float(min(1.0, chernoff, self.bound_epsilon()))


# ----------------------------------------------------------------------
# Hub-contribution cache
# ----------------------------------------------------------------------


@dataclass
class HubCache:
    """Exact expected walk remainders through the top-K in-degree hubs.

    ``tails[t, j]`` is ``g_t(hubs[j]) = E[Σ_{s=t+1..l_max} U[s, X_s] |
    X_t = hubs[j]]`` — the expected crash mass a walk sitting at hub ``j``
    at step ``t`` would still collect.  A walk that arrives at a hub folds
    the tail and retires; the estimator's expectation is unchanged
    (conditional expectation) and its variance can only drop.
    """

    hubs: np.ndarray  # (K,) int64 hub node ids, deterministic order
    tails: np.ndarray  # (l_max + 1, K) float64 expected remainders
    num_nodes: int
    _lookup: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def lookup(self) -> np.ndarray:
        """Dense ``node -> hub index`` map (−1 for non-hubs), built lazily."""
        if self._lookup is None:
            lookup = np.full(self.num_nodes, -1, dtype=np.int64)
            lookup[self.hubs] = np.arange(self.hubs.size, dtype=np.int64)
            self._lookup = lookup
        return self._lookup

    @property
    def nbytes(self) -> int:
        """Bytes the cache holds resident, charged against the kernel's
        ``dense_row_budget`` (tails + hub ids + the dense lookup)."""
        return int(self.tails.nbytes + self.hubs.nbytes + self.num_nodes * 8)


def _expected_remainders(
    graph, tree, l_max: int, c: float
) -> Tuple[np.ndarray, Callable[[int], np.ndarray]]:
    """Backward recursion ``g_t(x) = √c · E_y[U[t+1, y] + g_{t+1}(y)]``.

    ``y`` ranges over the in-neighbours of ``x`` with the walk's sampling
    weights; nodes where the walk dies (no in-neighbours, or zero in-weight
    total on weighted graphs — mirroring the kernel's ``dead`` handling)
    have ``g_t = 0``.  Returns the full ``(l_max + 1, n)`` table.
    """
    n = int(graph.num_nodes)
    indptr = np.asarray(graph.in_indptr, dtype=np.int64)
    indices = np.asarray(graph.in_indices, dtype=np.int64)
    degrees = (indptr[1:] - indptr[:-1]).astype(np.float64)
    weighted = bool(getattr(graph, "is_weighted", False))
    if weighted:
        weights = np.asarray(graph.in_weights, dtype=np.float64)
        denom = np.asarray(graph.in_weight_totals(), dtype=np.float64)
        live = (degrees > 0) & (denom > 0.0)
    else:
        weights = None
        denom = degrees
        live = degrees > 0
    m = indices.size
    starts = np.minimum(indptr[:-1], max(m - 1, 0))
    sqrt_c = math.sqrt(c)

    def level_row(step: int) -> np.ndarray:
        if isinstance(tree, np.ndarray):
            if step >= tree.shape[0]:
                return np.zeros(n, dtype=np.float64)
            return np.asarray(tree[step], dtype=np.float64)
        nodes, probs = tree.level_arrays(step)
        row = np.zeros(n, dtype=np.float64)
        row[nodes] = probs
        return row

    table = np.zeros((l_max + 1, n), dtype=np.float64)
    if m == 0:
        return table, level_row
    for step in range(l_max - 1, -1, -1):
        values = level_row(step + 1) + table[step + 1]
        gathered = values[indices]
        if weighted:
            gathered = gathered * weights
        sums = np.add.reduceat(gathered, starts)
        g = np.zeros(n, dtype=np.float64)
        np.divide(sums, denom, out=g, where=live)
        g *= sqrt_c
        g[~live] = 0.0
        table[step] = g
    return table, level_row


def build_hub_cache(
    graph,
    tree,
    *,
    l_max: int,
    c: float,
    num_hubs: int = DEFAULT_HUB_COUNT,
) -> Optional[HubCache]:
    """Precompute crash-contribution tails through the top-K in-degree hubs.

    Hub selection is deterministic: highest in-degree first, ties broken by
    lower node id, nodes with zero in-degree excluded (a walk dies there —
    its tail is trivially 0).  Returns ``None`` when no hub qualifies or
    ``num_hubs <= 0``; the one ``O(l_max · m)`` recursion is shared by
    every round and shard of the query.
    """
    if num_hubs <= 0:
        return None
    in_degrees = np.asarray(graph.in_degrees(), dtype=np.int64)
    eligible = int(np.count_nonzero(in_degrees > 0))
    if eligible == 0:
        return None
    count = min(int(num_hubs), eligible)
    order = np.lexsort((np.arange(in_degrees.size), -in_degrees))
    hubs = np.sort(order[:count].astype(np.int64))
    table, _ = _expected_remainders(graph, tree, l_max, c)
    tails = np.ascontiguousarray(table[:, hubs])
    return HubCache(hubs=hubs, tails=tails, num_nodes=int(graph.num_nodes))


def exact_expectation(graph, tree, *, l_max: int, c: float) -> np.ndarray:
    """The estimator's exact per-candidate expectation ``E[Σ_t U[t, X_t]]``.

    This is ``g_0`` of the hub recursion evaluated at every node: for the
    corrected tree variant it equals the truncated meeting-probability
    series ``Σ_{l≥1} ⟨U_source[l, ·], U_candidate[l, ·]⟩`` — the same
    quantity the guarantee suite's ``crash_expectation`` computes by
    stacking every candidate's tree, but in ``O(l_max · m)`` instead of
    ``O(n)`` tree builds.  Benchmarks use it to measure empirical adaptive
    error at scales where the einsum oracle is unaffordable.
    """
    table, _ = _expected_remainders(graph, tree, l_max, c)
    return table[0]


# ----------------------------------------------------------------------
# Round drivers
# ----------------------------------------------------------------------


@dataclass
class AdaptiveOutcome:
    """What an adaptive run produced, before score assembly.

    ``totals`` carries the summed per-candidate crash totals over
    ``trials_used`` trials (flattened ``(q·k,)`` for multi-source).
    ``degraded`` is only set when the run was *interrupted* (deadline,
    lost shards) before the stopper converged — an early stop with the
    bound met is a full-quality answer.
    """

    totals: np.ndarray
    trials_used: int
    n_r: int
    rounds_run: int
    stopped_early: bool
    converged: bool
    degraded: bool
    achieved_epsilon: float
    shards_lost: int = 0

    @property
    def stop_reason(self) -> str:
        if self.converged and self.stopped_early:
            return "converged"
        if self.degraded:
            return "deadline"
        return "exhausted"


RoundRunner = Callable[
    [int, Sequence[int], Sequence[np.random.SeedSequence]],
    Tuple[List[Optional[Tuple[np.ndarray, np.ndarray]]], bool],
]


def drive_adaptive_rounds(
    shard_plan: Sequence[int],
    shard_seeds: Sequence[np.random.SeedSequence],
    stopper: AdaptiveStopper,
    run_round: RoundRunner,
    *,
    num_nodes: int,
    n_r: int,
) -> AdaptiveOutcome:
    """The shared round loop: serial and parallel drivers both run this.

    ``run_round(start_index, sizes, seeds)`` executes one round's shards
    and returns ``(results, interrupted)`` where ``results[i]`` is the
    shard's ``(totals, sumsq)`` pair or ``None`` if it was lost, and
    ``interrupted`` means no further rounds should run (deadline hit).
    Results are folded into the stopper **in shard order**, shard by shard
    — the float-addition order is the cross-tier byte-identity contract.
    """
    rounds = plan_rounds(len(shard_plan))
    cursor = 0
    rounds_run = 0
    trials_used = 0
    shards_lost = 0
    interrupted = False
    for size in rounds:
        sizes = list(shard_plan[cursor : cursor + size])
        seeds = list(shard_seeds[cursor : cursor + size])
        results, round_interrupted = run_round(cursor, sizes, seeds)
        for trials, result in zip(sizes, results):
            if result is None:
                shards_lost += 1
            else:
                stopper.update(result[0], result[1], trials)
                trials_used += trials
        cursor += size
        rounds_run += 1
        if round_interrupted:
            interrupted = True
            break
        if stopper.converged():
            break
    converged = stopper.converged()
    # "Early" means rounds were actually skipped: an empty plan (nothing to
    # estimate) or a full sweep that converged on the last round is not an
    # early stop.
    stopped_early = converged and cursor < len(shard_plan)
    degraded = (not converged) and trials_used < n_r
    if interrupted and not converged:
        degraded = True
    achieved = stopper.achieved_epsilon(num_nodes)
    outcome = AdaptiveOutcome(
        totals=stopper.total.copy(),
        trials_used=trials_used,
        n_r=n_r,
        rounds_run=rounds_run,
        stopped_early=stopped_early,
        converged=converged,
        degraded=degraded,
        achieved_epsilon=achieved,
        shards_lost=shards_lost,
    )
    record_adaptive_stop(outcome.stop_reason, rounds_run, trials_used, n_r)
    return outcome


def adaptive_crash_totals(
    graph,
    tree,
    targets: np.ndarray,
    params: CrashSimParams,
    *,
    num_nodes: int,
    seed,
    sampler: str = "cdf",
    kernel=None,
    num_hubs: int = DEFAULT_HUB_COUNT,
) -> AdaptiveOutcome:
    """Serial adaptive accumulation: rounds over the shard plan, one kernel.

    Uses exactly the shard plan, per-shard seed spawn, round grouping, and
    shard-order moment folding the parallel driver uses, so a serial
    adaptive run is byte-identical to ``parallel_crashsim(adaptive=True)``
    at any worker count for the same seed.  The kernel's warm ping-pong
    buffers persist across rounds — round granularity costs no
    reallocation.
    """
    from repro.parallel.runner import plan_shards
    from repro.rng import as_seed_sequence
    from repro.walks.kernel import WalkCrashKernel

    targets = np.asarray(targets, dtype=np.int64)
    l_max = params.l_max
    n_r = params.n_r(num_nodes)
    if targets.size == 0:
        stopper = AdaptiveStopper(params, 0, 0.0, 1)
        return drive_adaptive_rounds(
            [], [], stopper, lambda *_: ([], False), num_nodes=num_nodes, n_r=n_r
        )
    shard_plan = plan_shards(n_r, targets.size, n_r=n_r)
    seeds = as_seed_sequence(seed).spawn(len(shard_plan))
    if kernel is None:
        kernel = WalkCrashKernel(graph, params.c, sampler=sampler)
    hub_cache = build_hub_cache(
        graph, tree, l_max=l_max, c=params.c, num_hubs=num_hubs
    )
    stopper = AdaptiveStopper(
        params,
        targets.size,
        walk_value_bound(tree, l_max),
        len(plan_rounds(len(shard_plan))),
    )

    def run_round(start, sizes, round_seeds):
        results = []
        for trials, shard_seed in zip(sizes, round_seeds):
            results.append(
                kernel.accumulate_moments(
                    tree,
                    targets,
                    trials,
                    l_max=l_max,
                    rng=np.random.default_rng(shard_seed),
                    hub_cache=hub_cache,
                )
            )
        return results, False

    return drive_adaptive_rounds(
        shard_plan, seeds, stopper, run_round, num_nodes=num_nodes, n_r=n_r
    )


def adaptive_crash_totals_multi(
    graph,
    trees: Sequence,
    targets: np.ndarray,
    params: CrashSimParams,
    *,
    num_nodes: int,
    seed,
    sampler: str = "cdf",
    kernel=None,
) -> AdaptiveOutcome:
    """Serial multi-source adaptive accumulation with CRN variance reduction.

    One shared walk stream scores against every source's tree (the
    ``accumulate_multi`` design), so the ``q`` per-source estimates are
    common-random-number coupled; the stopper tracks all ``q·k`` marginal
    variances on that single stream and stops when the worst one is within
    ε.  ``totals`` comes back flattened ``(q·k,)`` in source-major order.
    """
    from repro.parallel.runner import plan_shards
    from repro.rng import as_seed_sequence
    from repro.walks.kernel import WalkCrashKernel

    targets = np.asarray(targets, dtype=np.int64)
    q = len(trees)
    l_max = params.l_max
    n_r = params.n_r(num_nodes)
    if targets.size == 0 or q == 0:
        stopper = AdaptiveStopper(params, 0, 0.0, 1)
        return drive_adaptive_rounds(
            [], [], stopper, lambda *_: ([], False), num_nodes=num_nodes, n_r=n_r
        )
    shard_plan = plan_shards(n_r, targets.size * q, n_r=n_r)
    seeds = as_seed_sequence(seed).spawn(len(shard_plan))
    if kernel is None:
        kernel = WalkCrashKernel(graph, params.c, sampler=sampler)
    bounds = np.repeat(
        [walk_value_bound(tree, l_max) for tree in trees], targets.size
    )
    stopper = AdaptiveStopper(
        params, q * targets.size, bounds, len(plan_rounds(len(shard_plan)))
    )

    def run_round(start, sizes, round_seeds):
        results = []
        for trials, shard_seed in zip(sizes, round_seeds):
            results.append(
                kernel.accumulate_multi_moments(
                    trees,
                    targets,
                    trials,
                    l_max=l_max,
                    rng=np.random.default_rng(shard_seed),
                )
            )
        return results, False

    return drive_adaptive_rounds(
        shard_plan, seeds, stopper, run_round, num_nodes=num_nodes, n_r=n_r
    )
