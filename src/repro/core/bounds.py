"""Concentration bounds shared by the Monte-Carlo components.

Two families:

* :func:`chernoff_trial_count` — Lemma 3 / ProbeSim's worst-case trial
  count for a uniform (ε, δ) guarantee over all nodes.  Safe but enormous
  at practical ε (DESIGN.md §2.3).
* :func:`bernstein_radius` — per-estimate confidence radii exploiting that
  a single CrashSim trial value lies in ``[0, c]`` with mean ``s``, hence
  variance at most ``c·s``.  These are what the adaptive top-k pruning
  (:mod:`repro.core.topk`) and the durable top-k cut
  (:mod:`repro.core.temporal_topk`) consume: tight enough to prune at
  practical trial counts, conservative through the ``z`` factor and the
  Bernstein ``O(1/n)`` tail term.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from repro.errors import ParameterError

__all__ = ["chernoff_trial_count", "bernstein_radius"]


def chernoff_trial_count(
    num_nodes: int, c: float, epsilon: float, delta: float
) -> int:
    """``⌈3c/ε² · ln(n/δ)⌉`` — the uniform worst-case Monte-Carlo trial
    count behind Lemma 3 (with ε already net of any truncation slack)."""
    if not 0.0 < c < 1.0:
        raise ParameterError(f"decay factor c must be in (0, 1), got {c}")
    if epsilon <= 0.0 or delta <= 0.0:
        raise ParameterError("epsilon and delta must be positive")
    if num_nodes < 1:
        raise ParameterError(f"num_nodes must be positive, got {num_nodes}")
    return math.ceil(3.0 * c / epsilon**2 * math.log(max(num_nodes, 2) / delta))


def bernstein_radius(
    scores: Union[float, np.ndarray],
    c: float,
    trials: int,
    *,
    z: float = 4.0,
) -> Union[float, np.ndarray]:
    """Confidence radius around Monte-Carlo estimates ``scores``.

    ``z · sqrt(c·max(s, 1/n)/n) + z·c/n`` for ``n = trials``: ``z``
    standard errors under the variance bound ``Var ≤ c·s`` plus the
    Bernstein lower-order term.  Accepts a scalar or an array and returns
    the same shape.
    """
    if not 0.0 < c < 1.0:
        raise ParameterError(f"decay factor c must be in (0, 1), got {c}")
    if trials < 1:
        raise ParameterError(f"trials must be positive, got {trials}")
    if z <= 0.0:
        raise ParameterError(f"z must be positive, got {z}")
    values = np.asarray(scores, dtype=np.float64)
    variance_bound = c * np.maximum(values, 1.0 / trials)
    radius = z * np.sqrt(variance_bound / trials) + z * c / trials
    if np.isscalar(scores) or getattr(scores, "ndim", 1) == 0:
        return float(radius)
    return radius
