"""Accuracy metrics exactly as the paper's §V defines them.

* ``ME = max_v |s(u, v) - s̃(u, v)|`` — the maximum error of a single-source
  computation against the Power-Method ground truth (Fig. 5);
* ``precision = |v(k₁) ∩ v(k₂)| / max(k₁, k₂)`` — the temporal-query result
  set overlap against the ground-truth result set (Fig. 6).
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "max_error",
    "mean_absolute_error",
    "result_set_precision",
    "top_k_precision",
]


def _aligned(truth: np.ndarray, estimate: np.ndarray) -> tuple:
    truth = np.asarray(truth, dtype=np.float64)
    estimate = np.asarray(estimate, dtype=np.float64)
    if truth.shape != estimate.shape:
        raise ParameterError(
            f"score vectors differ in shape: {truth.shape} vs {estimate.shape}"
        )
    return truth, estimate


def max_error(
    truth: np.ndarray,
    estimate: np.ndarray,
    *,
    exclude: Optional[Iterable[int]] = None,
) -> float:
    """Paper's ME: ``max_v |truth_v - estimate_v|``.

    ``exclude`` drops indices (typically the source, whose score is the
    fixed base case 1.0 on both sides) from the maximisation.
    """
    truth, estimate = _aligned(truth, estimate)
    diff = np.abs(truth - estimate)
    if exclude is not None:
        diff = np.delete(diff, np.asarray(list(exclude), dtype=np.int64))
    if diff.size == 0:
        return 0.0
    return float(diff.max())


def mean_absolute_error(
    truth: np.ndarray,
    estimate: np.ndarray,
    *,
    exclude: Optional[Iterable[int]] = None,
) -> float:
    """Mean absolute error — a smoother companion to ME for ablations."""
    truth, estimate = _aligned(truth, estimate)
    diff = np.abs(truth - estimate)
    if exclude is not None:
        diff = np.delete(diff, np.asarray(list(exclude), dtype=np.int64))
    if diff.size == 0:
        return 0.0
    return float(diff.mean())


def result_set_precision(truth_set: Set[int], result_set: Set[int]) -> float:
    """Paper's precision: ``|v(k₁) ∩ v(k₂)| / max(k₁, k₂)``.

    ``truth_set`` is the Power-Method query result, ``result_set`` the
    algorithm under test's.  Both empty counts as a perfect answer.
    """
    truth_set = set(truth_set)
    result_set = set(result_set)
    denominator = max(len(truth_set), len(result_set))
    if denominator == 0:
        return 1.0
    return len(truth_set & result_set) / denominator


def top_k_precision(
    truth: np.ndarray, estimate: np.ndarray, k: int, *, exclude: Optional[int] = None
) -> float:
    """Overlap of the top-``k`` node sets of two score vectors.

    Used by the top-k example and the extension benchmarks; ties broken by
    node id for determinism.
    """
    truth, estimate = _aligned(truth, estimate)
    if k < 0:
        raise ParameterError(f"k must be non-negative, got {k}")
    if k == 0:
        return 1.0
    ids = np.arange(truth.size)
    if exclude is not None:
        mask = ids != exclude
        ids = ids[mask]
        truth = truth[mask]
        estimate = estimate[mask]
    k = min(k, ids.size)
    truth_top = set(ids[np.lexsort((ids, -truth))][:k].tolist())
    estimate_top = set(ids[np.lexsort((ids, -estimate))][:k].tolist())
    return len(truth_top & estimate_top) / k
