"""Accuracy and timing metrics used by the experiment harness (paper §V)."""

from repro.metrics.accuracy import (
    max_error,
    mean_absolute_error,
    result_set_precision,
    top_k_precision,
)
from repro.metrics.timing import Timer, TimingStats, measure

__all__ = [
    "max_error",
    "mean_absolute_error",
    "result_set_precision",
    "top_k_precision",
    "Timer",
    "TimingStats",
    "measure",
]
