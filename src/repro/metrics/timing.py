"""Wall-clock measurement helpers for the experiment harness.

The paper reports *response time* (for index-based algorithms: indexing
time plus computation time — §V-A).  :class:`Timer` is a context manager;
:func:`measure` wraps a callable; :class:`TimingStats` aggregates repeated
measurements into the mean/min/max rows the report printers consume.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

from repro.errors import ParameterError

__all__ = ["Timer", "TimingStats", "measure"]


class Timer:
    """Context manager capturing elapsed wall-clock seconds.

    >>> with Timer() as timer:
    ...     sum(range(1001))
    500500
    >>> timer.elapsed >= 0.0
    True
    """

    def __init__(self):
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = time.perf_counter() - self._start


def measure(fn: Callable[[], Any]) -> Tuple[Any, float]:
    """Call ``fn`` and return ``(result, elapsed_seconds)``."""
    with Timer() as timer:
        result = fn()
    return result, timer.elapsed


@dataclass
class TimingStats:
    """Aggregate of repeated timings (seconds)."""

    samples: List[float] = field(default_factory=list)

    def add(self, seconds: float) -> None:
        if seconds < 0:
            raise ParameterError(f"negative duration {seconds}")
        self.samples.append(float(seconds))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.samples else 0.0

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def percentile(self, q: float) -> float:
        """The q-th percentile (linear interpolation between samples).

        >>> stats = TimingStats()
        >>> for s in (1.0, 2.0, 3.0, 4.0):
        ...     stats.add(s)
        >>> stats.percentile(50)
        2.5
        >>> stats.percentile(100)
        4.0
        """
        if not 0 <= q <= 100:
            raise ParameterError(f"percentile must be in [0, 100], got {q}")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        fraction = rank - low
        return ordered[low] + (ordered[high] - ordered[low]) * fraction

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p90(self) -> float:
        return self.percentile(90)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def as_row(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_s": self.mean,
            "min_s": self.minimum,
            "max_s": self.maximum,
            "total_s": self.total,
        }
