"""Deterministic fault injection for resilience testing.

The chaos suite (``tests/test_failure_injection.py``) needs to kill worker
processes, stall shards past a deadline, and raise mid-shard — *inside*
worker processes, repeatably, without touching production code paths.  This
module provides exactly that: named **sites** in the execution layers call
:func:`inject` with their shard / snapshot index, and the call is a no-op
unless the ``REPRO_FAULTS`` environment variable carries a plan.

Environment contract
--------------------

``REPRO_FAULTS``
    A JSON object mapping *site* → { *index* → action }.  An action is
    ``{"kind": "kill" | "raise" | "delay", "seconds": float,
    "times": int}`` (``seconds`` only for ``delay``; ``times`` defaults
    to 1).  Example::

        REPRO_FAULTS='{"shard": {"3": {"kind": "kill"}}}'

    kills the worker process the first time trial shard 3 starts.
``REPRO_FAULTS_DIR``
    A directory used to count firings across *processes* (workers inherit
    the environment, so without shared state a retried shard would be
    killed again forever).  Each firing claims a marker file atomically
    (``O_CREAT | O_EXCL``); once ``times`` markers exist the fault is
    spent.  Without the directory every matching call fires.

Why environment variables: worker processes are created by
``ProcessPoolExecutor`` under both ``fork`` and ``spawn``, and the
environment is the one channel that reaches them under either start method
with zero plumbing through task objects.  The production fast path is a
single ``os.environ`` membership test.

Sites currently instrumented:

* ``"shard"`` — a Monte-Carlo trial shard starting
  (:mod:`repro.parallel.runner`, both the pool workers and the serial
  in-process path); index = shard number.
* ``"snapshot"`` — a temporal snapshot evaluation starting
  (:mod:`repro.parallel.temporal`); index = snapshot index.
* ``"advance"`` — a :class:`~repro.core.streaming.TemporalQuerySession`
  push, after pruning but before scoring; index = the snapshot ordinal
  being pushed.
* ``"queue_delay"`` — an :meth:`~repro.serve.Engine.submit` call, in the
  submitting thread, *before* admission control runs; index = the
  engine's submission ordinal.  A ``delay`` here burns the request's
  deadline the way a slow client or saturated accept loop would.
* ``"dispatcher"`` — the top of each engine dispatcher iteration, before
  any request is popped; index = a per-engine iteration counter that
  survives watchdog restarts.  ``raise`` kills the dispatcher thread
  (nothing queued is lost — the watchdog restarts it), ``delay`` hangs it
  for stall detection.  ``kill`` would take down the whole process —
  these two sites run in the serving process, not a worker.
* ``"executor_stall"`` — the top of each
  :meth:`~repro.parallel.ParallelExecutor.run` call, after the deadline
  clock starts; index = the executor's run ordinal.  A ``delay`` here
  deterministically converts the run into a deadline expiry, which is how
  the overload suite trips the engine's circuit breaker.

Tests should prefer the :func:`active` context manager, which installs a
plan plus a fresh marker directory and restores the environment on exit.
"""

from __future__ import annotations

import contextlib
import errno
import json
import os
import signal
import tempfile
import time
from typing import Dict, Iterator, Optional

__all__ = ["InjectedFault", "inject", "active", "enabled"]

ENV_PLAN = "REPRO_FAULTS"
ENV_DIR = "REPRO_FAULTS_DIR"

_KINDS = ("kill", "raise", "delay")


class InjectedFault(RuntimeError):
    """The exception raised by a ``"raise"``-kind injected fault.

    Deliberately *not* a :class:`~repro.errors.ReproError`: it stands in
    for an arbitrary third-party crash, so library code must not be able
    to catch it via its own hierarchy.
    """


# Cache the parsed plan keyed by the raw JSON string, so repeated inject()
# calls in a hot loop do not re-parse, while tests that swap the variable
# still see the new plan immediately.
_parsed: Dict[str, dict] = {}


def enabled() -> bool:
    """Whether a fault plan is installed in this process's environment."""
    return ENV_PLAN in os.environ


def _plan() -> Optional[dict]:
    raw = os.environ.get(ENV_PLAN)
    if not raw:
        return None
    plan = _parsed.get(raw)
    if plan is None:
        try:
            plan = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise InjectedFault(f"unparsable {ENV_PLAN} value: {exc}") from exc
        if not isinstance(plan, dict):
            raise InjectedFault(f"{ENV_PLAN} must be a JSON object")
        _parsed.clear()  # only ever one live plan; don't accumulate
        _parsed[raw] = plan
    return plan


def _claim_firing(site: str, index: int, times: int) -> bool:
    """Atomically claim one of the fault's ``times`` firings.

    Marker files in ``REPRO_FAULTS_DIR`` are shared by every process of
    the run, so a fault that killed a worker once stays spent when the
    shard is retried in a fresh worker.  Returns ``False`` once spent.
    """
    directory = os.environ.get(ENV_DIR)
    if not directory:
        return True  # unbounded: no cross-process state available
    for firing in range(max(1, times)):
        marker = os.path.join(directory, f"{site}-{index}-{firing}")
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except OSError as exc:
            if exc.errno == errno.EEXIST:
                continue
            raise
        os.close(fd)
        return True
    return False


def inject(site: str, index: int) -> None:
    """Fire the configured fault for ``(site, index)``, if any.

    The fast path — no ``REPRO_FAULTS`` in the environment — is a single
    dict lookup, so production call sites cost nothing measurable.
    """
    plan = _plan()
    if plan is None:
        return
    actions = plan.get(site)
    if not actions:
        return
    action = actions.get(str(int(index)))
    if action is None:
        return
    kind = action.get("kind")
    if kind not in _KINDS:
        raise InjectedFault(f"unknown fault kind {kind!r} at {site}[{index}]")
    if not _claim_firing(site, index, int(action.get("times", 1))):
        return
    if kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
        # SIGKILL is not deliverable to ourselves synchronously on every
        # platform; make sure the site never proceeds past a kill.
        time.sleep(60)  # pragma: no cover - unreachable after SIGKILL
        raise InjectedFault(f"kill at {site}[{index}] did not terminate")
    if kind == "delay":
        time.sleep(float(action.get("seconds", 1.0)))
        return
    raise InjectedFault(f"injected failure at {site}[{index}]")


def _reset_shared_pools() -> None:
    # The persistent default executors hold worker pools whose processes
    # read the fault-plan environment at pool creation (fork inherits it,
    # spawn re-reads it).  A pool that predates the plan would never see
    # it — and one that outlives the plan would keep firing it — so both
    # edges of active() drop the shared pools; the next query lazily
    # rebuilds them under the current environment.
    from repro.parallel.executor import reset_default_executors

    reset_default_executors()


@contextlib.contextmanager
def active(plan: dict, directory: Optional[str] = None) -> Iterator[str]:
    """Install ``plan`` (and a marker directory) for the duration of a test.

    Yields the marker directory so assertions can inspect which faults
    fired.  Restores both environment variables on exit; pools created
    *inside* the block inherit the plan under fork and spawn alike (the
    process-wide default executors are reset on entry and exit so no
    shared pool straddles the plan boundary).
    """
    saved = {key: os.environ.get(key) for key in (ENV_PLAN, ENV_DIR)}
    with contextlib.ExitStack() as stack:
        if directory is None:
            directory = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-faults-")
            )
        _reset_shared_pools()
        os.environ[ENV_PLAN] = json.dumps(plan)
        os.environ[ENV_DIR] = directory
        try:
            yield directory
        finally:
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
            _reset_shared_pools()
