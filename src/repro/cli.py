"""Command-line entry point: ``python -m repro <command> [options]``.

Examples
--------
::

    python -m repro table2
    python -m repro table3 --profile default
    python -m repro fig5 --profile quick --dataset hepth
    python -m repro fig6
    python -m repro fig7 --profile default
    python -m repro ablation
    python -m repro ablation-estimator
    python -m repro scalability
    python -m repro all --profile quick
    python -m repro export-dataset --dataset hepth --out /tmp/hepth --snapshots 10
    python -m repro serve --dataset hepth --port 8321
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Optional, Sequence

from repro.experiments import (
    get_profile,
    print_table,
    run_estimator_ablation,
    run_figure5,
    run_figure6,
    run_figure7,
    run_pruning_ablation,
    run_c_sensitivity,
    run_scalability,
    run_table2,
    run_table3,
    run_theta_sensitivity,
)

__all__ = ["main", "build_parser"]

EXPERIMENTS = [
    "table2",
    "table3",
    "fig5",
    "fig6",
    "fig7",
    "ablation",
    "ablation-estimator",
    "scalability",
    "sensitivity-c",
    "sensitivity-theta",
    "all",
    "report",
    "export-dataset",
    "check",
    "selftest",
    "query",
    "serve",
    "stats",
]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of the CrashSim paper.",
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS,
        help="which paper artefact to regenerate (or export-dataset)",
    )
    parser.add_argument(
        "--profile",
        default=None,
        help="sizing profile: quick (default), default, or full "
        "(also via REPRO_PROFILE)",
    )
    parser.add_argument(
        "--dataset",
        action="append",
        default=None,
        help="restrict to one dataset (repeatable; fig5/fig6/export-dataset)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output path (export-dataset: directory; report: .md file)",
    )
    parser.add_argument(
        "--snapshots",
        type=int,
        default=None,
        help="snapshot count override (export-dataset only)",
    )
    parser.add_argument(
        "--save",
        default=None,
        help="also write the result rows as JSON to this path "
        "(directory when running 'all')",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="directory of saved result JSONs to regress against "
        "('check' only)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process count for parallel execution ('query' only; "
        "default: serial estimator, 0 = all CPUs)",
    )
    parser.add_argument(
        "--mode",
        choices=["auto", "thread", "process"],
        default="auto",
        help="parallel execution tier for 'query'/'serve' (default: auto — "
        "threads when the nogil JIT is active, processes otherwise; "
        "never affects scores)",
    )
    parser.add_argument(
        "--source",
        type=int,
        default=None,
        help="query source node id ('query' only; default: max in-degree node)",
    )
    parser.add_argument(
        "--method",
        default="crashsim",
        help="single-source algorithm for 'query' (default: crashsim)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        help="number of top-scoring nodes 'query' prints (default: 10)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="wall-clock budget in seconds for 'query' (crashsim only); "
        "on expiry the completed trial shards are averaged and the "
        "degraded, wider-ε result is labelled as such",
    )
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help="adaptive sampling for 'query'/'serve' (crashsim only): run "
        "trials in geometrically growing rounds and stop early once the "
        "empirical-Bernstein error bound is within ε; prints/reports the "
        "trials actually used and the honest achieved ε",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address for 'serve' (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8321,
        help="bind port for 'serve' (default: 8321; 0 = ephemeral)",
    )
    parser.add_argument(
        "--batch-window",
        type=float,
        default=0.002,
        help="seconds 'serve' waits for companion requests after the first "
        "of a batch arrives (default: 0.002; 0 = no waiting)",
    )
    parser.add_argument(
        "--tree-cache",
        type=int,
        default=256,
        help="source reverse-tree LRU capacity for 'serve' (default: 256)",
    )
    parser.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        help="bound on queued requests for 'serve'; at capacity the shed "
        "policy applies (default: unbounded)",
    )
    parser.add_argument(
        "--shed-policy",
        choices=["reject", "shed-oldest"],
        default="reject",
        help="what 'serve' does when the queue is full: reject the "
        "newcomer with HTTP 429, or shed the oldest queued deadline-less "
        "request (default: reject)",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=0,
        help="consecutive deadline-exceeded/degraded outcomes that trip "
        "'serve's circuit breaker into cheap degraded mode (default: 0 = "
        "disabled)",
    )
    parser.add_argument(
        "--breaker-cooldown",
        type=float,
        default=1.0,
        help="seconds the tripped breaker stays open before a half-open "
        "probe (default: 1.0)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="log each HTTP request ('serve' only)",
    )
    parser.add_argument(
        "--stats-out",
        default=None,
        help="write the final metrics-registry snapshot as JSON to this "
        "path ('serve': on shutdown; 'stats': after the probe query)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="also print the per-query span tree ('stats' only)",
    )
    parser.add_argument(
        "--url",
        default=None,
        help="scrape a running server's /metrics instead of probing "
        "locally ('stats' only; e.g. http://127.0.0.1:8321)",
    )
    return parser


def _export_dataset(args, profile) -> None:
    from repro.datasets.registry import load_dataset
    from repro.graph.io import write_snapshot_directory

    if not args.out:
        raise SystemExit("export-dataset requires --out <directory>")
    names = args.dataset or ["hepth"]
    for name in names:
        temporal = load_dataset(
            name,
            scale=profile.scale,
            num_snapshots=args.snapshots,
            seed=profile.seed,
        )
        paths = write_snapshot_directory(
            temporal, f"{args.out}/{name}", prefix=name
        )
        print(f"wrote {len(paths)} snapshot files to {args.out}/{name}")


def _run_query(args, profile) -> int:
    """One single-source query against a profile-sized dataset graph.

    ``--workers N`` routes CrashSim through the parallel executor
    (``--workers 0`` means "all CPUs"); any worker count returns identical
    scores for the same profile seed.
    """
    import time

    import numpy as np

    from repro.api import single_source
    from repro.datasets.registry import load_static_dataset
    from repro.errors import DeadlineExceededError

    name = (args.dataset or ["hepth"])[0]
    graph = load_static_dataset(name, scale=profile.scale, seed=profile.seed)
    source = (
        int(np.argmax(graph.in_degrees())) if args.source is None else args.source
    )
    workers = args.workers
    if workers == 0:
        workers = None if args.method != "crashsim" else __import__("os").cpu_count()
    started = time.perf_counter()
    try:
        scores = single_source(
            graph,
            source,
            method=args.method,
            c=profile.c,
            delta=profile.delta,
            n_r=profile.n_r_cap,
            seed=profile.seed,
            workers=workers,
            deadline=args.deadline,
            mode=args.mode,
            adaptive=args.adaptive,
        )
    except DeadlineExceededError as exc:
        print(f"deadline exceeded with nothing to salvage: {exc}")
        return 2
    elapsed = time.perf_counter() - started
    mode = f"workers={workers}" if workers is not None else "serial"
    if args.deadline is not None:
        mode += f", deadline={args.deadline}s"
    if args.adaptive:
        mode += ", adaptive"
    print(
        f"{args.method} on {name} (n={graph.num_nodes}, m={graph.num_edges}): "
        f"source {source}, {mode}, {elapsed:.3f}s"
    )
    if getattr(scores, "degraded", False):
        print(
            f"  DEGRADED result: {scores.trials_completed} trials completed; "
            f"achieved ε={scores.achieved_epsilon:.4g} (wider than the target "
            "bound; scores remain unbiased)"
        )
    elif getattr(scores, "stopped_early", False):
        print(
            f"  stopped early: {scores.trials_completed} trials sufficed; "
            f"achieved ε={scores.achieved_epsilon:.4g} (within the target "
            "bound)"
        )
    order = np.lexsort((np.arange(scores.size), -scores))
    shown = 0
    for node in order:
        if node == source:
            continue
        print(f"  s({source}, {int(node)}) = {scores[node]:.6f}")
        shown += 1
        if shown >= max(0, args.top):
            break
    return 0


def _run_stats(args, profile) -> int:
    """Print an observability snapshot: scrape a server or probe locally.

    ``--url`` fetches a running server's ``/metrics`` exposition verbatim.
    Without it, one representative single-source query runs against the
    profile-sized dataset graph with a trace active, then the global
    registry snapshot is printed (``--trace`` adds the span tree;
    ``--stats-out`` also writes the snapshot JSON to a file).
    """
    from repro import obs

    if args.url:
        from urllib.request import urlopen

        with urlopen(args.url.rstrip("/") + "/metrics") as response:
            print(response.read().decode("utf-8"), end="")
        return 0

    import numpy as np

    from repro.api import single_source
    from repro.datasets.registry import load_static_dataset

    name = (args.dataset or ["hepth"])[0]
    graph = load_static_dataset(name, scale=profile.scale, seed=profile.seed)
    source = (
        int(np.argmax(graph.in_degrees())) if args.source is None else args.source
    )
    trace = obs.Trace("query", {"source": source, "dataset": name})
    with trace.activate():
        single_source(
            graph,
            source,
            c=profile.c,
            delta=profile.delta,
            n_r=profile.n_r_cap,
            seed=profile.seed,
        )
    print(
        f"probe query: {name} (n={graph.num_nodes}, m={graph.num_edges}), "
        f"source {source}, {trace.elapsed:.3f}s"
    )
    if args.trace:
        print()
        print(trace.render())
    print()
    print(obs.REGISTRY.dump_json())
    if args.stats_out:
        with open(args.stats_out, "w", encoding="utf-8") as handle:
            handle.write(obs.REGISTRY.dump_json())
        print(f"wrote registry snapshot to {args.stats_out}")
    return 0


def _run_serve(args, profile) -> int:
    """Run the long-lived query engine behind an HTTP front door.

    Loads the profile-sized dataset graph, builds one
    :class:`~repro.serve.Engine`, and serves ``POST /v1/query`` until
    interrupted; Ctrl-C drains in-flight requests before exiting.
    """
    from repro.datasets.registry import load_static_dataset
    from repro.serve import Engine, EngineConfig, create_server
    from repro.serve.http import serve_forever

    name = (args.dataset or ["hepth"])[0]
    graph = load_static_dataset(name, scale=profile.scale, seed=profile.seed)
    config = EngineConfig(
        c=profile.c,
        delta=profile.delta,
        n_r=profile.n_r_cap,
        batch_window=args.batch_window,
        tree_cache_size=args.tree_cache,
        workers=args.workers if args.workers else None,
        mode=args.mode,
        seed=profile.seed,
        max_queue_depth=args.max_queue_depth,
        shed_policy=args.shed_policy,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        adaptive=args.adaptive,
    )
    engine = Engine(graph, config)
    server = create_server(
        engine, host=args.host, port=args.port, verbose=args.verbose
    )
    host, port = server.server_address[:2]
    print(
        f"serving {name} (n={graph.num_nodes}, m={graph.num_edges}) on "
        f"http://{host}:{port} — POST /v1/query, GET /healthz, GET /readyz, "
        "GET /stats, GET /metrics; Ctrl-C to stop"
    )
    serve_forever(server)
    print("drained; engine stats:", engine.stats())
    _print_serve_percentiles(engine)
    if args.stats_out:
        import json

        with open(args.stats_out, "w", encoding="utf-8") as handle:
            json.dump(engine.metrics_snapshot(), handle, indent=1)
        print(f"wrote metrics snapshot to {args.stats_out}")
    return 0


def _print_serve_percentiles(engine) -> None:
    """Shutdown summary: batch-size and latency percentiles, if any."""
    snapshot = engine.registry.snapshot()
    latency = snapshot.get("repro_engine_latency_seconds", {})
    sizes = snapshot.get("repro_engine_batch_size", {})
    if latency.get("count"):
        print(
            f"latency: p50={latency['p50'] * 1000:.1f}ms "
            f"p90={latency['p90'] * 1000:.1f}ms "
            f"p99={latency['p99'] * 1000:.1f}ms "
            f"over {latency['count']} queries"
        )
    if sizes.get("count"):
        print(
            f"batch size: p50={sizes['p50']:.1f} p90={sizes['p90']:.1f} "
            f"p99={sizes['p99']:.1f} over {sizes['count']} batches"
        )


def _check_baselines(args, runners) -> int:
    """Re-run every experiment with a saved baseline and report drift."""
    from pathlib import Path

    from repro.experiments.serialization import load_rows, rows_differ

    if not args.baseline:
        raise SystemExit("check requires --baseline <directory>")
    baseline_dir = Path(args.baseline)
    files = sorted(baseline_dir.glob("*.json"))
    if not files:
        raise SystemExit(f"no baseline JSON files in {baseline_dir}")
    failures = 0
    for path in files:
        saved_rows, meta = load_rows(path)
        name = meta.get("experiment")
        if name not in runners:
            print(f"{path.name}: unknown experiment {name!r}, skipping")
            continue
        _, runner = runners[name]
        problems = rows_differ(saved_rows, runner())
        if problems:
            failures += 1
            print(f"{name}: DRIFT ({len(problems)} differences)")
            for problem in problems[:10]:
                print(f"  {problem}")
        else:
            print(f"{name}: ok ({len(saved_rows)} rows)")
    return 1 if failures else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    profile = get_profile(args.profile)
    datasets = args.dataset

    runners: Dict[str, tuple] = {
        "table2": (
            "Table II — SimRank w.r.t. A (c=0.25)",
            lambda: run_table2(),
        ),
        "table3": (
            "Table III — datasets (paper vs synthetic)",
            lambda: run_table3(profile),
        ),
        "fig5": (
            f"Figure 5 — static response time and ME [{profile.name}]",
            lambda: run_figure5(profile, datasets=datasets),
        ),
        "fig6": (
            f"Figure 6 — temporal query precision [{profile.name}]",
            lambda: run_figure6(profile, datasets=datasets),
        ),
        "fig7": (
            f"Figure 7 — time vs interval length [{profile.name}]",
            lambda: run_figure7(profile),
        ),
        "ablation": (
            f"Pruning ablation [{profile.name}]",
            lambda: run_pruning_ablation(profile),
        ),
        "ablation-estimator": (
            f"Estimator ablation [{profile.name}]",
            lambda: run_estimator_ablation(profile),
        ),
        "scalability": (
            f"Scalability — time vs graph size [{profile.name}]",
            lambda: run_scalability(profile),
        ),
        "sensitivity-c": (
            f"Sensitivity — decay factor c [{profile.name}]",
            lambda: run_c_sensitivity(profile),
        ),
        "sensitivity-theta": (
            f"Sensitivity — threshold θ [{profile.name}]",
            lambda: run_theta_sensitivity(profile),
        ),
    }

    def run_one(name: str, save_path: Optional[str]) -> None:
        title, runner = runners[name]
        rows = runner()
        print_table(rows, title=title)
        if name == "fig7" and rows and "snapshots" in rows[0]:
            from repro.experiments.report import print_series

            print_series(
                rows,
                x="snapshots",
                y="total_time_s",
                group="algorithm",
                title="total time by interval length (taller = slower)",
            )
        elif name == "scalability" and rows and "n" in rows[0]:
            from repro.experiments.report import print_series

            print_series(
                rows,
                x="n",
                y="mean_time_s",
                group="algorithm",
                title="query time by graph size (taller = slower)",
            )
        if save_path:
            from repro.experiments.serialization import save_rows

            written = save_rows(
                rows, save_path, experiment=name, profile=profile.name
            )
            print(f"saved {len(rows)} rows to {written}")

    if args.experiment == "report":
        from repro.experiments.full_report import write_report

        if not args.out:
            raise SystemExit("report requires --out <file.md>")
        written = write_report(args.out, profile)
        print(f"wrote report to {written}")
        return 0
    if args.experiment == "selftest":
        from repro.selftest import run_selftest

        return 0 if run_selftest() else 1
    if args.experiment == "query":
        return _run_query(args, profile)
    if args.experiment == "serve":
        return _run_serve(args, profile)
    if args.experiment == "stats":
        return _run_stats(args, profile)
    if args.experiment == "export-dataset":
        _export_dataset(args, profile)
    elif args.experiment == "check":
        return _check_baselines(args, runners)
    elif args.experiment == "all":
        for name in runners:
            save_path = (
                f"{args.save}/{name}.json" if args.save else None
            )
            run_one(name, save_path)
    else:
        run_one(args.experiment, args.save)
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution guard
    sys.exit(main())
