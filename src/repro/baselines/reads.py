"""READS (Jiang et al., VLDB 2017) — dynamic index-based SimRank baseline.

READS materialises ``r`` independent *one-way graphs*: in sample ``j`` every
node draws one uniform in-neighbour pointer and one √c continuation coin.
Within a sample the reverse walk of any node is deterministic — follow the
pointers while the coins hold — so walks coalesce and the first meeting of
two walks is *the* meeting, the coupled-walk estimator READS builds on.

* **Query** (single source ``u``): per sample, ``r_q`` fresh √c-walks
  ``(u, w_1, ..., w_L)`` are drawn from ``u`` on the real graph.  For each
  step ``i`` the nodes whose sample walk sits on ``w_i`` at step ``i`` are
  collected by an ``i``-level reverse BFS over the sample's pointer
  inverses (passing only through nodes whose coin keeps their walk alive).
  A candidate counts once per (sample, walk) pair, at its first meeting;
  the estimate is the meeting fraction over ``r · r_q`` pairs.
* **Dynamic update** (:meth:`apply_delta`): an edge change ``x → y`` only
  perturbs the pointer distribution of ``y``.  Insertion re-points ``y`` at
  ``x`` with probability ``1/|I_new(y)|`` (preserving uniformity); deletion
  resamples ``y``'s pointer only where it pointed at ``x``.  This locality
  is READS' selling point — and, as the paper notes (§IV-A), re-running it
  per temporal snapshot still recomputes full single-source scores.

READS provides no maximum-error guarantee (paper §V-A observes its ME is
the worst of the four algorithms); accuracy is controlled only through
``r`` and ``r_q``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.errors import ParameterError
from repro.graph.digraph import DiGraph
from repro.rng import RngLike, ensure_rng
from repro.walks.sqrt_c import sample_sqrt_c_walk

__all__ = ["ReadsIndex"]

Edge = Tuple[int, int]


class ReadsIndex:
    """One-way-graph SimRank index with localized dynamic updates.

    Parameters
    ----------
    graph:
        The graph to index; rebased with :meth:`apply_delta` on change.
    r:
        Number of one-way-graph samples (paper setting: 100).
    t:
        Depth cap of indexed and query walks (paper setting: 10).
    r_q:
        Fresh source walks per sample at query time (paper setting: 10).
    c:
        SimRank decay factor.
    seed:
        Anything :func:`repro.rng.ensure_rng` accepts; drives both index
        construction and query-time walks.
    """

    def __init__(
        self,
        graph: DiGraph,
        *,
        r: int = 100,
        t: int = 10,
        r_q: int = 10,
        c: float = 0.6,
        seed: RngLike = None,
    ):
        if r < 1 or r_q < 1 or t < 1:
            raise ParameterError("r, r_q, and t must all be positive")
        if not 0.0 < c < 1.0:
            raise ParameterError(f"decay factor c must be in (0, 1), got {c}")
        if graph.is_weighted:
            raise ParameterError(
                "ReadsIndex supports unweighted graphs only (its localized "
                "pointer updates assume uniform in-neighbour sampling)"
            )
        self.graph = graph
        self.r = int(r)
        self.t = int(t)
        self.r_q = int(r_q)
        self.c = float(c)
        self.sqrt_c = math.sqrt(c)
        self._rng = ensure_rng(seed)
        n = graph.num_nodes
        # pointers[j, v]: v's sampled in-neighbour in sample j (-1 if none).
        self.pointers = np.full((self.r, n), -1, dtype=np.int64)
        # alive[j, v]: v's continuation coin in sample j (walks stop at the
        # first node whose coin is False).
        self.alive = self._rng.random((self.r, n)) < self.sqrt_c
        degrees = graph.in_degrees()
        for node in range(n):
            degree = int(degrees[node])
            if degree == 0:
                continue
            block = graph.in_neighbors(node)
            picks = self._rng.integers(0, degree, size=self.r)
            self.pointers[:, node] = block[picks]
        self._children: Optional[List[Dict[int, List[int]]]] = None

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------

    def _ensure_children(self) -> List[Dict[int, List[int]]]:
        """Inverse pointer adjacency per sample, built lazily and kept in
        sync by :meth:`apply_delta`."""
        if self._children is None:
            children: List[Dict[int, List[int]]] = []
            for j in range(self.r):
                inverse: Dict[int, List[int]] = {}
                row = self.pointers[j]
                for node in np.nonzero(row >= 0)[0]:
                    inverse.setdefault(int(row[node]), []).append(int(node))
                children.append(inverse)
            self._children = children
        return self._children

    def _preimages_at_depth(
        self, sample: int, anchor: int, depth: int
    ) -> Set[int]:
        """Nodes whose sample walk is at ``anchor`` after exactly ``depth``
        steps: the depth-level preimage set under the pointer map,
        traversing only alive nodes."""
        children = self._ensure_children()[sample]
        alive = self.alive[sample]
        frontier: Set[int] = {anchor}
        for _ in range(depth):
            next_frontier: Set[int] = set()
            for node in frontier:
                for child in children.get(node, ()):
                    if alive[child]:
                        next_frontier.add(child)
            if not next_frontier:
                return set()
            frontier = next_frontier
        return frontier

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------

    def query(self, source: int) -> np.ndarray:
        """Single-source SimRank estimate ``s(source, ·)``, length ``n``."""
        n = self.graph.num_nodes
        if not 0 <= int(source) < n:
            raise ParameterError(f"source {source} outside the node range [0, {n})")
        source = int(source)
        totals = np.zeros(n, dtype=np.float64)
        for sample in range(self.r):
            for _ in range(self.r_q):
                walk = sample_sqrt_c_walk(
                    self.graph, source, self.c, max_length=self.t, seed=self._rng
                )
                met: Set[int] = set()
                for step in range(1, len(walk)):
                    hitters = self._preimages_at_depth(sample, walk[step], step)
                    for node in hitters:
                        if node != source and node not in met:
                            met.add(node)
                if met:
                    totals[list(met)] += 1.0
        totals /= self.r * self.r_q
        totals[source] = 1.0
        return totals

    # ------------------------------------------------------------------
    # Dynamic maintenance
    # ------------------------------------------------------------------

    def apply_delta(
        self,
        new_graph: DiGraph,
        added: Iterable[Edge] = (),
        removed: Iterable[Edge] = (),
    ) -> int:
        """Rebase the index onto ``new_graph`` given the edge changes.

        ``added`` / ``removed`` are arcs ``(x, y)`` (for undirected graphs
        pass canonical edges — both orientations are handled).  Returns the
        number of pointer entries resampled, the locality measure the
        paper's READS discussion is about.
        """
        if new_graph.num_nodes != self.graph.num_nodes:
            raise ParameterError("apply_delta cannot change the node count")
        resampled = 0
        heads: List[Tuple[int, int, bool]] = []  # (tail, head, is_insert)
        for x, y in added:
            heads.append((int(x), int(y), True))
            if not new_graph.directed:
                heads.append((int(y), int(x), True))
        for x, y in removed:
            heads.append((int(x), int(y), False))
            if not new_graph.directed:
                heads.append((int(y), int(x), False))
        self.graph = new_graph
        for tail, head, is_insert in heads:
            neighbors = new_graph.in_neighbors(head)
            degree = neighbors.size
            if is_insert:
                if degree == 0:
                    continue
                # Re-point at the new in-neighbour with probability 1/deg,
                # which keeps every sample's pointer uniform over I_new.
                flips = self._rng.random(self.r) < 1.0 / degree
                resampled += self._repoint(head, flips, tail)
            else:
                stale = self.pointers[:, head] == tail
                if degree == 0:
                    resampled += self._repoint(head, stale, -1)
                else:
                    picks = neighbors[
                        self._rng.integers(0, degree, size=self.r)
                    ].astype(np.int64)
                    resampled += self._repoint_array(head, stale, picks)
        return resampled

    def _repoint(self, node: int, mask: np.ndarray, value: int) -> int:
        values = np.full(self.r, value, dtype=np.int64)
        return self._repoint_array(node, mask, values)

    def _repoint_array(
        self, node: int, mask: np.ndarray, values: np.ndarray
    ) -> int:
        """Set ``pointers[j, node] = values[j]`` where ``mask[j]``, keeping
        the inverse adjacency in sync."""
        changed = 0
        samples = np.nonzero(mask)[0]
        for j in samples:
            old = int(self.pointers[j, node])
            new = int(values[j])
            if old == new:
                continue
            changed += 1
            self.pointers[j, node] = new
            if self._children is not None:
                if old >= 0:
                    bucket = self._children[j].get(old)
                    if bucket is not None and node in bucket:
                        bucket.remove(node)
                        if not bucket:
                            del self._children[j][old]
                if new >= 0:
                    self._children[j].setdefault(new, []).append(node)
        return changed
