"""Jeh & Widom's iterative SimRank — the paper's ground truth.

The fixed point of

    S = max(c · Wᵀ S W, I)        (element-wise max with the identity)

where ``W[x, u] = 1/|I(u)|`` for ``x ∈ I(u)`` is the column-normalised
in-adjacency matrix, is the SimRank matrix.  Iterating from ``S₀ = I``
converges geometrically: ``|S_k - S| ≤ c^(k+1)`` entrywise, so the paper's
55 iterations at ``c = 0.6`` give ≤ 6.5e-13 error (their stated 1e-5 needs
only ~22).

The all-pairs matrix is dense ``n × n``; with the scaled-down synthetic
datasets (n ≤ a few thousand) this is the cheapest *exact* oracle.  A
single-source slice helper avoids re-deriving it at every call site.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse

from repro.errors import ParameterError
from repro.graph.digraph import DiGraph

__all__ = [
    "power_method_all_pairs",
    "power_method_single_source",
    "DEFAULT_ITERATIONS",
]

DEFAULT_ITERATIONS = 55


def _column_normalised_in_adjacency(graph: DiGraph) -> scipy.sparse.csr_matrix:
    """``W`` with ``W[x, u] = 1/|I(u)|`` (or ``w(x,u)/W(u)`` when weighted)
    for ``x ∈ I(u)``; zero columns for nodes with no in-neighbours (their
    SimRank to anything else is 0)."""
    n = graph.num_nodes
    totals = graph.in_weight_totals()
    # Entry per arc x -> u contributes W[x, u]; arcs grouped by u in the
    # in-CSR, so rows of the transpose build directly.
    cols = np.repeat(np.arange(n, dtype=np.int64), graph.in_degrees())
    rows = graph.in_indices.astype(np.int64)
    with np.errstate(divide="ignore"):
        inv = np.where(totals > 0, 1.0 / totals, 0.0)
    data = inv[cols]
    if graph.is_weighted:
        data = data * graph.in_weights
    return scipy.sparse.csr_matrix((data, (rows, cols)), shape=(n, n))


def power_method_all_pairs(
    graph: DiGraph,
    c: float = 0.6,
    *,
    iterations: int = DEFAULT_ITERATIONS,
    tolerance: Optional[float] = None,
) -> np.ndarray:
    """All-pairs SimRank by power iteration; returns a dense ``(n, n)`` array.

    Parameters
    ----------
    graph:
        Input graph; ``I(u)`` means in-neighbours (directed) or neighbours
        (undirected).
    c:
        Decay factor in (0, 1).
    iterations:
        Fixed iteration count (paper: 55).
    tolerance:
        If set, stop early once the max entry change drops below it.
    """
    if not 0.0 < c < 1.0:
        raise ParameterError(f"decay factor c must be in (0, 1), got {c}")
    if iterations < 0:
        raise ParameterError(f"iterations must be non-negative, got {iterations}")
    n = graph.num_nodes
    if n == 0:
        return np.zeros((0, 0), dtype=np.float64)
    weight = _column_normalised_in_adjacency(graph)
    sim = np.eye(n, dtype=np.float64)
    identity_diag = np.arange(n)
    for _ in range(iterations):
        updated = c * (weight.T @ sim @ weight)
        updated = np.asarray(updated)
        updated[identity_diag, identity_diag] = 1.0
        if tolerance is not None:
            change = float(np.max(np.abs(updated - sim)))
            sim = updated
            if change < tolerance:
                break
        else:
            sim = updated
    return sim


def power_method_single_source(
    graph: DiGraph,
    source: int,
    c: float = 0.6,
    *,
    iterations: int = DEFAULT_ITERATIONS,
    all_pairs: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``sim(source, ·)`` as a length-``n`` vector.

    Pass a precomputed ``all_pairs`` matrix to slice without recomputing
    (the experiment harness computes the matrix once per snapshot and
    queries many sources).
    """
    if not 0 <= int(source) < graph.num_nodes:
        raise ParameterError(
            f"source {source} outside the graph's node range [0, {graph.num_nodes})"
        )
    if all_pairs is None:
        all_pairs = power_method_all_pairs(graph, c, iterations=iterations)
    if all_pairs.shape != (graph.num_nodes, graph.num_nodes):
        raise ParameterError(
            f"all_pairs shape {all_pairs.shape} does not match graph size {graph.num_nodes}"
        )
    return all_pairs[int(source)].copy()
