"""Baselines the paper compares against, implemented from their sources.

* :mod:`power_method` — Jeh & Widom's iterative all-pairs SimRank; the
  paper's ground truth (55 iterations, ≤ 1e-5 error at c = 0.6).
* :mod:`naive_mc` — Fogaras & Rácz's coupled-random-walk Monte Carlo.
* :mod:`probesim` — Liu et al.'s index-free ProbeSim (VLDB 2017), the
  paper's primary static baseline.
* :mod:`sling` — Tian & Xiao's SLING (SIGMOD 2016): local-push hitting
  probabilities plus Monte-Carlo correction factors ``d(·)``.
* :mod:`reads` — Jiang et al.'s READS (VLDB 2017): one-way-graph index
  with localized dynamic updates.
* :mod:`temporal_adapters` — the paper's §II-D extension of each static /
  dynamic algorithm to temporal SimRank queries (re-run per snapshot,
  filter the candidate set).
"""

from repro.baselines.naive_mc import naive_monte_carlo
from repro.baselines.power_method import (
    power_method_all_pairs,
    power_method_single_source,
)
from repro.baselines.probesim import probesim
from repro.baselines.reads import ReadsIndex
from repro.baselines.sling import SlingIndex
from repro.baselines.temporal_adapters import (
    SnapshotAlgorithm,
    make_snapshot_algorithm,
    temporal_query_by_recompute,
)

__all__ = [
    "power_method_all_pairs",
    "power_method_single_source",
    "naive_monte_carlo",
    "probesim",
    "SlingIndex",
    "ReadsIndex",
    "SnapshotAlgorithm",
    "make_snapshot_algorithm",
    "temporal_query_by_recompute",
]
