"""Fogaras & Rácz's Monte-Carlo SimRank (WWW 2005).

Their estimator couples the reverse random walks of the query pair: walk
``W(u)`` and ``W(v)`` advance in lock-step for up to ``max_steps`` steps and
the sample value is ``c^τ`` where ``τ`` is the first step at which they
coincide (0 if they never meet).  Averaging over ``num_samples`` trials is
unbiased for truncated SimRank.

Implemented single-source and vectorised: each trial advances one walk from
the source and one from every candidate simultaneously, marking each
candidate at its first coincidence.  This is the simplest correct MC
baseline and anchors the accuracy tests of the fancier estimators.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.errors import ParameterError
from repro.graph.digraph import DiGraph
from repro.rng import RngLike, ensure_rng

__all__ = ["naive_monte_carlo"]


def naive_monte_carlo(
    graph: DiGraph,
    source: int,
    *,
    c: float = 0.6,
    num_samples: int = 200,
    max_steps: int = 20,
    candidates: Optional[Iterable[int]] = None,
    seed: RngLike = None,
) -> np.ndarray:
    """Estimate ``sim(source, v)`` for every node ``v`` (or ``candidates``).

    Returns a vector aligned with ``range(n)`` when ``candidates`` is None,
    otherwise aligned with the sorted unique candidate ids.
    """
    if not 0.0 < c < 1.0:
        raise ParameterError(f"decay factor c must be in (0, 1), got {c}")
    if num_samples < 1:
        raise ParameterError(f"num_samples must be positive, got {num_samples}")
    if max_steps < 0:
        raise ParameterError(f"max_steps must be non-negative, got {max_steps}")
    if graph.is_weighted:
        raise ParameterError(
            "naive_monte_carlo supports unweighted graphs only; use "
            "repro.api.single_pair or crashsim for weighted SimRank"
        )
    n = graph.num_nodes
    if not 0 <= int(source) < n:
        raise ParameterError(f"source {source} outside the node range [0, {n})")
    source = int(source)
    rng = ensure_rng(seed)
    if candidates is None:
        targets = np.arange(n, dtype=np.int64)
    else:
        targets = np.unique(np.asarray(list(candidates), dtype=np.int64))
        if targets.size and (targets.min() < 0 or targets.max() >= n):
            raise ParameterError("candidate node outside the graph's node range")

    indptr = graph.in_indptr
    indices = graph.in_indices
    degrees = graph.in_degrees().astype(np.int64)

    totals = np.zeros(targets.size, dtype=np.float64)
    for _ in range(num_samples):
        source_pos = source
        positions = targets.copy()
        unresolved = positions != source  # sim(u, u) handled outside the loop
        for step in range(1, max_steps + 1):
            if not unresolved.any():
                break
            if degrees[source_pos] == 0:
                break
            source_pos = int(
                indices[
                    indptr[source_pos]
                    + int(rng.integers(0, degrees[source_pos]))
                ]
            )
            # Walks stuck at a dangling node have no step-`step` position and
            # can never meet the source walk again.
            unresolved &= degrees[positions] > 0
            if not unresolved.any():
                break
            live_idx = np.nonzero(unresolved)[0]
            live_pos = positions[live_idx]
            live_deg = degrees[live_pos]
            offsets = (rng.random(live_idx.size) * live_deg).astype(np.int64)
            np.minimum(offsets, live_deg - 1, out=offsets)
            positions[live_idx] = indices[indptr[live_pos] + offsets]
            met = unresolved & (positions == source_pos)
            totals[met] += c**step
            unresolved &= ~met
    scores = totals / num_samples
    scores[targets == source] = 1.0
    return scores
