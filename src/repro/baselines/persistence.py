"""Save / load for the index-based baselines.

Index construction is the expensive phase (SLING's d-estimation and
hitting lists, READS' r one-way graphs); persisting them is how a real
deployment amortises it across sessions.  Format: a single ``.npz``
archive holding the index arrays plus a JSON-encoded header with the
construction parameters and a structural fingerprint of the graph, checked
on load so an index is never silently applied to the wrong graph.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Union

import numpy as np

from repro.baselines.reads import ReadsIndex
from repro.baselines.sling import SlingIndex
from repro.errors import DatasetError, ParameterError
from repro.graph.digraph import DiGraph

__all__ = [
    "graph_fingerprint",
    "save_sling_index",
    "load_sling_index",
    "save_reads_index",
    "load_reads_index",
]

PathLike = Union[str, os.PathLike]
_FORMAT = 1


def graph_fingerprint(graph: DiGraph) -> str:
    """Stable hash of a graph's structure (nodes, arcs, weights)."""
    digest = hashlib.sha256()
    digest.update(str(graph.num_nodes).encode())
    digest.update(b"directed" if graph.directed else b"undirected")
    digest.update(graph.out_indptr.tobytes())
    digest.update(graph.out_indices.tobytes())
    if graph.is_weighted:
        digest.update(graph.out_weights.tobytes())
    return digest.hexdigest()


def _write(path: Path, header: dict, arrays: dict) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path, __header__=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        **arrays,
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def _read(path: PathLike, kind: str, graph: DiGraph) -> tuple:
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"index file not found: {path}")
    archive = np.load(path)
    if "__header__" not in archive:
        raise DatasetError(f"{path} is not a repro index file")
    header = json.loads(bytes(archive["__header__"]).decode())
    if header.get("format") != _FORMAT:
        raise DatasetError(
            f"{path} has index format {header.get('format')}, expected {_FORMAT}"
        )
    if header.get("kind") != kind:
        raise DatasetError(
            f"{path} holds a {header.get('kind')!r} index, expected {kind!r}"
        )
    if header.get("graph_fingerprint") != graph_fingerprint(graph):
        raise ParameterError(
            "index was built for a different graph (fingerprint mismatch); "
            "rebuild or load it with the original graph"
        )
    return header, archive


def save_sling_index(index: SlingIndex, path: PathLike) -> Path:
    """Persist a :class:`SlingIndex` (its ``d`` vector + parameters)."""
    header = {
        "format": _FORMAT,
        "kind": "sling",
        "c": index.c,
        "epsilon": index.epsilon,
        "graph_fingerprint": graph_fingerprint(index.graph),
    }
    return _write(Path(path), header, {"d": index.d})


def load_sling_index(path: PathLike, graph: DiGraph) -> SlingIndex:
    """Load a :class:`SlingIndex` back against the same graph."""
    header, archive = _read(path, "sling", graph)
    return SlingIndex(
        graph,
        c=header["c"],
        epsilon=header["epsilon"],
        d_values=archive["d"],
    )


def save_reads_index(index: ReadsIndex, path: PathLike) -> Path:
    """Persist a :class:`ReadsIndex` (pointers + coins + parameters)."""
    header = {
        "format": _FORMAT,
        "kind": "reads",
        "c": index.c,
        "r": index.r,
        "t": index.t,
        "r_q": index.r_q,
        "graph_fingerprint": graph_fingerprint(index.graph),
    }
    return _write(
        Path(path),
        header,
        {"pointers": index.pointers, "alive": index.alive},
    )


def load_reads_index(
    path: PathLike, graph: DiGraph, *, seed=None
) -> ReadsIndex:
    """Load a :class:`ReadsIndex`; ``seed`` drives future query walks."""
    header, archive = _read(path, "reads", graph)
    index = ReadsIndex(
        graph,
        r=header["r"],
        t=header["t"],
        r_q=header["r_q"],
        c=header["c"],
        seed=seed,
    )
    pointers = archive["pointers"]
    alive = archive["alive"]
    if pointers.shape != index.pointers.shape:
        raise DatasetError(
            f"stored pointer table shape {pointers.shape} does not match "
            f"(r={header['r']}, n={graph.num_nodes})"
        )
    index.pointers = pointers
    index.alive = alive
    index._children = None  # rebuild the inverse adjacency lazily
    return index
