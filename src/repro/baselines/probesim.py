"""ProbeSim (Liu et al., VLDB 2017) — the paper's primary static baseline.

Per trial, ProbeSim samples one √c-walk ``W(u) = (u, w_1, ..., w_l)`` from
the source and then *probes* from every position ``w_i``: a reverse dynamic
program computes, for all nodes ``v`` simultaneously, the first-meeting
probability

    P(v, W(u, i)) = Pr[v_i = w_i ∧ v_j ≠ w_j ∀ 1 ≤ j < i]

of a √c-walk from ``v``.  The probe runs ``i`` propagation levels — from
``w_i`` back towards every ``v`` — zeroing the entry at ``w_j`` whenever a
level lands on walk position ``j ≥ 1`` (paths through an earlier position
belong to an earlier first meeting).

Two probe implementations are provided:

* ``probe_mode="dense"`` (default) — each level is a sparse matrix-vector
  product with ``M[x, y] = √c / |I(x)|`` for ``y ∈ I(x)``; probe ``i``
  costs ``O(i · m)`` in vectorised NumPy.  This is *stronger* than the
  published ProbeSim (which samples at high-degree nodes); EXPERIMENTS.md
  discusses how that strength shifts the Fig. 5 comparison.
* ``probe_mode="sparse"`` — the published traversal: hash-map level sets
  expanded edge by edge, cost proportional to the probe tree actually
  touched.  Faithful to the paper's cost profile, but pure-Python
  constants dominate; kept for fidelity benchmarking.

Either way the redundancy CrashSim's single reverse reachable tree
eliminates (paper §III-A) is the repeated per-position probing.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional

import numpy as np
import scipy.sparse

from repro.errors import ParameterError
from repro.graph.digraph import DiGraph
from repro.rng import RngLike, ensure_rng
from repro.walks.sqrt_c import sample_sqrt_c_walk

__all__ = ["probesim", "probesim_trial_count"]


def probesim_trial_count(
    num_nodes: int, c: float, epsilon: float, delta: float
) -> int:
    """ProbeSim's Chernoff trial count ``⌈3c/ε² · ln(n/δ)⌉`` ([10], §4)."""
    from repro.core.bounds import chernoff_trial_count

    return chernoff_trial_count(num_nodes, c, epsilon, delta)


def _probe_operator(graph: DiGraph, sqrt_c: float) -> scipy.sparse.csr_matrix:
    """``M = √c · P`` (the reverse-walk transition scaled by √c): one probe
    level is ``R ← M @ R``.  Weight-aware via the graph's transition."""
    return (sqrt_c * graph.reverse_transition_matrix()).tocsr()


def _probe_sparse(
    graph: DiGraph,
    walk: List[int],
    position: int,
    sqrt_c: float,
    totals: np.ndarray,
) -> None:
    """The published probe: expand hash-map level sets from ``walk[i]``
    backwards to every candidate, excluding earlier walk positions."""
    in_totals = None
    level = {walk[position]: 1.0}
    for j in range(position, 0, -1):
        next_level: dict = {}
        for node, value in level.items():
            for successor in graph.out_neighbors(node):
                successor = int(successor)
                if graph.is_weighted:
                    if in_totals is None:
                        in_totals = graph.in_weight_totals()
                    share = (
                        sqrt_c
                        * graph.edge_weight(node, successor)
                        / in_totals[successor]
                    )
                else:
                    share = sqrt_c / graph.in_degree(successor)
                next_level[successor] = next_level.get(successor, 0.0) + value * share
        v_step = j - 1
        if v_step >= 1:
            next_level.pop(walk[v_step], None)
        level = next_level
    for node, value in level.items():
        totals[node] += value


def probesim(
    graph: DiGraph,
    source: int,
    *,
    c: float = 0.6,
    epsilon: float = 0.025,
    delta: float = 0.01,
    n_r: Optional[int] = None,
    max_walk_length: Optional[int] = None,
    candidates: Optional[Iterable[int]] = None,
    probe_mode: str = "dense",
    seed: RngLike = None,
) -> np.ndarray:
    """Single-source ProbeSim; returns ``s(source, ·)`` for all nodes.

    Parameters
    ----------
    graph, source:
        Query graph and source node.
    c, epsilon, delta:
        SimRank decay and the (ε, δ) guarantee; ``n_r`` defaults to the
        theoretical :func:`probesim_trial_count` and can be overridden for
        the practical regimes the experiments run in.
    max_walk_length:
        Optional hard cap on the sampled walk length (ProbeSim proper does
        not truncate; the cap is a safety valve for tests).
    candidates:
        If given, only these nodes' scores are meaningful in the returned
        vector (probe work is identical — ProbeSim has no partial mode,
        which is one of CrashSim-T's advantages; see paper §IV-A).
    probe_mode:
        ``"dense"`` (vectorised mat-vec probes, default) or ``"sparse"``
        (the published hash-map traversal) — identical estimators,
        different cost profiles; see the module docstring.

    Returns
    -------
    numpy.ndarray
        Length-``n`` vector with ``s(source, source) = 1``.
    """
    n = graph.num_nodes
    if not 0 <= int(source) < n:
        raise ParameterError(f"source {source} outside the node range [0, {n})")
    if probe_mode not in ("dense", "sparse"):
        raise ParameterError(f"unknown probe_mode {probe_mode!r}")
    source = int(source)
    rng = ensure_rng(seed)
    trials = n_r if n_r is not None else probesim_trial_count(n, c, epsilon, delta)
    if trials < 1:
        raise ParameterError(f"n_r must be positive, got {trials}")
    sqrt_c = math.sqrt(c)
    operator = _probe_operator(graph, sqrt_c) if probe_mode == "dense" else None

    totals = np.zeros(n, dtype=np.float64)
    for _ in range(trials):
        walk = sample_sqrt_c_walk(
            graph, source, c, max_length=max_walk_length, seed=rng
        )
        # walk[i] is W(u) at step i; probe every step i ≥ 1.
        for i in range(1, len(walk)):
            if probe_mode == "sparse":
                _probe_sparse(graph, walk, i, sqrt_c, totals)
                continue
            scores = np.zeros(n, dtype=np.float64)
            scores[walk[i]] = 1.0
            for j in range(i, 0, -1):
                scores = operator @ scores
                v_step = j - 1
                if v_step >= 1:
                    # First-meeting exclusion: a v-walk sitting on w_{v_step}
                    # at step v_step met the source walk earlier.
                    scores[walk[v_step]] = 0.0
            totals += scores
    totals /= trials
    totals[source] = 1.0
    return np.clip(totals, 0.0, 1.0)
