"""Temporal-query adapters for the static / dynamic baselines (paper §II-D).

None of ProbeSim, SLING, or READS answers temporal SimRank queries natively;
the paper's baseline treatment re-runs each on every snapshot of the query
interval and filters the candidate set with the query predicate.  The
adapters here give every algorithm one interface:

* :meth:`SnapshotAlgorithm.prepare` — (re)build any index for a snapshot;
* :meth:`SnapshotAlgorithm.advance` — move to the next snapshot (SLING
  rebuilds from scratch, READS applies its localized pointer updates,
  index-free algorithms just swap the graph reference);
* :meth:`SnapshotAlgorithm.query` — full single-source scores.

:func:`temporal_query_by_recompute` then drives any adapter through a
temporal query exactly the way Algorithm 3's preamble describes, which is
what Figures 6 and 7 compare CrashSim-T against.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.baselines.power_method import power_method_all_pairs
from repro.baselines.probesim import probesim
from repro.baselines.reads import ReadsIndex
from repro.baselines.sling import SlingIndex
from repro.core.crashsim import crashsim
from repro.core.params import CrashSimParams
from repro.core.queries import TemporalQuery
from repro.errors import ExperimentError, QueryError
from repro.graph.digraph import DiGraph
from repro.graph.temporal import EdgeDelta, TemporalGraph
from repro.rng import RngLike, ensure_rng

__all__ = [
    "SnapshotAlgorithm",
    "make_snapshot_algorithm",
    "temporal_query_by_recompute",
    "TemporalAdapterResult",
]


class SnapshotAlgorithm:
    """Base adapter: an index-free algorithm that just tracks the graph."""

    name = "abstract"

    def __init__(self, *, seed: RngLike = None):
        self._rng = ensure_rng(seed)
        self.graph: Optional[DiGraph] = None

    def prepare(self, graph: DiGraph) -> None:
        """Point the algorithm at a snapshot, building any index."""
        self.graph = graph

    def advance(self, graph: DiGraph, delta: Optional[EdgeDelta]) -> None:
        """Move to the next snapshot; default is a full re-prepare."""
        self.prepare(graph)

    def query(self, source: int) -> np.ndarray:
        """Full single-source scores on the current snapshot."""
        raise NotImplementedError


class CrashSimAlgorithm(SnapshotAlgorithm):
    """CrashSim without the temporal pruning (for Fig. 5 and as a control)."""

    name = "crashsim"

    def __init__(
        self,
        *,
        params: Optional[CrashSimParams] = None,
        tree_variant: str = "corrected",
        seed: RngLike = None,
    ):
        super().__init__(seed=seed)
        self.params = params or CrashSimParams()
        self.tree_variant = tree_variant

    def query(self, source: int) -> np.ndarray:
        result = crashsim(
            self.graph,
            source,
            params=self.params,
            tree_variant=self.tree_variant,
            seed=self._rng,
        )
        scores = np.zeros(self.graph.num_nodes, dtype=np.float64)
        scores[result.candidates] = result.scores
        scores[source] = 1.0
        return scores


class ProbeSimAlgorithm(SnapshotAlgorithm):
    """ProbeSim re-run per snapshot (no index, no partial mode)."""

    name = "probesim"

    def __init__(
        self,
        *,
        c: float = 0.6,
        epsilon: float = 0.025,
        delta: float = 0.01,
        n_r: Optional[int] = None,
        seed: RngLike = None,
    ):
        super().__init__(seed=seed)
        self.c = c
        self.epsilon = epsilon
        self.delta = delta
        self.n_r = n_r

    def query(self, source: int) -> np.ndarray:
        return probesim(
            self.graph,
            source,
            c=self.c,
            epsilon=self.epsilon,
            delta=self.delta,
            n_r=self.n_r,
            seed=self._rng,
        )


class SlingAlgorithm(SnapshotAlgorithm):
    """SLING: index rebuilt from scratch on every snapshot change
    (the behaviour the paper criticises in §I)."""

    name = "sling"

    def __init__(
        self,
        *,
        c: float = 0.6,
        epsilon: float = 0.025,
        num_d_samples: int = 100,
        seed: RngLike = None,
    ):
        super().__init__(seed=seed)
        self.c = c
        self.epsilon = epsilon
        self.num_d_samples = num_d_samples
        self._index: Optional[SlingIndex] = None

    def prepare(self, graph: DiGraph) -> None:
        super().prepare(graph)
        self._index = SlingIndex(
            graph,
            c=self.c,
            epsilon=self.epsilon,
            num_d_samples=self.num_d_samples,
            seed=self._rng,
        )

    def query(self, source: int) -> np.ndarray:
        if self._index is None:
            raise ExperimentError("SlingAlgorithm.query before prepare()")
        return self._index.query(source)


class ReadsAlgorithm(SnapshotAlgorithm):
    """READS: index built once, then updated edge-by-edge per snapshot."""

    name = "reads"

    def __init__(
        self,
        *,
        r: int = 100,
        t: int = 10,
        r_q: int = 10,
        c: float = 0.6,
        seed: RngLike = None,
    ):
        super().__init__(seed=seed)
        self.r = r
        self.t = t
        self.r_q = r_q
        self.c = c
        self._index: Optional[ReadsIndex] = None

    def prepare(self, graph: DiGraph) -> None:
        super().prepare(graph)
        self._index = ReadsIndex(
            graph, r=self.r, t=self.t, r_q=self.r_q, c=self.c, seed=self._rng
        )

    def advance(self, graph: DiGraph, delta: Optional[EdgeDelta]) -> None:
        if self._index is None or delta is None:
            self.prepare(graph)
            return
        self.graph = graph
        self._index.apply_delta(graph, added=delta.added, removed=delta.removed)

    def query(self, source: int) -> np.ndarray:
        if self._index is None:
            raise ExperimentError("ReadsAlgorithm.query before prepare()")
        return self._index.query(source)


class PowerMethodAlgorithm(SnapshotAlgorithm):
    """Exact oracle adapter (ground truth for precision measurements)."""

    name = "power"

    def __init__(self, *, c: float = 0.6, iterations: int = 55, seed: RngLike = None):
        super().__init__(seed=seed)
        self.c = c
        self.iterations = iterations
        self._matrix: Optional[np.ndarray] = None

    def prepare(self, graph: DiGraph) -> None:
        super().prepare(graph)
        self._matrix = power_method_all_pairs(graph, self.c, iterations=self.iterations)

    def query(self, source: int) -> np.ndarray:
        if self._matrix is None:
            raise ExperimentError("PowerMethodAlgorithm.query before prepare()")
        return self._matrix[int(source)].copy()


_FACTORY: Dict[str, Callable[..., SnapshotAlgorithm]] = {
    "crashsim": CrashSimAlgorithm,
    "probesim": ProbeSimAlgorithm,
    "sling": SlingAlgorithm,
    "reads": ReadsAlgorithm,
    "power": PowerMethodAlgorithm,
}


def make_snapshot_algorithm(name: str, **kwargs) -> SnapshotAlgorithm:
    """Instantiate an adapter by name (``crashsim``, ``probesim``, ``sling``,
    ``reads``, or ``power``)."""
    try:
        factory = _FACTORY[name]
    except KeyError:
        raise ExperimentError(
            f"unknown algorithm {name!r}; expected one of {sorted(_FACTORY)}"
        ) from None
    return factory(**kwargs)


class TemporalAdapterResult:
    """Survivors plus per-snapshot score history of a baseline adapter run."""

    def __init__(self, source: int, survivors: Tuple[int, ...], history):
        self.source = source
        self.survivors = survivors
        self.history = history

    @property
    def survivor_set(self):
        return set(self.survivors)


def temporal_query_by_recompute(
    temporal: TemporalGraph,
    source: int,
    query: TemporalQuery,
    algorithm: SnapshotAlgorithm,
    *,
    interval: Optional[Tuple[int, int]] = None,
) -> TemporalAdapterResult:
    """Answer a temporal SimRank query by per-snapshot recomputation.

    This is the paper's §II-D baseline strategy: full single-source scores
    at every instant, then predicate filtering — no partial computation, no
    pruning.
    """
    start, stop = interval if interval is not None else (0, temporal.num_snapshots)
    if not 0 <= start < stop <= temporal.num_snapshots:
        raise QueryError(
            f"invalid interval [{start}, {stop}) for horizon {temporal.num_snapshots}"
        )
    source = int(source)
    graph = temporal.snapshot(start)
    algorithm.prepare(graph)
    scores = algorithm.query(source)
    candidates = np.arange(temporal.num_nodes, dtype=np.int64)
    candidates = candidates[candidates != source]
    history = [
        {int(node): float(scores[node]) for node in candidates}
    ]
    mask = query.initial_mask(scores[candidates])
    omega = candidates[mask]
    previous = scores
    for index in range(start + 1, stop):
        if omega.size == 0:
            break
        graph = temporal.snapshot(index)
        algorithm.advance(graph, temporal.delta(index))
        scores = algorithm.query(source)
        history.append({int(node): float(scores[node]) for node in omega})
        keep = query.step_mask(previous[omega], scores[omega])
        omega = omega[keep]
        previous = scores
    return TemporalAdapterResult(
        source=source,
        survivors=tuple(int(v) for v in omega),
        history=history,
    )
