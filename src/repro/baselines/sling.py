"""SLING (Tian & Xiao, SIGMOD 2016) — index-based SimRank baseline.

SLING rests on the *last-meeting* decomposition of SimRank:

    sim(u, v) = Σ_{t ≥ 0} Σ_x  H_t(u, x) · H_t(v, x) · d(x)

where ``H_t(u, x)`` is the probability that a √c-walk from ``u`` is alive
and at ``x`` after ``t`` steps, and the correction factor

    d(x) = Pr[two independent √c-walks from x never co-locate at any step ≥ 1]

prevents double counting pairs of walks that coincide more than once.

Index construction (the expensive phase the paper's Fig. 5 bars include):

* ``d(x)`` is estimated for *every* node by Monte Carlo — ``num_d_samples``
  pairs of coupled walk simulations per node;
* the one-step occupancy operator ``√c·P`` is materialised once.

A single-source query then evaluates the decomposition without touching the
per-``v`` hitting probabilities explicitly: with ``z_t = H_t(u, ·) ⊙ d``,

    s(u, ·) = Σ_t (√c·P)ᵗ z_t

is accumulated with ``t`` sparse matvecs per term, truncated at the depth
where the remaining mass ``(√c)^t`` falls below the error budget.  With an
exact ``d`` and no truncation this is exact SimRank — tests exploit that.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import ParameterError
from repro.graph.digraph import DiGraph
from repro.rng import RngLike, ensure_rng
from repro.walks.engine import BatchWalkStepper

__all__ = [
    "SlingIndex",
    "SlingStoredIndex",
    "estimate_d_monte_carlo",
    "exact_d_small_graph",
]


def estimate_d_monte_carlo(
    graph: DiGraph,
    c: float,
    num_samples: int,
    *,
    max_steps: int = 40,
    seed: RngLike = None,
) -> np.ndarray:
    """Monte-Carlo estimate of ``d(x)`` for every node.

    For each node, ``num_samples`` pairs of independent √c-walks are
    advanced in lock-step; ``d(x)`` is the fraction of pairs that never
    co-locate at the same step.  All nodes' pairs advance together, so the
    cost is ``O(num_samples · max_steps)`` vectorised steps.
    """
    if num_samples < 1:
        raise ParameterError(f"num_samples must be positive, got {num_samples}")
    n = graph.num_nodes
    rng = ensure_rng(seed)
    stepper = BatchWalkStepper(graph, c)
    never_met = np.zeros(n, dtype=np.float64)
    starts = np.arange(n, dtype=np.int64)
    for _ in range(num_samples):
        met = np.zeros(n, dtype=bool)
        walker_a = stepper.walk(starts, max_steps, seed=rng)
        walker_b = stepper.walk(starts, max_steps, seed=rng)
        for batch_a, batch_b in zip(walker_a, walker_b):
            pos_a = batch_a.scatter_positions(n)
            pos_b = batch_b.scatter_positions(n, fill=-2)  # distinct fills so
            met |= pos_a == pos_b  # a dead pair can never compare equal
        never_met += ~met
    return never_met / num_samples


def exact_d_small_graph(graph: DiGraph, c: float, *, iterations: int = 60) -> np.ndarray:
    """Exact ``d(x)`` on small graphs via the pair-state meeting system.

    ``meet(x, y) = Pr[walks from x and y co-locate at some step ≥ 1]``
    satisfies a linear fixed point over node pairs; iterating it to
    convergence and reading the diagonal gives ``d(x) = 1 - meet(x, x)``.
    ``O(iterations · n · m)`` — a test oracle, not an index path.
    """
    n = graph.num_nodes
    transition = graph.reverse_transition_matrix()  # rows: current, cols: next
    meet = np.zeros((n, n), dtype=np.float64)
    for _ in range(iterations):
        # One synchronous step: both walks survive with probability c and
        # move; a pair that lands co-located has met (value 1), otherwise
        # the sub-problem recurses — i.e. absorb the diagonal at 1 before
        # stepping.
        absorbed = meet.copy()
        np.fill_diagonal(absorbed, 1.0)
        meet = c * np.asarray(transition @ absorbed @ transition.T)
    return 1.0 - np.diag(meet).copy()


class SlingIndex:
    """SLING-style index: ``d(·)`` estimates plus the occupancy operator.

    Parameters
    ----------
    graph:
        The static graph to index.
    c:
        SimRank decay factor.
    epsilon:
        Additive error target; sets the query-time depth truncation
        ``T = ⌈log_√c(ε/4)⌉`` (decomposition tail mass below ε/4).
    num_d_samples:
        Monte-Carlo pairs per node for ``d(·)`` (index cost knob).
    d_values:
        Optional externally supplied ``d`` vector (e.g. the exact oracle in
        tests); skips the Monte-Carlo estimation.
    """

    def __init__(
        self,
        graph: DiGraph,
        *,
        c: float = 0.6,
        epsilon: float = 0.025,
        num_d_samples: int = 100,
        d_values: Optional[np.ndarray] = None,
        seed: RngLike = None,
    ):
        if not 0.0 < c < 1.0:
            raise ParameterError(f"decay factor c must be in (0, 1), got {c}")
        if not 0.0 < epsilon < 1.0:
            raise ParameterError(f"epsilon must be in (0, 1), got {epsilon}")
        self.graph = graph
        self.c = float(c)
        self.epsilon = float(epsilon)
        self.sqrt_c = math.sqrt(c)
        if d_values is not None:
            d_values = np.asarray(d_values, dtype=np.float64)
            if d_values.shape != (graph.num_nodes,):
                raise ParameterError(
                    f"d_values must have shape ({graph.num_nodes},), got {d_values.shape}"
                )
            self.d = d_values
        else:
            self.d = estimate_d_monte_carlo(
                graph, c, num_d_samples, seed=seed
            )
        # Query-time truncation depth: tail mass (√c)^T ≤ ε/4.
        self.depth = max(1, math.ceil(math.log(epsilon / 4.0) / math.log(self.sqrt_c)))
        self._operator = (self.sqrt_c * graph.reverse_transition_matrix()).tocsr()

    def query(self, source: int) -> np.ndarray:
        """Single-source SimRank ``s(source, ·)`` from the index."""
        n = self.graph.num_nodes
        if not 0 <= int(source) < n:
            raise ParameterError(f"source {source} outside the node range [0, {n})")
        source = int(source)
        operator = self._operator
        # Source occupancies H_t(u, ·) for t = 0..depth.
        occupancy = np.zeros(n, dtype=np.float64)
        occupancy[source] = 1.0
        layers = [occupancy]
        for _ in range(self.depth):
            occupancy = np.asarray(occupancy @ operator).ravel()
            layers.append(occupancy)
        # s(u, ·) = Σ_t (√c·P)^t (H_t(u,·) ⊙ d): push each weighted layer
        # back out t steps.  Accumulate from the deepest layer inward so the
        # whole sum costs `depth` matvecs instead of Σ t.
        accumulator = layers[self.depth] * self.d
        for t in range(self.depth - 1, -1, -1):
            accumulator = np.asarray(operator @ accumulator).ravel()
            accumulator += layers[t] * self.d
        scores = accumulator
        scores[source] = 1.0
        return np.clip(scores, 0.0, 1.0)


class SlingStoredIndex:
    """SLING's *stored* index: per-node hitting-probability lists.

    The SLING paper materialises, for every node ``u``, the significant
    entries ``{(t, x): h_t(u, x) ≥ θ}`` of its √c-walk occupancies, plus
    the correction factors ``d(·)``.  A single-source query then never
    touches the graph: it joins the source's list with an inverted
    ``(t, x) → [(v, h)]`` index,

        s(u, v) = Σ_{t,x} h_t(u, x) · h_t(v, x) · d(x).

    This is the architecture whose construction cost the paper criticises
    ("several hours even on medium-size graphs", §I): building the lists is
    ``O(n · depth · m)`` before thresholding.  :class:`SlingIndex` (above)
    is the light-weight variant that recomputes the source's occupancies
    per query; this class trades that per-query work for index size,
    exactly the SLING trade-off.

    Parameters
    ----------
    graph, c, epsilon, num_d_samples, d_values, seed:
        As for :class:`SlingIndex`.
    threshold:
        Occupancy entries below this are dropped from the stored lists
        (SLING's θ); defaults to ``epsilon / 8``.  Thresholding introduces
        at most ``Σ_t (√c)^t · θ``-sized additional error per side.
    """

    def __init__(
        self,
        graph: DiGraph,
        *,
        c: float = 0.6,
        epsilon: float = 0.025,
        num_d_samples: int = 100,
        d_values: Optional[np.ndarray] = None,
        threshold: Optional[float] = None,
        seed: RngLike = None,
    ):
        from repro.core.revreach import revreach_levels

        if not 0.0 < c < 1.0:
            raise ParameterError(f"decay factor c must be in (0, 1), got {c}")
        if not 0.0 < epsilon < 1.0:
            raise ParameterError(f"epsilon must be in (0, 1), got {epsilon}")
        self.graph = graph
        self.c = float(c)
        self.epsilon = float(epsilon)
        self.sqrt_c = math.sqrt(c)
        self.threshold = float(threshold) if threshold is not None else epsilon / 8.0
        if self.threshold <= 0.0:
            raise ParameterError("threshold must be positive")
        if d_values is not None:
            d_values = np.asarray(d_values, dtype=np.float64)
            if d_values.shape != (graph.num_nodes,):
                raise ParameterError(
                    f"d_values must have shape ({graph.num_nodes},), "
                    f"got {d_values.shape}"
                )
            self.d = d_values
        else:
            self.d = estimate_d_monte_carlo(graph, c, num_d_samples, seed=seed)
        self.depth = max(
            1, math.ceil(math.log(self.threshold) / math.log(self.sqrt_c))
        )
        # hit_lists[u] = [(t, x, h)], thresholded; inverted[(t, x)] = [(v, h)].
        self.hit_lists: list = []
        self.inverted: dict = {}
        for node in range(graph.num_nodes):
            tree = revreach_levels(
                graph, node, self.depth, c, prune_below=self.threshold
            )
            entries = []
            # Iterate the sparse levels directly (same (t, x) order a dense
            # np.nonzero would give) — no length-n row is ever allocated.
            for t in range(tree.l_max + 1):
                level_nodes, level_probs = tree.level_arrays(t)
                for x, h in zip(level_nodes.tolist(), level_probs.tolist()):
                    entries.append((t, x, h))
                    self.inverted.setdefault((t, x), []).append((node, h))
            self.hit_lists.append(entries)

    @property
    def size_entries(self) -> int:
        """Total stored (t, x, h) entries — the index-size metric."""
        return sum(len(entries) for entries in self.hit_lists)

    def query(self, source: int) -> np.ndarray:
        """Single-source SimRank from the stored lists (graph untouched)."""
        n = self.graph.num_nodes
        if not 0 <= int(source) < n:
            raise ParameterError(f"source {source} outside the node range [0, {n})")
        source = int(source)
        scores = np.zeros(n, dtype=np.float64)
        for t, x, h_source in self.hit_lists[source]:
            weight = h_source * self.d[x]
            for node, h_node in self.inverted.get((t, x), ()):
                scores[node] += weight * h_node
        scores[source] = 1.0
        return np.clip(scores, 0.0, 1.0)

    def single_pair(self, u: int, v: int) -> float:
        """``s(u, v)`` by merging the two stored lists — SLING's original
        single-pair query."""
        n = self.graph.num_nodes
        for node in (u, v):
            if not 0 <= int(node) < n:
                raise ParameterError(
                    f"node {node} outside the node range [0, {n})"
                )
        u, v = int(u), int(v)
        if u == v:
            return 1.0
        table = {(t, x): h for t, x, h in self.hit_lists[u]}
        total = 0.0
        for t, x, h_v in self.hit_lists[v]:
            h_u = table.get((t, x))
            if h_u is not None:
                total += h_u * h_v * self.d[x]
        return float(min(max(total, 0.0), 1.0))
