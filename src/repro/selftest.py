"""Installation self-test: a miniature correctness battery in seconds.

``python -m repro selftest`` (or :func:`run_selftest`) re-derives the
paper's worked Example 2 numbers, cross-checks every estimator against the
exact Power Method on a seeded graph, and exercises one temporal query —
the smallest set of checks that would catch a broken install, a NumPy/SciPy
incompatibility, or a platform RNG difference.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

import numpy as np

__all__ = ["run_selftest"]


def _check_example2() -> None:
    from repro.core.revreach import revreach_queue
    from repro.datasets.example_graph import example_graph, node_id

    tree = revreach_queue(example_graph(), node_id("A"), 3, 0.25, variant="paper")
    expected = [
        (1, "B", 0.25),
        (1, "C", 1 / 6),
        (2, "E", 0.0625),
        (3, "H", 0.015625),
    ]
    for step, label, value in expected:
        got = tree.probability(step, node_id(label))
        assert abs(got - value) < 1e-9, (step, label, got, value)


def _check_estimators_agree() -> None:
    from repro.api import single_source
    from repro.baselines.power_method import power_method_all_pairs
    from repro.graph.generators import preferential_attachment

    graph = preferential_attachment(80, 3, directed=True, seed=0)
    truth = power_method_all_pairs(graph, 0.6)[3]
    for method, tolerance in [
        ("crashsim", 0.08),
        ("probesim", 0.05),
        ("sling", 0.08),
        ("naive-mc", 0.05),
    ]:
        scores = single_source(graph, 3, method=method, n_r=800, seed=1)
        error = float(np.abs(truth - scores).max())
        assert error < tolerance, (method, error)


def _check_weighted_known_value() -> None:
    from repro.baselines.power_method import power_method_all_pairs
    from repro.graph.digraph import DiGraph

    graph = DiGraph.from_edges(
        4, [(2, 0), (3, 0), (2, 1)], weights=[3.0, 1.0, 1.0]
    )
    sim = power_method_all_pairs(graph, 0.6)
    assert abs(sim[0, 1] - 0.45) < 1e-9, sim[0, 1]


def _check_temporal_query() -> None:
    from repro.core.crashsim_t import crashsim_t
    from repro.core.params import CrashSimParams
    from repro.core.queries import ThresholdQuery
    from repro.graph.temporal import TemporalGraphBuilder

    builder = TemporalGraphBuilder(3, directed=True)
    builder.push_snapshot([(2, 0), (2, 1)])
    builder.push_snapshot([(2, 0), (2, 1)])
    temporal = builder.build()
    result = crashsim_t(
        temporal,
        0,
        ThresholdQuery(theta=0.3),
        params=CrashSimParams(c=0.6, epsilon=0.1, n_r_override=500),
        seed=2,
    )
    assert result.survivors == (1,), result.survivors


CHECKS: List[Tuple[str, Callable[[], None]]] = [
    ("Example 2 revReach arithmetic", _check_example2),
    ("estimators agree with Power Method", _check_estimators_agree),
    ("weighted SimRank closed form", _check_weighted_known_value),
    ("temporal threshold query", _check_temporal_query),
]


def run_selftest(verbose: bool = True) -> bool:
    """Run every check; returns True when all pass."""
    all_passed = True
    for name, check in CHECKS:
        try:
            check()
        except Exception as exc:  # noqa: BLE001 - report any failure kind
            all_passed = False
            if verbose:
                print(f"FAIL  {name}: {exc!r}")
        else:
            if verbose:
                print(f"ok    {name}")
    if verbose:
        print("selftest", "passed" if all_passed else "FAILED")
    return all_passed
