"""One-shot markdown report: every experiment, rendered and summarised.

``python -m repro report --out report.md`` runs the whole harness at the
selected profile and writes a self-contained markdown document — the
automated counterpart of the hand-written EXPERIMENTS.md, for re-running
the reproduction on new hardware or after changes.
"""

from __future__ import annotations

import platform
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.config import ExperimentProfile, get_profile

__all__ = ["generate_report", "write_report"]


def _markdown_table(rows: Sequence[Dict[str, object]]) -> str:
    from repro.experiments.report import format_value

    if not rows:
        return "(no rows)\n"
    columns = list(rows[0].keys())
    lines = [
        "| " + " | ".join(str(c) for c in columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    for row in rows:
        lines.append(
            "| "
            + " | ".join(format_value(row.get(c, "")) for c in columns)
            + " |"
        )
    return "\n".join(lines) + "\n"


_SECTIONS: List[Tuple[str, str, str]] = [
    # (runner attr on repro.experiments, title, commentary)
    (
        "run_table2",
        "Table II — SimRank w.r.t. A on the example graph",
        "Power Method at c = 0.25 / 55 iterations on the reconstructed "
        "Fig. 2 graph (Example 2's arithmetic is test-pinned).",
    ),
    (
        "run_table3",
        "Table III — datasets (paper vs synthetic)",
        "Synthetic SNAP stand-ins; see DESIGN.md §3 for the substitution.",
    ),
    (
        "run_figure5",
        "Figure 5 — static response time and max error",
        "Expected shape: CrashSim time grows ≈1/ε² while ME falls; "
        "CrashSim ME beats READS; SLING is the accuracy ceiling.",
    ),
    (
        "run_figure6",
        "Figure 6 — temporal query precision",
        "Precision = |∩| / max(k₁, k₂) against the Power-Method oracle.",
    ),
    (
        "run_figure7",
        "Figure 7 — total time vs query-interval length",
        "Expected shape: CrashSim-T flattest; recompute baselines linear.",
    ),
    (
        "run_pruning_ablation",
        "Pruning ablation",
        "Low-churn workload; both rules should fire and carry candidates.",
    ),
    (
        "run_estimator_ablation",
        "Estimator ablation",
        "tree_variant × first_meeting accuracy matrix (DESIGN.md §2).",
    ),
    (
        "run_scalability",
        "Scalability — time vs graph size",
        "Where each implementation's constants live.",
    ),
    (
        "run_c_sensitivity",
        "Sensitivity — decay factor c",
        "l_max and costs grow with c (Lemma 1).",
    ),
    (
        "run_theta_sensitivity",
        "Sensitivity — threshold θ",
        "Stricter thresholds shrink Ω faster, so total time falls.",
    ),
]


def generate_report(profile: Optional[ExperimentProfile] = None) -> str:
    """Run every experiment and return the markdown document."""
    import repro
    import repro.experiments as experiments

    profile = profile or get_profile()
    started = time.time()
    parts: List[str] = [
        "# CrashSim reproduction report",
        "",
        f"* package: repro {repro.__version__}",
        f"* profile: `{profile.name}` (scale {profile.scale}, "
        f"n_r cap {profile.n_r_cap}, datasets {', '.join(profile.datasets)})",
        f"* platform: {platform.platform()} / Python {platform.python_version()}",
        f"* generated: {time.strftime('%Y-%m-%d %H:%M:%S', time.localtime(started))}",
        "",
        "Shapes, not absolute numbers, are the reproduction target — see "
        "EXPERIMENTS.md for the claim-by-claim discussion.",
        "",
    ]
    for runner_name, title, commentary in _SECTIONS:
        runner: Callable = getattr(experiments, runner_name)
        section_start = time.time()
        rows = runner(profile) if runner_name != "run_table2" else runner()
        elapsed = time.time() - section_start
        parts.extend(
            [
                f"## {title}",
                "",
                commentary,
                "",
                _markdown_table(rows),
                f"_{len(rows)} rows in {elapsed:.1f}s_",
                "",
            ]
        )
    parts.append(
        f"_total wall-clock: {time.time() - started:.1f}s_"
    )
    return "\n".join(parts)


def write_report(
    path: Union[str, Path], profile: Optional[ExperimentProfile] = None
) -> Path:
    """Generate and write the report; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(generate_report(profile), encoding="utf-8")
    return path
