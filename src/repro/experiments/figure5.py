"""Figure 5: single-source response time and max error on static graphs.

Per dataset, single-source SimRank is computed from random sources with

* CrashSim at ε ∈ {0.1, 0.05, 0.025, 0.0125} (the paper's sweep),
* ProbeSim (ε = 0.025), SLING (ε = 0.025), READS (r=100, r_q=10, t=10),

and the paper's two metrics are reported: mean response time and mean
maximum error (ME) against the Power-Method ground truth.  As in the paper,
SLING's and READS' response time includes the per-query share of index
construction (their ``index_s`` column shows the raw build cost).

Expected shape (paper §V-A): CrashSim at ε ≥ 0.025 is the fastest; its ME
falls as ε shrinks, beating READS everywhere and ProbeSim/SLING at
ε ≤ 0.025.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.power_method import power_method_all_pairs
from repro.baselines.probesim import probesim
from repro.baselines.reads import ReadsIndex
from repro.baselines.sling import SlingIndex
from repro.core.crashsim import crashsim
from repro.core.params import CrashSimParams
from repro.datasets.registry import load_static_dataset
from repro.experiments.config import ExperimentProfile, get_profile
from repro.metrics.accuracy import max_error
from repro.metrics.timing import Timer
from repro.rng import ensure_rng

__all__ = ["run_figure5"]


def _pick_sources(num_nodes: int, count: int, rng) -> np.ndarray:
    count = min(count, num_nodes)
    return rng.choice(num_nodes, size=count, replace=False)


def run_figure5(
    profile: Optional[ExperimentProfile] = None,
    *,
    datasets: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """Rows: one per (dataset, algorithm) with mean time and mean ME."""
    profile = profile or get_profile()
    names = list(datasets) if datasets is not None else list(profile.datasets)
    rng = ensure_rng(profile.seed)
    rows: List[Dict[str, object]] = []
    for name in names:
        graph = load_static_dataset(name, scale=profile.scale, seed=profile.seed)
        truth = power_method_all_pairs(graph, profile.c)
        sources = _pick_sources(graph.num_nodes, profile.fig5_repetitions, rng)
        rows.extend(_run_dataset(name, graph, truth, sources, profile, rng))
    return rows


def _run_dataset(
    name: str,
    graph,
    truth: np.ndarray,
    sources: np.ndarray,
    profile: ExperimentProfile,
    rng,
) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []

    # --- CrashSim ε sweep (index-free).
    for epsilon in profile.crashsim_epsilons:
        params = CrashSimParams(
            c=profile.c,
            epsilon=epsilon,
            delta=profile.delta,
            n_r_cap=max(1, int(profile.n_r_cap * (0.025 / epsilon) ** 2)),
        )
        times, errors = [], []
        for source in sources:
            with Timer() as timer:
                result = crashsim(graph, int(source), params=params, seed=rng)
            times.append(timer.elapsed)
            estimate = np.zeros(graph.num_nodes)
            estimate[result.candidates] = result.scores
            estimate[int(source)] = 1.0
            errors.append(max_error(truth[int(source)], estimate, exclude=[int(source)]))
        rows.append(
            _row(name, f"crashsim(eps={epsilon})", times, errors, index_s=0.0)
        )

    # --- ProbeSim (index-free, ε = 0.025 per the paper).
    times, errors = [], []
    for source in sources:
        with Timer() as timer:
            estimate = probesim(
                graph,
                int(source),
                c=profile.c,
                epsilon=0.025,
                delta=profile.delta,
                n_r=profile.probesim_n_r,
                seed=rng,
            )
        times.append(timer.elapsed)
        errors.append(max_error(truth[int(source)], estimate, exclude=[int(source)]))
    rows.append(_row(name, "probesim", times, errors, index_s=0.0))

    # --- SLING (index-based; rebuild cost charged per query as the paper
    # does when it folds "indexing time and computational time" together).
    with Timer() as build_timer:
        sling = SlingIndex(
            graph,
            c=profile.c,
            epsilon=0.025,
            num_d_samples=profile.sling_d_samples,
            seed=rng,
        )
    times, errors = [], []
    for source in sources:
        with Timer() as timer:
            estimate = sling.query(int(source))
        times.append(timer.elapsed + build_timer.elapsed / len(sources))
        errors.append(max_error(truth[int(source)], estimate, exclude=[int(source)]))
    rows.append(_row(name, "sling", times, errors, index_s=build_timer.elapsed))

    # --- READS (index-based, paper settings scaled by profile).
    with Timer() as build_timer:
        reads = ReadsIndex(
            graph,
            r=profile.reads_r,
            t=profile.reads_t,
            r_q=profile.reads_r_q,
            c=profile.c,
            seed=rng,
        )
    times, errors = [], []
    for source in sources:
        with Timer() as timer:
            estimate = reads.query(int(source))
        times.append(timer.elapsed + build_timer.elapsed / len(sources))
        errors.append(max_error(truth[int(source)], estimate, exclude=[int(source)]))
    rows.append(_row(name, "reads", times, errors, index_s=build_timer.elapsed))
    return rows


def _row(
    dataset: str,
    algorithm: str,
    times: List[float],
    errors: List[float],
    *,
    index_s: float,
) -> Dict[str, object]:
    return {
        "dataset": dataset,
        "algorithm": algorithm,
        "mean_time_s": float(np.mean(times)),
        "mean_ME": float(np.mean(errors)),
        "max_ME": float(np.max(errors)),
        "index_s": index_s,
        "queries": len(times),
    }


if __name__ == "__main__":  # pragma: no cover - convenience entry point
    from repro.experiments.report import print_table

    print_table(run_figure5(), title="Figure 5 — static response time and ME")
