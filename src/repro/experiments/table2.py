"""Table II: SimRank scores w.r.t. node A on the running-example graph.

The paper computes them "by the Power Method within 1e-5 error" at
``c = 0.25`` (the decay Example 2 uses).  The published table's cells did
not survive the PDF extraction, so the reproduced values themselves are the
reference: with 55 iterations the iterate error is below ``0.25^56``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.power_method import power_method_all_pairs
from repro.datasets.example_graph import EXAMPLE_NODES, example_graph

__all__ = ["run_table2"]


def run_table2(*, c: float = 0.25, iterations: int = 55) -> List[Dict[str, object]]:
    """Rows of Table II: ``node, sim(A, node)`` for every example node."""
    graph = example_graph()
    matrix = power_method_all_pairs(graph, c, iterations=iterations)
    source = EXAMPLE_NODES.index("A")
    return [
        {"node": label, "sim(A, node)": float(matrix[source, index])}
        for index, label in enumerate(EXAMPLE_NODES)
    ]


if __name__ == "__main__":  # pragma: no cover - convenience entry point
    from repro.experiments.report import print_table

    print_table(run_table2(), title="Table II — SimRank w.r.t. A (c=0.25)")
