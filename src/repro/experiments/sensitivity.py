"""Parameter sensitivity sweeps (ours).

Two knobs the paper fixes but a user will turn:

* :func:`run_c_sensitivity` — the decay factor ``c`` controls how much
  long-range structure SimRank sees.  The sweep measures how time and ME
  respond for CrashSim and ProbeSim: larger ``c`` means longer walks
  (``E[l] = √c/(1-√c)``), a larger ``l_max``, and more trials for the same
  ε, so both algorithms slow down while absolute similarity values grow.
* :func:`run_theta_sensitivity` — the threshold θ of the temporal query
  drives how fast Ω shrinks, which is exactly what CrashSim-T's partial
  computation exploits; the sweep records survivors and total time per θ.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.power_method import power_method_all_pairs
from repro.baselines.probesim import probesim
from repro.core.crashsim import crashsim
from repro.core.crashsim_t import crashsim_t
from repro.core.params import CrashSimParams
from repro.core.queries import ThresholdQuery
from repro.datasets.registry import load_dataset, load_static_dataset
from repro.experiments.config import ExperimentProfile, get_profile
from repro.metrics.accuracy import max_error
from repro.metrics.timing import Timer
from repro.rng import ensure_rng

__all__ = ["run_c_sensitivity", "run_theta_sensitivity"]

DEFAULT_C_VALUES = (0.4, 0.6, 0.8)
DEFAULT_THETAS = (0.01, 0.02, 0.05, 0.1)


def run_c_sensitivity(
    profile: Optional[ExperimentProfile] = None,
    *,
    dataset: str = "hepth",
    c_values: Sequence[float] = DEFAULT_C_VALUES,
    repetitions: int = 3,
) -> List[Dict[str, object]]:
    """Rows: one per (c, algorithm) with l_max, mean time, and mean ME."""
    profile = profile or get_profile()
    graph = load_static_dataset(dataset, scale=profile.scale, seed=profile.seed)
    rng = ensure_rng(profile.seed)
    sources = rng.choice(
        graph.num_nodes, size=min(repetitions, graph.num_nodes), replace=False
    )
    rows: List[Dict[str, object]] = []
    for c in c_values:
        truth = power_method_all_pairs(graph, c)
        params = CrashSimParams(
            c=c, epsilon=0.025, delta=profile.delta, n_r_cap=profile.n_r_cap
        )
        crash_times, crash_errors = [], []
        probe_times, probe_errors = [], []
        for source in sources:
            source = int(source)
            with Timer() as timer:
                result = crashsim(graph, source, params=params, seed=rng)
            crash_times.append(timer.elapsed)
            estimate = np.zeros(graph.num_nodes)
            estimate[result.candidates] = result.scores
            estimate[source] = 1.0
            crash_errors.append(
                max_error(truth[source], estimate, exclude=[source])
            )
            with Timer() as timer:
                scores = probesim(
                    graph, source, c=c, n_r=profile.probesim_n_r, seed=rng
                )
            probe_times.append(timer.elapsed)
            probe_errors.append(
                max_error(truth[source], scores, exclude=[source])
            )
        rows.append(
            {
                "c": c,
                "algorithm": "crashsim",
                "l_max": params.l_max,
                "mean_time_s": float(np.mean(crash_times)),
                "mean_ME": float(np.mean(crash_errors)),
            }
        )
        rows.append(
            {
                "c": c,
                "algorithm": "probesim",
                "l_max": params.l_max,
                "mean_time_s": float(np.mean(probe_times)),
                "mean_ME": float(np.mean(probe_errors)),
            }
        )
    return rows


def run_theta_sensitivity(
    profile: Optional[ExperimentProfile] = None,
    *,
    dataset: str = "as_caida",
    thetas: Sequence[float] = DEFAULT_THETAS,
) -> List[Dict[str, object]]:
    """Rows: one per θ with survivors, carried candidates, and total time."""
    profile = profile or get_profile()
    temporal = load_dataset(
        dataset,
        scale=profile.scale,
        num_snapshots=profile.fig6_snapshots,
        seed=profile.seed,
    )
    params = CrashSimParams(
        c=profile.c, epsilon=0.025, delta=profile.delta, n_r_cap=profile.n_r_cap
    )
    # One well-connected source shared across θ so only θ varies.
    degrees = temporal.snapshot(0).in_degrees()
    eligible = np.nonzero(degrees > 0)[0]
    source = int(eligible[len(eligible) // 2])
    rows: List[Dict[str, object]] = []
    for theta in thetas:
        with Timer() as timer:
            result = crashsim_t(
                temporal,
                source,
                ThresholdQuery(theta=theta),
                params=params,
                seed=profile.seed,
            )
        stats = result.stats
        rows.append(
            {
                "theta": theta,
                "survivors": len(result.survivors),
                "snapshots": stats.snapshots_processed,
                "recomputed": stats.candidates_recomputed,
                "carried": stats.candidates_carried,
                "total_time_s": timer.elapsed,
            }
        )
    return rows


if __name__ == "__main__":  # pragma: no cover - convenience entry point
    from repro.experiments.report import print_table

    print_table(run_c_sensitivity(), title="Sensitivity — decay factor c")
    print_table(run_theta_sensitivity(), title="Sensitivity — threshold θ")
