"""Persist experiment results as JSON for plotting / regression tracking.

Every ``run_*`` function returns ``list[dict]`` rows; :func:`save_rows`
wraps them with provenance (experiment name, profile, package version,
timestamp) so a results directory is self-describing, and
:func:`load_rows` round-trips them.  :func:`rows_differ` gives a tolerant
diff for tracking drift between runs of the same experiment.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ExperimentError

__all__ = ["save_rows", "load_rows", "rows_differ"]

PathLike = Union[str, os.PathLike]
FORMAT_VERSION = 1


def save_rows(
    rows: Sequence[Dict[str, object]],
    path: PathLike,
    *,
    experiment: str,
    profile: Optional[str] = None,
) -> Path:
    """Write rows plus provenance to ``path`` (parents created); returns it."""
    from repro import __version__

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format_version": FORMAT_VERSION,
        "experiment": experiment,
        "profile": profile,
        "package_version": __version__,
        "written_at_unix": time.time(),
        "rows": list(rows),
    }
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_rows(path: PathLike) -> Tuple[List[Dict[str, object]], Dict[str, object]]:
    """Read ``(rows, metadata)`` written by :func:`save_rows`."""
    path = Path(path)
    if not path.exists():
        raise ExperimentError(f"result file not found: {path}")
    with path.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "rows" not in payload:
        raise ExperimentError(f"{path} is not a repro result file")
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ExperimentError(
            f"{path} has format version {version}, expected {FORMAT_VERSION}"
        )
    rows = payload.pop("rows")
    return rows, payload


def rows_differ(
    baseline: Sequence[Dict[str, object]],
    current: Sequence[Dict[str, object]],
    *,
    rel_tol: float = 0.25,
    ignore_keys: Sequence[str] = ("mean_time_s", "total_time_s", "index_s"),
) -> List[str]:
    """Tolerantly compare two row lists; returns human-readable differences.

    Numeric fields must agree within ``rel_tol`` relative tolerance (timing
    fields are ignored by default — they are machine-dependent); any other
    field must match exactly.  An empty return means "no drift".
    """
    problems: List[str] = []
    if len(baseline) != len(current):
        return [f"row count changed: {len(baseline)} -> {len(current)}"]
    ignored = set(ignore_keys)
    for index, (before, after) in enumerate(zip(baseline, current)):
        keys = set(before) | set(after)
        for key in sorted(keys - ignored):
            old, new = before.get(key), after.get(key)
            if isinstance(old, (int, float)) and isinstance(new, (int, float)):
                if not math.isclose(
                    float(old), float(new), rel_tol=rel_tol, abs_tol=1e-9
                ):
                    problems.append(
                        f"row {index} field {key!r}: {old} -> {new}"
                    )
            elif old != new:
                problems.append(f"row {index} field {key!r}: {old!r} -> {new!r}")
    return problems
