"""Scalability sweep (ours): response time vs graph size.

The paper claims CrashSim's iteration cost is ``O(n_r · |Ω|)`` —
independent of ``m`` once the reverse reachable tree is built — while
ProbeSim's probes touch ``O(m)`` per level.  This sweep generates one
dataset family at increasing scales and times a single-source query per
algorithm, exposing each implementation's growth curve.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.probesim import probesim
from repro.baselines.reads import ReadsIndex
from repro.baselines.sling import SlingIndex
from repro.core.crashsim import crashsim
from repro.core.params import CrashSimParams
from repro.datasets.registry import load_static_dataset
from repro.experiments.config import ExperimentProfile, get_profile
from repro.metrics.timing import Timer
from repro.rng import ensure_rng

__all__ = ["run_scalability"]

DEFAULT_SCALES = (0.02, 0.05, 0.1, 0.2)


def run_scalability(
    profile: Optional[ExperimentProfile] = None,
    *,
    dataset: str = "hepph",
    scales: Optional[Sequence[float]] = None,
    repetitions: int = 3,
) -> List[Dict[str, object]]:
    """Rows: one per (scale, algorithm) with graph size and mean time."""
    profile = profile or get_profile()
    rng = ensure_rng(profile.seed)
    scale_list = list(scales) if scales is not None else list(DEFAULT_SCALES)
    params = CrashSimParams(
        c=profile.c, epsilon=0.025, delta=profile.delta, n_r_cap=profile.n_r_cap
    )
    rows: List[Dict[str, object]] = []
    for scale in scale_list:
        graph = load_static_dataset(dataset, scale=scale, seed=profile.seed)
        sources = rng.choice(
            graph.num_nodes, size=min(repetitions, graph.num_nodes), replace=False
        )

        def timed(fn) -> float:
            samples = []
            for source in sources:
                with Timer() as timer:
                    fn(int(source))
                samples.append(timer.elapsed)
            return float(np.mean(samples))

        sling = SlingIndex(
            graph,
            c=profile.c,
            num_d_samples=profile.sling_d_samples,
            seed=rng,
        )
        reads = ReadsIndex(
            graph,
            r=profile.reads_r,
            t=profile.reads_t,
            r_q=profile.reads_r_q,
            c=profile.c,
            seed=rng,
        )
        timings = {
            "crashsim": timed(
                lambda s: crashsim(graph, s, params=params, seed=rng)
            ),
            "probesim": timed(
                lambda s: probesim(
                    graph, s, c=profile.c, n_r=profile.probesim_n_r, seed=rng
                )
            ),
            "sling_query": timed(sling.query),
            "reads_query": timed(reads.query),
        }
        for algorithm, mean_time in timings.items():
            rows.append(
                {
                    "dataset": dataset,
                    "scale": scale,
                    "n": graph.num_nodes,
                    "m": graph.num_edges,
                    "algorithm": algorithm,
                    "mean_time_s": mean_time,
                }
            )
    return rows


if __name__ == "__main__":  # pragma: no cover - convenience entry point
    from repro.experiments.report import print_table

    print_table(run_scalability(), title="Scalability — time vs graph size")
