"""Table III: dataset statistics (type, n, m, t).

Reports both the paper's published statistics and the generated synthetic
stand-in's, so the scale substitution is visible in one table.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.datasets.registry import DATASETS, load_dataset
from repro.experiments.config import ExperimentProfile, get_profile
from repro.graph.stats import temporal_stats

__all__ = ["run_table3"]


def run_table3(
    profile: Optional[ExperimentProfile] = None,
) -> List[Dict[str, object]]:
    """One row per dataset: paper stats side-by-side with synthetic stats."""
    profile = profile or get_profile()
    rows: List[Dict[str, object]] = []
    for name in profile.datasets:
        spec = DATASETS[name]
        temporal = load_dataset(
            name,
            scale=profile.scale,
            num_snapshots=min(spec.paper_snapshots, profile.fig6_snapshots),
            seed=profile.seed,
        )
        stats = temporal_stats(temporal)
        rows.append(
            {
                "dataset": name,
                "type": "Directed" if spec.directed else "Undirected",
                "paper_n": spec.paper_nodes,
                "paper_m": spec.paper_edges,
                "paper_t": spec.paper_snapshots,
                "synth_n": stats.num_nodes,
                "synth_m": stats.last_snapshot.num_edges,
                "synth_t": stats.num_snapshots,
                "mean_delta": round(stats.mean_delta_size, 1),
            }
        )
    return rows


if __name__ == "__main__":  # pragma: no cover - convenience entry point
    from repro.experiments.report import print_table

    print_table(run_table3(), title="Table III — datasets (paper vs synthetic)")
