"""Figure 7: total response time vs query-interval length (AS-733).

The trend query runs over growing snapshot counts (the paper uses 100, 200,
500, 700 snapshots of AS-733); each algorithm's *total* time over the
interval is the series.  ProbeSim and SLING recompute per snapshot (linear
growth with a large constant), READS pays index updates plus recomputation,
and CrashSim-T's pruning + shrinking candidate set flattens its curve — the
gap should widen with the interval, as §V-B reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.baselines.temporal_adapters import temporal_query_by_recompute
from repro.core.crashsim_t import crashsim_t
from repro.core.params import CrashSimParams
from repro.core.queries import TrendQuery
from repro.datasets.registry import load_dataset
from repro.experiments.config import ExperimentProfile, get_profile
from repro.experiments.figure6 import _baseline_algorithms
from repro.metrics.timing import Timer
from repro.rng import ensure_rng

__all__ = ["run_figure7"]


def run_figure7(
    profile: Optional[ExperimentProfile] = None,
    *,
    dataset: str = "as733",
    snapshot_counts: Optional[Sequence[int]] = None,
) -> List[Dict[str, object]]:
    """Rows: one per (snapshot count, algorithm) with total query time."""
    profile = profile or get_profile()
    counts = (
        list(snapshot_counts)
        if snapshot_counts is not None
        else list(profile.fig7_snapshot_counts)
    )
    rng = ensure_rng(profile.seed)
    params = CrashSimParams(
        c=profile.c,
        epsilon=0.025,
        delta=profile.delta,
        n_r_cap=profile.n_r_cap,
    )
    query = TrendQuery(direction="increasing", tolerance=0.01)
    rows: List[Dict[str, object]] = []
    # Generate the longest horizon once; windows give the shorter intervals
    # the same underlying evolution, exactly like subsetting AS-733.
    temporal = load_dataset(
        dataset,
        scale=profile.scale,
        num_snapshots=max(counts),
        seed=profile.seed,
    )
    source = int(rng.integers(0, temporal.num_nodes))
    for count in counts:
        window = temporal.window(0, count)

        with Timer() as timer:
            crashsim_t(window, source, query, params=params, seed=rng)
        rows.append(
            {
                "snapshots": count,
                "algorithm": "crashsim_t",
                "total_time_s": timer.elapsed,
            }
        )

        for name, algorithm in _baseline_algorithms(profile, rng).items():
            with Timer() as timer:
                temporal_query_by_recompute(window, source, query, algorithm)
            rows.append(
                {
                    "snapshots": count,
                    "algorithm": name,
                    "total_time_s": timer.elapsed,
                }
            )
    return rows


if __name__ == "__main__":  # pragma: no cover - convenience entry point
    from repro.experiments.report import print_table

    print_table(run_figure7(), title="Figure 7 — time vs interval length")
