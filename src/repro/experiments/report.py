"""Plain-text report rendering for experiment results.

Every experiment returns rows as ``list[dict]``; these helpers render them
as aligned monospace tables, the same rows/series the paper's figures plot.
Numbers are formatted compactly (4 significant digits, scientific only when
needed) so diffs between runs stay readable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = [
    "format_value",
    "format_table",
    "print_table",
    "format_series",
    "print_series",
]


def format_value(value: object) -> str:
    """Render one cell: floats to 4 significant digits, rest via ``str``."""
    if isinstance(value, bool) or not isinstance(value, float):
        return str(value)
    if value == 0.0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e4 or magnitude < 1e-4:
        return f"{value:.3e}"
    return f"{value:.4g}"


def format_table(
    rows: Sequence[Dict[str, object]],
    *,
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned table; column order follows first row."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not rows:
        lines.append("(no rows)")
        return "\n".join(lines)
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        [format_value(row.get(column, "")) for column in columns] for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(cells[i]) for cells in rendered))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    rule = "  ".join("-" * w for w in widths)
    lines.extend([header, rule])
    for cells in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(cells, widths)))
    return "\n".join(lines)


def print_table(
    rows: Sequence[Dict[str, object]],
    *,
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> None:
    """``print`` the rendering of :func:`format_table`."""
    print(format_table(rows, columns=columns, title=title))
    print()


_BLOCKS = " ▁▂▃▄▅▆▇█"


def format_series(
    rows: Sequence[Dict[str, object]],
    *,
    x: str,
    y: str,
    group: str,
    title: Optional[str] = None,
) -> str:
    """Render grouped (x, y) rows as aligned unicode sparklines.

    One line per distinct ``group`` value, bars scaled to the global
    maximum — a terminal stand-in for the paper's line charts (Fig. 7):

        crashsim_t  ▁▂▄▅   max 1.30
        probesim    ▁▂▆█   max 2.10
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    if not rows:
        lines.append("(no rows)")
        return "\n".join(lines)
    groups: Dict[object, List] = {}
    for row in rows:
        groups.setdefault(row[group], []).append((row[x], row[y]))
    peak = max(float(value) for pairs in groups.values() for _, value in pairs)
    xs = sorted({row[x] for row in rows})
    label_width = max(len(str(key)) for key in groups)
    for key, pairs in groups.items():
        by_x = {pos: float(value) for pos, value in pairs}
        bars = "".join(
            _BLOCKS[
                min(
                    len(_BLOCKS) - 1,
                    int(round(by_x[pos] / peak * (len(_BLOCKS) - 1))),
                )
            ]
            if pos in by_x and peak > 0
            else " "
            for pos in xs
        )
        top = max(value for _, value in pairs)
        lines.append(
            f"{str(key).ljust(label_width)}  {bars}  max {format_value(top)}"
        )
    lines.append(
        f"{'':{label_width}}  x: {', '.join(format_value(pos) for pos in xs)}"
    )
    return "\n".join(lines)


def print_series(
    rows: Sequence[Dict[str, object]],
    *,
    x: str,
    y: str,
    group: str,
    title: Optional[str] = None,
) -> None:
    """``print`` the rendering of :func:`format_series`."""
    print(format_series(rows, x=x, y=y, group=group, title=title))
    print()
