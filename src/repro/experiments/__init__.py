"""Experiment harness: regenerate every table and figure of the paper.

Each module produces the same rows/series the paper reports (shape, not
absolute numbers — see DESIGN.md §3) and is reachable three ways: the
library API here, ``python -m repro <experiment>``, and a pytest-benchmark
target under ``benchmarks/``.

====================  =====================================================
experiment            paper artefact
====================  =====================================================
:func:`run_table2`    Table II — SimRank w.r.t. A on the example graph
:func:`run_table3`    Table III — dataset statistics
:func:`run_figure5`   Fig. 5 — static response time and max error (ME)
:func:`run_figure6`   Fig. 6 — temporal trend/threshold query precision
:func:`run_figure7`   Fig. 7 — response time vs query-interval length
:func:`run_pruning_ablation`    pruning-rule ablation (ours)
:func:`run_estimator_ablation`  estimator-variant ablation (ours)
====================  =====================================================
"""

from repro.experiments.ablation import run_estimator_ablation, run_pruning_ablation
from repro.experiments.config import PROFILES, ExperimentProfile, get_profile
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.full_report import generate_report, write_report
from repro.experiments.report import format_table, print_table
from repro.experiments.scalability import run_scalability
from repro.experiments.sensitivity import run_c_sensitivity, run_theta_sensitivity
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3

__all__ = [
    "ExperimentProfile",
    "PROFILES",
    "get_profile",
    "run_table2",
    "run_table3",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_pruning_ablation",
    "run_estimator_ablation",
    "run_scalability",
    "run_c_sensitivity",
    "run_theta_sensitivity",
    "generate_report",
    "write_report",
    "format_table",
    "print_table",
]
