"""Figure 6: precision of temporal trend / threshold queries.

For each dataset, temporal queries run over a snapshot interval with
CrashSim-T and with the per-snapshot-recompute adapters of ProbeSim, SLING,
and READS.  Precision follows the paper's definition
``|v(k₁) ∩ v(k₂)| / max(k₁, k₂)`` against the Power-Method ground-truth
result set (the exact oracle run through the same query predicate).

Expected shape (paper §V-B): CrashSim-T has the highest precision on both
query types, since it has the lowest single-snapshot ME.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.temporal_adapters import (
    make_snapshot_algorithm,
    temporal_query_by_recompute,
)
from repro.core.crashsim_t import crashsim_t
from repro.core.params import CrashSimParams
from repro.core.queries import TemporalQuery, ThresholdQuery, TrendQuery
from repro.datasets.registry import load_dataset
from repro.experiments.config import ExperimentProfile, get_profile
from repro.metrics.accuracy import result_set_precision
from repro.rng import ensure_rng

__all__ = ["run_figure6", "make_queries"]


def make_queries(profile: ExperimentProfile) -> Dict[str, TemporalQuery]:
    """The two paper queries: trend (increasing) and threshold.

    The trend query carries a small tolerance so Monte-Carlo jitter of the
    estimators does not disqualify genuinely monotone candidates; the exact
    oracle uses the same predicate, so the comparison stays apples-to-apples.
    """
    return {
        "trend": TrendQuery(direction="increasing", tolerance=0.01),
        "threshold": ThresholdQuery(theta=profile.threshold_theta),
    }


def _baseline_algorithms(profile: ExperimentProfile, seed) -> Dict[str, object]:
    return {
        "probesim": make_snapshot_algorithm(
            "probesim",
            c=profile.c,
            epsilon=0.025,
            delta=profile.delta,
            n_r=profile.probesim_n_r,
            seed=seed,
        ),
        "sling": make_snapshot_algorithm(
            "sling",
            c=profile.c,
            epsilon=0.025,
            num_d_samples=profile.sling_d_samples,
            seed=seed,
        ),
        "reads": make_snapshot_algorithm(
            "reads",
            r=profile.reads_r,
            t=profile.reads_t,
            r_q=profile.reads_r_q,
            c=profile.c,
            seed=seed,
        ),
    }


def oracle_survivor_sets(temporal, sources, query, *, c=0.6):
    """Exact query answers for several sources in one snapshot sweep.

    The Power-Method oracle's cost is the per-snapshot all-pairs matrix;
    computing it once and slicing every source's row makes the ground
    truth |sources|× cheaper than running the adapter per source.
    """
    from repro.baselines.power_method import power_method_all_pairs

    survivors = {}
    previous = {}
    for index in range(temporal.num_snapshots):
        matrix = power_method_all_pairs(temporal.snapshot(index), c)
        for source in sources:
            source = int(source)
            scores = matrix[source]
            others = np.arange(temporal.num_nodes)
            others = others[others != source]
            if index == 0:
                mask = query.initial_mask(scores[others])
                survivors[source] = others[mask]
            else:
                alive = survivors[source]
                if alive.size:
                    keep = query.step_mask(
                        previous[source][alive], scores[alive]
                    )
                    survivors[source] = alive[keep]
            previous[source] = scores
    return {
        source: set(int(v) for v in alive)
        for source, alive in survivors.items()
    }


def run_figure6(
    profile: Optional[ExperimentProfile] = None,
    *,
    datasets: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """Rows: one per (dataset, query, algorithm) with mean precision."""
    profile = profile or get_profile()
    names = list(datasets) if datasets is not None else list(profile.datasets)
    rng = ensure_rng(profile.seed)
    params = CrashSimParams(
        c=profile.c,
        epsilon=0.025,
        delta=profile.delta,
        n_r_cap=profile.n_r_cap,
    )
    rows: List[Dict[str, object]] = []
    for name in names:
        temporal = load_dataset(
            name,
            scale=profile.scale,
            num_snapshots=profile.fig6_snapshots,
            seed=profile.seed,
        )
        sources = rng.choice(
            temporal.num_nodes,
            size=min(profile.fig6_sources, temporal.num_nodes),
            replace=False,
        )
        for query_name, query in make_queries(profile).items():
            precisions: Dict[str, List[float]] = {
                "crashsim_t": [],
                "probesim": [],
                "sling": [],
                "reads": [],
            }
            truths = oracle_survivor_sets(temporal, sources, query, c=profile.c)
            for source in sources:
                source = int(source)
                truth = truths[source]

                ours = crashsim_t(
                    temporal, source, query, params=params, seed=rng
                ).survivor_set
                precisions["crashsim_t"].append(
                    result_set_precision(truth, ours)
                )
                for algo_name, algorithm in _baseline_algorithms(
                    profile, rng
                ).items():
                    survivors = temporal_query_by_recompute(
                        temporal, source, query, algorithm
                    ).survivor_set
                    precisions[algo_name].append(
                        result_set_precision(truth, survivors)
                    )
            for algo_name, values in precisions.items():
                rows.append(
                    {
                        "dataset": name,
                        "query": query_name,
                        "algorithm": algo_name,
                        "precision": float(np.mean(values)),
                        "sources": len(values),
                    }
                )
    return rows


if __name__ == "__main__":  # pragma: no cover - convenience entry point
    from repro.experiments.report import print_table

    print_table(run_figure6(), title="Figure 6 — temporal query precision")
