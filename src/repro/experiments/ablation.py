"""Design-choice ablations (ours; DESIGN.md §5).

* :func:`run_pruning_ablation` — CrashSim-T with {none, delta only,
  difference only, both} pruning rules on one temporal dataset: total time,
  how many candidate evaluations each rule saved, and a soundness check
  that all four configurations select the same survivor set when driven by
  the same seed.
* :func:`run_estimator_ablation` — the estimator switch matrix
  (``tree_variant`` × ``first_meeting``) measured as ME against the
  Power-Method ground truth, quantifying DESIGN.md §2's faithfulness notes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.baselines.power_method import power_method_all_pairs
from repro.core.crashsim import crashsim
from repro.core.crashsim_t import crashsim_t
from repro.core.params import CrashSimParams
from repro.core.queries import ThresholdQuery
from repro.datasets.registry import load_static_dataset
from repro.experiments.config import ExperimentProfile, get_profile
from repro.metrics.accuracy import max_error, mean_absolute_error
from repro.metrics.timing import Timer
from repro.rng import ensure_rng

__all__ = ["run_pruning_ablation", "run_estimator_ablation"]

_PRUNING_CONFIGS = (
    ("none", False, False),
    ("delta_only", True, False),
    ("difference_only", False, True),
    ("both", True, True),
)


def _pick_thresholdable_source(graph, theta, params, seed) -> int:
    """Screen a handful of candidate sources with a cheap CrashSim pass and
    pick the one with the most similarities above ``theta``."""
    rng = ensure_rng(seed)
    degrees = graph.in_degrees()
    eligible = np.nonzero(degrees > 0)[0]
    candidates = rng.choice(
        eligible, size=min(20, eligible.size), replace=False
    )
    screening = CrashSimParams(
        c=params.c, epsilon=params.epsilon, delta=params.delta, n_r_override=60
    )
    best_source, best_count = int(candidates[0]), -1
    for source in candidates:
        result = crashsim(graph, int(source), params=screening, seed=rng)
        count = int(np.count_nonzero(result.scores > theta))
        if count > best_count:
            best_source, best_count = int(source), count
    return best_source


def run_pruning_ablation(
    profile: Optional[ExperimentProfile] = None,
    *,
    dataset: str = "as_caida",
    churn_edges: int = 1,
) -> List[Dict[str, object]]:
    """Rows: one per pruning configuration with time and carry statistics.

    The workload is deliberately low-churn (``churn_edges`` edge flips per
    transition): Properties 1-2 are premised on "small changes between
    adjacent snapshots" (paper §IV-A), and the Algorithm-3 line-7 gate —
    exact equality of the source's reverse reachable tree — only ever holds
    in that regime.
    """
    from repro.datasets.registry import load_static_dataset
    from repro.graph.generators import evolve_snapshots

    profile = profile or get_profile()
    base = load_static_dataset(dataset, scale=profile.scale, seed=profile.seed)
    churn_rate = churn_edges / max(base.num_edges, 1)
    temporal = evolve_snapshots(
        base,
        max(profile.fig6_snapshots, 8),
        churn_rate=churn_rate,
        seed=profile.seed,
        name=f"{dataset}-lowchurn",
    )
    params = CrashSimParams(
        c=profile.c, epsilon=0.025, delta=profile.delta, n_r_cap=profile.n_r_cap
    )
    # A threshold query shrinks Ω quickly, putting difference pruning's
    # |E(Ω)| < n_r condition in play; delta pruning fires regardless.  The
    # source is chosen by a cheap screening pass so Ω stays non-empty over
    # the horizon — an empty Ω would make every configuration trivially
    # equal.  (Hub nodes are poor sources here: SimRank's 1/|I(u)| weight
    # dilutes their similarities below any useful threshold.)
    theta = min(profile.threshold_theta, 0.02)
    query = ThresholdQuery(theta=theta)
    source = _pick_thresholdable_source(base, theta, params, profile.seed)
    rows: List[Dict[str, object]] = []
    for label, use_delta, use_difference in _PRUNING_CONFIGS:
        with Timer() as timer:
            result = crashsim_t(
                temporal,
                source,
                query,
                params=params,
                use_delta_pruning=use_delta,
                use_difference_pruning=use_difference,
                seed=profile.seed,  # identical stream across configurations
            )
        stats = result.stats
        rows.append(
            {
                "pruning": label,
                "total_time_s": timer.elapsed,
                "carried": stats.candidates_carried,
                "recomputed": stats.candidates_recomputed,
                "delta_applied": stats.delta_pruning_applied,
                "difference_applied": stats.difference_pruning_applied,
                "survivors": len(result.survivors),
            }
        )
    return rows


def run_estimator_ablation(
    profile: Optional[ExperimentProfile] = None,
    *,
    dataset: str = "hepth",
    num_sources: int = 3,
) -> List[Dict[str, object]]:
    """Rows: one per (tree_variant, first_meeting) with ME / MAE."""
    profile = profile or get_profile()
    graph = load_static_dataset(dataset, scale=profile.scale, seed=profile.seed)
    truth = power_method_all_pairs(graph, profile.c)
    rng = ensure_rng(profile.seed)
    sources = rng.choice(
        graph.num_nodes, size=min(num_sources, graph.num_nodes), replace=False
    )
    params = CrashSimParams(
        c=profile.c, epsilon=0.025, delta=profile.delta, n_r_cap=profile.n_r_cap
    )
    # The DP correction is O(l·m) per sampled walk; keep its trial budget
    # small enough to terminate while still averaging the bias away.
    dp_params = CrashSimParams(
        c=profile.c,
        epsilon=0.025,
        delta=profile.delta,
        n_r_cap=max(10, profile.n_r_cap // 10),
    )
    rows: List[Dict[str, object]] = []
    for tree_variant in ("corrected", "paper"):
        for first_meeting in ("none", "dp"):
            run_params = dp_params if first_meeting == "dp" else params
            max_errors, mean_errors, times = [], [], []
            for source in sources:
                source = int(source)
                with Timer() as timer:
                    result = crashsim(
                        graph,
                        source,
                        params=run_params,
                        tree_variant=tree_variant,
                        first_meeting=first_meeting,
                        seed=rng,
                    )
                times.append(timer.elapsed)
                estimate = np.zeros(graph.num_nodes)
                estimate[result.candidates] = result.scores
                estimate[source] = 1.0
                max_errors.append(
                    max_error(truth[source], estimate, exclude=[source])
                )
                mean_errors.append(
                    mean_absolute_error(truth[source], estimate, exclude=[source])
                )
            rows.append(
                {
                    "tree_variant": tree_variant,
                    "first_meeting": first_meeting,
                    "n_r": result.n_r,
                    "mean_ME": float(np.mean(max_errors)),
                    "mean_MAE": float(np.mean(mean_errors)),
                    "mean_time_s": float(np.mean(times)),
                }
            )
    return rows


if __name__ == "__main__":  # pragma: no cover - convenience entry point
    from repro.experiments.report import print_table

    print_table(run_pruning_ablation(), title="Pruning ablation")
    print_table(run_estimator_ablation(), title="Estimator ablation")
