"""Experiment sizing profiles.

The paper's numbers come from C++ on the full SNAP datasets; pure Python
needs smaller instances to finish in minutes.  Three profiles trade fidelity
for wall-clock:

* ``quick``   — CI-sized (graphs of a few hundred nodes, short horizons);
  the default for the pytest benchmarks so the suite stays fast.
* ``default`` — the EXPERIMENTS.md numbers (≈5% of the paper's node
  counts, tens of snapshots).
* ``full``    — ≈10% node counts and the paper's full horizons; hours.

Select with the ``REPRO_PROFILE`` environment variable or pass a profile
object explicitly to any ``run_*`` function.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ExperimentError

__all__ = ["ExperimentProfile", "PROFILES", "get_profile"]


@dataclass(frozen=True)
class ExperimentProfile:
    """All knobs the experiment runners read."""

    name: str
    # dataset sizing
    scale: float
    datasets: Tuple[str, ...]
    # static experiment (Fig. 5)
    fig5_repetitions: int
    crashsim_epsilons: Tuple[float, ...]
    n_r_cap: int
    # baseline settings (paper §V: SLING/ProbeSim ε = 0.025; READS r=100,
    # r_q=10, t=10) — trial counts capped like CrashSim's for parity.
    probesim_n_r: int
    sling_d_samples: int
    reads_r: int
    reads_r_q: int
    reads_t: int
    # temporal experiments (Figs. 6-7)
    fig6_snapshots: int
    fig6_sources: int
    threshold_theta: float
    fig7_snapshot_counts: Tuple[int, ...]
    # shared
    c: float = 0.6
    delta: float = 0.01
    seed: int = 0


PROFILES: Dict[str, ExperimentProfile] = {
    profile.name: profile
    for profile in [
        ExperimentProfile(
            name="quick",
            scale=0.02,
            datasets=("as733", "wiki_vote", "hepth"),
            fig5_repetitions=3,
            crashsim_epsilons=(0.1, 0.05, 0.025, 0.0125),
            n_r_cap=120,
            probesim_n_r=120,
            sling_d_samples=40,
            reads_r=30,
            reads_r_q=4,
            reads_t=10,
            fig6_snapshots=6,
            fig6_sources=2,
            threshold_theta=0.05,
            fig7_snapshot_counts=(4, 8, 12, 16),
        ),
        ExperimentProfile(
            name="default",
            scale=0.05,
            datasets=("as733", "as_caida", "wiki_vote", "hepth", "hepph"),
            fig5_repetitions=10,
            crashsim_epsilons=(0.1, 0.05, 0.025, 0.0125),
            n_r_cap=400,
            probesim_n_r=400,
            sling_d_samples=100,
            reads_r=100,
            reads_r_q=10,
            reads_t=10,
            fig6_snapshots=20,
            fig6_sources=3,
            threshold_theta=0.05,
            fig7_snapshot_counts=(10, 20, 50, 70),
        ),
        ExperimentProfile(
            name="full",
            scale=0.1,
            datasets=("as733", "as_caida", "wiki_vote", "hepth", "hepph"),
            fig5_repetitions=100,
            crashsim_epsilons=(0.1, 0.05, 0.025, 0.0125),
            n_r_cap=1000,
            probesim_n_r=1000,
            sling_d_samples=200,
            reads_r=100,
            reads_r_q=10,
            reads_t=10,
            fig6_snapshots=100,
            fig6_sources=5,
            threshold_theta=0.05,
            fig7_snapshot_counts=(100, 200, 500, 700),
        ),
    ]
}


def get_profile(name: Optional[str] = None) -> ExperimentProfile:
    """Resolve a profile by name, falling back to ``REPRO_PROFILE`` then
    ``quick``."""
    if name is None:
        name = os.environ.get("REPRO_PROFILE", "quick")
    try:
        return PROFILES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown profile {name!r}; expected one of {sorted(PROFILES)}"
        ) from None
