"""High-level convenience API: one entry point over every algorithm.

:func:`single_source` dispatches a single-source SimRank computation to any
implemented algorithm by name, returning a uniform dense score vector —
the surface a downstream user (or the experiment harness) programs against
without learning five call signatures.  :func:`single_pair` answers the
classic single-pair query ``sim(u, v)`` with a vectorised Monte-Carlo
estimator or the exact oracle.

The ``crashsim`` method returns a :class:`ScoreVector` — an ``ndarray``
subclass that behaves exactly like the dense vector it always returned,
plus resilience metadata (``degraded``, ``trials_completed``,
``achieved_epsilon``) so callers using ``deadline=`` can tell a full-quality
answer from a gracefully degraded one without a second channel.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro import obs
from repro.baselines.naive_mc import naive_monte_carlo
from repro.baselines.power_method import power_method_all_pairs
from repro.baselines.probesim import probesim
from repro.baselines.reads import ReadsIndex
from repro.baselines.sling import SlingIndex
from repro.core.crashsim import crashsim
from repro.core.params import CrashSimParams
from repro.errors import ParameterError
from repro.graph.digraph import DiGraph
from repro.rng import RngLike, ensure_rng

__all__ = ["SINGLE_SOURCE_METHODS", "ScoreVector", "single_source", "single_pair"]


class ScoreVector(np.ndarray):
    """A dense score vector carrying query-resilience metadata.

    Behaves exactly like the plain ``ndarray`` it subclasses (same values,
    same operations); the extra attributes travel through views and copies:

    * ``degraded`` — whether the estimate averages fewer trials than
      planned (deadline hit, shards lost);
    * ``trials_completed`` — Monte-Carlo trials actually averaged
      (``None`` for non-Monte-Carlo methods);
    * ``achieved_epsilon`` — the honest Lemma-3 bound at that trial count
      (``None`` when not computed, e.g. the exact oracle); for adaptive
      runs the better of that bound and the empirical-Bernstein bound;
    * ``stopped_early`` — adaptive runs only: the empirical-Bernstein
      stopper converged before ``n_r`` trials, a *full-quality* early stop
      (not a degradation);
    * ``trace`` — the :class:`repro.obs.Trace` recorded while the query
      ran (``None`` unless a trace was active — the serving engine and
      ``repro stats --trace`` activate one).
    """

    degraded: bool
    trials_completed: Optional[int]
    achieved_epsilon: Optional[float]
    stopped_early: bool
    trace: Optional[object]

    @classmethod
    def wrap(
        cls,
        scores: np.ndarray,
        *,
        degraded: bool = False,
        trials_completed: Optional[int] = None,
        achieved_epsilon: Optional[float] = None,
        stopped_early: bool = False,
        trace: Optional[object] = None,
    ) -> "ScoreVector":
        vector = np.asarray(scores).view(cls)
        vector.degraded = degraded
        vector.trials_completed = trials_completed
        vector.achieved_epsilon = achieved_epsilon
        vector.stopped_early = stopped_early
        vector.trace = trace
        return vector

    def __array_finalize__(self, source):
        if source is None:
            return
        self.degraded = getattr(source, "degraded", False)
        self.trials_completed = getattr(source, "trials_completed", None)
        self.achieved_epsilon = getattr(source, "achieved_epsilon", None)
        self.stopped_early = getattr(source, "stopped_early", False)
        self.trace = getattr(source, "trace", None)

SINGLE_SOURCE_METHODS = (
    "crashsim",
    "probesim",
    "sling",
    "reads",
    "naive-mc",
    "exact",
)


def single_source(
    graph: DiGraph,
    source: int,
    *,
    method: str = "crashsim",
    c: float = 0.6,
    epsilon: float = 0.025,
    delta: float = 0.01,
    n_r: Optional[int] = None,
    seed: RngLike = None,
    workers: Optional[int] = None,
    deadline: Optional[float] = None,
    sampler: str = "cdf",
    candidates: Optional[Iterable[int]] = None,
    mode: str = "auto",
    shards: Optional[int] = None,
    adaptive: bool = False,
) -> np.ndarray:
    """Single-source SimRank ``s(source, ·)`` by any implemented method.

    Parameters
    ----------
    graph, source:
        Query graph and source node.
    method:
        One of :data:`SINGLE_SOURCE_METHODS`.  ``"exact"`` is the Power
        Method (55 iterations); the index-based methods build their index
        per call — use their classes directly to amortise.
    c, epsilon, delta:
        SimRank decay and, for the Monte-Carlo methods, the (ε, δ) target.
    n_r:
        Trial-count override for ``crashsim`` / ``probesim`` / ``naive-mc``
        (the theoretical counts are expensive; see DESIGN.md §2.3).
    seed:
        Anything :func:`repro.rng.ensure_rng` accepts.
    workers:
        ``crashsim`` only: shard the Monte-Carlo trials over this many
        workers via :mod:`repro.parallel` (``None`` keeps the classic
        serial estimator; any explicit count — including 1 — routes through
        the deterministic seed-sharded scheme, whose scores are identical
        for the same seed at every worker count).  Repeated calls share
        the process-wide persistent executor — the pool is paid for once
        per process, not once per query.
    mode:
        ``crashsim`` only: execution tier for the sharded path —
        ``"process"``, ``"thread"``, or ``"auto"`` (default; threads when
        the nogil JIT is active, processes otherwise).  Never affects
        scores, only where shards run.
    shards:
        ``crashsim`` only: trial-shard count override for the sharded
        path.  ``None`` (default) autotunes via
        :func:`repro.parallel.plan_shards`; the shard plan defines the RNG
        stream layout, so fixing it (e.g. 16, the legacy layout) pins the
        exact score bits across releases.
    deadline:
        ``crashsim`` only: wall-clock budget in seconds.  Routes through
        the resilient parallel driver (all CPUs unless ``workers`` says
        otherwise — so scores follow the seed-sharded scheme, not the
        classic serial stream); on expiry the returned vector averages the
        completed trial shards, with ``degraded=True`` and the honest
        wider bound in ``achieved_epsilon``.  Raises
        :class:`~repro.errors.DeadlineExceededError` only when nothing
        completed in time.
    sampler:
        ``crashsim`` only: weighted neighbour-sampling strategy.  The
        default ``"cdf"`` keeps the classic RNG stream (bit-identical
        scores for a given seed); ``"alias"`` opts into O(1) alias-method
        sampling on weighted graphs (see docs/api.md).
    candidates:
        ``crashsim`` only: restrict scoring to this candidate set Ω (the
        partial-SimRank form of Algorithm 1).  Nodes outside Ω score 0 in
        the returned vector (except the source itself, which is always 1).
        A fixed candidate set is also what makes engine-side cross-query
        walk sharing possible — see :func:`repro.core.batch.crashsim_batch`.
    adaptive:
        ``crashsim`` only: run the trials in geometrically growing rounds
        with empirical-Bernstein early stopping
        (:mod:`repro.core.adaptive`).  The returned vector's
        ``trials_completed`` / ``achieved_epsilon`` / ``stopped_early``
        report the honest outcome; scores are deterministic per seed and
        identical at any worker count or tier, but use a different RNG
        stream than the fixed-``n_r`` path.  Composes with ``deadline=``:
        whichever bound is better is reported, never worse metadata.

    Returns
    -------
    numpy.ndarray
        Dense vector of length ``n`` with ``result[source] == 1``; for
        ``method="crashsim"`` specifically a :class:`ScoreVector` with
        resilience metadata attached.
    """
    rng = ensure_rng(seed)
    if workers is not None and method != "crashsim":
        raise ParameterError(
            f"workers= is only supported for method='crashsim', got {method!r}"
        )
    if deadline is not None and method != "crashsim":
        raise ParameterError(
            f"deadline= is only supported for method='crashsim', got {method!r}"
        )
    if sampler != "cdf" and method != "crashsim":
        raise ParameterError(
            f"sampler= is only supported for method='crashsim', got {method!r}"
        )
    if candidates is not None and method != "crashsim":
        raise ParameterError(
            f"candidates= is only supported for method='crashsim', got {method!r}"
        )
    if mode != "auto" and method != "crashsim":
        raise ParameterError(
            f"mode= is only supported for method='crashsim', got {method!r}"
        )
    if shards is not None and method != "crashsim":
        raise ParameterError(
            f"shards= is only supported for method='crashsim', got {method!r}"
        )
    if adaptive and method != "crashsim":
        raise ParameterError(
            f"adaptive= is only supported for method='crashsim', got {method!r}"
        )
    if method == "crashsim":
        params = CrashSimParams(
            c=c, epsilon=epsilon, delta=delta, n_r_override=n_r
        )
        if workers is None and deadline is None:
            result = crashsim(
                graph,
                source,
                candidates=candidates,
                params=params,
                seed=rng,
                sampler=sampler,
                adaptive=adaptive,
            )
        else:
            from repro.parallel import parallel_crashsim

            result = parallel_crashsim(
                graph,
                source,
                candidates=candidates,
                params=params,
                seed=rng,
                workers=workers,
                deadline=deadline,
                sampler=sampler,
                mode=mode,
                shards=shards,
                adaptive=adaptive,
            )
        scores = np.zeros(graph.num_nodes)
        scores[result.candidates] = result.scores
        scores[int(source)] = 1.0
        return ScoreVector.wrap(
            scores,
            degraded=result.degraded,
            trials_completed=result.trials_completed,
            achieved_epsilon=result.achieved_epsilon,
            stopped_early=result.stopped_early,
            trace=obs.current_trace(),
        )
    if method == "probesim":
        return probesim(
            graph, source, c=c, epsilon=epsilon, delta=delta, n_r=n_r, seed=rng
        )
    if method == "sling":
        index = SlingIndex(graph, c=c, epsilon=epsilon, seed=rng)
        return index.query(source)
    if method == "reads":
        index = ReadsIndex(graph, c=c, seed=rng)
        return index.query(source)
    if method == "naive-mc":
        samples = n_r if n_r is not None else 1000
        return naive_monte_carlo(
            graph, source, c=c, num_samples=samples, seed=rng
        )
    if method == "exact":
        return power_method_all_pairs(graph, c)[int(source)].copy()
    raise ParameterError(
        f"unknown method {method!r}; expected one of {SINGLE_SOURCE_METHODS}"
    )


def single_pair(
    graph: DiGraph,
    u: int,
    v: int,
    *,
    method: str = "monte-carlo",
    c: float = 0.6,
    num_samples: int = 10_000,
    max_steps: int = 40,
    seed: RngLike = None,
) -> float:
    """The classic single-pair query ``sim(u, v)``.

    ``method="monte-carlo"`` runs all coupled walk pairs simultaneously
    (one vectorised pass of ``num_samples`` pairs, unbiased up to the
    ``max_steps`` truncation — tail mass ≤ ``c^max_steps``);
    ``method="exact"`` delegates to the Power Method.
    """
    n = graph.num_nodes
    for node in (u, v):
        if not 0 <= int(node) < n:
            raise ParameterError(f"node {node} outside the node range [0, {n})")
    u, v = int(u), int(v)
    if u == v:
        return 1.0
    if method == "exact":
        return float(power_method_all_pairs(graph, c)[u, v])
    if method != "monte-carlo":
        raise ParameterError(
            f"unknown method {method!r}; expected 'monte-carlo' or 'exact'"
        )
    if num_samples < 1:
        raise ParameterError(f"num_samples must be positive, got {num_samples}")
    rng = ensure_rng(seed)
    # Both walks advance through the batch stepper (weight-aware) with the
    # pair's survival factored analytically as c^step.
    from repro.walks.engine import BatchWalkStepper

    stepper = BatchWalkStepper(graph, c)
    walker_u = stepper.walk(
        np.full(num_samples, u, dtype=np.int64),
        max_steps,
        seed=rng,
        survival="always",
    )
    walker_v = stepper.walk(
        np.full(num_samples, v, dtype=np.int64),
        max_steps,
        seed=rng,
        survival="always",
    )
    resolved = np.zeros(num_samples, dtype=bool)
    total = 0.0
    for batch_u, batch_v in zip(walker_u, walker_v):
        pos_u = batch_u.scatter_positions(num_samples, fill=-1)
        pos_v = batch_v.scatter_positions(num_samples, fill=-2)
        met = ~resolved & (pos_u == pos_v)
        count = int(np.count_nonzero(met))
        if count:
            total += count * c**batch_u.step
            resolved |= met
        if resolved.all():
            break
    return total / num_samples
