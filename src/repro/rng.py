"""Random-number utilities shared by every Monte-Carlo component.

All stochastic code in this package takes either an integer seed, an existing
:class:`numpy.random.Generator`, or ``None`` and normalises it through
:func:`ensure_rng`.  Experiments that need several statistically independent
streams (one per trial, per snapshot, per algorithm) derive them with
:func:`spawn` so that re-running with the same seed reproduces every number.
"""

from __future__ import annotations

from typing import Iterator, Union

import numpy as np

__all__ = ["RngLike", "ensure_rng", "as_seed_sequence", "spawn", "stream"]

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    ``None`` yields a fresh OS-seeded generator; an ``int`` or
    :class:`numpy.random.SeedSequence` is fed to the default bit generator;
    an existing generator is passed through unchanged (no copy — the caller
    keeps ownership of its state).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"expected None, int, SeedSequence, or Generator, got {type(seed).__name__}"
    )


def as_seed_sequence(seed: RngLike = None) -> np.random.SeedSequence:
    """Normalise any accepted seed form into a :class:`~numpy.random.SeedSequence`.

    The parallel executor derives per-shard child sequences with
    ``seq.spawn(count)``; normalising here means a plain integer master seed,
    an existing sequence, or a generator all produce the same spawning
    protocol.  Passing a generator reuses (and advances) its own sequence's
    spawn counter, so repeated calls keep yielding fresh children.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        return seed.bit_generator.seed_seq
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.SeedSequence(seed)
    raise TypeError(
        f"expected None, int, SeedSequence, or Generator, got {type(seed).__name__}"
    )


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    The children are produced by jumping the parent's bit generator through
    NumPy's spawning protocol, so the parent remains usable and every child
    stream is independent of the others.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [np.random.default_rng(seq) for seq in rng.bit_generator.seed_seq.spawn(count)]


def stream(rng: np.random.Generator) -> Iterator[np.random.Generator]:
    """Yield an endless sequence of independent child generators of ``rng``."""
    seed_seq = rng.bit_generator.seed_seq
    while True:
        (child,) = seed_seq.spawn(1)
        yield np.random.default_rng(child)
