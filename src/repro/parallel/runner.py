"""Parallel CrashSim drivers: shard trials, share memory, stay deterministic.

Algorithm 1's ``n_r`` Monte-Carlo trials are mutually independent, so they
split cleanly: the run is decomposed into a fixed shard plan (autotuned by
:func:`plan_shards` — a pure function of the query shape, never of the
worker count or the clock), each shard gets its own child of the master
:class:`~numpy.random.SeedSequence` via ``spawn``, and shard totals are
summed in shard order.  Because neither the shard boundaries nor the seed
derivation depend on how many workers run them, **any** worker count —
including the serial ``workers=1`` fallback — produces byte-identical
scores for the same master seed (and the same ``shards`` argument).

Two execution tiers share the plan (see
:class:`~repro.parallel.executor.ParallelExecutor`):

* **process** — workers receive a :class:`_ShardTask` carrying only
  shared-memory specs (graph CSR, the source tree's sparse level arrays,
  walk targets) plus a trial count and a seed — a few hundred bytes per
  task; the megabyte-scale arrays are attached zero-copy via
  :mod:`repro.parallel.shared_graph`;
* **thread** (and the serial fallback) — shards run as in-process closures
  over the original graph, each pool thread scoring through its own
  preallocated :class:`~repro.walks.kernel.WalkCrashKernel` from a
  :class:`~repro.walks.kernel.KernelPool` (kernels are not thread-safe);
  no pickling, no shared memory, no interpreter startup.

When no executor is passed in, drivers share the process-wide persistent
default executor (:func:`~repro.parallel.executor.get_default_executor`)
instead of paying pool construction per query.

:func:`parallel_crashsim_multi_source` shards the same way but keeps the
multi-source walk-sharing amortisation: every shard scores its walks against
*all* sources' trees (stacked into one shared 3-D array), so the dominant
walk-generation cost is still paid once per trial, not once per source.
"""

from __future__ import annotations

import logging
import math
import threading
import time
import warnings
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro import faults, obs
from repro.core.crashsim import (
    CrashSimResult,
    accumulate_crash_totals,
    resolve_candidates,
)
from repro.core.params import CrashSimParams
from repro.core.revreach import revreach_levels
from repro.errors import (
    DeadlineExceededError,
    DegradedResultWarning,
    ParameterError,
)
from repro.graph.digraph import DiGraph
from repro.parallel.executor import (
    MapOutcome,
    ParallelExecutor,
    get_default_executor,
)
from repro.parallel.shared_graph import (
    ArraySpec,
    SharedArray,
    SharedGraph,
    SharedGraphSpec,
    SharedTree,
    SharedTreeSpec,
    attach_array,
    attach_graph,
    attach_tree,
)
from repro.rng import RngLike, as_seed_sequence

__all__ = [
    "DEFAULT_SHARDS",
    "MAX_SHARDS",
    "shard_sizes",
    "plan_shards",
    "parallel_crashsim",
    "parallel_crashsim_multi_source",
]

#: The legacy fixed shard count.  Kept as the explicit-``shards=``
#: reference layout (the pinned seed fixtures and the chaos suite use it);
#: the drivers' default is now the autotuned :func:`plan_shards`.
DEFAULT_SHARDS = 16

#: Upper bound on an autotuned plan.  Determinism requires the plan to be
#: a pure function of the query shape, so load balancing cannot adapt to
#: the machine — 64 shards keep ≥ 2 shards per worker up to 32 workers
#: while bounding per-shard dispatch overhead.
MAX_SHARDS = 64

#: Nominal wall-clock target per shard (seconds).  Below ~20ms a shard's
#: dispatch cost (submit, pickle or closure call, future wake-up) is no
#: longer negligible against its compute, which is exactly what made the
#: fixed 16-shard plan *slower* than serial on small queries.
TARGET_SHARD_SECONDS = 0.02

#: Nominal cost of one trial-walk per target (seconds), calibrated from
#: the recorded kernel benchmarks (~20ms per 50k-target trial).  A fixed
#: constant — **never** a measured probe — so the shard plan, and with it
#: the RNG stream layout and every score bit, is identical on every
#: machine and every run.
NOMINAL_TARGET_TRIAL_SECONDS = 4e-7

logger = logging.getLogger(__name__)

_M_DEGRADED = obs.REGISTRY.counter(
    "repro_queries_degraded_total",
    "Queries answered from a partial trial-shard set (widened epsilon).",
)
_M_SHARDS_LOST = obs.REGISTRY.counter(
    "repro_shards_lost_total",
    "Trial shards that never produced a total (deadline, cancel, failure).",
)
_M_SHARD_PLAN = obs.REGISTRY.gauge(
    "repro_shard_plan_size",
    "Shard count of the most recent parallel query's trial plan.",
)


def shard_sizes(n_trials: int, shards: int = DEFAULT_SHARDS) -> List[int]:
    """Split ``n_trials`` into at most ``shards`` near-equal positive parts.

    ``sum(shard_sizes(n, s)) == n`` always; fewer shards come back when
    ``n_trials < shards`` so no shard is ever empty.
    """
    if n_trials < 0:
        raise ParameterError(f"n_trials must be non-negative, got {n_trials}")
    if shards < 1:
        raise ParameterError(f"shards must be positive, got {shards}")
    count = min(shards, n_trials)
    if count == 0:
        return []
    base, remainder = divmod(n_trials, count)
    return [base + 1] * remainder + [base] * (count - remainder)


def plan_shards(
    n_trials: int, num_targets: int, *, n_r: Optional[int] = None
) -> List[int]:
    """Autotuned trial-shard plan: each shard worth ≥ ~20ms of walking.

    A **pure function** of the query shape ``(n_trials, num_targets,
    n_r)`` — never of the worker count, the CPU count, or a wall-clock
    probe — because the shard boundaries define the per-shard RNG streams:
    any machine-dependence here would break the byte-identical-at-any-
    worker-count contract and make results irreproducible across hosts.

    The estimate is nominal, not measured: one trial walks every target
    for ~``1/(1-√c)`` steps, costed at
    :data:`NOMINAL_TARGET_TRIAL_SECONDS` per target.  Small queries (the
    120-node test graphs, single-candidate scoring) collapse to one shard
    — parallel dispatch cannot win there — while big ones split until
    either every shard meets :data:`TARGET_SHARD_SECONDS` or the
    :data:`MAX_SHARDS` cap is hit.

    ``n_r`` (the planned full-quality trial count, defaulting to
    ``n_trials``) keeps the *shard size* stable if a caller ever plans a
    partial re-run: sizing from the full run means a resumed remainder
    splits on the same ≥ 20ms granularity.
    """
    if n_trials < 0:
        raise ParameterError(f"n_trials must be non-negative, got {n_trials}")
    if n_trials == 0:
        return []
    planned = n_trials if n_r is None else max(int(n_r), 1)
    per_trial = max(int(num_targets), 1) * NOMINAL_TARGET_TRIAL_SECONDS
    trials_per_shard = max(1, int(TARGET_SHARD_SECONDS / per_trial))
    count = min(MAX_SHARDS, math.ceil(planned / trials_per_shard), n_trials)
    return shard_sizes(n_trials, max(count, 1))


@dataclass(frozen=True)
class _ShardTask:
    """One worker's slice of a run: attach specs + trial count + seed.

    ``tree`` is set for single-source shards (sparse tree arrays); ``matrix``
    for multi-source shards (the stacked dense ``(q, l_max + 1, n)`` array).
    ``shard_index`` identifies the shard to the fault-injection hooks (and
    keeps retry accounting readable); it does not influence the estimate.
    """

    graph: SharedGraphSpec
    targets: ArraySpec
    trials: int
    c: float
    l_max: int
    seed: np.random.SeedSequence
    tree: Optional[SharedTreeSpec] = None
    matrix: Optional[ArraySpec] = None
    shard_index: int = 0
    sampler: str = "cdf"
    # Adaptive (moments) shards: return stacked (totals, sumsq) instead of
    # totals.  The hub cache rides along by value — kilobytes of tails, not
    # worth a shared-memory segment.
    moments: bool = False
    hub_hubs: Optional[np.ndarray] = None
    hub_tails: Optional[np.ndarray] = None


def _task_hub_cache(task: _ShardTask, num_nodes: int):
    """Rebuild the :class:`~repro.core.adaptive.HubCache` a task carries."""
    if task.hub_hubs is None:
        return None
    from repro.core.adaptive import HubCache

    return HubCache(
        hubs=task.hub_hubs,
        tails=task.hub_tails,
        num_nodes=num_nodes,
    )


def _run_shard(task: _ShardTask) -> np.ndarray:
    """Worker entry point: one trial shard against one sparse tree."""
    faults.inject("shard", task.shard_index)
    view = attach_graph(task.graph)
    tree, tree_handles = attach_tree(task.tree)
    targets, targets_handle = attach_array(task.targets)
    try:
        if task.moments:
            from repro.walks.kernel import WalkCrashKernel

            kernel = WalkCrashKernel(view, task.c, sampler=task.sampler)
            totals, sumsq = kernel.accumulate_moments(
                tree,
                targets,
                task.trials,
                l_max=task.l_max,
                rng=np.random.default_rng(task.seed),
                hub_cache=_task_hub_cache(task, view.num_nodes),
            )
            return np.stack((totals, sumsq))
        return accumulate_crash_totals(
            view,
            tree,
            targets,
            task.trials,
            c=task.c,
            l_max=task.l_max,
            rng=np.random.default_rng(task.seed),
            sampler=task.sampler,
        )
    finally:
        view.close()
        for handle in tree_handles:
            handle.close()
        targets_handle.close()


def _run_shard_multi(task: _ShardTask) -> np.ndarray:
    """Worker entry point for multi-source: score walks against every tree."""
    faults.inject("shard", task.shard_index)
    view = attach_graph(task.graph)
    matrices, matrix_handle = attach_array(task.matrix)
    targets, targets_handle = attach_array(task.targets)
    try:
        if task.moments:
            from repro.walks.kernel import WalkCrashKernel

            kernel = WalkCrashKernel(view, task.c, sampler=task.sampler)
            totals, sumsq = kernel.accumulate_multi_moments(
                list(matrices),
                targets,
                task.trials,
                l_max=task.l_max,
                rng=np.random.default_rng(task.seed),
            )
            return np.stack((totals, sumsq))
        return _accumulate_multi(
            view,
            matrices,
            targets,
            task.trials,
            c=task.c,
            l_max=task.l_max,
            rng=np.random.default_rng(task.seed),
            sampler=task.sampler,
        )
    finally:
        view.close()
        matrix_handle.close()
        targets_handle.close()


_WALK_CHUNK = 1 << 20

# KernelPools are cached on the DiGraph itself (a dedicated slot), keyed by
# (c, sampler, jit) — the graph's lifetime bounds the pools', and a
# persistent executor's threads keep their warm kernel buffers across
# queries on the same graph.  The lock only guards pool registration.
_KERNEL_POOL_LOCK = threading.Lock()


def _kernel_pool(graph, *, c: float, sampler: str) -> "KernelPool":
    """The per-thread kernel pool for ``graph`` under this configuration.

    Kernels resolve the JIT toggle at construction, so the cache key folds
    the current effective setting in — flipping ``REPRO_JIT`` mid-process
    yields fresh kernels instead of stale ones.  Graphs that cannot carry
    the cache slot (foreign protocol objects) get an uncached pool, which
    still provides the per-thread isolation the thread tier needs.
    """
    from repro.walks import _jit
    from repro.walks.kernel import KernelPool, WalkCrashKernel

    key = (float(c), sampler, _jit.jit_requested() and _jit.available())

    def factory():
        return WalkCrashKernel(graph, c, sampler=sampler)

    with _KERNEL_POOL_LOCK:
        pools = getattr(graph, "_kernel_pools", None)
        if pools is None:
            pools = {}
            try:
                graph._kernel_pools = pools
            except AttributeError:
                return KernelPool(factory)
        pool = pools.get(key)
        if pool is None:
            pool = KernelPool(factory)
            pools[key] = pool
        return pool


def _accumulate_multi(
    graph,
    matrices: np.ndarray,
    targets: np.ndarray,
    n_trials: int,
    *,
    c: float,
    l_max: int,
    rng: np.random.Generator,
    sampler: str = "cdf",
) -> np.ndarray:
    """Shared-walk accumulation against ``q`` stacked tree matrices.

    Runs through the fused kernel's multi-tree path — one walk per
    candidate per trial, then a single segmented bincount per step instead
    of ``q`` — bit-identical to the historical per-row accumulation.
    Returns totals of shape ``(q, k)``.
    """
    from repro.walks.kernel import WalkCrashKernel

    kernel = WalkCrashKernel(graph, c, sampler=sampler)
    return kernel.accumulate_multi(
        list(matrices), targets, n_trials, l_max=l_max, rng=rng,
        walk_chunk=_WALK_CHUNK,
    )


def _map_shards(
    executor: Optional[ParallelExecutor],
    workers: Optional[int],
    graph: DiGraph,
    tree,
    targets: np.ndarray,
    shards: Sequence[int],
    seeds: Sequence[np.random.SeedSequence],
    *,
    c: float,
    l_max: int,
    multi: bool,
    deadline: Optional[float] = None,
    sampler: str = "cdf",
    mode: str = "auto",
    moments: bool = False,
    hub_cache=None,
    index_offset: int = 0,
) -> Tuple[List[Optional[np.ndarray]], MapOutcome]:
    """Run every shard through the executor's tier, in shard order.

    ``tree`` is a :class:`~repro.core.revreach.SparseReverseTree` for the
    single-source path (shipped as its packed sparse arrays) or the stacked
    dense matrices for the multi-source path (shipped as one 3-D array).

    With no ``executor`` the process-wide persistent default for
    ``(workers, mode)`` is shared (and never closed here); an explicit
    executor is used as-is and ``mode`` is ignored.  The serial fallback
    and the thread tier run shards as closures over the original arrays —
    each pool thread through its own :class:`KernelPool` kernel — while
    the process tier ships shared-memory specs to module-level workers.

    Returns the per-shard totals (``None`` where a shard was lost) plus the
    executor's :class:`~repro.parallel.executor.MapOutcome`; the caller
    decides whether a partial outcome is acceptable.  Lost or failed shards
    were retried per the executor's policy before being given up on.

    ``moments=True`` runs the adaptive entry points instead: each shard
    returns stacked ``(totals, sumsq)`` (shape ``(2, k)`` single-source,
    ``(2, q, k)`` multi), optionally retiring walks through ``hub_cache``.
    ``index_offset`` keeps global shard indices (fault-injection identity)
    stable when the adaptive round loop maps one plan slice at a time.
    """
    if executor is None:
        executor = get_default_executor(workers, mode=mode)
    if not executor.uses_processes:
        # Serial or thread tier: shards are in-process closures.  Every
        # pool thread scores through its own preallocated kernel (kernels
        # are not thread-safe); the serial path reuses one kernel across
        # shards.  Both are bit-identical to a fresh-kernel-per-shard run
        # — buffers carry no state between accumulate calls.
        kernels = _kernel_pool(graph, c=c, sampler=sampler)
        matrices = list(tree) if multi else None

        def run_local_shard(item):
            index, trials, seed = item
            faults.inject("shard", index)
            kernel = kernels.get()
            rng = np.random.default_rng(seed)
            if moments:
                if multi:
                    totals, sumsq = kernel.accumulate_multi_moments(
                        matrices, targets, trials, l_max=l_max, rng=rng,
                        walk_chunk=_WALK_CHUNK,
                    )
                else:
                    totals, sumsq = kernel.accumulate_moments(
                        tree, targets, trials, l_max=l_max, rng=rng,
                        walk_chunk=_WALK_CHUNK, hub_cache=hub_cache,
                    )
                return np.stack((totals, sumsq))
            if multi:
                return kernel.accumulate_multi(
                    matrices, targets, trials, l_max=l_max, rng=rng,
                    walk_chunk=_WALK_CHUNK,
                )
            return kernel.accumulate(
                tree, targets, trials, l_max=l_max, rng=rng,
                walk_chunk=_WALK_CHUNK,
            )

        items = list(
            zip(range(index_offset, index_offset + len(shards)), shards, seeds)
        )
        with obs.span(
            "shard_dispatch", shards=len(shards), mode=executor.mode_label
        ):
            outcome = executor.run(run_local_shard, items, deadline=deadline)
        _log_shard_recovery(outcome, len(shards))
        return outcome.results, outcome
    shared_tree = SharedArray(tree) if multi else SharedTree(tree)
    publish_alias = sampler == "alias" and getattr(graph, "is_weighted", False)
    with SharedGraph(
        graph, publish_alias=publish_alias
    ) as shared_graph, shared_tree, SharedArray(
        targets
    ) as shared_targets:
        tasks = [
            _ShardTask(
                graph=shared_graph.spec(),
                matrix=shared_tree.spec if multi else None,
                tree=None if multi else shared_tree.spec(),
                targets=shared_targets.spec,
                trials=trials,
                c=c,
                l_max=l_max,
                seed=seed,
                shard_index=index_offset + index,
                sampler=sampler,
                moments=moments,
                hub_hubs=None if hub_cache is None else hub_cache.hubs,
                hub_tails=None if hub_cache is None else hub_cache.tails,
            )
            for index, (trials, seed) in enumerate(zip(shards, seeds))
        ]
        worker = _run_shard_multi if multi else _run_shard
        with obs.span("shard_dispatch", shards=len(shards), mode="process"):
            outcome = executor.run(worker, tasks, deadline=deadline)
        _log_shard_recovery(outcome, len(shards))
        return outcome.results, outcome


def _log_shard_recovery(outcome: MapOutcome, shards: int) -> None:
    """Structured record of in-run fault recovery (retries, pool rebuilds).

    The executor already absorbed the faults; this makes them visible to
    operators, who otherwise only see the run's wall-clock stretch.
    """
    if outcome.task_retries or outcome.pool_rebuilds:
        logger.warning(
            "shard execution recovered: task_retries=%d pool_rebuilds=%d "
            "shards=%d completed=%d elapsed=%.3fs",
            outcome.task_retries,
            outcome.pool_rebuilds,
            shards,
            outcome.num_completed,
            outcome.elapsed,
        )


def _remaining_budget(deadline: Optional[float], started: float) -> Optional[float]:
    """Deadline minus setup time already spent; raises once it is gone.

    The tree build (and shared-memory publication) happen before any trial
    shard runs; a deadline that cannot even cover setup has nothing partial
    to return.
    """
    if deadline is None:
        return None
    remaining = deadline - (time.monotonic() - started)
    if remaining <= 0:
        raise DeadlineExceededError(
            f"deadline of {deadline}s elapsed during query setup, before any "
            "trial shard could run",
            deadline=deadline,
            elapsed=time.monotonic() - started,
        )
    return remaining


def _settle_shards(
    shard_plan: Sequence[int],
    outcome: MapOutcome,
    params: CrashSimParams,
    num_nodes: int,
    n_r: int,
    deadline: Optional[float],
    log_context: Optional[dict] = None,
) -> Tuple[int, bool, float]:
    """Turn a shard outcome into ``(trials_completed, degraded, achieved_ε)``.

    Raises :class:`DeadlineExceededError` (or the first shard error) when
    *no* shard completed — with zero trials there is no estimator to
    degrade to.  Emits a :class:`DegradedResultWarning` when the run is
    partial, so silent quality loss cannot happen; ``log_context`` (query
    source, master seed) rides along on the structured log record that
    accompanies the warning.
    """
    context = " ".join(
        f"{key}={value}" for key, value in (log_context or {}).items()
    )
    trials_completed = sum(
        trials
        for trials, done in zip(shard_plan, outcome.completed)
        if done
    )
    if trials_completed == 0:
        error = outcome.first_error()
        if outcome.deadline_hit or outcome.cancelled or error is None:
            reason = "cancelled" if outcome.cancelled else "deadline"
            logger.error(
                "query lost every trial shard: cause=%s shards_planned=%d "
                "elapsed=%.3fs %s",
                reason,
                len(shard_plan),
                outcome.elapsed,
                context,
            )
            raise DeadlineExceededError(
                f"no trial shard completed before the {reason} "
                f"({outcome.elapsed:.3f}s elapsed, {len(shard_plan)} shards "
                "planned); no estimate exists to degrade to",
                deadline=deadline,
                elapsed=outcome.elapsed,
            )
        raise error
    degraded = trials_completed < n_r
    achieved = params.achieved_epsilon(num_nodes, trials_completed)
    if degraded:
        lost = len(shard_plan) - outcome.num_completed
        cause = (
            "deadline"
            if outcome.deadline_hit
            else "cancellation"
            if outcome.cancelled
            else "shard failures"
        )
        _M_DEGRADED.inc()
        _M_SHARDS_LOST.inc(lost)
        obs.event(
            "degrade",
            cause=cause,
            shards_lost=lost,
            trials_completed=trials_completed,
        )
        logger.warning(
            "degraded CrashSim estimate: cause=%s shards_completed=%d/%d "
            "trials_completed=%d/%d achieved_epsilon=%.4g target_epsilon=%g %s",
            cause,
            outcome.num_completed,
            len(shard_plan),
            trials_completed,
            n_r,
            achieved,
            params.epsilon,
            context,
        )
        warnings.warn(
            f"degraded CrashSim estimate: {lost} of {len(shard_plan)} trial "
            f"shards lost to {cause}; averaging {trials_completed}/{n_r} "
            f"trials widens the Lemma-3 bound to ε={achieved:.4g} "
            f"(target ε={params.epsilon})",
            DegradedResultWarning,
            stacklevel=3,
        )
    return trials_completed, degraded, achieved


def _settle_adaptive(
    outcome,
    params: CrashSimParams,
    shard_plan: Sequence[int],
    deadline: Optional[float],
    elapsed: float,
    log_context: Optional[dict] = None,
    first_error: Optional[BaseException] = None,
) -> None:
    """Post-run accounting for an adaptive round loop.

    Mirrors :func:`_settle_shards`: zero completed trials raise (nothing to
    degrade to); an interrupted run that had *not* converged warns as
    degraded, with the honest bound — which for adaptive runs is the better
    of the inverted Lemma-3 bound and the empirical-Bernstein bound, so the
    metadata is never worse than a fixed run of the same length would
    report.  A run that converged before the interruption is a full-quality
    early stop, not a degradation.
    """
    context = " ".join(
        f"{key}={value}" for key, value in (log_context or {}).items()
    )
    if outcome.trials_used == 0 and len(shard_plan) > 0:
        if first_error is not None:
            raise first_error
        logger.error(
            "adaptive query lost every trial shard: shards_planned=%d "
            "elapsed=%.3fs %s",
            len(shard_plan),
            elapsed,
            context,
        )
        raise DeadlineExceededError(
            f"no trial shard completed before the deadline ({elapsed:.3f}s "
            f"elapsed, {len(shard_plan)} shards planned); no estimate "
            "exists to degrade to",
            deadline=deadline,
            elapsed=elapsed,
        )
    if not outcome.degraded:
        return
    _M_DEGRADED.inc()
    if outcome.shards_lost:
        _M_SHARDS_LOST.inc(outcome.shards_lost)
    obs.event(
        "degrade",
        cause="deadline",
        shards_lost=outcome.shards_lost,
        trials_completed=outcome.trials_used,
    )
    logger.warning(
        "degraded adaptive CrashSim estimate: trials_completed=%d/%d "
        "rounds_run=%d achieved_epsilon=%.4g target_epsilon=%g %s",
        outcome.trials_used,
        outcome.n_r,
        outcome.rounds_run,
        outcome.achieved_epsilon,
        params.epsilon,
        context,
    )
    warnings.warn(
        f"degraded adaptive CrashSim estimate: interrupted after "
        f"{outcome.trials_used}/{outcome.n_r} trials "
        f"({outcome.rounds_run} rounds) before the stopper converged; "
        f"honest bound ε={outcome.achieved_epsilon:.4g} "
        f"(target ε={params.epsilon})",
        DegradedResultWarning,
        stacklevel=4,
    )


def _parallel_adaptive(
    graph: DiGraph,
    tree,
    walk_targets: np.ndarray,
    params: CrashSimParams,
    *,
    num_nodes: int,
    seed_seq: np.random.SeedSequence,
    executor: Optional[ParallelExecutor],
    workers: Optional[int],
    shards: Optional[int],
    deadline: Optional[float],
    started: float,
    sampler: str,
    mode: str,
    multi: bool,
    num_sources: int = 1,
    value_bound=None,
    log_context: Optional[dict] = None,
):
    """Adaptive round loop over the parallel tiers.

    One deterministic shard plan + seed spawn covers the whole potential
    run; rounds are plan *slices* mapped through :func:`_map_shards`
    (``index_offset`` keeps global shard identities), the stopper folds
    completed shard moments in shard order, and the stop decision happens
    between rounds — so the result is byte-identical to the serial
    adaptive driver at any worker count, on any tier.  The deadline budget
    is re-measured before every round; an expiry mid-run keeps whatever
    rounds completed.
    """
    from repro.core.adaptive import (
        AdaptiveStopper,
        build_hub_cache,
        drive_adaptive_rounds,
        plan_rounds,
        walk_value_bound,
    )

    l_max = params.l_max
    n_r = params.n_r(num_nodes)
    if walk_targets.size == 0:
        stopper = AdaptiveStopper(params, 0, 0.0, 1)
        return drive_adaptive_rounds(
            [], [], stopper, lambda *_: ([], False),
            num_nodes=num_nodes, n_r=n_r,
        )
    if shards is None:
        shard_plan = plan_shards(
            n_r, walk_targets.size * num_sources, n_r=n_r
        )
    else:
        shard_plan = shard_sizes(n_r, shards)
    _M_SHARD_PLAN.set(len(shard_plan))
    seeds = seed_seq.spawn(len(shard_plan))
    hub_cache = (
        None if multi else build_hub_cache(graph, tree, l_max=l_max, c=params.c)
    )
    if value_bound is None:
        value_bound = walk_value_bound(tree, l_max)
    stopper = AdaptiveStopper(
        params,
        walk_targets.size * num_sources,
        value_bound,
        len(plan_rounds(len(shard_plan))),
    )

    errors: List[BaseException] = []

    def run_round(start, sizes, round_seeds):
        try:
            remaining = _remaining_budget(deadline, started)
        except DeadlineExceededError:
            if stopper.trials > 0:
                return [None] * len(sizes), True
            raise
        shard_totals, outcome = _map_shards(
            executor,
            workers,
            graph,
            tree,
            walk_targets,
            sizes,
            round_seeds,
            c=params.c,
            l_max=l_max,
            multi=multi,
            deadline=remaining,
            sampler=sampler,
            mode=mode,
            moments=True,
            hub_cache=hub_cache,
            index_offset=start,
        )
        if not errors:
            error = outcome.first_error()
            if error is not None:
                errors.append(error)
        results = [
            (stacked[0], stacked[1]) if done and stacked is not None else None
            for stacked, done in zip(shard_totals, outcome.completed)
        ]
        return results, outcome.deadline_hit or outcome.cancelled

    adaptive_outcome = drive_adaptive_rounds(
        shard_plan, seeds, stopper, run_round, num_nodes=num_nodes, n_r=n_r
    )
    _settle_adaptive(
        adaptive_outcome,
        params,
        shard_plan,
        deadline,
        time.monotonic() - started,
        log_context,
        first_error=errors[0] if errors else None,
    )
    return adaptive_outcome


def parallel_crashsim(
    graph: DiGraph,
    source: int,
    *,
    candidates: Optional[Iterable[int]] = None,
    params: Optional[CrashSimParams] = None,
    tree_variant: str = "corrected",
    seed: RngLike = None,
    workers: Optional[int] = None,
    executor: Optional[ParallelExecutor] = None,
    shards: Optional[int] = None,
    deadline: Optional[float] = None,
    sampler: str = "cdf",
    tree=None,
    mode: str = "auto",
    adaptive: bool = False,
) -> CrashSimResult:
    """Single-source CrashSim with the ``n_r`` trials sharded over workers.

    Parameters mirror :func:`repro.core.crashsim.crashsim`, plus:

    workers:
        Worker count (``None`` → CPU count, ``1`` → serial in-process).
    executor:
        Reuse an existing :class:`ParallelExecutor` across queries; the
        caller keeps ownership.  When omitted, the process-wide persistent
        default executor for ``(workers, mode)`` is shared — pool start-up
        is paid once per process, not once per query.
    mode:
        Execution tier when no ``executor`` is passed: ``"process"``,
        ``"thread"``, or ``"auto"`` (default — threads when the nogil JIT
        is active, processes otherwise; see
        :func:`~repro.parallel.executor.resolve_mode`).  The tier never
        affects scores, only where shards run.
    tree:
        A prebuilt :class:`~repro.core.revreach.SparseReverseTree` for
        ``source`` (e.g. from a serving engine's LRU), validated against
        the query's ``source``/``c``/``l_max``/``variant``; built fresh
        when omitted.  Supplying one moves the tree build out of the
        ``deadline`` budget, since the budget clock only meters work done
        inside this call.
    shards:
        Trial-shard count; ``None`` (default) autotunes via
        :func:`plan_shards` (each shard worth ≥ ~20ms of walking, capped
        at :data:`MAX_SHARDS`).  Results depend on the shard plan (it
        defines the RNG stream layout) but **not** on ``workers`` or
        ``mode`` — the determinism contract is: same master seed + same
        plan ⇒ identical scores at any worker count, on any tier.  Pass
        ``shards=DEFAULT_SHARDS`` (16) to reproduce the legacy layout the
        pinned fixtures use.
    deadline:
        Wall-clock budget in seconds for the whole query (tree build
        included).  On expiry the estimate averages whichever trial shards
        completed — still unbiased, flagged ``degraded=True`` with the
        honest wider bound in ``achieved_epsilon`` — and a
        :class:`~repro.errors.DeadlineExceededError` is raised only if
        *nothing* completed.  ``None`` (default) never times out.
    sampler:
        Weighted neighbour-sampling strategy (``"cdf"`` default /
        ``"alias"`` opt-in), forwarded to every shard's fused kernel; with
        ``"alias"`` the per-node alias tables are published zero-copy
        through the shared graph so workers skip the O(m) rebuild.
    adaptive:
        Run the trials in geometrically growing rounds with empirical-
        Bernstein early stopping (:mod:`repro.core.adaptive`): rounds are
        slices of the same deterministic shard plan, the stop decision
        happens between rounds, and shard moments are folded in shard
        order — byte-identical to the serial ``crashsim(adaptive=True)``
        at any worker count, on any tier.  Composes with ``deadline``: an
        expiry mid-run keeps completed rounds and reports whichever bound
        is better (inverted Lemma 3 or empirical Bernstein) — adaptive
        metadata is never worse than the fixed-path equivalent.

    Lost shards (worker death, in-shard exceptions) are retried with a
    rebuilt pool before being given up on; a run in which every shard
    eventually completed — retried or not — is byte-identical to an
    undisturbed one, because shard totals are summed in shard order from
    per-shard RNG streams that never depend on scheduling.

    The estimator is exactly Algorithm 1's; only the trial execution order
    across RNG streams differs from the serial :func:`crashsim`, so the
    Theorem-1 ``(ε, δ)`` guarantee carries over unchanged when all shards
    complete, and degrades to the inverted Lemma-3 bound when they don't.
    """
    params = params or CrashSimParams()
    started = time.monotonic()
    if not 0 <= int(source) < graph.num_nodes:
        raise ParameterError(
            f"source {source} outside the graph's node range [0, {graph.num_nodes})"
        )
    if deadline is not None and deadline <= 0:
        raise ParameterError(f"deadline must be positive, got {deadline}")
    source = int(source)
    seed_seq = as_seed_sequence(seed)
    candidate_array = resolve_candidates(graph, source, candidates)
    l_max = params.l_max
    num_nodes = max(graph.num_nodes, 2)
    n_r = params.n_r(num_nodes)

    if tree is None:
        tree = revreach_levels(
            graph, source, l_max, params.c, variant=tree_variant
        )
    elif (
        tree.source != source
        or tree.l_max != l_max
        or tree.variant != tree_variant
        or not math.isclose(tree.c, params.c)
    ):
        raise ParameterError(
            "provided tree does not match the query's source/c/l_max/variant"
        )

    walk_targets = candidate_array[candidate_array != source]
    walk_targets = walk_targets[graph.in_degrees()[walk_targets] > 0]

    if adaptive:
        outcome = _parallel_adaptive(
            graph,
            tree,
            walk_targets,
            params,
            num_nodes=num_nodes,
            seed_seq=seed_seq,
            executor=executor,
            workers=workers,
            shards=shards,
            deadline=deadline,
            started=started,
            sampler=sampler,
            mode=mode,
            multi=False,
            log_context={"source": source, "seed": seed},
        )
        scores = np.zeros(candidate_array.size, dtype=np.float64)
        walk_positions = np.searchsorted(candidate_array, walk_targets)
        scores[walk_positions] = outcome.totals / max(outcome.trials_used, 1)
        scores[candidate_array == source] = 1.0
        scores = np.clip(scores, 0.0, 1.0)
        return CrashSimResult(
            source=source,
            candidates=candidate_array,
            scores=scores,
            n_r=n_r,
            params=params,
            tree=tree,
            trials_completed=outcome.trials_used,
            degraded=outcome.degraded,
            achieved_epsilon=outcome.achieved_epsilon,
            stopped_early=outcome.stopped_early,
        )

    trials_completed = n_r
    degraded = False
    achieved = params.achieved_epsilon(num_nodes, n_r)
    totals = np.zeros(walk_targets.size, dtype=np.float64)
    if walk_targets.size:
        if shards is None:
            shard_plan = plan_shards(n_r, walk_targets.size, n_r=n_r)
        else:
            shard_plan = shard_sizes(n_r, shards)
        _M_SHARD_PLAN.set(len(shard_plan))
        seeds = seed_seq.spawn(len(shard_plan))
        remaining = _remaining_budget(deadline, started)
        shard_totals, outcome = _map_shards(
            executor,
            workers,
            graph,
            tree,
            walk_targets,
            shard_plan,
            seeds,
            c=params.c,
            l_max=l_max,
            multi=False,
            deadline=remaining,
            sampler=sampler,
            mode=mode,
        )
        trials_completed, degraded, achieved = _settle_shards(
            shard_plan, outcome, params, num_nodes, n_r, deadline,
            log_context={"source": source, "seed": seed},
        )
        # Sum in shard order: float addition order is part of the
        # worker-count-independence contract.  Lost shards are skipped,
        # not zero-filled — the divisor below shrinks with them.
        for shard_total, done in zip(shard_totals, outcome.completed):
            if done:
                totals += shard_total

    scores = np.zeros(candidate_array.size, dtype=np.float64)
    walk_positions = np.searchsorted(candidate_array, walk_targets)
    scores[walk_positions] = totals / trials_completed
    scores[candidate_array == source] = 1.0
    scores = np.clip(scores, 0.0, 1.0)
    return CrashSimResult(
        source=source,
        candidates=candidate_array,
        scores=scores,
        n_r=n_r,
        params=params,
        tree=tree,
        trials_completed=trials_completed,
        degraded=degraded,
        achieved_epsilon=achieved,
    )


def parallel_crashsim_multi_source(
    graph: DiGraph,
    sources: Sequence[int],
    *,
    candidates: Optional[Iterable[int]] = None,
    params: Optional[CrashSimParams] = None,
    tree_variant: str = "corrected",
    seed: RngLike = None,
    workers: Optional[int] = None,
    executor: Optional[ParallelExecutor] = None,
    shards: Optional[int] = None,
    deadline: Optional[float] = None,
    sampler: str = "cdf",
    mode: str = "auto",
    adaptive: bool = False,
) -> List[CrashSimResult]:
    """Multi-source CrashSim with trial shards fanned out over workers.

    Keeps :func:`~repro.core.multi_source.crashsim_multi_source`'s
    amortisation — each sampled walk is scored against every source's tree —
    while splitting the trials exactly like :func:`parallel_crashsim`,
    including its ``deadline`` / graceful-degradation contract.  A shard
    carries the same trials for every source, so a partial run degrades all
    sources uniformly: every returned result shares one
    ``trials_completed`` / ``achieved_epsilon``.
    Returns one :class:`CrashSimResult` per source, in input order.

    ``adaptive=True`` adds empirical-Bernstein early stopping over the same
    rounds-of-shards layout as :func:`parallel_crashsim`; the shared walk
    stream is the common-random-number design, so one walk budget serves
    every source's stop decision (the run stops when the worst
    ``(source, candidate)`` half-width is within ε).
    """
    params = params or CrashSimParams()
    started = time.monotonic()
    source_list = [int(s) for s in sources]
    if not source_list:
        return []
    for source in source_list:
        if not 0 <= source < graph.num_nodes:
            raise ParameterError(
                f"source {source} outside the node range [0, {graph.num_nodes})"
            )
    if deadline is not None and deadline <= 0:
        raise ParameterError(f"deadline must be positive, got {deadline}")
    seed_seq = as_seed_sequence(seed)
    l_max = params.l_max
    num_nodes = max(graph.num_nodes, 2)
    n_r = params.n_r(num_nodes)

    if candidates is None:
        candidate_array = np.arange(graph.num_nodes, dtype=np.int64)
    else:
        candidate_array = np.unique(np.asarray(list(candidates), dtype=np.int64))
        if candidate_array.size and (
            candidate_array.min() < 0 or candidate_array.max() >= graph.num_nodes
        ):
            raise ParameterError("candidate node outside the graph's node range")

    trees = [
        revreach_levels(graph, source, l_max, params.c, variant=tree_variant)
        for source in source_list
    ]
    stacked = np.stack([tree.matrix for tree in trees])

    walk_targets = candidate_array[graph.in_degrees()[candidate_array] > 0]
    stopped_early = False
    if adaptive:
        from repro.core.adaptive import walk_value_bound

        bounds = np.repeat(
            [walk_value_bound(tree, l_max) for tree in trees],
            walk_targets.size,
        )
        outcome = _parallel_adaptive(
            graph,
            stacked,
            walk_targets,
            params,
            num_nodes=num_nodes,
            seed_seq=seed_seq,
            executor=executor,
            workers=workers,
            shards=shards,
            deadline=deadline,
            started=started,
            sampler=sampler,
            mode=mode,
            multi=True,
            num_sources=len(source_list),
            value_bound=bounds,
            log_context={"sources": source_list, "seed": seed},
        )
        trials_completed = outcome.trials_used
        degraded = outcome.degraded
        achieved = outcome.achieved_epsilon
        stopped_early = outcome.stopped_early
        totals = outcome.totals.reshape(len(source_list), walk_targets.size)
    else:
        trials_completed = n_r
        degraded = False
        achieved = params.achieved_epsilon(num_nodes, n_r)
        totals = np.zeros(
            (len(source_list), walk_targets.size), dtype=np.float64
        )
    if not adaptive and walk_targets.size:
        if shards is None:
            # Every walk is scored against all q trees, so a trial costs
            # ~q× the single-source nominal — fold that into the plan.
            shard_plan = plan_shards(
                n_r, walk_targets.size * len(source_list), n_r=n_r
            )
        else:
            shard_plan = shard_sizes(n_r, shards)
        _M_SHARD_PLAN.set(len(shard_plan))
        seeds = seed_seq.spawn(len(shard_plan))
        remaining = _remaining_budget(deadline, started)
        shard_totals, outcome = _map_shards(
            executor,
            workers,
            graph,
            stacked,
            walk_targets,
            shard_plan,
            seeds,
            c=params.c,
            l_max=l_max,
            multi=True,
            deadline=remaining,
            sampler=sampler,
            mode=mode,
        )
        trials_completed, degraded, achieved = _settle_shards(
            shard_plan, outcome, params, num_nodes, n_r, deadline,
            log_context={"sources": source_list, "seed": seed},
        )
        for shard_total, done in zip(shard_totals, outcome.completed):
            if done:
                totals += shard_total

    results: List[CrashSimResult] = []
    walk_positions = np.searchsorted(candidate_array, walk_targets)
    for row, (source, tree) in enumerate(zip(source_list, trees)):
        per_source = candidate_array[candidate_array != source]
        scores = np.zeros(candidate_array.size, dtype=np.float64)
        scores[walk_positions] = totals[row] / max(trials_completed, 1)
        scores[candidate_array == source] = 1.0
        keep = candidate_array != source
        results.append(
            CrashSimResult(
                source=source,
                candidates=per_source,
                scores=np.clip(scores[keep], 0.0, 1.0),
                n_r=n_r,
                params=params,
                tree=tree,
                trials_completed=trials_completed,
                degraded=degraded,
                achieved_epsilon=achieved,
                stopped_early=stopped_early,
            )
        )
    return results
