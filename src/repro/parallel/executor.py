"""Fault-tolerant process-pool execution with a serial in-process fallback.

:class:`ParallelExecutor` is the one place worker processes are created.
Policy:

* ``workers=1`` (or a platform where process pools cannot start) runs every
  task in-process, in order — the *same* shard decomposition as the
  parallel path, so results are bit-identical at any worker count;
* otherwise a ``concurrent.futures.ProcessPoolExecutor`` is used, preferring
  the cheap ``fork`` start method where available and falling back to
  ``spawn``.  Worker functions must therefore be importable module-level
  callables with picklable arguments (shard tasks carry shared-memory specs,
  not graphs).

Two entry points share one future-based engine (:meth:`ParallelExecutor.run`):

* :meth:`ParallelExecutor.map` — the strict, all-or-raise surface.  Task
  exceptions propagate; a pool that breaks mid-run is **rebuilt and only the
  lost tasks resubmitted** — results that already completed are never
  discarded or recomputed — degrading to in-process execution of the
  *remainder* only if no pool can be rebuilt.
* :meth:`ParallelExecutor.run` — the resilient surface the query drivers
  use.  It returns a :class:`MapOutcome` recording, per task, the result or
  the failure; honours a wall-clock ``deadline`` (seconds); retries failed
  tasks up to ``task_retries`` times; survives up to ``pool_rebuilds`` pool
  breakages (worker death); and supports cooperative cancellation via
  :meth:`ParallelExecutor.cancel`.  It never raises for a lost task — the
  caller decides whether a partial outcome is acceptable (CrashSim's
  Monte-Carlo structure makes any completed-shard prefix a valid, wider-ε
  estimator; see docs/internals.md §9).

``map``/``run`` always index results in task order; the deterministic
seed-shard scheme in :mod:`repro.parallel.runner` relies on that ordering to
sum shard totals identically regardless of scheduling, retries, or losses.

Pools are released deterministically by ``close()`` / the context manager,
and as a backstop by a ``weakref.finalize`` hook so abandoned executors do
not leak worker processes.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import weakref
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.errors import ParameterError

__all__ = ["ParallelExecutor", "MapOutcome", "resolve_workers"]

T = TypeVar("T")
R = TypeVar("R")

#: Default number of times a single failed/lost task is resubmitted.
DEFAULT_TASK_RETRIES = 2

#: Default number of times a broken pool is rebuilt within one run.
DEFAULT_POOL_REBUILDS = 2


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``workers`` argument: ``None`` → CPU count, else ≥ 1."""
    if workers is None:
        return max(1, os.cpu_count() or 1)
    workers = int(workers)
    if workers < 1:
        raise ParameterError(f"workers must be positive, got {workers}")
    return workers


def _preferred_context() -> Optional[multiprocessing.context.BaseContext]:
    # REPRO_START_METHOD forces a specific start method (CI runs the parallel
    # suite under both fork and spawn this way); otherwise prefer fork.
    forced = os.environ.get("REPRO_START_METHOD")
    methods = multiprocessing.get_all_start_methods()
    if forced:
        if forced not in methods:
            raise ParameterError(
                f"REPRO_START_METHOD={forced!r} is not a valid multiprocessing "
                f"start method on this platform; allowed: {', '.join(methods)}"
            )
        return multiprocessing.get_context(forced)
    for method in ("fork", "spawn", "forkserver"):
        if method in methods:
            return multiprocessing.get_context(method)
    return None  # pragma: no cover - every CPython platform has one


def _shutdown_pool(pool: ProcessPoolExecutor) -> None:
    """GC-time backstop: release workers without blocking the collector."""
    pool.shutdown(wait=False, cancel_futures=True)


@dataclass
class MapOutcome:
    """Per-task accounting of one :meth:`ParallelExecutor.run` call.

    ``results[i]`` is meaningful only where ``completed[i]`` is true;
    ``errors[i]`` holds the final exception of a task that exhausted its
    retries (``None`` for tasks that completed or were simply cut off by
    the deadline / cancellation).
    """

    results: List[Any] = field(default_factory=list)
    completed: List[bool] = field(default_factory=list)
    errors: List[Optional[BaseException]] = field(default_factory=list)
    deadline_hit: bool = False
    cancelled: bool = False
    pool_rebuilds: int = 0
    task_retries: int = 0
    elapsed: float = 0.0

    @property
    def all_completed(self) -> bool:
        return all(self.completed)

    @property
    def num_completed(self) -> int:
        return sum(1 for done in self.completed if done)

    def first_error(self) -> Optional[BaseException]:
        """The lowest-indexed recorded task error (deterministic)."""
        for error in self.errors:
            if error is not None:
                return error
        return None


class ParallelExecutor:
    """Run picklable tasks over ``workers`` processes (or serially).

    Parameters
    ----------
    workers:
        Process count; ``None`` uses the CPU count, ``1`` forces the serial
        in-process path.
    start_method:
        Optional multiprocessing start-method override (``"fork"``,
        ``"spawn"``, ``"forkserver"``); default honours the
        ``REPRO_START_METHOD`` environment variable, then prefers ``fork``.
    """

    def __init__(self, workers: Optional[int] = None, *, start_method: Optional[str] = None):
        self.workers = resolve_workers(workers)
        self._start_method = start_method
        self._pool: Optional[ProcessPoolExecutor] = None
        self._finalizer: Optional[weakref.finalize] = None
        self._cancel_event = threading.Event()
        self._pool_disabled = self.workers <= 1
        if not self._pool_disabled:
            # Context resolution validates REPRO_START_METHOD / start_method
            # eagerly — a typo must surface as ParameterError, not silently
            # degrade to serial execution.
            self._context = (
                multiprocessing.get_context(start_method)
                if start_method
                else _preferred_context()
            )
            self._build_pool()

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------

    def _build_pool(self) -> bool:
        """(Re)create the process pool; returns whether one is available."""
        if self._pool_disabled:
            return False
        try:
            pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=self._context
            )
        except (OSError, ValueError, ImportError):  # pragma: no cover
            self._pool_disabled = True  # sandboxed platform: go serial
            self._pool = None
            return False
        self._pool = pool
        # Backstop for callers that skip the context manager: release the
        # workers when the executor is collected.  The callback must not
        # reference ``self`` or the executor would never be collected.
        self._finalizer = weakref.finalize(self, _shutdown_pool, pool)
        return True

    def _ensure_pool(self) -> Optional[ProcessPoolExecutor]:
        """The live pool, rebuilding a previously abandoned one if needed."""
        if self._pool is None and not self._pool_disabled:
            self._build_pool()
        return self._pool

    def _release_pool(self, wait_for_workers: bool) -> None:
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self._pool is not None:
            pool, self._pool = self._pool, None
            pool.shutdown(wait=wait_for_workers, cancel_futures=True)

    def _abandon_pool(self) -> None:
        """Drop a pool whose workers may still be running (deadline path).

        ``shutdown(wait=False)`` signals the workers and returns
        immediately; a shard that is mid-sleep keeps its doomed process
        alive briefly but the query returns now.  The next ``run``/``map``
        builds a fresh pool.
        """
        self._release_pool(wait_for_workers=False)

    @property
    def serial(self) -> bool:
        """Whether tasks currently run in-process (no pool)."""
        return self._pool is None

    def close(self) -> None:
        """Shut the pool down (idempotent); the executor turns serial."""
        self._pool_disabled = True
        self._release_pool(wait_for_workers=True)

    def cancel(self) -> None:
        """Cooperatively cancel the in-flight :meth:`run` (thread-safe).

        The running call stops dispatching new work, abandons unfinished
        shards, and returns a partial :class:`MapOutcome` with
        ``cancelled=True``.  Completed task results are kept.
        """
        self._cancel_event.set()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def map(self, fn: Callable[[T], R], tasks: Iterable[T]) -> List[R]:
        """Apply ``fn`` to every task, returning results in task order.

        Strict surface: a task exception that survives the default retry
        budget is re-raised.  A pool breakage triggers a rebuild and
        resubmission of **only** the lost tasks; completed results are
        never discarded or recomputed.  If no pool can be rebuilt, just
        the unfinished remainder runs serially in-process.
        """
        task_list: Sequence[T] = list(tasks)
        if self._ensure_pool() is None:
            return [fn(task) for task in task_list]
        outcome = self.run(fn, task_list)
        error = outcome.first_error()
        if error is not None and not isinstance(error, BrokenProcessPool):
            raise error
        if outcome.all_completed:
            return outcome.results
        # Pool irrecoverably broken: finish the remainder in-process.
        results = list(outcome.results)
        for index, done in enumerate(outcome.completed):
            if not done:
                results[index] = fn(task_list[index])
        return results

    def run(
        self,
        fn: Callable[[T], R],
        tasks: Iterable[T],
        *,
        deadline: Optional[float] = None,
        task_retries: int = DEFAULT_TASK_RETRIES,
        pool_rebuilds: int = DEFAULT_POOL_REBUILDS,
    ) -> MapOutcome:
        """Resilient map: per-task futures, bounded retry, wall-clock budget.

        Parameters
        ----------
        fn, tasks:
            As :meth:`map`; ``fn`` must be a module-level callable with
            picklable arguments when a pool is used.
        deadline:
            Wall-clock budget in seconds for the whole call.  When it
            elapses, pending tasks are cancelled, running ones abandoned
            (their pool is dropped and rebuilt lazily), and the outcome
            reports ``deadline_hit=True`` with whatever completed.  The
            serial path checks the clock *between* tasks (cooperative).
        task_retries:
            How many times one task is resubmitted after raising or being
            lost to a broken pool, before its error is recorded.
        pool_rebuilds:
            How many pool breakages (worker death) one call survives.
            Each breakage rebuilds the pool and resubmits only the tasks
            that were in flight or queued; completed results are kept.

        Never raises for task failures — inspect the returned
        :class:`MapOutcome`.
        """
        if deadline is not None and deadline <= 0:
            raise ParameterError(f"deadline must be positive, got {deadline}")
        task_list: Sequence[T] = list(tasks)
        n = len(task_list)
        outcome = MapOutcome(
            results=[None] * n, completed=[False] * n, errors=[None] * n
        )
        started = time.monotonic()
        deadline_at = None if deadline is None else started + deadline
        self._cancel_event.clear()

        def out_of_time() -> bool:
            return deadline_at is not None and time.monotonic() >= deadline_at

        pool = self._ensure_pool()
        if pool is None:
            self._run_serial(fn, task_list, outcome, out_of_time, task_retries)
        else:
            self._run_pooled(
                fn,
                task_list,
                outcome,
                deadline_at,
                out_of_time,
                task_retries,
                pool_rebuilds,
            )
        outcome.elapsed = time.monotonic() - started
        return outcome

    # -- serial engine --------------------------------------------------

    def _run_serial(
        self,
        fn: Callable[[T], R],
        task_list: Sequence[T],
        outcome: MapOutcome,
        out_of_time: Callable[[], bool],
        task_retries: int,
    ) -> None:
        for index, task in enumerate(task_list):
            if self._cancel_event.is_set():
                outcome.cancelled = True
                return
            if out_of_time():
                outcome.deadline_hit = True
                return
            attempts = 0
            while True:
                try:
                    outcome.results[index] = fn(task)
                    outcome.completed[index] = True
                    break
                except Exception as exc:
                    attempts += 1
                    if attempts > task_retries:
                        outcome.errors[index] = exc
                        break
                    outcome.task_retries += 1

    # -- pooled engine --------------------------------------------------

    def _run_pooled(
        self,
        fn: Callable[[T], R],
        task_list: Sequence[T],
        outcome: MapOutcome,
        deadline_at: Optional[float],
        out_of_time: Callable[[], bool],
        task_retries: int,
        pool_rebuilds: int,
    ) -> None:
        attempts = [0] * len(task_list)
        pending = {}  # future -> task index

        def submit(index: int) -> bool:
            pool = self._ensure_pool()
            if pool is None:
                return False
            try:
                pending[pool.submit(fn, task_list[index])] = index
                return True
            except (BrokenProcessPool, RuntimeError):
                return False

        for index in range(len(task_list)):
            if not submit(index):
                # Pool died before dispatch finished; the wait loop below
                # will account for whatever made it in.
                break
        if len(pending) < len(task_list):
            for index in range(len(pending), len(task_list)):
                outcome.errors[index] = BrokenProcessPool(
                    "process pool unavailable at submission"
                )

        while pending:
            if self._cancel_event.is_set():
                outcome.cancelled = True
                break
            timeout = (
                None
                if deadline_at is None
                else max(0.0, deadline_at - time.monotonic())
            )
            done, _ = wait(set(pending), timeout=timeout, return_when=FIRST_COMPLETED)
            if not done:
                outcome.deadline_hit = True
                break
            broken = False
            resubmit: List[int] = []
            lost: List[int] = []
            for future in done:
                index = pending.pop(future)
                try:
                    outcome.results[index] = future.result()
                    outcome.completed[index] = True
                except BrokenProcessPool:
                    broken = True
                    lost.append(index)
                except Exception as exc:
                    attempts[index] += 1
                    if attempts[index] > task_retries:
                        outcome.errors[index] = exc
                    else:
                        outcome.task_retries += 1
                        resubmit.append(index)
            if broken:
                # Every sibling future is doomed with the same pool; fold
                # them into the lost set so one breakage is handled once.
                lost.extend(pending.values())
                pending.clear()
                self._release_pool(wait_for_workers=False)
                outcome.pool_rebuilds += 1
                if outcome.pool_rebuilds > pool_rebuilds or not self._build_pool():
                    for index in sorted(lost + resubmit):
                        outcome.errors[index] = BrokenProcessPool(
                            "process pool broke and the rebuild budget "
                            f"({pool_rebuilds}) is exhausted"
                        )
                    break
                # A lost task is charged an attempt: a shard that kills its
                # worker every time must not break pools forever.
                for index in sorted(lost):
                    attempts[index] += 1
                    if attempts[index] > task_retries:
                        outcome.errors[index] = BrokenProcessPool(
                            f"task {index} lost to {attempts[index]} pool breakages"
                        )
                    else:
                        resubmit.append(index)
            if (pending or resubmit) and out_of_time():
                outcome.deadline_hit = True
                break
            for index in sorted(resubmit):
                if not submit(index):
                    outcome.errors[index] = BrokenProcessPool(
                        "process pool unavailable for retry"
                    )

        if pending or outcome.deadline_hit or outcome.cancelled:
            for future in pending:
                future.cancel()
            # Workers may still be executing abandoned shards; drop the
            # pool without waiting so the caller gets its partial result
            # inside the budget.  The next run() rebuilds lazily.
            self._abandon_pool()

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        mode = "serial" if self.serial else "process-pool"
        return f"ParallelExecutor(workers={self.workers}, mode={mode})"
