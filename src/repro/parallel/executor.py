"""Fault-tolerant pooled execution: process tier, thread tier, serial fallback.

:class:`ParallelExecutor` is the one place worker pools are created.
Policy:

* ``workers=1`` (or a platform where process pools cannot start) runs every
  task in-process, in order — the *same* shard decomposition as the
  parallel path, so results are bit-identical at any worker count;
* ``mode="process"`` uses a ``concurrent.futures.ProcessPoolExecutor``,
  preferring the cheap ``fork`` start method where available and falling
  back to ``spawn``.  Worker functions must therefore be importable
  module-level callables with picklable arguments (shard tasks carry
  shared-memory specs, not graphs);
* ``mode="thread"`` uses a ``concurrent.futures.ThreadPoolExecutor`` in the
  calling process.  Tasks are plain closures — no pickling, no
  shared-memory shipping, no interpreter startup — which pays off when the
  task body releases the GIL: the numba step loops in
  :mod:`repro.walks._jit` are compiled ``nogil=True``, and the NumPy
  fallback releases the GIL inside its larger array ops;
* ``mode="auto"`` picks the thread tier when the nogil JIT is importable
  *and* requested (``REPRO_JIT=1``), because then threads scale without
  any process-tier overhead; otherwise it picks processes, which sidestep
  the GIL entirely for the pure-NumPy kernel.  See
  :func:`resolve_mode`.

Two entry points share one future-based engine (:meth:`ParallelExecutor.run`):

* :meth:`ParallelExecutor.map` — the strict, all-or-raise surface.  Task
  exceptions propagate; a pool that breaks mid-run is **rebuilt and only the
  lost tasks resubmitted** — results that already completed are never
  discarded or recomputed — degrading to in-process execution of the
  *remainder* only if no pool can be rebuilt.
* :meth:`ParallelExecutor.run` — the resilient surface the query drivers
  use.  It returns a :class:`MapOutcome` recording, per task, the result or
  the failure; honours a wall-clock ``deadline`` (seconds); retries failed
  tasks up to ``task_retries`` times; survives up to ``pool_rebuilds`` pool
  breakages (worker death); and supports cooperative cancellation via
  :meth:`ParallelExecutor.cancel`.  It never raises for a lost task — the
  caller decides whether a partial outcome is acceptable (CrashSim's
  Monte-Carlo structure makes any completed-shard prefix a valid, wider-ε
  estimator; see docs/internals.md §9).

``map``/``run`` always index results in task order; the deterministic
seed-shard scheme in :mod:`repro.parallel.runner` relies on that ordering to
sum shard totals identically regardless of scheduling, retries, or losses.

Pools are released deterministically by ``close()`` / the context manager,
and as a backstop by a ``weakref.finalize`` hook so abandoned executors do
not leak worker processes.

Thread safety
-------------
One executor may be shared by many threads issuing :meth:`run` / :meth:`map`
calls concurrently — the query-serving engine keeps a single executor alive
across requests.  The contract:

* every pool-lifecycle transition (build, release, abandon) happens under an
  internal lock, tagged with a monotonically increasing *generation*; a
  breakage observed by several runs at once rebuilds the pool exactly once
  (the run that arrives second sees the newer generation and simply
  resubmits its lost tasks to the already-rebuilt pool);
* each :meth:`run` call owns a private cancellation event;
  :meth:`cancel` cancels every run in flight at that moment and nothing
  else — a later ``run`` starts with a clean slate;
* a run whose deadline expires (or that is cancelled) abandons the shared
  pool only when it is the *sole* run in flight; otherwise it just cancels
  its own pending futures so concurrent runs keep their workers;
* a future orphaned by another thread's ``close()`` surfaces as
  ``CancelledError`` and is treated like a lost task — retried on a fresh
  pool when one is allowed, recorded as an error otherwise.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import weakref
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, TypeVar

from repro import faults, obs
from repro.errors import ParameterError

__all__ = [
    "ParallelExecutor",
    "MapOutcome",
    "RetryBudget",
    "resolve_workers",
    "resolve_mode",
    "get_default_executor",
    "reset_default_executors",
]

#: Accepted values for the ``mode`` parameter.
EXECUTOR_MODES = ("process", "thread", "auto")

# Executor accounting flows through MapOutcome already; run() flushes the
# finished outcome into these process-wide counters in one pass, so the
# dispatch/wait loops stay metric-free.
_M_RUNS = obs.REGISTRY.counter(
    "repro_executor_runs_total", "ParallelExecutor.run calls."
)
_M_TASKS = obs.REGISTRY.counter(
    "repro_executor_tasks_total", "Tasks submitted across all runs."
)
_M_TASKS_COMPLETED = obs.REGISTRY.counter(
    "repro_executor_tasks_completed_total", "Tasks that produced a result."
)
_M_TASK_RETRIES = obs.REGISTRY.counter(
    "repro_executor_task_retries_total",
    "Task resubmissions after a failure or a lost worker.",
)
_M_POOL_REBUILDS = obs.REGISTRY.counter(
    "repro_executor_pool_rebuilds_total",
    "Process-pool rebuilds after worker death.",
)
_M_DEADLINE_EXPIRIES = obs.REGISTRY.counter(
    "repro_executor_deadline_expiries_total",
    "Runs cut off by their wall-clock deadline.",
)
_M_CANCELLED = obs.REGISTRY.counter(
    "repro_executor_cancelled_runs_total", "Runs stopped by cancel()."
)

T = TypeVar("T")
R = TypeVar("R")

#: Default number of times a single failed/lost task is resubmitted.
DEFAULT_TASK_RETRIES = 2

#: Default number of times a broken pool is rebuilt within one run.
DEFAULT_POOL_REBUILDS = 2

#: Hard cap on any single retry-backoff sleep (seconds).
RETRY_BACKOFF_CAP = 2.0

_M_RETRY_BUDGET_EXHAUSTED = obs.REGISTRY.counter(
    "repro_executor_retry_budget_exhausted_total",
    "Resubmissions denied because the retry budget had no tokens.",
)


def retry_delay(base: float, attempt: int, index: int) -> float:
    """Exponential backoff with deterministic jitter for one resubmission.

    ``base * 2**(attempt-1)`` scaled by a jitter factor in ``[1, 2)``
    derived from an integer hash of ``(index, attempt)`` — no RNG, so the
    executor's byte-identity contract is untouched and the same retry
    schedule replays under any scheduling.  Capped at
    :data:`RETRY_BACKOFF_CAP`.
    """
    if base <= 0:
        return 0.0
    jitter = ((index * 2654435761 + attempt * 40503 + 12345) % 1024) / 1024.0
    return min(RETRY_BACKOFF_CAP, base * (2 ** (attempt - 1)) * (1.0 + jitter))


class RetryBudget:
    """A token-style bound on retry amplification across an executor's life.

    Unbounded resubmission turns a sick pool into a retry storm: every
    failing task earns ``task_retries`` more submissions, multiplying load
    exactly when the system can least afford it.  The budget caps the
    *ratio*: each submitted task deposits ``ratio`` tokens (so a healthy
    workload accrues headroom) and each resubmission spends one.  When the
    bucket is empty the task's original error is recorded instead of
    retrying — per-run ``task_retries`` still applies on top.

    Thread-safe; one budget may be shared by every run on an executor
    (that is how :class:`~repro.serve.Engine` uses it).
    """

    def __init__(
        self,
        ratio: float = 0.25,
        min_tokens: int = 16,
        max_tokens: int = 256,
    ):
        if ratio < 0:
            raise ParameterError(f"ratio must be non-negative, got {ratio}")
        if min_tokens < 1:
            raise ParameterError(
                f"min_tokens must be positive, got {min_tokens}"
            )
        if max_tokens < min_tokens:
            raise ParameterError(
                f"max_tokens ({max_tokens}) must be >= min_tokens "
                f"({min_tokens})"
            )
        self.ratio = float(ratio)
        self.min_tokens = int(min_tokens)
        self.max_tokens = int(max_tokens)
        self._tokens = float(min_tokens)
        self._lock = threading.Lock()

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens

    def deposit(self, submitted_tasks: int) -> None:
        """Earn ``ratio`` tokens per task submitted, up to ``max_tokens``."""
        with self._lock:
            self._tokens = min(
                float(self.max_tokens),
                self._tokens + self.ratio * max(0, submitted_tasks),
            )

    def try_spend(self) -> bool:
        """Consume one token for a resubmission; ``False`` when exhausted."""
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``workers`` argument: ``None`` → CPU count, else ≥ 1."""
    if workers is None:
        return max(1, os.cpu_count() or 1)
    workers = int(workers)
    if workers < 1:
        raise ParameterError(f"workers must be positive, got {workers}")
    return workers


def resolve_mode(mode: str) -> str:
    """Resolve ``"auto"`` to a concrete tier; validate explicit choices.

    ``auto`` prefers threads exactly when the nogil JIT step loops are both
    importable and requested (``REPRO_JIT``): compiled ``nogil=True`` shard
    bodies scale across threads with none of the process tier's pickling /
    shared-memory / startup overhead.  Without the JIT the pure-NumPy
    kernel holds the GIL for part of each step, so processes remain the
    safer default for CPU-bound scaling.
    """
    if mode not in EXECUTOR_MODES:
        raise ParameterError(
            f"mode must be one of {', '.join(EXECUTOR_MODES)}; got {mode!r}"
        )
    if mode != "auto":
        return mode
    from repro.walks import _jit

    if _jit.jit_requested() and _jit.available():
        return "thread"
    return "process"


def _preferred_context() -> Optional[multiprocessing.context.BaseContext]:
    # REPRO_START_METHOD forces a specific start method (CI runs the parallel
    # suite under both fork and spawn this way); otherwise prefer fork.
    forced = os.environ.get("REPRO_START_METHOD")
    methods = multiprocessing.get_all_start_methods()
    if forced:
        if forced not in methods:
            raise ParameterError(
                f"REPRO_START_METHOD={forced!r} is not a valid multiprocessing "
                f"start method on this platform; allowed: {', '.join(methods)}"
            )
        return multiprocessing.get_context(forced)
    for method in ("fork", "spawn", "forkserver"):
        if method in methods:
            return multiprocessing.get_context(method)
    return None  # pragma: no cover - every CPython platform has one


def _shutdown_pool(pool) -> None:
    """GC-time backstop: release workers without blocking the collector."""
    pool.shutdown(wait=False, cancel_futures=True)


@dataclass
class MapOutcome:
    """Per-task accounting of one :meth:`ParallelExecutor.run` call.

    ``results[i]`` is meaningful only where ``completed[i]`` is true;
    ``errors[i]`` holds the final exception of a task that exhausted its
    retries (``None`` for tasks that completed or were simply cut off by
    the deadline / cancellation).
    """

    results: List[Any] = field(default_factory=list)
    completed: List[bool] = field(default_factory=list)
    errors: List[Optional[BaseException]] = field(default_factory=list)
    deadline_hit: bool = False
    cancelled: bool = False
    pool_rebuilds: int = 0
    task_retries: int = 0
    elapsed: float = 0.0

    @property
    def all_completed(self) -> bool:
        return all(self.completed)

    @property
    def num_completed(self) -> int:
        return sum(1 for done in self.completed if done)

    def first_error(self) -> Optional[BaseException]:
        """The lowest-indexed recorded task error (deterministic)."""
        for error in self.errors:
            if error is not None:
                return error
        return None


class ParallelExecutor:
    """Run tasks over ``workers`` processes or threads (or serially).

    Parameters
    ----------
    workers:
        Worker count; ``None`` uses the CPU count, ``1`` forces the serial
        in-process path.
    start_method:
        Optional multiprocessing start-method override (``"fork"``,
        ``"spawn"``, ``"forkserver"``); default honours the
        ``REPRO_START_METHOD`` environment variable, then prefers ``fork``.
        Ignored by the thread tier.
    mode:
        ``"process"`` (default, pickling worker functions into a process
        pool), ``"thread"`` (a thread pool in this process; tasks may be
        plain closures and should release the GIL to scale), or ``"auto"``
        (see :func:`resolve_mode`).
    retry_backoff:
        Base (seconds) of the exponential, deterministically-jittered
        sleep before each task resubmission (see :func:`retry_delay`).
        The default ``0.0`` keeps the legacy immediate-retry behaviour.
        Sleeps are clipped to the run's remaining deadline.
    retry_budget:
        Optional shared :class:`RetryBudget` bounding total resubmissions
        across every run on this executor; ``None`` (default) keeps
        retries bounded only by the per-run ``task_retries``.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        start_method: Optional[str] = None,
        mode: str = "process",
        retry_backoff: float = 0.0,
        retry_budget: Optional[RetryBudget] = None,
    ):
        self.workers = resolve_workers(workers)
        self.mode = resolve_mode(mode)
        if retry_backoff < 0:
            raise ParameterError(
                f"retry_backoff must be non-negative, got {retry_backoff}"
            )
        self.retry_backoff = float(retry_backoff)
        self.retry_budget = retry_budget
        self._run_ordinal = 0
        self._start_method = start_method
        self._pool = None  # ProcessPoolExecutor | ThreadPoolExecutor | None
        self._finalizer: Optional[weakref.finalize] = None
        # Pool lifecycle is shared mutable state; every transition happens
        # under this lock and bumps the generation so concurrent runs can
        # tell "the pool I submitted to broke" from "someone already
        # rebuilt it for me".
        self._lock = threading.RLock()
        self._generation = 0
        self._active_cancel_events: set = set()
        self._active_runs = 0
        self._pool_disabled = self.workers <= 1
        self._context = None
        if not self._pool_disabled:
            if self.mode == "process":
                # Context resolution validates REPRO_START_METHOD /
                # start_method eagerly — a typo must surface as
                # ParameterError, not silently degrade to serial execution.
                self._context = (
                    multiprocessing.get_context(start_method)
                    if start_method
                    else _preferred_context()
                )
            self._build_pool()

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------

    def _build_pool(self) -> bool:
        """(Re)create the worker pool; returns whether one is available."""
        with self._lock:
            if self._pool_disabled:
                return False
            if self.mode == "thread":
                pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="repro-exec"
                )
            else:
                try:
                    pool = ProcessPoolExecutor(
                        max_workers=self.workers, mp_context=self._context
                    )
                except (OSError, ValueError, ImportError):  # pragma: no cover
                    self._pool_disabled = True  # sandboxed platform: go serial
                    self._pool = None
                    return False
            self._pool = pool
            self._generation += 1
            # Backstop for callers that skip the context manager: release
            # the workers when the executor is collected.  The callback must
            # not reference ``self`` or the executor would never be
            # collected.
            self._finalizer = weakref.finalize(self, _shutdown_pool, pool)
            return True

    def _ensure_pool(self) -> Optional[ProcessPoolExecutor]:
        """The live pool, rebuilding a previously abandoned one if needed."""
        with self._lock:
            if self._pool is None and not self._pool_disabled:
                self._build_pool()
            return self._pool

    def _pool_and_generation(self):
        with self._lock:
            self._ensure_pool()
            return self._pool, self._generation

    def _release_pool(self, wait_for_workers: bool) -> None:
        with self._lock:
            if self._finalizer is not None:
                self._finalizer.detach()
                self._finalizer = None
            pool, self._pool = self._pool, None
            self._generation += 1
        if pool is not None:
            pool.shutdown(wait=wait_for_workers, cancel_futures=True)

    def _handle_breakage(self, seen_generation: int) -> None:
        """Rebuild the pool after a breakage, at most once per generation.

        Several concurrent runs may observe the same broken pool; the first
        one through releases and rebuilds it, later arrivals see a newer
        generation and leave the fresh pool alone.
        """
        with self._lock:
            if self._generation != seen_generation:
                return  # somebody already replaced (or closed) that pool
            self._release_pool(wait_for_workers=False)
            self._build_pool()

    def _abandon_pool_if_sole(self) -> None:
        """Drop a pool whose workers may still be running (deadline path).

        ``shutdown(wait=False)`` signals the workers and returns
        immediately; a shard that is mid-sleep keeps its doomed process
        alive briefly but the query returns now.  The next ``run``/``map``
        builds a fresh pool.  When *other* runs share this executor the
        pool is left alone — their shards are still executing in it — and
        only this run's pending futures are cancelled by the caller.
        """
        with self._lock:
            if self._active_runs > 1:
                return
            self._release_pool(wait_for_workers=False)

    @property
    def serial(self) -> bool:
        """Whether tasks currently run in-process (no pool)."""
        return self._pool is None

    @property
    def uses_processes(self) -> bool:
        """True when tasks cross a process boundary (must be picklable)."""
        return not self.serial and self.mode == "process"

    @property
    def uses_threads(self) -> bool:
        """True when tasks run on a thread pool in this process."""
        return not self.serial and self.mode == "thread"

    @property
    def mode_label(self) -> str:
        """The tier actually executing tasks: serial, thread, or process."""
        return "serial" if self.serial else self.mode

    def close(self) -> None:
        """Shut the pool down (idempotent); the executor turns serial."""
        with self._lock:
            self._pool_disabled = True
        self._release_pool(wait_for_workers=True)

    def cancel(self) -> None:
        """Cooperatively cancel every in-flight :meth:`run` (thread-safe).

        Each running call stops dispatching new work, abandons unfinished
        shards, and returns a partial :class:`MapOutcome` with
        ``cancelled=True``.  Completed task results are kept.  Runs started
        *after* this call are unaffected — cancellation is not sticky.
        """
        with self._lock:
            events = list(self._active_cancel_events)
        for event in events:
            event.set()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def map(self, fn: Callable[[T], R], tasks: Iterable[T]) -> List[R]:
        """Apply ``fn`` to every task, returning results in task order.

        Strict surface: a task exception that survives the default retry
        budget is re-raised.  A pool breakage triggers a rebuild and
        resubmission of **only** the lost tasks; completed results are
        never discarded or recomputed.  If no pool can be rebuilt, just
        the unfinished remainder runs serially in-process.
        """
        task_list: Sequence[T] = list(tasks)
        if self._ensure_pool() is None:
            return [fn(task) for task in task_list]
        outcome = self.run(fn, task_list)
        error = outcome.first_error()
        if error is not None and not isinstance(error, BrokenProcessPool):
            raise error
        if outcome.all_completed:
            return outcome.results
        # Pool irrecoverably broken: finish the remainder in-process.
        results = list(outcome.results)
        for index, done in enumerate(outcome.completed):
            if not done:
                results[index] = fn(task_list[index])
        return results

    def run(
        self,
        fn: Callable[[T], R],
        tasks: Iterable[T],
        *,
        deadline: Optional[float] = None,
        task_retries: int = DEFAULT_TASK_RETRIES,
        pool_rebuilds: int = DEFAULT_POOL_REBUILDS,
    ) -> MapOutcome:
        """Resilient map: per-task futures, bounded retry, wall-clock budget.

        Parameters
        ----------
        fn, tasks:
            As :meth:`map`; ``fn`` must be a module-level callable with
            picklable arguments when a pool is used.
        deadline:
            Wall-clock budget in seconds for the whole call.  When it
            elapses, pending tasks are cancelled, running ones abandoned
            (their pool is dropped and rebuilt lazily), and the outcome
            reports ``deadline_hit=True`` with whatever completed.  The
            serial path checks the clock *between* tasks (cooperative).
        task_retries:
            How many times one task is resubmitted after raising or being
            lost to a broken pool, before its error is recorded.
        pool_rebuilds:
            How many pool breakages (worker death) one call survives.
            Each breakage rebuilds the pool and resubmits only the tasks
            that were in flight or queued; completed results are kept.

        Never raises for task failures — inspect the returned
        :class:`MapOutcome`.
        """
        if deadline is not None and deadline <= 0:
            raise ParameterError(f"deadline must be positive, got {deadline}")
        task_list: Sequence[T] = list(tasks)
        n = len(task_list)
        outcome = MapOutcome(
            results=[None] * n, completed=[False] * n, errors=[None] * n
        )
        started = time.monotonic()
        deadline_at = None if deadline is None else started + deadline
        with self._lock:
            run_ordinal = self._run_ordinal
            self._run_ordinal += 1
        if self.retry_budget is not None:
            self.retry_budget.deposit(n)
        # Chaos site, indexed by this executor's run ordinal.  The stall is
        # charged against the deadline (deadline_at is already fixed), so a
        # "delay" here deterministically turns the run into a deadline
        # expiry — how the serve suite trips the engine's circuit breaker.
        faults.inject("executor_stall", run_ordinal)
        # Each run owns its cancellation event; cancel() snapshots the set
        # of live runs, so concurrent runs never clear each other's flag.
        cancel_event = threading.Event()
        with self._lock:
            self._active_cancel_events.add(cancel_event)
            self._active_runs += 1

        def out_of_time() -> bool:
            return deadline_at is not None and time.monotonic() >= deadline_at

        try:
            pool = self._ensure_pool()
            if pool is None:
                self._run_serial(
                    fn, task_list, outcome, deadline_at, out_of_time,
                    task_retries, cancel_event,
                )
            else:
                self._run_pooled(
                    fn,
                    task_list,
                    outcome,
                    deadline_at,
                    out_of_time,
                    task_retries,
                    pool_rebuilds,
                    cancel_event,
                )
        finally:
            with self._lock:
                self._active_cancel_events.discard(cancel_event)
                self._active_runs -= 1
        outcome.elapsed = time.monotonic() - started
        # Flush once, twice per family: the bare parent keeps the
        # cross-tier total and the mode-labelled child records which tier
        # (serial / thread / process) actually served the run.
        mode = self.mode_label
        _M_RUNS.inc()
        _M_RUNS.labels(mode=mode).inc()
        _M_TASKS.inc(n)
        _M_TASKS.labels(mode=mode).inc(n)
        _M_TASKS_COMPLETED.inc(outcome.num_completed)
        _M_TASKS_COMPLETED.labels(mode=mode).inc(outcome.num_completed)
        _M_TASK_RETRIES.inc(outcome.task_retries)
        _M_TASK_RETRIES.labels(mode=mode).inc(outcome.task_retries)
        _M_POOL_REBUILDS.inc(outcome.pool_rebuilds)
        _M_POOL_REBUILDS.labels(mode=mode).inc(outcome.pool_rebuilds)
        if outcome.deadline_hit:
            _M_DEADLINE_EXPIRIES.inc()
            _M_DEADLINE_EXPIRIES.labels(mode=mode).inc()
        if outcome.cancelled:
            _M_CANCELLED.inc()
            _M_CANCELLED.labels(mode=mode).inc()
        return outcome

    # -- retry policy ----------------------------------------------------

    def _may_retry(self) -> bool:
        """Charge one resubmission to the shared budget (if any)."""
        if self.retry_budget is None:
            return True
        if self.retry_budget.try_spend():
            return True
        _M_RETRY_BUDGET_EXHAUSTED.inc()
        return False

    def _backoff(self, index: int, attempt: int, deadline_at: Optional[float]) -> None:
        """Sleep the deterministic backoff, clipped to the run's deadline."""
        delay = retry_delay(self.retry_backoff, attempt, index)
        if delay <= 0:
            return
        if deadline_at is not None:
            delay = min(delay, max(0.0, deadline_at - time.monotonic()))
        if delay > 0:
            time.sleep(delay)

    # -- serial engine --------------------------------------------------

    def _run_serial(
        self,
        fn: Callable[[T], R],
        task_list: Sequence[T],
        outcome: MapOutcome,
        deadline_at: Optional[float],
        out_of_time: Callable[[], bool],
        task_retries: int,
        cancel_event: threading.Event,
    ) -> None:
        for index, task in enumerate(task_list):
            if cancel_event.is_set():
                outcome.cancelled = True
                return
            if out_of_time():
                outcome.deadline_hit = True
                return
            attempts = 0
            while True:
                try:
                    outcome.results[index] = fn(task)
                    outcome.completed[index] = True
                    break
                except Exception as exc:
                    attempts += 1
                    if attempts > task_retries or not self._may_retry():
                        outcome.errors[index] = exc
                        break
                    outcome.task_retries += 1
                    obs.event("retry", task=index, attempt=attempts)
                    self._backoff(index, attempts, deadline_at)
                    if out_of_time():
                        outcome.errors[index] = exc
                        outcome.deadline_hit = True
                        return

    # -- pooled engine --------------------------------------------------

    def _run_pooled(
        self,
        fn: Callable[[T], R],
        task_list: Sequence[T],
        outcome: MapOutcome,
        deadline_at: Optional[float],
        out_of_time: Callable[[], bool],
        task_retries: int,
        pool_rebuilds: int,
        cancel_event: threading.Event,
    ) -> None:
        attempts = [0] * len(task_list)
        pending = {}  # future -> (task index, pool generation at submit)

        def submit(index: int) -> bool:
            pool, generation = self._pool_and_generation()
            if pool is None:
                return False
            try:
                pending[pool.submit(fn, task_list[index])] = (index, generation)
                return True
            except (BrokenProcessPool, RuntimeError):
                return False

        submitted = 0
        for index in range(len(task_list)):
            if not submit(index):
                # Pool died before dispatch finished; the wait loop below
                # will account for whatever made it in.
                break
            submitted += 1
        if submitted < len(task_list):
            for index in range(submitted, len(task_list)):
                outcome.errors[index] = BrokenProcessPool(
                    "process pool unavailable at submission"
                )

        while pending:
            if cancel_event.is_set():
                outcome.cancelled = True
                break
            timeout = (
                None
                if deadline_at is None
                else max(0.0, deadline_at - time.monotonic())
            )
            done, _ = wait(set(pending), timeout=timeout, return_when=FIRST_COMPLETED)
            if not done:
                outcome.deadline_hit = True
                break
            broken_generations: List[int] = []
            resubmit: List[int] = []
            lost: List[int] = []
            for future in done:
                index, generation = pending.pop(future)
                try:
                    outcome.results[index] = future.result()
                    outcome.completed[index] = True
                except (BrokenProcessPool, CancelledError):
                    # CancelledError: another thread closed or abandoned
                    # the pool under us — same recovery as a breakage.
                    broken_generations.append(generation)
                    lost.append(index)
                except Exception as exc:
                    attempts[index] += 1
                    if attempts[index] > task_retries or not self._may_retry():
                        outcome.errors[index] = exc
                    else:
                        outcome.task_retries += 1
                        obs.event("retry", task=index, attempt=attempts[index])
                        resubmit.append(index)
            if broken_generations:
                # Every sibling future submitted to the same pool is doomed
                # with it; fold those into the lost set so one breakage is
                # handled once.  Futures already resubmitted to a *newer*
                # pool are left pending.
                doomed = set(broken_generations)
                for future, (index, generation) in list(pending.items()):
                    if generation in doomed:
                        lost.append(index)
                        del pending[future]
                for generation in sorted(doomed):
                    self._handle_breakage(generation)
                outcome.pool_rebuilds += 1
                if (
                    outcome.pool_rebuilds > pool_rebuilds
                    or self._ensure_pool() is None
                ):
                    for index in sorted(lost + resubmit):
                        outcome.errors[index] = BrokenProcessPool(
                            "process pool broke and the rebuild budget "
                            f"({pool_rebuilds}) is exhausted"
                        )
                    break
                # A lost task is charged an attempt: a shard that kills its
                # worker every time must not break pools forever.
                for index in sorted(lost):
                    attempts[index] += 1
                    if attempts[index] > task_retries or not self._may_retry():
                        outcome.errors[index] = BrokenProcessPool(
                            f"task {index} lost to {attempts[index]} pool breakages"
                        )
                    else:
                        resubmit.append(index)
            if (pending or resubmit) and out_of_time():
                outcome.deadline_hit = True
                break
            for index in sorted(resubmit):
                self._backoff(index, attempts[index], deadline_at)
                if out_of_time():
                    # The budget ran out mid-backoff; whatever was not
                    # resubmitted is simply cut off, like any other
                    # deadline expiry.
                    outcome.deadline_hit = True
                    break
                if not submit(index):
                    outcome.errors[index] = BrokenProcessPool(
                        "process pool unavailable for retry"
                    )

        if pending or outcome.deadline_hit or outcome.cancelled:
            for future in pending:
                future.cancel()
            # Workers may still be executing abandoned shards; drop the
            # pool without waiting so the caller gets its partial result
            # inside the budget — unless other runs share this executor,
            # in which case their shards keep the pool.  The next run()
            # rebuilds lazily.
            self._abandon_pool_if_sole()

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ParallelExecutor(workers={self.workers}, "
            f"mode={self.mode_label})"
        )


# ----------------------------------------------------------------------
# Process-wide default executors
# ----------------------------------------------------------------------
#
# ``parallel_crashsim`` and friends used to build a fresh ParallelExecutor
# per call when none was passed in — paying pool startup (tens to hundreds
# of milliseconds for processes) on every query.  The default-executor
# registry amortises that: one lazily-built executor per
# (workers, resolved mode, start-method) key, shared by every driver call
# in the process.  Teardown rides the executors' own ``weakref.finalize``
# pool backstops, which the interpreter runs at exit for anything still
# registered here.

_DEFAULT_EXECUTORS: Dict[tuple, ParallelExecutor] = {}
_DEFAULT_EXECUTORS_LOCK = threading.Lock()


def get_default_executor(
    workers: Optional[int] = None, *, mode: str = "auto"
) -> ParallelExecutor:
    """The process-wide shared executor for ``(workers, mode)``.

    Built lazily on first use and kept for the life of the process, so
    repeated ``parallel_*`` calls (and ``api.single_source(workers=...)``)
    reuse one warm pool instead of paying pool construction per query.
    Callers must **not** close the returned executor; use
    :func:`reset_default_executors` (tests, fault plans) to drop and
    rebuild the registry.

    The cache key includes the *resolved* mode (``auto`` collapses to
    thread/process via :func:`resolve_mode`) and the current
    ``REPRO_START_METHOD``, so flipping either in the environment yields a
    fresh, matching executor rather than a stale cached one.
    """
    resolved_workers = resolve_workers(workers)
    resolved_mode = resolve_mode(mode)
    key = (
        resolved_workers,
        resolved_mode,
        os.environ.get("REPRO_START_METHOD"),
    )
    with _DEFAULT_EXECUTORS_LOCK:
        executor = _DEFAULT_EXECUTORS.get(key)
        stale = executor is not None and (
            executor._pool_disabled and resolved_workers > 1
        )
        if executor is None or stale:
            executor = ParallelExecutor(resolved_workers, mode=resolved_mode)
            _DEFAULT_EXECUTORS[key] = executor
        return executor


def reset_default_executors() -> None:
    """Close and forget every shared default executor (idempotent).

    Needed wherever pool inheritance matters: fault-injection plans set
    environment variables that **forked/spawned workers read at pool
    creation**, so a pool that predates the plan would never see it.
    :func:`repro.faults.active` calls this on entry and exit.
    """
    with _DEFAULT_EXECUTORS_LOCK:
        executors = list(_DEFAULT_EXECUTORS.values())
        _DEFAULT_EXECUTORS.clear()
    for executor in executors:
        executor.close()
