"""Process-pool execution with a serial in-process fallback.

:class:`ParallelExecutor` is the one place worker processes are created.
Policy:

* ``workers=1`` (or a platform where process pools cannot start) runs every
  task in-process, in order — the *same* shard decomposition as the
  parallel path, so results are bit-identical at any worker count;
* otherwise a ``concurrent.futures.ProcessPoolExecutor`` is used, preferring
  the cheap ``fork`` start method where available and falling back to
  ``spawn``.  Worker functions must therefore be importable module-level
  callables with picklable arguments (shard tasks carry shared-memory specs,
  not graphs).
* a pool that breaks mid-run (or cannot start workers at all) degrades to
  the serial path rather than failing the query — parallelism here is an
  optimisation, never a semantic switch.

``map`` always returns results in task order; the deterministic seed-shard
scheme in :mod:`repro.parallel.runner` relies on that ordering to sum shard
totals identically regardless of scheduling.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.errors import ParameterError

__all__ = ["ParallelExecutor", "resolve_workers"]

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``workers`` argument: ``None`` → CPU count, else ≥ 1."""
    if workers is None:
        return max(1, os.cpu_count() or 1)
    workers = int(workers)
    if workers < 1:
        raise ParameterError(f"workers must be positive, got {workers}")
    return workers


def _preferred_context() -> Optional[multiprocessing.context.BaseContext]:
    # REPRO_START_METHOD forces a specific start method (CI runs the parallel
    # suite under both fork and spawn this way); otherwise prefer fork.
    forced = os.environ.get("REPRO_START_METHOD")
    if forced:
        return multiprocessing.get_context(forced)
    methods = multiprocessing.get_all_start_methods()
    for method in ("fork", "spawn", "forkserver"):
        if method in methods:
            return multiprocessing.get_context(method)
    return None  # pragma: no cover - every CPython platform has one


class ParallelExecutor:
    """Run picklable tasks over ``workers`` processes (or serially).

    Parameters
    ----------
    workers:
        Process count; ``None`` uses the CPU count, ``1`` forces the serial
        in-process path.
    start_method:
        Optional multiprocessing start-method override (``"fork"``,
        ``"spawn"``, ``"forkserver"``); default honours the
        ``REPRO_START_METHOD`` environment variable, then prefers ``fork``.
    """

    def __init__(self, workers: Optional[int] = None, *, start_method: Optional[str] = None):
        self.workers = resolve_workers(workers)
        self._pool: Optional[ProcessPoolExecutor] = None
        if self.workers > 1:
            try:
                context = (
                    multiprocessing.get_context(start_method)
                    if start_method
                    else _preferred_context()
                )
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=context
                )
            except (OSError, ValueError, ImportError):  # pragma: no cover
                self._pool = None  # sandboxed / esoteric platform: go serial

    @property
    def serial(self) -> bool:
        """Whether tasks run in-process (no pool)."""
        return self._pool is None

    def map(self, fn: Callable[[T], R], tasks: Iterable[T]) -> List[R]:
        """Apply ``fn`` to every task, returning results in task order."""
        task_list: Sequence[T] = list(tasks)
        if self._pool is not None:
            try:
                return list(self._pool.map(fn, task_list))
            except BrokenProcessPool:  # pragma: no cover - resource limits
                self.close()
        return [fn(task) for task in task_list]

    def close(self) -> None:
        """Shut the pool down (idempotent); the executor turns serial."""
        if self._pool is not None:
            pool, self._pool = self._pool, None
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        mode = "serial" if self.serial else "process-pool"
        return f"ParallelExecutor(workers={self.workers}, mode={mode})"
