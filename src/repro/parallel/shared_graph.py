"""Zero-copy graph publication over ``multiprocessing.shared_memory``.

Shipping a 50k-node graph to a process pool by pickling it per task costs
more than the task itself: the CSR arrays are megabytes and every worker
re-deserialises them.  :class:`SharedGraph` instead copies the in-CSR arrays
(**once**) into named shared-memory segments; workers attach by name and map
the same physical pages, so per-task transfer shrinks to a few strings.

Two layers:

* :class:`SharedArray` — one NumPy array in one shared-memory segment, with
  a picklable :class:`ArraySpec` handle that any process can
  :func:`attach_array` to.
* :class:`SharedGraph` — the walk-facing arrays of a :class:`DiGraph`
  (``in_indptr``, ``in_indices``, and ``in_weights`` when present)
  published together; :func:`attach_graph` reconstructs a
  :class:`CsrGraphView` that quacks like a ``DiGraph`` for everything the
  walk engine and revReach touch.
* :class:`SharedTree` — the three packed arrays of a
  :class:`~repro.core.revreach.SparseReverseTree` (``level_indptr``,
  ``nodes``, ``probs``) published the same way; :func:`attach_tree`
  reconstructs a real ``SparseReverseTree`` over the shared pages, so a
  trial shard ships ``O(touched)`` bytes instead of the dense
  ``O(l_max · n)`` matrix.

Lifetime rules (see docs/internals.md):

* the **creator** owns the segments — ``close()`` (or the context manager)
  unlinks them; nothing is cleaned up implicitly while workers may still be
  attached, so close only after the pool has drained;
* **attachers** must keep their handle alive while NumPy views exist
  (:class:`CsrGraphView` holds them) and ``close()`` without unlinking;
* pool workers share the parent's resource tracker (multiprocessing passes
  the tracker fd down), so the attach-side registration CPython performs on
  POSIX is idempotent here and the creator's ``unlink()`` settles the
  books.  Attaching from a *foreign* process tree (not one of this
  process's workers) is outside the contract — its own tracker would
  unlink the segment when that process exits (CPython issue bpo-38119).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import List, Optional, Tuple

import numpy as np

from repro.core.revreach import SparseReverseTree
from repro.errors import GraphError
from repro.graph.digraph import DiGraph, build_alias_tables

__all__ = [
    "ArraySpec",
    "SharedArray",
    "SharedGraphSpec",
    "SharedGraph",
    "SharedTreeSpec",
    "SharedTree",
    "CsrGraphView",
    "attach_array",
    "attach_graph",
    "attach_tree",
]


@dataclass(frozen=True)
class ArraySpec:
    """Picklable handle for one shared array: segment name, dtype, shape."""

    name: str
    dtype: str
    shape: Tuple[int, ...]

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape)))


class SharedArray:
    """A NumPy array copied once into a named shared-memory segment.

    Created by the publishing process; ``spec`` travels to workers (it is a
    tiny picklable dataclass) and :func:`attach_array` maps the same pages.
    """

    def __init__(self, array: np.ndarray, *, name: Optional[str] = None):
        array = np.ascontiguousarray(array)
        if array.nbytes == 0:
            # shared_memory rejects zero-byte segments; keep a one-byte
            # placeholder so empty graphs round-trip uniformly.
            nbytes = 1
        else:
            nbytes = array.nbytes
        name = name or f"repro-{secrets.token_hex(8)}"
        self._shm = shared_memory.SharedMemory(create=True, size=nbytes, name=name)
        self.spec = ArraySpec(
            name=self._shm.name, dtype=array.dtype.str, shape=tuple(array.shape)
        )
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=self._shm.buf)
        view[...] = array
        self._closed = False

    def array(self) -> np.ndarray:
        """The creator-side view of the shared buffer."""
        if self._closed:
            raise GraphError("shared array already closed")
        return np.ndarray(
            self.spec.shape, dtype=np.dtype(self.spec.dtype), buffer=self._shm.buf
        )

    def close(self) -> None:
        """Release and unlink the segment (creator side, idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def attach_array(spec: ArraySpec) -> Tuple[np.ndarray, shared_memory.SharedMemory]:
    """Map a published array; returns ``(view, handle)``.

    The caller must keep ``handle`` alive while ``view`` is used and call
    ``handle.close()`` afterwards (never ``unlink`` — the creator owns the
    segment).
    """
    handle = shared_memory.SharedMemory(name=spec.name)
    view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=handle.buf)
    return view, handle


@dataclass(frozen=True)
class SharedGraphSpec:
    """Everything a worker needs to reattach a published graph."""

    num_nodes: int
    in_indptr: ArraySpec
    in_indices: ArraySpec
    in_weights: Optional[ArraySpec]
    alias_prob: Optional[ArraySpec] = None
    alias_alias: Optional[ArraySpec] = None


class CsrGraphView:
    """Walk-facing stand-in for :class:`DiGraph` over attached CSR arrays.

    Implements exactly the protocol the batch walk engine, revReach, and
    the crash accumulator consume: ``num_nodes``, ``in_indptr``,
    ``in_indices``, ``in_degrees()``, ``is_weighted`` / ``in_weights``, and
    ``in_weight_totals()``.  Out-adjacency is deliberately absent — no
    Monte-Carlo path reads it, and publishing it would double the shared
    footprint for nothing.
    """

    def __init__(
        self,
        num_nodes: int,
        in_indptr: np.ndarray,
        in_indices: np.ndarray,
        in_weights: Optional[np.ndarray] = None,
        handles: Tuple[shared_memory.SharedMemory, ...] = (),
        alias_tables: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ):
        self.num_nodes = int(num_nodes)
        self._in_indptr = in_indptr
        self._in_indices = in_indices
        self._in_weights = in_weights
        self._handles = tuple(handles)
        self._closed = False
        self._in_degrees64: Optional[np.ndarray] = None
        self._alias_tables = alias_tables

    @property
    def in_indptr(self) -> np.ndarray:
        return self._in_indptr

    @property
    def in_indices(self) -> np.ndarray:
        return self._in_indices

    @property
    def is_weighted(self) -> bool:
        return self._in_weights is not None

    @property
    def in_weights(self) -> np.ndarray:
        if self._in_weights is None:
            raise GraphError("graph is unweighted; check is_weighted first")
        return self._in_weights

    def in_degrees(self) -> np.ndarray:
        return np.diff(self._in_indptr)

    def in_degrees64(self) -> np.ndarray:
        """Cached int64 in-degrees, mirroring ``DiGraph.in_degrees64``."""
        if self._in_degrees64 is None:
            degrees = np.diff(self._in_indptr).astype(np.int64, copy=False)
            degrees.setflags(write=False)
            self._in_degrees64 = degrees
        return self._in_degrees64

    def in_alias_tables(self) -> Tuple[np.ndarray, np.ndarray]:
        """Alias tables: the zero-copy published pair when the creator
        shipped one, otherwise built locally (bit-identical either way —
        :func:`~repro.graph.digraph.build_alias_tables` is deterministic)."""
        if self._in_weights is None:
            raise GraphError("graph is unweighted; check is_weighted first")
        if self._alias_tables is None:
            self._alias_tables = build_alias_tables(
                self._in_indptr, self._in_weights, self.in_weight_totals()
            )
        return self._alias_tables

    def in_degree(self, node: int) -> int:
        return int(self._in_indptr[node + 1] - self._in_indptr[node])

    def in_neighbors(self, node: int) -> np.ndarray:
        return self._in_indices[self._in_indptr[node] : self._in_indptr[node + 1]]

    def in_weight_totals(self) -> np.ndarray:
        # Mirrors DiGraph.in_weight_totals operation-for-operation so the
        # floating-point results are bit-identical to the original graph's —
        # the parallel determinism guarantee depends on it.
        if self._in_weights is None:
            return self.in_degrees().astype(np.float64)
        totals = np.zeros(self.num_nodes, dtype=np.float64)
        np.add.at(
            totals,
            np.repeat(np.arange(self.num_nodes), np.diff(self._in_indptr)),
            self._in_weights,
        )
        return totals

    def __len__(self) -> int:
        return self.num_nodes

    def close(self) -> None:
        """Detach from the shared segments (attacher side, idempotent)."""
        if self._closed:
            return
        self._closed = True
        for handle in self._handles:
            try:
                handle.close()
            except Exception:  # pragma: no cover - defensive
                pass

    def __enter__(self) -> "CsrGraphView":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SharedGraph:
    """Publish a :class:`DiGraph`'s in-CSR arrays for worker processes.

    Usage::

        with SharedGraph(graph) as shared:
            tasks = [make_task(shared.spec(), ...) for ...]
            results = executor.map(worker, tasks)   # workers attach_graph()
        # segments unlinked here, after the pool drained
    """

    def __init__(self, graph: DiGraph, *, publish_alias: bool = False):
        self.num_nodes = graph.num_nodes
        self._arrays: List[SharedArray] = []
        try:
            indptr = SharedArray(graph.in_indptr)
            self._arrays.append(indptr)
            indices = SharedArray(graph.in_indices)
            self._arrays.append(indices)
            weights: Optional[SharedArray] = None
            if graph.is_weighted:
                weights = SharedArray(graph.in_weights)
                self._arrays.append(weights)
            alias_prob: Optional[SharedArray] = None
            alias_alias: Optional[SharedArray] = None
            if publish_alias and graph.is_weighted:
                # Build (or reuse the graph's cached) tables once on the
                # creator; workers map the same pages instead of each
                # re-running the O(m) Vose construction.
                prob, alias = graph.in_alias_tables()
                alias_prob = SharedArray(prob)
                self._arrays.append(alias_prob)
                alias_alias = SharedArray(alias)
                self._arrays.append(alias_alias)
        except Exception:
            self.close()
            raise
        self._spec = SharedGraphSpec(
            num_nodes=graph.num_nodes,
            in_indptr=indptr.spec,
            in_indices=indices.spec,
            in_weights=weights.spec if weights is not None else None,
            alias_prob=alias_prob.spec if alias_prob is not None else None,
            alias_alias=alias_alias.spec if alias_alias is not None else None,
        )

    def spec(self) -> SharedGraphSpec:
        """The picklable attach handle to ship with each task."""
        return self._spec

    def view(self) -> CsrGraphView:
        """A creator-side view over the published arrays (no extra handles)."""
        weights = None
        if self._spec.in_weights is not None:
            weights = self._arrays[2].array()
        alias_tables = None
        if self._spec.alias_prob is not None:
            alias_tables = (self._arrays[3].array(), self._arrays[4].array())
        return CsrGraphView(
            self.num_nodes,
            self._arrays[0].array(),
            self._arrays[1].array(),
            weights,
            alias_tables=alias_tables,
        )

    def close(self) -> None:
        """Unlink every segment (idempotent).  Call after workers finish."""
        for array in self._arrays:
            array.close()

    def __enter__(self) -> "SharedGraph":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass(frozen=True)
class SharedTreeSpec:
    """Everything a worker needs to reattach a published sparse tree."""

    source: int
    c: float
    l_max: int
    variant: str
    num_nodes: int
    level_indptr: ArraySpec
    nodes: ArraySpec
    probs: ArraySpec


class SharedTree:
    """Publish a :class:`SparseReverseTree`'s packed arrays for workers.

    Same lifetime rules as :class:`SharedGraph`: the creator owns the
    segments and must ``close()`` only after the pool has drained; workers
    :func:`attach_tree` and close their view when done.
    """

    def __init__(self, tree: SparseReverseTree):
        self._meta = (tree.source, tree.c, tree.l_max, tree.variant, tree.num_nodes)
        self._arrays: List[SharedArray] = []
        try:
            for array in (tree.level_indptr, tree.nodes, tree.probs):
                self._arrays.append(SharedArray(array))
        except Exception:
            self.close()
            raise
        self._spec = SharedTreeSpec(
            source=tree.source,
            c=tree.c,
            l_max=tree.l_max,
            variant=tree.variant,
            num_nodes=tree.num_nodes,
            level_indptr=self._arrays[0].spec,
            nodes=self._arrays[1].spec,
            probs=self._arrays[2].spec,
        )

    def spec(self) -> SharedTreeSpec:
        """The picklable attach handle to ship with each task."""
        return self._spec

    def close(self) -> None:
        """Unlink every segment (idempotent).  Call after workers finish."""
        for array in self._arrays:
            array.close()

    def __enter__(self) -> "SharedTree":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def attach_tree(
    spec: SharedTreeSpec,
) -> Tuple[SparseReverseTree, Tuple[shared_memory.SharedMemory, ...]]:
    """Attach to a published tree; returns ``(tree, handles)``.

    The caller must keep ``handles`` alive while the tree is used and close
    them afterwards (never ``unlink`` — the creator owns the segments).
    The reconstructed tree's fingerprints and dense caches start empty;
    shard workers only ever call ``gather``, which touches neither.
    """
    views = []
    handles = []
    try:
        for array_spec in (spec.level_indptr, spec.nodes, spec.probs):
            view, handle = attach_array(array_spec)
            views.append(view)
            handles.append(handle)
    except Exception:
        for handle in handles:
            handle.close()
        raise
    tree = SparseReverseTree(
        source=spec.source,
        c=spec.c,
        l_max=spec.l_max,
        variant=spec.variant,
        num_nodes=spec.num_nodes,
        level_indptr=views[0],
        nodes=views[1],
        probs=views[2],
    )
    return tree, tuple(handles)


def attach_graph(spec: SharedGraphSpec) -> CsrGraphView:
    """Attach to a published graph; the view owns (and closes) the handles."""
    views = []
    handles = []
    try:
        for array_spec in (spec.in_indptr, spec.in_indices):
            view, handle = attach_array(array_spec)
            views.append(view)
            handles.append(handle)
        weights = None
        if spec.in_weights is not None:
            weights, handle = attach_array(spec.in_weights)
            handles.append(handle)
        alias_tables = None
        if spec.alias_prob is not None and spec.alias_alias is not None:
            prob_view, handle = attach_array(spec.alias_prob)
            handles.append(handle)
            alias_view, handle = attach_array(spec.alias_alias)
            handles.append(handle)
            alias_tables = (prob_view, alias_view)
    except Exception:
        for handle in handles:
            handle.close()
        raise
    return CsrGraphView(
        spec.num_nodes,
        views[0],
        views[1],
        weights,
        handles=tuple(handles),
        alias_tables=alias_tables,
    )
