"""Parallel snapshot evaluation for temporal SimRank queries.

Algorithm 3 is sequential by construction: ``Ω`` shrinks from snapshot to
snapshot and the pruning gates carry *previous* estimates forward.  But the
expensive part — a full single-source CrashSim per snapshot — does not
depend on ``Ω`` at all when pruning is disabled: snapshot ``i``'s scores are
a function of ``(G_i, u, seed_i)`` only.  :func:`parallel_crashsim_t`
exploits exactly that split:

1. every snapshot in the interval is scored **concurrently** (each with its
   own spawned seed, so results are worker-count independent);
2. the Ω-shrinking pass — ``initial_mask`` then ``step_mask`` per
   transition — is replayed **sequentially** over the precomputed score
   vectors, preserving Algorithm 3's query semantics bit-for-bit given the
   same per-snapshot scores.

Compared to :func:`repro.core.crashsim_t.crashsim_t` this trades the
pruning properties (which *reuse* previous estimates and are inherently
order-dependent) for snapshot-level parallelism; it is the right driver
when snapshots mostly differ (pruning rarely fires) or when cores are
plentiful.  Snapshots after the point where ``Ω`` empties are computed
speculatively — the wall-clock cost of that waste is hidden by the
parallelism that made it possible.

Unlike :func:`parallel_crashsim` — which builds the source tree once and
ships it to shard workers via :class:`~repro.parallel.shared_graph.SharedTree`
— each snapshot worker here builds its own :class:`SparseReverseTree`
in-process: every snapshot is a different graph, so there is nothing to
share, and the sparse build is ``O(support)`` (docs/internals.md §8).
"""

from __future__ import annotations

import logging
import time
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import faults, obs
from repro.core.crashsim import crashsim
from repro.core.crashsim_t import CrashSimTStats, TemporalQueryResult
from repro.core.params import CrashSimParams
from repro.core.queries import TemporalQuery
from repro.errors import (
    DeadlineExceededError,
    DegradedResultWarning,
    ParameterError,
    QueryError,
)
from repro.graph.temporal import TemporalGraph
from repro.parallel.executor import ParallelExecutor, get_default_executor
from repro.parallel.runner import _remaining_budget
from repro.parallel.shared_graph import SharedGraph, SharedGraphSpec, attach_graph
from repro.rng import RngLike, as_seed_sequence

__all__ = ["parallel_crashsim_t"]

logger = logging.getLogger(__name__)

_M_T_DEGRADED = obs.REGISTRY.counter(
    "repro_temporal_queries_degraded_total",
    "Temporal queries truncated to a completed snapshot prefix.",
)


@dataclass(frozen=True)
class _SnapshotTask:
    """One snapshot's full single-source run (shared graph + own seed)."""

    graph: SharedGraphSpec
    source: int
    params: CrashSimParams
    tree_variant: str
    seed: np.random.SeedSequence
    snapshot_index: int = 0


def _run_snapshot(task: _SnapshotTask) -> Tuple[np.ndarray, np.ndarray]:
    """Worker entry point: score one snapshot, return (candidates, scores)."""
    faults.inject("snapshot", task.snapshot_index)
    view = attach_graph(task.graph)
    try:
        result = crashsim(
            view,
            task.source,
            params=task.params,
            tree_variant=task.tree_variant,
            seed=np.random.default_rng(task.seed),
        )
        return result.candidates, result.scores
    finally:
        view.close()


def parallel_crashsim_t(
    temporal: TemporalGraph,
    source: int,
    query: TemporalQuery,
    *,
    interval: Optional[Tuple[int, int]] = None,
    params: Optional[CrashSimParams] = None,
    tree_variant: str = "corrected",
    seed: RngLike = None,
    workers: Optional[int] = None,
    executor: Optional[ParallelExecutor] = None,
    deadline: Optional[float] = None,
    mode: str = "auto",
) -> TemporalQueryResult:
    """Temporal SimRank query with concurrently evaluated snapshots.

    Parameters mirror :func:`repro.core.crashsim_t.crashsim_t` minus the
    pruning switches (this driver recomputes every snapshot — see module
    docstring), plus ``workers`` / ``executor`` / ``mode`` as in
    :func:`repro.parallel.parallel_crashsim` (with no ``executor`` the
    process-wide persistent default for ``(workers, mode)`` is shared; on
    the thread tier snapshots run as in-process closures with no
    shared-memory publication), and ``deadline`` — a
    wall-clock budget in seconds.  Snapshot evaluations lost to the
    deadline (or to worker death surviving past the executor's retries)
    truncate the query to the longest completed snapshot *prefix*: every
    replayed transition is exact, the result is flagged ``degraded=True``
    and a :class:`~repro.errors.DegradedResultWarning` is emitted.  If not
    even the first snapshot completed, :class:`DeadlineExceededError` is
    raised — there is no prefix to fall back to.

    Determinism: per-snapshot seeds are spawned from the master seed in
    snapshot order, so the result is identical for any worker count, and a
    retried snapshot reproduces the bits its killed predecessor would have.
    """
    params = params or CrashSimParams()
    started = time.monotonic()
    start, stop = interval if interval is not None else (0, temporal.num_snapshots)
    if not 0 <= start < stop <= temporal.num_snapshots:
        raise QueryError(
            f"invalid interval [{start}, {stop}) for horizon {temporal.num_snapshots}"
        )
    if not 0 <= int(source) < temporal.num_nodes:
        raise ParameterError(
            f"source {source} outside the node range [0, {temporal.num_nodes})"
        )
    if deadline is not None and deadline <= 0:
        raise ParameterError(f"deadline must be positive, got {deadline}")
    source = int(source)
    seed_seq = as_seed_sequence(seed)
    indices = list(range(start, stop))
    seeds = seed_seq.spawn(len(indices))

    if executor is None:
        executor = get_default_executor(workers, mode=mode)
    if not executor.uses_processes:
        # Serial or thread tier: each snapshot evaluation is an in-process
        # closure (snapshots are different graphs, so there is no kernel
        # pool to share — crashsim builds its own per-snapshot kernel).
        # Snapshots are materialised here, before dispatch: the temporal
        # graph's snapshot LRU is not safe to mutate from pool threads.
        snapshots = {index: temporal.snapshot(index) for index in indices}

        def run_local_snapshot(item):
            index, snapshot_seed = item
            faults.inject("snapshot", index)
            result = crashsim(
                snapshots[index],
                source,
                params=params,
                tree_variant=tree_variant,
                seed=np.random.default_rng(snapshot_seed),
            )
            return result.candidates, result.scores

        with obs.span(
            "shard_dispatch", snapshots=len(indices), mode=executor.mode_label
        ):
            outcome = executor.run(
                run_local_snapshot,
                list(zip(indices, seeds)),
                deadline=_remaining_budget(deadline, started),
            )
    else:
        shared: List[SharedGraph] = []
        try:
            tasks = []
            for index, snapshot_seed in zip(indices, seeds):
                shared_graph = SharedGraph(temporal.snapshot(index))
                shared.append(shared_graph)
                tasks.append(
                    _SnapshotTask(
                        graph=shared_graph.spec(),
                        source=source,
                        params=params,
                        tree_variant=tree_variant,
                        seed=snapshot_seed,
                        snapshot_index=index,
                    )
                )
            with obs.span(
                "shard_dispatch", snapshots=len(indices), mode="process"
            ):
                outcome = executor.run(
                    _run_snapshot,
                    tasks,
                    deadline=_remaining_budget(deadline, started),
                )
        finally:
            for shared_graph in shared:
                shared_graph.close()

    # The Ω replay consumes snapshots strictly in order, so only the
    # longest completed prefix is usable; completions after a hole were
    # speculative work the deadline wasted (exactly like the post-Ω-empty
    # snapshots the module docstring already accepts wasting).
    prefix = 0
    while prefix < len(indices) and outcome.completed[prefix]:
        prefix += 1
    if prefix == 0:
        error = outcome.first_error()
        if outcome.deadline_hit or outcome.cancelled or error is None:
            logger.error(
                "temporal query lost every snapshot: source=%d "
                "interval=[%d, %d) elapsed=%.3fs seed=%s",
                source,
                start,
                stop,
                outcome.elapsed,
                seed,
            )
            raise DeadlineExceededError(
                f"no snapshot evaluation completed before the deadline "
                f"({outcome.elapsed:.3f}s elapsed, {len(indices)} snapshots "
                "requested)",
                deadline=deadline,
                elapsed=outcome.elapsed,
            )
        raise error
    per_snapshot = outcome.results[:prefix]

    # --- Sequential Ω-shrinking replay over the precomputed scores.
    stats = CrashSimTStats()
    candidates0, scores0 = per_snapshot[0]
    stats.snapshots_processed += 1
    stats.candidates_recomputed += candidates0.size
    scores_prev: Dict[int, float] = {
        int(node): float(value) for node, value in zip(candidates0, scores0)
    }
    history: List[Dict[int, float]] = [dict(scores_prev)]
    mask = query.initial_mask(scores0)
    omega: List[int] = [int(node) for node in candidates0[mask]]

    for candidates, scores in per_snapshot[1:]:
        if not omega:
            break
        stats.snapshots_processed += 1
        stats.candidates_recomputed += candidates.size
        full = {int(node): float(value) for node, value in zip(candidates, scores)}
        scores_cur = {node: full[node] for node in omega}
        history.append(dict(scores_cur))

        ordered = np.array(sorted(omega), dtype=np.int64)
        prev_vector = np.array([scores_prev[int(v)] for v in ordered])
        cur_vector = np.array([scores_cur[int(v)] for v in ordered])
        keep = query.step_mask(prev_vector, cur_vector)
        omega = [int(v) for v in ordered[keep]]
        scores_prev = scores_cur

    # Degraded only if the truncation could matter: candidates were still
    # alive when the prefix ran out, so unprocessed snapshots would have
    # kept filtering Ω.
    degraded = bool(omega) and prefix < len(indices)
    if degraded:
        _M_T_DEGRADED.inc()
        obs.event(
            "degrade",
            cause="snapshot prefix",
            snapshots_completed=prefix,
            snapshots_requested=len(indices),
        )
        logger.warning(
            "degraded CrashSim-T result: source=%d interval=[%d, %d) "
            "snapshots_completed=%d/%d survivors_alive=%d seed=%s",
            source,
            start,
            stop,
            prefix,
            len(indices),
            len(omega),
            seed,
        )
        warnings.warn(
            f"degraded CrashSim-T result: only the first {prefix} of "
            f"{len(indices)} snapshots completed; survivors reflect the "
            f"interval prefix [{start}, {start + prefix})",
            DegradedResultWarning,
            stacklevel=2,
        )

    return TemporalQueryResult(
        source=source,
        interval=(start, stop),
        survivors=tuple(sorted(omega)),
        history=tuple(history),
        stats=stats,
        degraded=degraded,
    )
