"""Parallel snapshot evaluation for temporal SimRank queries.

Algorithm 3 is sequential by construction: ``Ω`` shrinks from snapshot to
snapshot and the pruning gates carry *previous* estimates forward.  But the
expensive part — a full single-source CrashSim per snapshot — does not
depend on ``Ω`` at all when pruning is disabled: snapshot ``i``'s scores are
a function of ``(G_i, u, seed_i)`` only.  :func:`parallel_crashsim_t`
exploits exactly that split:

1. every snapshot in the interval is scored **concurrently** (each with its
   own spawned seed, so results are worker-count independent);
2. the Ω-shrinking pass — ``initial_mask`` then ``step_mask`` per
   transition — is replayed **sequentially** over the precomputed score
   vectors, preserving Algorithm 3's query semantics bit-for-bit given the
   same per-snapshot scores.

Compared to :func:`repro.core.crashsim_t.crashsim_t` this trades the
pruning properties (which *reuse* previous estimates and are inherently
order-dependent) for snapshot-level parallelism; it is the right driver
when snapshots mostly differ (pruning rarely fires) or when cores are
plentiful.  Snapshots after the point where ``Ω`` empties are computed
speculatively — the wall-clock cost of that waste is hidden by the
parallelism that made it possible.

Unlike :func:`parallel_crashsim` — which builds the source tree once and
ships it to shard workers via :class:`~repro.parallel.shared_graph.SharedTree`
— each snapshot worker here builds its own :class:`SparseReverseTree`
in-process: every snapshot is a different graph, so there is nothing to
share, and the sparse build is ``O(support)`` (docs/internals.md §8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.crashsim import crashsim
from repro.core.crashsim_t import CrashSimTStats, TemporalQueryResult
from repro.core.params import CrashSimParams
from repro.core.queries import TemporalQuery
from repro.errors import ParameterError, QueryError
from repro.graph.temporal import TemporalGraph
from repro.parallel.executor import ParallelExecutor
from repro.parallel.shared_graph import SharedGraph, SharedGraphSpec, attach_graph
from repro.rng import RngLike, as_seed_sequence

__all__ = ["parallel_crashsim_t"]


@dataclass(frozen=True)
class _SnapshotTask:
    """One snapshot's full single-source run (shared graph + own seed)."""

    graph: SharedGraphSpec
    source: int
    params: CrashSimParams
    tree_variant: str
    seed: np.random.SeedSequence


def _run_snapshot(task: _SnapshotTask) -> Tuple[np.ndarray, np.ndarray]:
    """Worker entry point: score one snapshot, return (candidates, scores)."""
    view = attach_graph(task.graph)
    try:
        result = crashsim(
            view,
            task.source,
            params=task.params,
            tree_variant=task.tree_variant,
            seed=np.random.default_rng(task.seed),
        )
        return result.candidates, result.scores
    finally:
        view.close()


def parallel_crashsim_t(
    temporal: TemporalGraph,
    source: int,
    query: TemporalQuery,
    *,
    interval: Optional[Tuple[int, int]] = None,
    params: Optional[CrashSimParams] = None,
    tree_variant: str = "corrected",
    seed: RngLike = None,
    workers: Optional[int] = None,
    executor: Optional[ParallelExecutor] = None,
) -> TemporalQueryResult:
    """Temporal SimRank query with concurrently evaluated snapshots.

    Parameters mirror :func:`repro.core.crashsim_t.crashsim_t` minus the
    pruning switches (this driver recomputes every snapshot — see module
    docstring), plus ``workers`` / ``executor`` as in
    :func:`repro.parallel.parallel_crashsim`.

    Determinism: per-snapshot seeds are spawned from the master seed in
    snapshot order, so the result is identical for any worker count.
    """
    params = params or CrashSimParams()
    start, stop = interval if interval is not None else (0, temporal.num_snapshots)
    if not 0 <= start < stop <= temporal.num_snapshots:
        raise QueryError(
            f"invalid interval [{start}, {stop}) for horizon {temporal.num_snapshots}"
        )
    if not 0 <= int(source) < temporal.num_nodes:
        raise ParameterError(
            f"source {source} outside the node range [0, {temporal.num_nodes})"
        )
    source = int(source)
    seed_seq = as_seed_sequence(seed)
    indices = list(range(start, stop))
    seeds = seed_seq.spawn(len(indices))

    own_executor = executor is None
    if own_executor:
        executor = ParallelExecutor(workers)
    try:
        if executor.serial:
            per_snapshot = []
            for index, snapshot_seed in zip(indices, seeds):
                result = crashsim(
                    temporal.snapshot(index),
                    source,
                    params=params,
                    tree_variant=tree_variant,
                    seed=np.random.default_rng(snapshot_seed),
                )
                per_snapshot.append((result.candidates, result.scores))
        else:
            shared: List[SharedGraph] = []
            try:
                tasks = []
                for index, snapshot_seed in zip(indices, seeds):
                    shared_graph = SharedGraph(temporal.snapshot(index))
                    shared.append(shared_graph)
                    tasks.append(
                        _SnapshotTask(
                            graph=shared_graph.spec(),
                            source=source,
                            params=params,
                            tree_variant=tree_variant,
                            seed=snapshot_seed,
                        )
                    )
                per_snapshot = executor.map(_run_snapshot, tasks)
            finally:
                for shared_graph in shared:
                    shared_graph.close()
    finally:
        if own_executor:
            executor.close()

    # --- Sequential Ω-shrinking replay over the precomputed scores.
    stats = CrashSimTStats()
    candidates0, scores0 = per_snapshot[0]
    stats.snapshots_processed += 1
    stats.candidates_recomputed += candidates0.size
    scores_prev: Dict[int, float] = {
        int(node): float(value) for node, value in zip(candidates0, scores0)
    }
    history: List[Dict[int, float]] = [dict(scores_prev)]
    mask = query.initial_mask(scores0)
    omega: List[int] = [int(node) for node in candidates0[mask]]

    for candidates, scores in per_snapshot[1:]:
        if not omega:
            break
        stats.snapshots_processed += 1
        stats.candidates_recomputed += candidates.size
        full = {int(node): float(value) for node, value in zip(candidates, scores)}
        scores_cur = {node: full[node] for node in omega}
        history.append(dict(scores_cur))

        ordered = np.array(sorted(omega), dtype=np.int64)
        prev_vector = np.array([scores_prev[int(v)] for v in ordered])
        cur_vector = np.array([scores_cur[int(v)] for v in ordered])
        keep = query.step_mask(prev_vector, cur_vector)
        omega = [int(v) for v in ordered[keep]]
        scores_prev = scores_cur

    return TemporalQueryResult(
        source=source,
        interval=(start, stop),
        survivors=tuple(sorted(omega)),
        history=tuple(history),
        stats=stats,
    )
