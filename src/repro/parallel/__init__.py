"""Parallel query execution: thread/process tiers + shared-memory sharding.

The subsystem has three layers (docs/internals.md §7 and §13):

* :mod:`repro.parallel.shared_graph` — publish a graph's CSR arrays over
  ``multiprocessing.shared_memory`` so process workers attach zero-copy;
* :mod:`repro.parallel.executor` — :class:`ParallelExecutor`, a process
  *or thread* pool (``mode="process"|"thread"|"auto"``) with a serial
  in-process fallback (``workers=1`` or restricted platforms), plus the
  process-wide persistent default executor
  (:func:`get_default_executor`) the drivers share;
* the drivers — :func:`parallel_crashsim`,
  :func:`parallel_crashsim_multi_source`, and
  :func:`parallel_crashsim_t` — which shard work using an autotuned plan
  (:func:`plan_shards`) and ``numpy.random.SeedSequence.spawn`` so any
  worker count on any tier yields identical, reproducible scores for the
  same master seed.
"""

from repro.parallel.executor import (
    MapOutcome,
    ParallelExecutor,
    RetryBudget,
    get_default_executor,
    reset_default_executors,
    resolve_mode,
    resolve_workers,
)
from repro.parallel.runner import (
    DEFAULT_SHARDS,
    MAX_SHARDS,
    parallel_crashsim,
    parallel_crashsim_multi_source,
    plan_shards,
    shard_sizes,
)
from repro.parallel.shared_graph import (
    ArraySpec,
    CsrGraphView,
    SharedArray,
    SharedGraph,
    SharedGraphSpec,
    SharedTree,
    SharedTreeSpec,
    attach_array,
    attach_graph,
    attach_tree,
)
from repro.parallel.temporal import parallel_crashsim_t

__all__ = [
    "ParallelExecutor",
    "MapOutcome",
    "RetryBudget",
    "resolve_workers",
    "resolve_mode",
    "get_default_executor",
    "reset_default_executors",
    "DEFAULT_SHARDS",
    "MAX_SHARDS",
    "shard_sizes",
    "plan_shards",
    "parallel_crashsim",
    "parallel_crashsim_multi_source",
    "parallel_crashsim_t",
    "ArraySpec",
    "SharedArray",
    "SharedGraph",
    "SharedGraphSpec",
    "CsrGraphView",
    "SharedTree",
    "SharedTreeSpec",
    "attach_array",
    "attach_graph",
    "attach_tree",
]
