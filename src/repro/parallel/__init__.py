"""Parallel query execution: shared-memory graphs + process-pool sharding.

The subsystem has three layers (docs/internals.md §7):

* :mod:`repro.parallel.shared_graph` — publish a graph's CSR arrays over
  ``multiprocessing.shared_memory`` so workers attach zero-copy;
* :mod:`repro.parallel.executor` — :class:`ParallelExecutor`, a process
  pool with a serial in-process fallback (``workers=1`` or restricted
  platforms);
* the drivers — :func:`parallel_crashsim`,
  :func:`parallel_crashsim_multi_source`, and
  :func:`parallel_crashsim_t` — which shard work using
  ``numpy.random.SeedSequence.spawn`` so any worker count yields identical,
  reproducible scores for the same master seed.
"""

from repro.parallel.executor import MapOutcome, ParallelExecutor, resolve_workers
from repro.parallel.runner import (
    DEFAULT_SHARDS,
    parallel_crashsim,
    parallel_crashsim_multi_source,
    shard_sizes,
)
from repro.parallel.shared_graph import (
    ArraySpec,
    CsrGraphView,
    SharedArray,
    SharedGraph,
    SharedGraphSpec,
    SharedTree,
    SharedTreeSpec,
    attach_array,
    attach_graph,
    attach_tree,
)
from repro.parallel.temporal import parallel_crashsim_t

__all__ = [
    "ParallelExecutor",
    "MapOutcome",
    "resolve_workers",
    "DEFAULT_SHARDS",
    "shard_sizes",
    "parallel_crashsim",
    "parallel_crashsim_multi_source",
    "parallel_crashsim_t",
    "ArraySpec",
    "SharedArray",
    "SharedGraph",
    "SharedGraphSpec",
    "CsrGraphView",
    "SharedTree",
    "SharedTreeSpec",
    "attach_array",
    "attach_graph",
    "attach_tree",
]
