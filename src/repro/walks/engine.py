"""Vectorised batch advancement of many √c-walks at once.

CrashSim's inner loop samples one √c-walk per candidate node per trial —
``n_r · |Ω|`` walks.  Advancing them one Python call per step per walk is
hopeless; :class:`BatchWalkStepper` instead advances *all* walks of a run
together with O(l_max) NumPy operations:

* the stop coins for every live walk are drawn as one uniform array;
* the uniform in-neighbour choice is one gather into the graph's in-CSR
  (``indices[indptr[cur] + floor(U * deg[cur])]``), which is exact because
  each node's neighbour block is contiguous.

Dead walks are *compacted away* each step — the geometric decay of √c-walk
survival means the active arrays shrink by a factor √c per step, so the
whole pass costs ``O(k / (1 - √c))`` work for ``k`` walks rather than
``O(k · l_max)``.

The stepper yields a :class:`WalkBatch` view after every step so the caller
(CrashSim's crash accumulation, READS queries, the SLING ``d(·)``
estimator) can fold in per-step scores without materialising whole paths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ParameterError
from repro.graph.digraph import DiGraph
from repro.rng import RngLike, ensure_rng

__all__ = ["WalkBatch", "BatchWalkStepper"]


@dataclass
class WalkBatch:
    """Compacted state of the surviving walks after one synchronous step.

    Attributes
    ----------
    step:
        1-based number of steps taken so far.
    walk_ids:
        Original indices (into the ``starts`` array) of walks still alive,
        strictly increasing, ``shape (a,)``.
    positions:
        Current node of each surviving walk, aligned with ``walk_ids``.
    """

    step: int
    walk_ids: np.ndarray
    positions: np.ndarray

    @property
    def num_alive(self) -> int:
        return int(self.walk_ids.size)

    def scatter_positions(self, total_walks: int, fill: int = -1) -> np.ndarray:
        """Expand to a dense per-walk position array (``fill`` where dead)."""
        out = np.full(total_walks, fill, dtype=np.int64)
        out[self.walk_ids] = self.positions
        return out


class BatchWalkStepper:
    """Advance a set of √c-walks in lock-step over a fixed graph.

    Parameters
    ----------
    graph:
        The (snapshot) graph whose in-adjacency the walks follow.
    c:
        SimRank decay factor; the per-step continuation probability is √c.
    """

    def __init__(self, graph: DiGraph, c: float):
        if not 0.0 < c < 1.0:
            raise ParameterError(f"decay factor c must be in (0, 1), got {c}")
        self.graph = graph
        self.c = float(c)
        self.sqrt_c = math.sqrt(c)
        self._indptr = graph.in_indptr
        self._indices = graph.in_indices
        degrees64 = getattr(graph, "in_degrees64", None)
        self._degrees = (
            degrees64()
            if degrees64 is not None
            else graph.in_degrees().astype(np.int64)
        )
        if graph.is_weighted:
            # Weighted neighbour choice by inverse-CDF over a single global
            # cumulative-weight array: within node u's CSR block the target
            # value base[u] + r·W(u) lands on neighbour i with probability
            # w_i / W(u), and one vectorised searchsorted resolves every
            # live walk at once.
            totals = graph.in_weight_totals()
            # A node whose in-weights sum to zero has no sampleable
            # neighbour: the CDF target degenerates to base[u] and the
            # clamp would silently pick the block's first neighbour.
            # Treat such nodes as dangling — the walk dies there.
            dead = (totals <= 0.0) & (self._degrees > 0)
            if dead.any():
                self._degrees = self._degrees.copy()
                self._degrees[dead] = 0
            self._cumulative = np.cumsum(graph.in_weights)
            base = np.zeros(graph.num_nodes, dtype=np.float64)
            starts = self._indptr[:-1]
            has_block = self._degrees > 0
            nonzero_starts = starts[has_block]
            base[has_block] = np.where(
                nonzero_starts > 0, self._cumulative[nonzero_starts - 1], 0.0
            )
            self._weight_base = base
            self._weight_totals = totals
        else:
            self._cumulative = None
            self._weight_base = None
            self._weight_totals = None

    def walk(
        self,
        starts: np.ndarray,
        max_steps: int,
        *,
        seed: RngLike = None,
        survival: str = "coin",
    ) -> Iterator[WalkBatch]:
        """Yield a :class:`WalkBatch` after each synchronous step.

        ``starts`` is the array of start nodes (one walk each).  Iteration
        ends after ``max_steps`` steps or when every walk has died.

        ``survival`` selects how the √c decay is realised:

        * ``"coin"`` — each walk flips the 1-√c stop coin each step, exactly
          as Definition 1 prescribes (used by CrashSim, READS, naive MC);
        * ``"always"`` — no stop coin; walks die only at dangling nodes
          (used when the caller folds the √c weight analytically).
        """
        if survival not in ("coin", "always"):
            raise ParameterError(f"unknown survival mode {survival!r}")
        if max_steps < 0:
            raise ParameterError(f"max_steps must be non-negative, got {max_steps}")
        rng = ensure_rng(seed)
        positions = np.asarray(starts, dtype=np.int64).copy()
        if positions.ndim != 1:
            raise ParameterError("starts must be a 1-D array of node ids")
        if positions.size and (
            positions.min() < 0 or positions.max() >= self.graph.num_nodes
        ):
            raise ParameterError("walk start outside the graph's node range")
        walk_ids = np.arange(positions.size, dtype=np.int64)
        for step in range(1, max_steps + 1):
            if walk_ids.size == 0:
                break
            draws = rng.random(positions.size)
            if survival == "coin":
                # One uniform draw serves both decisions: the walk survives
                # iff draws < √c, and conditioned on surviving draws/√c is
                # again uniform on [0, 1) — the neighbour-choice variate.
                keep = draws < self.sqrt_c
                walk_ids = walk_ids[keep]
                positions = positions[keep]
                draws = draws[keep] * (1.0 / self.sqrt_c)
            degrees = self._degrees[positions]
            movable = degrees > 0
            if not movable.all():
                walk_ids = walk_ids[movable]
                positions = positions[movable]
                degrees = degrees[movable]
                draws = draws[movable]
            if walk_ids.size == 0:
                break
            if self._cumulative is None:
                offsets = (draws * degrees).astype(np.int64)
                # Guard against offsets == degree from floating rounding.
                np.minimum(offsets, degrees - 1, out=offsets)
                flat = self._indptr[positions] + offsets
            else:
                targets = (
                    self._weight_base[positions]
                    + draws * self._weight_totals[positions]
                )
                flat = np.searchsorted(self._cumulative, targets, side="right")
                # Clamp into the node's block against float rounding at
                # block boundaries.
                np.clip(
                    flat,
                    self._indptr[positions],
                    self._indptr[positions + 1] - 1,
                    out=flat,
                )
            positions = self._indices[flat].astype(np.int64)
            yield WalkBatch(step=step, walk_ids=walk_ids, positions=positions)

    def sample_paths(
        self,
        starts: np.ndarray,
        max_steps: int,
        *,
        seed: RngLike = None,
    ) -> np.ndarray:
        """Materialise full paths as an int array, ``-1`` padding dead tails.

        ``result[i, 0]`` is the start node; ``result[i, j]`` the node after
        ``j`` steps or ``-1`` if walk ``i`` stopped earlier.  Used by tests
        and the DP first-meeting mode.
        """
        starts = np.asarray(starts, dtype=np.int64)
        paths = np.full((starts.size, max_steps + 1), -1, dtype=np.int64)
        paths[:, 0] = starts
        for batch in self.walk(starts, max_steps, seed=seed):
            paths[batch.walk_ids, batch.step] = batch.positions
        return paths
