"""Fused walk–crash kernel: CrashSim's inner loop without the generator.

:func:`~repro.core.crashsim.accumulate_crash_totals` historically drove
:class:`~repro.walks.engine.BatchWalkStepper.walk`, a Python generator that
allocates fresh ``walk_ids``/``positions``/``draws`` arrays at every step and
re-``np.tile``\\ s a megawalk-sized start array per chunk.  The per-walk maths
is right, but the constant factor is dominated by allocation and by boolean
indexing (each ``array[mask]`` re-scans the mask).

:class:`WalkCrashKernel` fuses the whole loop: one call advances a chunk of
walks through all ``l_max`` steps and folds the ``U[step, position]`` crash
contributions straight into per-candidate totals, using preallocated
ping-pong buffers that are compacted in place and **reused across chunks,
trials, and calls** — no tile, no per-step slicing garbage, one
``mask.nonzero()`` scan per step feeding ``np.take(..., out=...)`` gathers.

Byte-identity contract
----------------------
With the default ``sampler="cdf"`` the kernel consumes the RNG stream in
exactly the order the generator path did — one ``rng.random(out=...)`` of
the pre-compaction live count per step, same chunk boundaries
(``trials_per_chunk = max(1, walk_chunk // k)``), same float-op order
(``draw · (1/√c)`` then ``· degree``), same truncating cast, same
``np.bincount``-then-add accumulation — so scores are **bit-for-bit**
identical to the pre-kernel implementation and to the pinned seed fixtures.

Samplers
--------
* ``"cdf"`` (default) — weighted neighbour choice by inverse CDF over the
  global cumulative-weight array (``searchsorted`` + clip), byte-identical
  to the stepper.  Unweighted graphs always use the O(1) uniform gather.
* ``"alias"`` — per-node Vose alias tables (cached on the graph, shipped
  zero-copy through ``SharedGraph``): O(1) per weighted sample instead of
  O(log m).  Statistically exact but a *different* (still uniform) use of
  the same draws, so scores differ bit-wise from the cdf path — opt-in.

Both weighted samplers reuse the survival coin: the walk survives iff
``draw < √c``, and conditioned on survival ``draw/√c`` is again uniform —
the alias path further splits that one variate into a uniform cell index
and the dart fraction (the "one-draw alias trick"), so the draw count per
step is identical across samplers.

JIT
---
When numba is importable and requested (``REPRO_JIT=1`` or
``use_jit=True``), the per-step compact+move+fold loop runs as an
``@njit``-compiled scalar loop (see :mod:`repro.walks._jit`) that replays
the vectorised float-op order element for element — asserted bit-identical
by the test suite.  Without numba the kernel silently uses the pure-NumPy
path; nothing in the default install imports numba.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro import obs
from repro.errors import ParameterError
from repro.graph.digraph import build_alias_tables
from repro.rng import ensure_rng
from repro.walks import _jit

__all__ = [
    "WalkCrashKernel",
    "KernelPool",
    "fused_accumulate_crash_totals",
    "DEFAULT_WALK_CHUNK",
    "DEFAULT_DENSE_ROW_BUDGET",
    "SAMPLERS",
]

DEFAULT_WALK_CHUNK = 1 << 20  # max simultaneous walks per batched pass
DEFAULT_DENSE_ROW_BUDGET = 256 << 20  # bytes of dense U rows worth caching
SAMPLERS = ("cdf", "alias")

# Registry metrics, shared by every kernel instance in the process.  The
# hot loop never touches these: each accumulate call counts into plain
# local integers and flushes once on the way out.
_M_WALKS = obs.REGISTRY.counter(
    "repro_kernel_walks_total",
    "Root walks started by the fused kernel (trials x candidates).",
)
_M_STEPS = obs.REGISTRY.counter(
    "repro_kernel_steps_total",
    "Live-walk step advances performed by the fused kernel.",
)
_M_CRASH_READS = obs.REGISTRY.counter(
    "repro_kernel_crash_reads_total",
    "Crash-probability reads folded into candidate totals.",
)
_M_ROW_HITS = obs.REGISTRY.counter(
    "repro_kernel_dense_row_hits_total",
    "Per-step tree reads served from a dense cached U row.",
)
_M_ROW_MISSES = obs.REGISTRY.counter(
    "repro_kernel_dense_row_misses_total",
    "Per-step tree reads that fell back to the sparse gather path.",
)


class _TreeRows:
    """Per-step dense read access to a reverse reachable tree ``U``.

    Materialising level ``step`` into a length-``n`` float row turns the
    crash gather into one ``np.take`` — and the row's floats are identical
    to what ``tree.gather`` produces, so scores don't depend on the path
    taken.  Rows are cached lazily (each chunk revisits every step) unless
    the full cache would exceed ``budget`` bytes, in which case ``row()``
    returns ``None`` and the caller falls back to ``tree.gather``.
    """

    def __init__(self, tree, num_nodes: int, l_max: int, budget: int):
        self._gather: Callable[[int, np.ndarray], np.ndarray]
        self._rows: Optional[list] = None
        self._level_arrays = None
        self._num_nodes = num_nodes
        if isinstance(tree, np.ndarray):
            matrix = tree
            self._gather = lambda step, positions: matrix[step, positions]
            top = min(l_max, matrix.shape[0] - 1)
            self._rows = [np.ascontiguousarray(matrix[s]) for s in range(top + 1)]
            return
        self._gather = tree.gather
        if hasattr(tree, "level_arrays"):
            if (l_max + 1) * num_nodes * 8 <= budget:
                self._rows = [None] * (l_max + 1)
                self._level_arrays = tree.level_arrays
        elif hasattr(tree, "matrix"):
            # Legacy dense tree: the matrix already exists, rows are free.
            matrix = tree.matrix
            top = min(l_max, matrix.shape[0] - 1)
            self._rows = [np.ascontiguousarray(matrix[s]) for s in range(top + 1)]

    def row(self, step: int) -> Optional[np.ndarray]:
        if self._rows is None or step >= len(self._rows):
            return None
        row = self._rows[step]
        if row is None and self._level_arrays is not None:
            nodes, probs = self._level_arrays(step)
            row = np.zeros(self._num_nodes, dtype=np.float64)
            row[nodes] = probs
            self._rows[step] = row
        return row

    def gather(self, step: int, positions: np.ndarray) -> np.ndarray:
        return self._gather(step, positions)


# Buffer indices into WalkCrashKernel._buffers, by role.
_N_BUFFERS = 14


class WalkCrashKernel:
    """Fused √c-walk advancement + crash accumulation over a fixed graph.

    Parameters
    ----------
    graph:
        Anything with the walk-facing protocol (``num_nodes``,
        ``in_indptr``, ``in_indices``, ``in_degrees()``, ``is_weighted`` /
        ``in_weights``, ``in_weight_totals()``) — a
        :class:`~repro.graph.digraph.DiGraph` or a
        :class:`~repro.parallel.CsrGraphView` over shared memory.
    c:
        SimRank decay factor; per-step continuation probability is √c.
    sampler:
        ``"cdf"`` (default, byte-identical to the generator path) or
        ``"alias"`` (O(1) weighted sampling).  Ignored for unweighted
        graphs, whose uniform gather is already O(1).
    use_jit:
        ``True`` forces the numba path (raises if numba is missing),
        ``False`` forces pure NumPy, ``None`` (default) follows the
        ``REPRO_JIT`` environment toggle with automatic NumPy fallback.
    dense_row_budget:
        Max bytes of dense ``U`` rows to cache per accumulate call; above
        it the kernel reads through ``tree.gather`` (same bits, slower).
    """

    def __init__(
        self,
        graph,
        c: float,
        *,
        sampler: str = "cdf",
        use_jit: Optional[bool] = None,
        dense_row_budget: int = DEFAULT_DENSE_ROW_BUDGET,
    ):
        if not 0.0 < c < 1.0:
            raise ParameterError(f"decay factor c must be in (0, 1), got {c}")
        if sampler not in SAMPLERS:
            raise ParameterError(
                f"unknown sampler {sampler!r}; expected one of {SAMPLERS}"
            )
        self.graph = graph
        self.c = float(c)
        self.sqrt_c = math.sqrt(c)
        self.inv_sqrt_c = 1.0 / self.sqrt_c
        self.sampler = sampler
        self.dense_row_budget = int(dense_row_budget)
        self._indptr = np.ascontiguousarray(graph.in_indptr, dtype=np.int64)
        self._indices = graph.in_indices
        degrees64 = getattr(graph, "in_degrees64", None)
        degrees = (
            degrees64()
            if degrees64 is not None
            else graph.in_degrees().astype(np.int64)
        )
        self._weighted = bool(getattr(graph, "is_weighted", False))
        self._cumulative = None
        self._weight_base = None
        self._weight_totals = None
        self._alias_prob = None
        self._alias_alias = None
        if self._weighted:
            totals = graph.in_weight_totals()
            # Zero in-weight totals make the CDF inversion degenerate (the
            # target lands exactly on base[u] and the clamp picks the first
            # neighbour): such nodes are dangling — the walk dies there.
            dead = (totals <= 0.0) & (degrees > 0)
            if dead.any():
                degrees = degrees.copy()
                degrees[dead] = 0
            self._weight_totals = totals
            if sampler == "cdf":
                self._cumulative = np.cumsum(graph.in_weights)
                base = np.zeros(graph.num_nodes, dtype=np.float64)
                starts = self._indptr[:-1]
                has_block = degrees > 0
                nonzero_starts = starts[has_block]
                base[has_block] = np.where(
                    nonzero_starts > 0, self._cumulative[nonzero_starts - 1], 0.0
                )
                self._weight_base = base
            else:
                tables = getattr(graph, "in_alias_tables", None)
                if tables is not None:
                    prob, alias = tables()
                else:
                    prob, alias = build_alias_tables(
                        self._indptr, graph.in_weights, totals
                    )
                self._alias_prob = prob
                self._alias_alias = alias
        self._degrees = degrees
        # JIT resolution: explicit use_jit wins, else the env toggle; the
        # numba-less fallback is silent unless the caller *forced* JIT.
        if use_jit is None:
            use_jit = _jit.jit_requested() and _jit.available()
        elif use_jit and not _jit.available():
            raise ParameterError(
                "use_jit=True but numba is not installed; "
                "install the [jit] extra or drop the flag"
            )
        self.use_jit = bool(use_jit)
        self._jit_step = self._bind_jit_step() if self.use_jit else None
        # Reusable buffers, grown on demand and kept across calls.  One
        # kernel serves one thread at a time: buffers are shared mutable
        # state, so concurrent accumulate()/accumulate_multi() calls on the
        # same instance corrupt each other.  Long-lived callers (the serving
        # engine) funnel all scoring through a single dispatcher thread.
        self._cap = 0
        self._buffers: tuple = ()
        self._multi_cap = 0
        self._multi_scratch: tuple = ()
        self._moments_ids_cap = 0
        self._moments_ids: Optional[np.ndarray] = None
        self._moments_tot_cap = 0
        self._moments_tot: Optional[np.ndarray] = None
        self.steps_processed = 0  # cumulative live-walk step advances

    # ------------------------------------------------------------------
    # Buffer lifecycle
    # ------------------------------------------------------------------

    def _ensure_capacity(self, cap: int) -> None:
        if cap <= self._cap:
            return
        self._cap = cap
        self._buffers = (
            np.empty(cap, dtype=np.int64),  # 0 pos_a: current positions
            np.empty(cap, dtype=np.int64),  # 1 pos_b: compacted pre-move
            np.empty(cap, dtype=np.int64),  # 2 own_a: walk owners
            np.empty(cap, dtype=np.int64),  # 3 own_b: ping-pong partner
            np.empty(cap, dtype=np.float64),  # 4 draws: step uniforms
            np.empty(cap, dtype=np.float64),  # 5 draws_b: compacted draws
            np.empty(cap, dtype=np.int64),  # 6 int scratch (degrees, lo)
            np.empty(cap, dtype=np.int64),  # 7 int scratch (offsets, flat)
            np.empty(cap, dtype=np.int64),  # 8 int scratch (hi, alias)
            np.empty(cap, dtype=bool),  # 9 mask
            np.empty(cap, dtype=np.float64),  # 10 float scratch
            np.empty(cap, dtype=np.float64),  # 11 float scratch
            np.empty(cap, dtype=self._indices.dtype),  # 12 gathered nbrs
            np.empty(cap, dtype=np.float64),  # 13 contributions
        )

    def _ensure_multi_scratch(self, cap: int):
        """Combined-key / crash-weight scratch for ``accumulate_multi``.

        Grown on demand and kept across calls, like the step buffers: a
        serving engine scoring batch after batch must not allocate a fresh
        ``q·cap`` pair per batch.
        """
        if cap > self._multi_cap:
            self._multi_cap = cap
            self._multi_scratch = (
                np.empty(cap, dtype=np.int64),
                np.empty(cap, dtype=np.float64),
            )
        return self._multi_scratch

    def _ensure_moments_scratch(self, ids_cap: int, tot_cap: int):
        """Walk-id owners + per-walk running totals for the moments paths.

        ``ids`` is just ``arange`` — the adaptive paths tag each walk with
        its own id (instead of its candidate index) so per-walk totals can
        be recovered for the second moment; ``tot`` holds one running float
        per live walk (per source in the multi path).  Kept across calls
        like every other kernel buffer.
        """
        if ids_cap > self._moments_ids_cap:
            self._moments_ids_cap = ids_cap
            self._moments_ids = np.arange(ids_cap, dtype=np.int64)
        if tot_cap > self._moments_tot_cap:
            self._moments_tot_cap = tot_cap
            self._moments_tot = np.empty(tot_cap, dtype=np.float64)
        return self._moments_ids, self._moments_tot

    # ------------------------------------------------------------------
    # Single-tree accumulation (CrashSim Algorithm 1 step 3)
    # ------------------------------------------------------------------

    def accumulate(
        self,
        tree,
        targets: np.ndarray,
        n_trials: int,
        *,
        l_max: int,
        rng,
        walk_chunk: int = DEFAULT_WALK_CHUNK,
    ) -> np.ndarray:
        """``totals[i] = Σ_trials Σ_step U[step, W(targets[i])_step]``.

        Drop-in replacement for the generator-driven
        ``accumulate_crash_totals`` body: identical RNG stream consumption,
        bit-identical totals on the default sampler.
        """
        rng = ensure_rng(rng)
        targets = np.asarray(targets, dtype=np.int64)
        k = targets.size
        totals = np.zeros(k, dtype=np.float64)
        if k == 0 or n_trials <= 0:
            return totals
        rows = _TreeRows(tree, self.graph.num_nodes, l_max, self.dense_row_budget)
        trials_per_chunk = max(1, walk_chunk // k)
        self._ensure_capacity(min(trials_per_chunk, n_trials) * k)
        buffers = self._buffers
        pos_a, own_a = buffers[0], buffers[2]
        own_b = buffers[3]
        draws = buffers[4]
        contrib = buffers[13]
        cand = np.arange(k, dtype=np.int64)
        jit_step = self._jit_step
        scratch = np.empty(k, dtype=np.float64) if jit_step is not None else None
        steps_local = 0
        crash_local = 0
        row_hits = 0
        row_misses = 0
        remaining = n_trials
        with obs.span("walk_kernel", trials=n_trials, candidates=k):
            while remaining > 0:
                trials = min(trials_per_chunk, remaining)
                remaining -= trials
                alive = trials * k
                pos_a[:alive].reshape(trials, k)[:] = targets
                own_a[:alive].reshape(trials, k)[:] = cand
                cur_own, alt_own = own_a, own_b
                for step in range(1, l_max + 1):
                    if alive == 0:
                        break
                    rng.random(out=draws[:alive])
                    self.steps_processed += alive
                    steps_local += alive
                    row = rows.row(step)
                    if jit_step is not None and row is not None:
                        row_hits += 1
                        alive = jit_step(
                            pos_a, cur_own, draws, alive, row, scratch, totals
                        )
                        crash_local += alive
                        continue
                    alive = self._step_numpy(cur_own, alt_own, alive)
                    if alive == 0:
                        break
                    cur_own, alt_own = alt_own, cur_own
                    crash_local += alive
                    # Counted at the read site so the counters reconcile
                    # exactly with the crash reads actually performed.
                    if row is not None:
                        row_hits += 1
                        np.take(row, pos_a[:alive], out=contrib[:alive])
                        crash = contrib[:alive]
                    else:
                        row_misses += 1
                        crash = rows.gather(step, pos_a[:alive])
                    totals += np.bincount(cur_own[:alive], weights=crash, minlength=k)
        _M_WALKS.inc(n_trials * k)
        _M_STEPS.inc(steps_local)
        _M_CRASH_READS.inc(crash_local)
        _M_ROW_HITS.inc(row_hits)
        _M_ROW_MISSES.inc(row_misses)
        return totals

    # ------------------------------------------------------------------
    # Multi-source accumulation: one walk stream, q crash gathers
    # ------------------------------------------------------------------

    def accumulate_multi(
        self,
        trees: Sequence,
        targets: np.ndarray,
        n_trials: int,
        *,
        l_max: int,
        rng,
        walk_chunk: int = DEFAULT_WALK_CHUNK,
    ) -> np.ndarray:
        """``(q, k)`` crash totals for ``q`` source trees over one walk set.

        The per-step cost is one fused walk advance plus a single segmented
        ``bincount`` over combined ``source · k + candidate`` keys — bit-
        identical to ``q`` per-row bincounts (each bin's occurrence order is
        preserved; bins are independent), but one pass instead of ``q``.
        """
        rng = ensure_rng(rng)
        targets = np.asarray(targets, dtype=np.int64)
        k = targets.size
        q = len(trees)
        totals = np.zeros((q, k), dtype=np.float64)
        if k == 0 or n_trials <= 0 or q == 0:
            return totals
        all_rows = [
            _TreeRows(tree, self.graph.num_nodes, l_max, self.dense_row_budget)
            for tree in trees
        ]
        trials_per_chunk = max(1, walk_chunk // k)
        cap = min(trials_per_chunk, n_trials) * k
        self._ensure_capacity(cap)
        buffers = self._buffers
        pos_a, own_a = buffers[0], buffers[2]
        own_b = buffers[3]
        draws = buffers[4]
        keys, crash_weights = self._ensure_multi_scratch(q * cap)
        flat_totals = totals.reshape(-1)
        cand = np.arange(k, dtype=np.int64)
        steps_local = 0
        crash_local = 0
        row_hits = 0
        row_misses = 0
        remaining = n_trials
        with obs.span("walk_kernel", trials=n_trials, candidates=k, sources=q):
            while remaining > 0:
                trials = min(trials_per_chunk, remaining)
                remaining -= trials
                alive = trials * k
                pos_a[:alive].reshape(trials, k)[:] = targets
                own_a[:alive].reshape(trials, k)[:] = cand
                cur_own, alt_own = own_a, own_b
                for step in range(1, l_max + 1):
                    if alive == 0:
                        break
                    rng.random(out=draws[:alive])
                    self.steps_processed += alive
                    steps_local += alive
                    alive = self._step_numpy(cur_own, alt_own, alive)
                    if alive == 0:
                        break
                    cur_own, alt_own = alt_own, cur_own
                    crash_local += q * alive
                    for index, rows in enumerate(all_rows):
                        lo = index * alive
                        hi = lo + alive
                        row = rows.row(step)
                        if row is not None:
                            row_hits += 1
                            np.take(row, pos_a[:alive], out=crash_weights[lo:hi])
                        else:
                            row_misses += 1
                            crash_weights[lo:hi] = rows.gather(step, pos_a[:alive])
                        np.add(cur_own[:alive], index * k, out=keys[lo:hi])
                    flat_totals += np.bincount(
                        keys[: q * alive],
                        weights=crash_weights[: q * alive],
                        minlength=q * k,
                    )
        _M_WALKS.inc(n_trials * k)
        _M_STEPS.inc(steps_local)
        _M_CRASH_READS.inc(crash_local)
        _M_ROW_HITS.inc(row_hits)
        _M_ROW_MISSES.inc(row_misses)
        return totals

    # ------------------------------------------------------------------
    # Moments accumulation (adaptive sampling): totals + sum of squares
    # ------------------------------------------------------------------

    def _retire_hubs(
        self, hub_cache, step: int, cur_own: np.ndarray, alive: int,
        walk_tot: np.ndarray, offsets: Optional[np.ndarray] = None,
    ) -> int:
        """Retire walks sitting on a cached hub; returns the survivor count.

        A walk whose current position is one of ``hub_cache.hubs`` folds the
        precomputed expected remainder ``tails[step, hub]`` into its running
        total and stops walking — unbiased (the tail is the conditional
        expectation of exactly what the walk would have collected), strictly
        variance-reducing, and it shrinks the live set on the graphs where
        walks pile onto hubs.  ``U[step, position]`` for the current step
        must already be folded before calling.  Owners are per-chunk-unique
        walk ids, so the fold is a plain fancy-indexed add.  ``offsets``
        (multi path) folds the same tail into each source's total row.
        """
        pos_a = self._buffers[0]
        hub_idx = hub_cache.lookup[pos_a[:alive]]
        at_hub = hub_idx >= 0
        hit = at_hub.nonzero()[0]
        if hit.size == 0:
            return alive
        tails = hub_cache.tails[step, hub_idx[hit]]
        owners = cur_own[:alive]
        if offsets is None:
            walk_tot[owners[hit]] += tails
        else:
            for offset in offsets:
                walk_tot[offset + owners[hit]] += tails
        keep = (~at_hub).nonzero()[0]
        n_new = keep.size
        if n_new:
            pos_a[:n_new] = pos_a[:alive][keep]
            cur_own[:n_new] = owners[keep]
        return n_new

    def accumulate_moments(
        self,
        tree,
        targets: np.ndarray,
        n_trials: int,
        *,
        l_max: int,
        rng,
        walk_chunk: int = DEFAULT_WALK_CHUNK,
        hub_cache=None,
    ):
        """``(totals, sumsq)`` per candidate — first two moments per trial.

        The round-granular entry point for adaptive sampling: same warm
        ping-pong buffers as :meth:`accumulate` (calling it round after
        round reallocates nothing), but walks are tagged with per-chunk
        walk ids instead of candidate indices so each walk's crash total is
        individually recoverable; the chunk epilogue folds them into
        per-candidate ``Σ x`` and ``Σ x²``, which is all the
        empirical-Bernstein stopper needs.

        Draw counts depend on live-walk counts, so this consumes the RNG
        stream differently from :meth:`accumulate` — adaptive results are
        deterministic for a seed but deliberately not bit-comparable to
        fixed-``n_r`` runs.  Always steps through the NumPy path (never the
        JIT fold, which accumulates into candidate totals directly), so
        adaptive results are identical with and without ``REPRO_JIT``.

        ``hub_cache`` (a :class:`repro.core.adaptive.HubCache`) retires
        walks at cached hubs; its resident bytes are charged against
        ``dense_row_budget`` before the dense ``U``-row cache sizes itself.
        """
        rng = ensure_rng(rng)
        targets = np.asarray(targets, dtype=np.int64)
        k = targets.size
        totals = np.zeros(k, dtype=np.float64)
        sumsq = np.zeros(k, dtype=np.float64)
        if k == 0 or n_trials <= 0:
            return totals, sumsq
        budget = self.dense_row_budget
        if hub_cache is not None:
            budget = max(0, budget - hub_cache.nbytes)
        rows = _TreeRows(tree, self.graph.num_nodes, l_max, budget)
        trials_per_chunk = max(1, walk_chunk // k)
        cap = min(trials_per_chunk, n_trials) * k
        self._ensure_capacity(cap)
        walk_ids, walk_tot = self._ensure_moments_scratch(cap, cap)
        buffers = self._buffers
        pos_a, own_a = buffers[0], buffers[2]
        own_b = buffers[3]
        draws = buffers[4]
        contrib = buffers[13]
        steps_local = 0
        crash_local = 0
        row_hits = 0
        row_misses = 0
        remaining = n_trials
        with obs.span("walk_kernel_moments", trials=n_trials, candidates=k):
            while remaining > 0:
                trials = min(trials_per_chunk, remaining)
                remaining -= trials
                chunk = trials * k
                alive = chunk
                pos_a[:alive].reshape(trials, k)[:] = targets
                own_a[:alive] = walk_ids[:alive]
                walk_tot[:chunk] = 0.0
                cur_own, alt_own = own_a, own_b
                if hub_cache is not None:
                    # Candidates that *are* hubs retire at step 0 with the
                    # exact expectation — zero-variance estimates.
                    alive = self._retire_hubs(hub_cache, 0, cur_own, alive, walk_tot)
                for step in range(1, l_max + 1):
                    if alive == 0:
                        break
                    rng.random(out=draws[:alive])
                    self.steps_processed += alive
                    steps_local += alive
                    alive = self._step_numpy(cur_own, alt_own, alive)
                    if alive == 0:
                        break
                    cur_own, alt_own = alt_own, cur_own
                    crash_local += alive
                    row = rows.row(step)
                    if row is not None:
                        row_hits += 1
                        np.take(row, pos_a[:alive], out=contrib[:alive])
                        crash = contrib[:alive]
                    else:
                        row_misses += 1
                        crash = rows.gather(step, pos_a[:alive])
                    walk_tot[cur_own[:alive]] += crash
                    if hub_cache is not None and step < l_max:
                        alive = self._retire_hubs(
                            hub_cache, step, cur_own, alive, walk_tot
                        )
                wt = walk_tot[:chunk].reshape(trials, k)
                totals += wt.sum(axis=0)
                sumsq += np.square(wt).sum(axis=0)
        _M_WALKS.inc(n_trials * k)
        _M_STEPS.inc(steps_local)
        _M_CRASH_READS.inc(crash_local)
        _M_ROW_HITS.inc(row_hits)
        _M_ROW_MISSES.inc(row_misses)
        return totals, sumsq

    def accumulate_multi_moments(
        self,
        trees: Sequence,
        targets: np.ndarray,
        n_trials: int,
        *,
        l_max: int,
        rng,
        walk_chunk: int = DEFAULT_WALK_CHUNK,
    ):
        """``(q, k)`` first and second moments over one shared walk stream.

        The multi-source adaptive entry point.  One walk set is scored
        against every source's tree (the ``accumulate_multi`` design) —
        that shared stream *is* the common-random-number coupling the
        adaptive stopper exploits: per-source estimates move together, and
        the stopper's per-``(source, candidate)`` variances are measured on
        the same walks, so one walk budget serves all ``q`` stop decisions.
        No hub cache here: tails are per-tree, and ``q`` dense tail tables
        would crowd out the dense-row budget that serves all trees.
        """
        rng = ensure_rng(rng)
        targets = np.asarray(targets, dtype=np.int64)
        k = targets.size
        q = len(trees)
        totals = np.zeros((q, k), dtype=np.float64)
        sumsq = np.zeros((q, k), dtype=np.float64)
        if k == 0 or n_trials <= 0 or q == 0:
            return totals, sumsq
        all_rows = [
            _TreeRows(tree, self.graph.num_nodes, l_max, self.dense_row_budget)
            for tree in trees
        ]
        trials_per_chunk = max(1, walk_chunk // k)
        cap = min(trials_per_chunk, n_trials) * k
        self._ensure_capacity(cap)
        walk_ids, walk_tot = self._ensure_moments_scratch(cap, q * cap)
        buffers = self._buffers
        pos_a, own_a = buffers[0], buffers[2]
        own_b = buffers[3]
        draws = buffers[4]
        contrib = buffers[13]
        steps_local = 0
        crash_local = 0
        row_hits = 0
        row_misses = 0
        remaining = n_trials
        with obs.span(
            "walk_kernel_moments", trials=n_trials, candidates=k, sources=q
        ):
            while remaining > 0:
                trials = min(trials_per_chunk, remaining)
                remaining -= trials
                chunk = trials * k
                alive = chunk
                pos_a[:alive].reshape(trials, k)[:] = targets
                own_a[:alive] = walk_ids[:alive]
                walk_tot[: q * chunk] = 0.0
                cur_own, alt_own = own_a, own_b
                for step in range(1, l_max + 1):
                    if alive == 0:
                        break
                    rng.random(out=draws[:alive])
                    self.steps_processed += alive
                    steps_local += alive
                    alive = self._step_numpy(cur_own, alt_own, alive)
                    if alive == 0:
                        break
                    cur_own, alt_own = alt_own, cur_own
                    crash_local += q * alive
                    owners = cur_own[:alive]
                    for index, rows in enumerate(all_rows):
                        row = rows.row(step)
                        if row is not None:
                            row_hits += 1
                            np.take(row, pos_a[:alive], out=contrib[:alive])
                            crash = contrib[:alive]
                        else:
                            row_misses += 1
                            crash = rows.gather(step, pos_a[:alive])
                        seg = walk_tot[index * chunk : (index + 1) * chunk]
                        seg[owners] += crash
                for index in range(q):
                    wt = walk_tot[index * chunk : (index + 1) * chunk]
                    wt = wt.reshape(trials, k)
                    totals[index] += wt.sum(axis=0)
                    sumsq[index] += np.square(wt).sum(axis=0)
        _M_WALKS.inc(n_trials * k)
        _M_STEPS.inc(steps_local)
        _M_CRASH_READS.inc(crash_local)
        _M_ROW_HITS.inc(row_hits)
        _M_ROW_MISSES.inc(row_misses)
        return totals, sumsq

    # ------------------------------------------------------------------
    # One fused step (NumPy): coin + compact + move, in place
    # ------------------------------------------------------------------

    def _step_numpy(self, cur_own: np.ndarray, alt_own: np.ndarray, alive: int) -> int:
        """Advance ``alive`` walks one step; returns the survivor count.

        Current positions live in buffer 0 on entry and exit; surviving
        owners are compacted into ``alt_own`` (the caller ping-pongs).
        Replays the generator path's arithmetic exactly: one uniform per
        live walk, survive iff ``draw < √c``, then ``draw/√c`` picks the
        neighbour.
        """
        b = self._buffers
        pos_a, pos_b = b[0], b[1]
        draws, draws_b = b[4], b[5]
        ints, ints2, ints3 = b[6], b[7], b[8]
        mask = b[9]
        floats, floats2 = b[10], b[11]
        idx = b[12]
        d = draws[:alive]
        np.less(d, self.sqrt_c, out=mask[:alive])
        np.take(self._degrees, pos_a[:alive], out=ints[:alive])
        m = mask[:alive]
        m &= ints[:alive] > 0
        keep = m.nonzero()[0]
        n_new = keep.size
        if n_new == 0:
            return 0
        # One nonzero scan feeds all four gathers (boolean indexing would
        # re-scan the mask once per array).
        np.take(pos_a, keep, out=pos_b[:n_new])
        np.take(cur_own, keep, out=alt_own[:n_new])
        np.take(d, keep, out=draws_b[:n_new])
        np.take(ints[:alive], keep, out=ints[:n_new])
        alive = n_new
        db = draws_b[:alive]
        db *= self.inv_sqrt_c
        deg = ints[:alive]
        flat = ints2[:alive]
        if self._cumulative is None and self._alias_prob is None:
            # Uniform: indices[indptr[p] + floor(r · deg)]
            np.multiply(db, deg, out=floats[:alive])
            flat[:] = floats[:alive]  # truncating cast == astype(int64)
            np.subtract(deg, 1, out=deg)
            np.minimum(flat, deg, out=flat)
            np.take(self._indptr, pos_b[:alive], out=deg)
            flat += deg
        elif self._cumulative is not None:
            # Weighted CDF: searchsorted the global cumulative, clip into
            # the node's block — exactly the stepper's arithmetic.
            np.take(self._weight_totals, pos_b[:alive], out=floats[:alive])
            np.multiply(db, floats[:alive], out=floats[:alive])
            np.take(self._weight_base, pos_b[:alive], out=floats2[:alive])
            floats2[:alive] += floats[:alive]  # base + draw·W(u)
            found = np.searchsorted(self._cumulative, floats2[:alive], side="right")
            np.take(self._indptr, pos_b[:alive], out=deg)  # block lo
            np.add(pos_b[:alive], 1, out=ints3[:alive])
            hi = pos_a[:alive]  # free as scratch until the final move
            np.take(self._indptr, ints3[:alive], out=hi)
            hi -= 1  # block hi (inclusive)
            np.clip(found, deg, hi, out=flat)
        else:
            # Alias: split the surviving variate r into a uniform cell
            # index u = r · deg (trunc -> j) and the dart fraction u - j;
            # keep cell j iff the dart clears prob[j], else take alias[j].
            np.multiply(db, deg, out=floats[:alive])
            flat[:] = floats[:alive]  # j = trunc(u)
            np.subtract(deg, 1, out=deg)
            np.minimum(flat, deg, out=flat)
            frac = floats[:alive]
            frac -= flat  # u - j, uniform on [0, 1)
            np.take(self._indptr, pos_b[:alive], out=deg)  # block lo
            cell = ints3[:alive]
            np.add(deg, flat, out=cell)  # absolute table cell
            np.take(self._alias_prob, cell, out=floats2[:alive])
            reject = mask[:alive]
            np.greater_equal(frac, floats2[:alive], out=reject)
            alias_local = pos_a[:alive]  # free as scratch until the move
            np.take(self._alias_alias, cell, out=alias_local)
            np.copyto(flat, alias_local, where=reject)
            flat += deg
        np.take(self._indices, flat, out=idx[:alive])
        pos_a[:alive] = idx[:alive]
        return alive

    # ------------------------------------------------------------------
    # JIT binding
    # ------------------------------------------------------------------

    def _bind_jit_step(self):
        """Close the graph arrays over the compiled step for this sampler."""
        steps = _jit.get_step_functions()
        if steps is None:
            return None
        indptr, indices, degrees = self._indptr, self._indices, self._degrees
        sqrt_c, inv_sqrt_c = self.sqrt_c, self.inv_sqrt_c
        if self._cumulative is not None:
            base_fn = steps["cdf"]
            cumulative = self._cumulative
            wbase, wtotals = self._weight_base, self._weight_totals

            def step(pos, own, draws, alive, row, scratch, totals):
                return base_fn(
                    pos, own, draws, alive, sqrt_c, inv_sqrt_c,
                    indptr, indices, degrees, cumulative, wbase, wtotals,
                    row, scratch, totals,
                )

        elif self._alias_prob is not None:
            base_fn = steps["alias"]
            prob, alias = self._alias_prob, self._alias_alias

            def step(pos, own, draws, alive, row, scratch, totals):
                return base_fn(
                    pos, own, draws, alive, sqrt_c, inv_sqrt_c,
                    indptr, indices, degrees, prob, alias,
                    row, scratch, totals,
                )

        else:
            base_fn = steps["uniform"]

            def step(pos, own, draws, alive, row, scratch, totals):
                return base_fn(
                    pos, own, draws, alive, sqrt_c, inv_sqrt_c,
                    indptr, indices, degrees, row, scratch, totals,
                )

        return step


class KernelPool:
    """Per-thread :class:`WalkCrashKernel` instances for one graph.

    A kernel's preallocated buffers are shared mutable state — one kernel
    serves one thread at a time.  The executor's thread tier runs shards
    concurrently in one process, so each pool thread needs its own buffer
    set: :meth:`get` returns a kernel owned by the *calling* thread,
    building it through ``factory`` on first use.  Construction is
    serialised under the pool lock, so lazily cached graph state (int64
    degrees, weight totals, alias tables) is materialised by exactly one
    thread; after warm-up ``get()`` is a single dict hit.

    Kernels are keyed by thread ident and kept for the pool's lifetime —
    a persistent executor's worker threads reuse warm buffers across
    queries instead of reallocating per shard.
    """

    def __init__(self, factory: Callable[[], "WalkCrashKernel"]):
        self._factory = factory
        self._lock = threading.Lock()
        self._kernels: Dict[int, "WalkCrashKernel"] = {}

    def get(self) -> "WalkCrashKernel":
        ident = threading.get_ident()
        kernel = self._kernels.get(ident)
        if kernel is None:
            with self._lock:
                kernel = self._kernels.get(ident)
                if kernel is None:
                    kernel = self._factory()
                    self._kernels[ident] = kernel
        return kernel

    def __len__(self) -> int:
        with self._lock:
            return len(self._kernels)


def fused_accumulate_crash_totals(
    graph,
    tree,
    targets: np.ndarray,
    n_trials: int,
    *,
    c: float,
    l_max: int,
    rng,
    walk_chunk: int = DEFAULT_WALK_CHUNK,
    sampler: str = "cdf",
    use_jit: Optional[bool] = None,
) -> np.ndarray:
    """One-shot convenience: build a kernel, accumulate, return totals."""
    kernel = WalkCrashKernel(graph, c, sampler=sampler, use_jit=use_jit)
    return kernel.accumulate(
        tree, targets, n_trials, l_max=l_max, rng=rng, walk_chunk=walk_chunk
    )
