"""Optional numba-compiled step loops for the fused walk–crash kernel.

numba is **not** a dependency of the default install: this module guards the
import and the kernel silently falls back to its pure-NumPy path when numba
is absent.  Install the ``[jit]`` extra (``pip install repro[jit]``) and set
``REPRO_JIT=1`` (or pass ``use_jit=True``) to opt in.

Bit-identity: the compiled loops replay the vectorised arithmetic element
for element — same float-op order (``d · (1/√c)`` then ``· degree``), same
truncating casts, same restricted-bisect-equals-clipped-global-searchsorted
equivalence on the weighted CDF, and a sequential fold that reproduces
``np.bincount``'s occurrence-order accumulation into a zeroed scratch row
followed by an elementwise add into the running totals.  RNG draws are
always taken on the NumPy side (``rng.random(out=...)``) so the stream is
the generator the fixtures pinned, not numba's.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

try:  # pragma: no cover - exercised only when the [jit] extra is installed
    import numba

    _HAVE_NUMBA = True
except ImportError:  # pragma: no cover - default install
    numba = None
    _HAVE_NUMBA = False

__all__ = ["available", "jit_requested", "get_step_functions"]

_TRUTHY = {"1", "true", "yes", "on"}
_steps: Optional[dict] = None


def available() -> bool:
    """Whether numba importable in this interpreter."""
    return _HAVE_NUMBA


def jit_requested() -> bool:
    """Whether the ``REPRO_JIT`` environment toggle asks for the JIT path."""
    return os.environ.get("REPRO_JIT", "").strip().lower() in _TRUTHY


def get_step_functions() -> Optional[dict]:
    """Compile (once) and return the njit step loops, or ``None`` sans numba.

    Keys: ``"uniform"``, ``"cdf"``, ``"alias"`` — each advances ``alive``
    walks one step in place (compaction writes behind the read cursor) and
    folds the crash contributions of the survivors into ``totals`` via the
    zeroed ``scratch`` row, returning the survivor count.
    """
    global _steps
    if not _HAVE_NUMBA:
        return None
    if _steps is None:
        _steps = _compile()
    return _steps


def _compile() -> dict:  # pragma: no cover - requires the [jit] extra
    njit = numba.njit

    @njit(nogil=True)
    def step_uniform(
        pos, own, draws, alive, sqrt_c, inv_sqrt_c,
        indptr, indices, degrees, row, scratch, totals,
    ):
        for j in range(scratch.shape[0]):
            scratch[j] = 0.0
        write = 0
        for i in range(alive):
            d = draws[i]
            if d < sqrt_c:
                p = pos[i]
                dg = degrees[p]
                if dg > 0:
                    r = d * inv_sqrt_c
                    t = r * dg
                    off = np.int64(t)
                    lim = dg - 1
                    if off > lim:
                        off = lim
                    nxt = indices[indptr[p] + off]
                    pos[write] = nxt
                    owner = own[i]
                    own[write] = owner
                    scratch[owner] += row[nxt]
                    write += 1
        for j in range(scratch.shape[0]):
            totals[j] += scratch[j]
        return write

    @njit(nogil=True)
    def step_cdf(
        pos, own, draws, alive, sqrt_c, inv_sqrt_c,
        indptr, indices, degrees, cumulative, wbase, wtotals,
        row, scratch, totals,
    ):
        for j in range(scratch.shape[0]):
            scratch[j] = 0.0
        write = 0
        for i in range(alive):
            d = draws[i]
            if d < sqrt_c:
                p = pos[i]
                dg = degrees[p]
                if dg > 0:
                    r = d * inv_sqrt_c
                    t = wbase[p] + r * wtotals[p]
                    lo = indptr[p]
                    hi = indptr[p + 1]
                    # bisect_right restricted to [lo, hi) equals the global
                    # searchsorted clipped into the block (cumulative is
                    # nondecreasing), which is the stepper's arithmetic.
                    a = lo
                    b = hi
                    while a < b:
                        mid = (a + b) >> 1
                        if t < cumulative[mid]:
                            b = mid
                        else:
                            a = mid + 1
                    if a > hi - 1:
                        a = hi - 1
                    nxt = indices[a]
                    pos[write] = nxt
                    owner = own[i]
                    own[write] = owner
                    scratch[owner] += row[nxt]
                    write += 1
        for j in range(scratch.shape[0]):
            totals[j] += scratch[j]
        return write

    @njit(nogil=True)
    def step_alias(
        pos, own, draws, alive, sqrt_c, inv_sqrt_c,
        indptr, indices, degrees, prob, alias,
        row, scratch, totals,
    ):
        for j in range(scratch.shape[0]):
            scratch[j] = 0.0
        write = 0
        for i in range(alive):
            d = draws[i]
            if d < sqrt_c:
                p = pos[i]
                dg = degrees[p]
                if dg > 0:
                    r = d * inv_sqrt_c
                    u = r * dg
                    cell = np.int64(u)
                    lim = dg - 1
                    if cell > lim:
                        cell = lim
                    frac = u - cell
                    lo = indptr[p]
                    if frac >= prob[lo + cell]:
                        cell = alias[lo + cell]
                    nxt = indices[lo + cell]
                    pos[write] = nxt
                    owner = own[i]
                    own[write] = owner
                    scratch[owner] += row[nxt]
                    write += 1
        for j in range(scratch.shape[0]):
            totals[j] += scratch[j]
        return write

    return {"uniform": step_uniform, "cdf": step_cdf, "alias": step_alias}
