"""√c-walk sampling (paper Definition 1), scalar and vectorised.

A √c-walk stops at each step with probability ``1 - √c`` and otherwise moves
to a uniformly random in-neighbour of the current node.  The scalar sampler
(:func:`sample_sqrt_c_walk`) mirrors the definition literally and is used by
tests and small baselines; the batch engine (:class:`BatchWalkStepper`)
advances thousands of walks per NumPy step and powers CrashSim and READS.
"""

from repro.walks.engine import BatchWalkStepper, WalkBatch
from repro.walks.kernel import (
    SAMPLERS,
    WalkCrashKernel,
    fused_accumulate_crash_totals,
)
from repro.walks.sqrt_c import (
    expected_walk_length,
    sample_sqrt_c_walk,
    sample_walk_length,
)

__all__ = [
    "sample_sqrt_c_walk",
    "sample_walk_length",
    "expected_walk_length",
    "BatchWalkStepper",
    "WalkBatch",
    "WalkCrashKernel",
    "fused_accumulate_crash_totals",
    "SAMPLERS",
]
