"""Scalar √c-walk sampling and walk-length distribution helpers.

Lemma 1 of the paper rests on the walk length following a geometric
distribution ``P(l = k) = (1 - √c)(√c)^(k-1)``; the helpers here expose that
distribution so tests can check the implementation against theory.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.errors import ParameterError
from repro.graph.digraph import DiGraph
from repro.rng import RngLike, ensure_rng

__all__ = [
    "sample_sqrt_c_walk",
    "sample_walk_length",
    "expected_walk_length",
    "walk_length_cdf",
]


def _validate_decay(c: float) -> float:
    if not 0.0 < c < 1.0:
        raise ParameterError(f"decay factor c must be in (0, 1), got {c}")
    return float(c)


def sample_sqrt_c_walk(
    graph: DiGraph,
    start: int,
    c: float,
    *,
    max_length: Optional[int] = None,
    seed: RngLike = None,
) -> List[int]:
    """Sample one reverse √c-walk from ``start``.

    Returns the visited node sequence ``[start, v_1, v_2, ...]``; the walk
    terminates when the stop coin (probability ``1 - √c``) fires, when the
    current node has no in-neighbours, or when ``max_length`` steps have
    been taken (the paper's ``l_max`` truncation).
    """
    c = _validate_decay(c)
    rng = ensure_rng(seed)
    sqrt_c = math.sqrt(c)
    path = [int(start)]
    current = int(start)
    weighted = graph.is_weighted
    while max_length is None or len(path) - 1 < max_length:
        if rng.random() >= sqrt_c:
            break
        neighbors = graph.in_neighbors(current)
        if neighbors.size == 0:
            break
        if weighted:
            block = slice(
                int(graph.in_indptr[current]), int(graph.in_indptr[current + 1])
            )
            weights = graph.in_weights[block]
            pick = int(
                np.searchsorted(
                    np.cumsum(weights), rng.random() * weights.sum(), side="right"
                )
            )
            pick = min(pick, neighbors.size - 1)
        else:
            pick = int(rng.integers(0, neighbors.size))
        current = int(neighbors[pick])
        path.append(current)
    return path


def sample_walk_length(c: float, *, seed: RngLike = None, size: int = 1) -> np.ndarray:
    """Sample √c-walk lengths from the geometric law of Lemma 1.

    Lengths count steps taken, so 0 means the walk stopped immediately.
    """
    c = _validate_decay(c)
    rng = ensure_rng(seed)
    # numpy's geometric counts trials to first success (≥ 1); the number of
    # *continuations* before the stop coin fires is that minus one.
    return rng.geometric(1.0 - math.sqrt(c), size=size) - 1


def expected_walk_length(c: float) -> float:
    """``E[l] = √c / (1 - √c)`` continuations per walk."""
    c = _validate_decay(c)
    sqrt_c = math.sqrt(c)
    return sqrt_c / (1.0 - sqrt_c)


def walk_length_cdf(c: float, length: int) -> float:
    """``Pr(l ≤ length)`` under the geometric law: ``1 - (√c)^(length+1)``.

    Matches the paper's ``p = Σ_{k=1..l_max} (√c)^(k-1) (1-√c)`` when
    ``length = l_max - 1`` walk continuations, i.e. ``l_max`` coin flips.
    """
    c = _validate_decay(c)
    if length < 0:
        return 0.0
    return 1.0 - math.sqrt(c) ** (length + 1)
