"""repro — a reproduction of *CrashSim: An Efficient Algorithm for Computing
SimRank over Static and Temporal Graphs* (Li et al., ICDE 2020).

Quickstart
----------

>>> from repro import GraphBuilder, crashsim, CrashSimParams
>>> builder = GraphBuilder(directed=True)
>>> builder.add_edges([("b", "a"), ("c", "a"), ("a", "b"), ("d", "c")])
>>> graph = builder.build()
>>> result = crashsim(
...     graph,
...     builder.node_id("a"),
...     params=CrashSimParams(c=0.6, epsilon=0.1, n_r_override=200),
...     seed=7,
... )
>>> sorted(result.as_dict()) == [builder.node_id(x) for x in ("b", "c", "d")]
True

The package layout mirrors the paper (see DESIGN.md for the full map):

* :mod:`repro.graph` — CSR digraphs, temporal snapshot graphs, generators;
* :mod:`repro.walks` — √c-walk sampling, scalar and batch;
* :mod:`repro.core` — CrashSim, revReach, CrashSim-T, temporal queries;
* :mod:`repro.baselines` — Power Method, naive MC, ProbeSim, SLING, READS;
* :mod:`repro.datasets` — synthetic SNAP stand-ins and the example graphs;
* :mod:`repro.metrics` — ME / precision / timing;
* :mod:`repro.experiments` — regenerators for every paper table and figure;
* :mod:`repro.serve` — the long-lived query engine behind ``repro serve``.
"""

import logging as _logging

# Library etiquette: repro modules log under the "repro" hierarchy but never
# configure handlers — a NullHandler here keeps the records silent until the
# application opts in (logging.basicConfig or a handler on "repro").
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

from repro.baselines import (
    ReadsIndex,
    SlingIndex,
    naive_monte_carlo,
    power_method_all_pairs,
    power_method_single_source,
    probesim,
)
from repro.api import ScoreVector, single_pair, single_source
from repro.core import (
    AdaptiveStopper,
    BatchQuery,
    CompositeQuery,
    CrashSimParams,
    CrashSimResult,
    DurableTopKResult,
    TemporalQueryResult,
    TemporalQuerySession,
    ThresholdQuery,
    TopKResult,
    TrendQuery,
    crashsim,
    crashsim_batch,
    crashsim_multi_source,
    crashsim_t,
    crashsim_topk,
    durable_topk,
    revreach_levels,
    revreach_queue,
    build_hub_cache,
    exact_expectation,
)
from repro.errors import (
    DeadlineExceededError,
    DegradedResultWarning,
    DispatcherError,
    EngineClosedError,
    EngineOverloadedError,
    ReproError,
)
from repro.serve import BreakerState, Engine, EngineConfig
from repro.graph import (
    DiGraph,
    EdgeDelta,
    GraphBuilder,
    TemporalGraph,
    TemporalGraphBuilder,
)
from repro.walks import WalkCrashKernel

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # graph substrate
    "DiGraph",
    "GraphBuilder",
    "TemporalGraph",
    "TemporalGraphBuilder",
    "EdgeDelta",
    # core
    "CrashSimParams",
    "CrashSimResult",
    "crashsim",
    "BatchQuery",
    "crashsim_batch",
    "crashsim_multi_source",
    "crashsim_t",
    "crashsim_topk",
    "TopKResult",
    "durable_topk",
    "DurableTopKResult",
    "TemporalQueryResult",
    "ThresholdQuery",
    "TrendQuery",
    "CompositeQuery",
    "TemporalQuerySession",
    "revreach_levels",
    "revreach_queue",
    "AdaptiveStopper",
    "build_hub_cache",
    "exact_expectation",
    "WalkCrashKernel",
    # facade
    "single_source",
    "single_pair",
    "ScoreVector",
    # serving
    "Engine",
    "EngineConfig",
    "BreakerState",
    # baselines
    "power_method_all_pairs",
    "power_method_single_source",
    "naive_monte_carlo",
    "probesim",
    "SlingIndex",
    "ReadsIndex",
    # errors
    "ReproError",
    "DeadlineExceededError",
    "DegradedResultWarning",
    "EngineClosedError",
    "EngineOverloadedError",
    "DispatcherError",
]
