"""The paper's running-example graphs (Fig. 1 / Fig. 2), reconstructed.

The published figure is not machine-readable, but Example 2's arithmetic
pins the structure: with ``c = 0.25`` the worked revReach tree of source A
requires

* ``I(A) = {B, C}``, ``I(B) = {A, E}``, ``I(C) = {A, B, D}``,
* ``I(D) = {B, C}``, ``I(E) = {B, H}``, ``I(H) = {F, G}``,

which the edge list below satisfies; ``tests/datasets/test_example_graph.py``
re-derives every probability the paper states (``U(1,B) = 0.25``,
``U(1,C) = 0.167``, ``U(2,E) = 0.0625``, ``U(2,B) = U(2,D) = 0.0417``,
``U(3,H) = 0.0156``, ``U(3,A) = U(3,E) = U(3,B) = 0.0104``, and the walk
``W(C) = (C, D, B, A)`` crashing with probability 0.0521).

The temporal example (Fig. 1, Examples 3–4) shares the node set: snapshot 0
additionally has ``H → F``, snapshot 1 drops it, snapshot 2 adds ``G → F``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.graph.digraph import DiGraph
from repro.graph.temporal import TemporalGraph, TemporalGraphBuilder

__all__ = ["EXAMPLE_NODES", "example_graph", "example_temporal_graph"]

EXAMPLE_NODES: Tuple[str, ...] = ("A", "B", "C", "D", "E", "F", "G", "H")

_BASE_EDGES: List[Tuple[str, str]] = [
    ("A", "B"),
    ("A", "C"),
    ("B", "A"),
    ("B", "C"),
    ("B", "D"),
    ("B", "E"),
    ("C", "A"),
    ("C", "D"),
    ("D", "C"),
    ("E", "B"),
    ("E", "G"),
    ("F", "H"),
    ("G", "F"),
    ("G", "H"),
    ("H", "E"),
]


def node_id(label: str) -> int:
    """Dense id of an example node label (``A`` → 0, ..., ``H`` → 7)."""
    return EXAMPLE_NODES.index(label)


def example_graph() -> DiGraph:
    """The static sample graph of Fig. 2 (8 nodes, 15 directed edges)."""
    edges = [(node_id(s), node_id(t)) for s, t in _BASE_EDGES]
    return DiGraph.from_edges(
        len(EXAMPLE_NODES), edges, directed=True, node_labels=EXAMPLE_NODES
    )


# Fig. 1's temporal toy graph is distinct from Fig. 2's static sample: the
# pruning examples need F to have no out-neighbours (Example 3) and the F
# edge churn to stay outside the l_max = 2 reverse balls of A and E
# (Example 4).  These edges satisfy both.
_TEMPORAL_BASE_EDGES: List[Tuple[str, str]] = [
    ("B", "A"),
    ("C", "A"),
    ("D", "B"),
    ("E", "C"),
    ("H", "E"),
    ("G", "H"),
    ("A", "D"),
]


def example_temporal_graph() -> TemporalGraph:
    """The 3-snapshot temporal graph of Fig. 1 (Examples 3 and 4).

    Snapshot 0: base edges plus ``H → F``;
    snapshot 1: drops ``H → F`` (Example 3's delta-pruning delete — the
    affected area is F alone since F has no out-neighbours);
    snapshot 2: adds ``G → F`` (Example 4's difference-pruning insert — the
    reverse reachable trees of A and E are untouched).
    """
    base = {(node_id(s), node_id(t)) for s, t in _TEMPORAL_BASE_EDGES}
    h_to_f = (node_id("H"), node_id("F"))
    g_to_f = (node_id("G"), node_id("F"))
    builder = TemporalGraphBuilder(
        len(EXAMPLE_NODES),
        directed=True,
        node_labels=EXAMPLE_NODES,
        name="paper-example",
    )
    builder.push_snapshot(base | {h_to_f})
    builder.push_delta(removed=[h_to_f])
    builder.push_delta(added=[g_to_f])
    return builder.build()
