"""Deterministic Zipf-skewed power-law graphs for the adaptive benchmarks.

The adaptive sampler's hub-contribution cache (:mod:`repro.core.adaptive`)
pays off exactly when a few nodes absorb a large fraction of all √c-walk
traffic.  The generators here produce that regime on demand: both edge
endpoints are drawn from the *same* Zipf ranking, so the heavy in-degree
nodes (where the reverse-tree mass concentrates and the hub cache stores
its tails) are also heavy out-degree nodes (where forward walks land).

Everything is vectorised and deterministic for a fixed seed — the pinned
50k-node fixture backs ``benchmarks/bench_adaptive.py`` and the perf-smoke
gate, so its byte layout must never drift.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.rng import RngLike, ensure_rng

__all__ = ["zipf_powerlaw", "powerlaw_fixture", "POWERLAW_FIXTURE_SEED"]

#: Seed of the pinned benchmark fixture.  Changing it invalidates the
#: recorded adaptive perf-smoke baseline — treat it as frozen.
POWERLAW_FIXTURE_SEED = 1207


def zipf_powerlaw(
    num_nodes: int,
    num_edges: int,
    *,
    exponent: float = 1.2,
    seed: RngLike = None,
) -> DiGraph:
    """Directed graph with Zipf-distributed endpoints on both sides.

    ``num_edges`` edge draws are sampled with both endpoints independently
    Zipf(``exponent``)-distributed over node ids (node 0 is the heaviest);
    self-loops are dropped and duplicate draws collapse, so the realised
    edge count is at most ``num_edges``.  Deterministic for a fixed seed:
    the same ``(num_nodes, num_edges, exponent, seed)`` always yields a
    byte-identical graph.
    """
    if num_nodes < 2:
        raise GraphError(f"need at least two nodes, got {num_nodes}")
    if num_edges < 1:
        raise GraphError(f"num_edges must be positive, got {num_edges}")
    if exponent <= 0:
        raise GraphError(f"exponent must be positive, got {exponent}")
    rng = ensure_rng(seed)
    ranks = np.arange(1, num_nodes + 1, dtype=np.float64)
    cdf = np.cumsum(ranks**-exponent)
    cdf /= cdf[-1]
    src = np.searchsorted(cdf, rng.random(num_edges), side="right")
    dst = np.searchsorted(cdf, rng.random(num_edges), side="right")
    keep = src != dst
    # Collapse duplicates on a packed (src, dst) key; np.unique sorts, so
    # the edge order fed to from_edges is canonical regardless of draw
    # order — part of the byte-determinism contract.
    keys = np.unique(src[keep] * np.int64(num_nodes) + dst[keep])
    edges = np.stack([keys // num_nodes, keys % num_nodes], axis=1)
    return DiGraph.from_edges(num_nodes, edges, dedup=False)


@lru_cache(maxsize=4)
def powerlaw_fixture(
    num_nodes: int = 50_000, num_edges: int = 300_000
) -> DiGraph:
    """The pinned power-law benchmark fixture (cached per process).

    50k nodes / 300k requested edges at the frozen
    :data:`POWERLAW_FIXTURE_SEED` — the graph the adaptive trials-saved
    numbers in ``BENCH_adaptive.json`` and ``baselines/adaptive_smoke.json``
    are measured on.
    """
    return zipf_powerlaw(num_nodes, num_edges, seed=POWERLAW_FIXTURE_SEED)
