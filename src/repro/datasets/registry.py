"""Registry of the five paper datasets and their synthetic stand-ins.

Each :class:`DatasetSpec` records the paper's Table III statistics and a
recipe that generates a structurally matched synthetic temporal graph at a
chosen ``scale`` (fraction of the paper's node count — 1.0 reproduces the
published sizes, the default 0.1 keeps pure-Python runtimes laptop-friendly,
and the experiment harness's quick mode drops to 0.02).

Recipes:

=========  ==========  =======================================  ============
name       type        static generator                          temporal
=========  ==========  =======================================  ============
as733      undirected  preferential attachment (m0 = 2)          growing
as_caida   directed    preferential attachment (m0 = 4)          growing
wiki_vote  directed    copying model (out 14, copy 0.6)          churn 0.5%
hepth      undirected  preferential attachment (m0 = 3)          churn 0.5%
hepph      directed    copying model (out 12, copy 0.55)         churn 0.5%
=========  ==========  =======================================  ============
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import DatasetError
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    copying_model,
    evolve_snapshots,
    growing_snapshots,
    preferential_attachment,
)
from repro.graph.temporal import TemporalGraph
from repro.rng import RngLike, ensure_rng

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "dataset_names",
    "load_dataset",
    "load_static_dataset",
]


@dataclass(frozen=True)
class DatasetSpec:
    """One paper dataset: published statistics plus the synthetic recipe."""

    name: str
    directed: bool
    paper_nodes: int
    paper_edges: int
    paper_snapshots: int
    temporal_kind: str  # "growing" or "churn"
    static_generator: Callable[[int, RngLike], DiGraph]

    def scaled_nodes(self, scale: float) -> int:
        if not 0.0 < scale <= 1.0:
            raise DatasetError(f"scale must be in (0, 1], got {scale}")
        return max(32, int(round(self.paper_nodes * scale)))

    def generate(
        self,
        *,
        scale: float = 0.1,
        num_snapshots: Optional[int] = None,
        seed: RngLike = None,
    ) -> TemporalGraph:
        """Generate the synthetic temporal stand-in."""
        rng = ensure_rng(seed)
        num_nodes = self.scaled_nodes(scale)
        snapshots = num_snapshots if num_snapshots is not None else self.paper_snapshots
        if snapshots < 1:
            raise DatasetError(f"num_snapshots must be positive, got {snapshots}")
        static = self.static_generator(num_nodes, rng)
        if self.temporal_kind == "growing":
            return growing_snapshots(
                static, snapshots, initial_fraction=0.6, seed=rng, name=self.name
            )
        if self.temporal_kind == "churn":
            return evolve_snapshots(
                static, snapshots, churn_rate=0.005, seed=rng, name=self.name
            )
        raise DatasetError(f"unknown temporal kind {self.temporal_kind!r}")


def _as733_static(num_nodes: int, rng: RngLike) -> DiGraph:
    return preferential_attachment(num_nodes, 2, directed=False, seed=rng)


def _as_caida_static(num_nodes: int, rng: RngLike) -> DiGraph:
    return preferential_attachment(num_nodes, 4, directed=True, seed=rng)


def _wiki_vote_static(num_nodes: int, rng: RngLike) -> DiGraph:
    return copying_model(
        num_nodes, 14, copy_probability=0.6, directed=True, seed=rng
    )


def _hepth_static(num_nodes: int, rng: RngLike) -> DiGraph:
    return preferential_attachment(num_nodes, 3, directed=False, seed=rng)


def _hepph_static(num_nodes: int, rng: RngLike) -> DiGraph:
    return copying_model(
        num_nodes, 12, copy_probability=0.55, directed=True, seed=rng
    )


DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            name="as733",
            directed=False,
            paper_nodes=6474,
            paper_edges=13233,
            paper_snapshots=733,
            temporal_kind="growing",
            static_generator=_as733_static,
        ),
        DatasetSpec(
            name="as_caida",
            directed=True,
            paper_nodes=26475,
            paper_edges=106762,
            paper_snapshots=122,
            temporal_kind="growing",
            static_generator=_as_caida_static,
        ),
        DatasetSpec(
            name="wiki_vote",
            directed=True,
            paper_nodes=7115,
            paper_edges=103689,
            paper_snapshots=100,
            temporal_kind="churn",
            static_generator=_wiki_vote_static,
        ),
        DatasetSpec(
            name="hepth",
            directed=False,
            paper_nodes=9877,
            paper_edges=25998,
            paper_snapshots=100,
            temporal_kind="churn",
            static_generator=_hepth_static,
        ),
        DatasetSpec(
            name="hepph",
            directed=True,
            paper_nodes=34546,
            paper_edges=421578,
            paper_snapshots=100,
            temporal_kind="churn",
            static_generator=_hepph_static,
        ),
    ]
}


def dataset_names() -> List[str]:
    """Registered dataset names in the paper's Table III order."""
    return list(DATASETS)


def load_dataset(
    name: str,
    *,
    scale: float = 0.1,
    num_snapshots: Optional[int] = None,
    seed: RngLike = 0,
) -> TemporalGraph:
    """Generate (deterministically, for a fixed seed) a synthetic dataset.

    Parameters
    ----------
    name:
        One of :func:`dataset_names`.
    scale:
        Fraction of the paper's node count (default 0.1).
    num_snapshots:
        Horizon override; defaults to the paper's snapshot count.
    seed:
        Generation seed (default 0, so all callers share one graph).
    """
    try:
        spec = DATASETS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; expected one of {dataset_names()}"
        ) from None
    return spec.generate(scale=scale, num_snapshots=num_snapshots, seed=seed)


def load_static_dataset(
    name: str, *, scale: float = 0.1, seed: RngLike = 0
) -> DiGraph:
    """The dataset's full static graph (the paper's single-snapshot setting
    for Fig. 5) without temporal synthesis."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; expected one of {dataset_names()}"
        ) from None
    rng = ensure_rng(seed)
    return spec.static_generator(spec.scaled_nodes(scale), rng)
