"""Datasets: synthetic SNAP equivalents plus the paper's example graphs.

The paper evaluates on AS-733, AS-Caida, Wiki-Vote, HepTh, and HepPh from
the Stanford Large Network Dataset Collection.  Without network access this
package generates structurally matched synthetic stand-ins at a
configurable scale (see DESIGN.md §3); real SNAP files load through
:mod:`repro.graph.io` and slot into the same experiment harness.
"""

from repro.datasets.example_graph import (
    EXAMPLE_NODES,
    example_graph,
    example_temporal_graph,
)
from repro.datasets.powerlaw import (
    POWERLAW_FIXTURE_SEED,
    powerlaw_fixture,
    zipf_powerlaw,
)
from repro.datasets.registry import (
    DATASETS,
    DatasetSpec,
    dataset_names,
    load_dataset,
)

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "load_dataset",
    "example_graph",
    "example_temporal_graph",
    "EXAMPLE_NODES",
    "POWERLAW_FIXTURE_SEED",
    "powerlaw_fixture",
    "zipf_powerlaw",
]
