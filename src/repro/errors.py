"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Subclasses are grouped by
subsystem rather than by failure mode — callers typically want to know
*which layer* misbehaved (graph construction, parameter validation, query
evaluation) and the message carries the detail.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "NodeNotFoundError",
    "EdgeNotFoundError",
    "FrozenGraphError",
    "TemporalError",
    "SnapshotIndexError",
    "ParameterError",
    "QueryError",
    "DatasetError",
    "ExperimentError",
    "DeadlineExceededError",
    "DegradedResultWarning",
    "EngineClosedError",
    "EngineOverloadedError",
    "DispatcherError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """A static-graph operation failed (construction, lookup, mutation)."""


class NodeNotFoundError(GraphError, KeyError):
    """A node id or label was not present in the graph."""

    def __init__(self, node: object):
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """An edge was not present in the graph."""

    def __init__(self, source: object, target: object):
        super().__init__(f"edge {source!r} -> {target!r} is not in the graph")
        self.source = source
        self.target = target


class FrozenGraphError(GraphError):
    """A mutation was attempted on an immutable (built) graph."""


class TemporalError(ReproError):
    """A temporal-graph operation failed."""


class SnapshotIndexError(TemporalError, IndexError):
    """A snapshot index was outside the temporal graph's horizon."""

    def __init__(self, index: int, horizon: int):
        super().__init__(
            f"snapshot index {index} is outside the horizon [0, {horizon})"
        )
        self.index = index
        self.horizon = horizon


class ParameterError(ReproError, ValueError):
    """An algorithm parameter was invalid (e.g. ε ≤ 0, c outside (0, 1))."""


class QueryError(ReproError):
    """A temporal SimRank query was malformed or unanswerable."""


class DeadlineExceededError(ReproError, TimeoutError):
    """A query's deadline elapsed before *any* usable result existed.

    Raised only when nothing can be salvaged — e.g. no trial shard (or no
    leading snapshot) completed inside the budget.  When a prefix of the
    Monte-Carlo work did complete, the query instead returns a degraded
    result (``degraded=True``, wider ``achieved_epsilon``) and emits a
    :class:`DegradedResultWarning`.
    """

    def __init__(self, message: str, *, deadline: float = None, elapsed: float = None):
        super().__init__(message)
        self.deadline = deadline
        self.elapsed = elapsed


class DegradedResultWarning(UserWarning):
    """A query returned a valid but wider-ε estimate from partial trials.

    Emitted when shards were lost to a deadline, worker death, or in-shard
    errors and the survivors still form an unbiased estimator (Lemma 3 at
    the completed trial count).  Carries no payload — the result object's
    ``trials_completed`` / ``achieved_epsilon`` fields hold the numbers.
    """


class EngineClosedError(ReproError, RuntimeError):
    """A query was submitted to a serving engine that has shut down.

    Requests already admitted when shutdown began are drained and answered;
    this error marks only submissions that arrived after (or raced past)
    the close.  Callers in a retry loop should treat it as permanent.
    """


class EngineOverloadedError(ReproError, RuntimeError):
    """A submission was shed because the engine's admission queue was full.

    Raised by :meth:`repro.serve.Engine.submit` when
    ``EngineConfig.max_queue_depth`` is set and the queue is at capacity
    (``shed_policy="reject"``), or set on the future of an already-queued
    deadline-less request displaced by a newer one
    (``shed_policy="shed-oldest"``).  Unlike
    :class:`EngineClosedError` this is *transient*: ``retry_after`` is the
    engine's estimate (seconds) of when capacity will free up, and the
    HTTP front door maps it to ``429`` with a ``Retry-After`` header.
    """

    def __init__(self, message: str, *, retry_after: float = None):
        super().__init__(message)
        self.retry_after = retry_after


class DispatcherError(ReproError, RuntimeError):
    """The engine's dispatcher thread died or hung while serving a request.

    Set on the futures of the requests that were in flight when the
    watchdog detected the dead/stalled dispatcher and restarted it.
    Queued-but-not-yet-dispatched requests are *not* failed — the restarted
    dispatcher serves them normally — so callers seeing this error know
    their specific request was the one being served when the thread died
    and may safely resubmit.
    """


class DatasetError(ReproError):
    """A dataset could not be generated, loaded, or parsed."""


class ExperimentError(ReproError):
    """An experiment configuration or run failed."""
