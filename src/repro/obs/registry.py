"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` holds every metric the process exports.  The
design optimises the *hot path* — an increment from inside the walk kernel
or the engine dispatcher — at the expense of the cold one (scrapes):

* **lock sharding** — each metric owns its own ``threading.Lock``; an
  increment never contends with increments on other metrics, and the
  registry-level lock is touched only at registration and snapshot time;
* **batch first** — instrumented call sites accumulate into plain local
  integers and flush once per call (`Counter.inc(n)`), so the per-walk /
  per-step cost of observability is zero and the per-*call* cost is a few
  hundred nanoseconds of lock traffic;
* **kill switch** — :func:`set_enabled` (or ``REPRO_OBS=0`` in the
  environment) turns every mutation into an early return, which is what
  the ``bench_obs`` overhead gate measures against.

Metrics never touch the RNG, never reorder work, and never raise from the
mutation path, so instrumented runs are byte-identical to uninstrumented
ones — pinned by the seed-behaviour fixtures.

Exposure: :meth:`MetricsRegistry.snapshot` (plain dict, for benches and
JSON dumps), :meth:`MetricsRegistry.dump_json`, and
:func:`render_prometheus` (the text exposition format ``GET /metrics``
serves).
"""

from __future__ import annotations

import json
import math
import os
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ParameterError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "get_registry",
    "render_prometheus",
    "set_enabled",
    "obs_enabled",
]

#: Latency histogram bounds (seconds) — sub-millisecond to tens of seconds,
#: roughly logarithmic like the Prometheus client defaults.
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Small-cardinality size histogram bounds (batch sizes, shard counts).
DEFAULT_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)

_VALID_NAME = None  # compiled lazily; see _check_name

# Global mutation switch.  A module-level bool read without a lock: stale
# reads during a toggle only mean a few increments land on the other side
# of the switch, which the overhead bench tolerates by construction.
_ENABLED = os.environ.get("REPRO_OBS", "1").lower() not in ("0", "false", "off")


def set_enabled(enabled: bool) -> bool:
    """Flip the process-wide mutation switch; returns the previous value.

    Disabling does not clear existing values — scrapes keep serving the
    last state — it only makes ``inc``/``set``/``observe`` early-return.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


def obs_enabled() -> bool:
    """Whether metric mutations are currently recorded."""
    return _ENABLED


def _check_name(name: str) -> str:
    global _VALID_NAME
    if _VALID_NAME is None:
        import re

        _VALID_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
    if not _VALID_NAME.match(name):
        raise ParameterError(
            f"invalid metric name {name!r}; must match "
            "[a-zA-Z_:][a-zA-Z0-9_:]*"
        )
    return name


def _label_key(labelkv) -> Tuple[Tuple[str, str], ...]:
    """Normalise ``labels(mode="thread")`` kwargs into a sorted key tuple."""
    if not labelkv:
        raise ParameterError("labels() requires at least one label")
    items = []
    for key, value in labelkv.items():
        _check_name(key)
        value = str(value)
        if '"' in value or "\n" in value or "\\" in value:
            raise ParameterError(
                f"label value {value!r} for {key!r} may not contain "
                'quotes, backslashes, or newlines'
            )
        items.append((key, value))
    return tuple(sorted(items))


def format_labels(key: Tuple[Tuple[str, str], ...]) -> str:
    """``(("mode", "thread"),)`` -> ``{mode="thread"}``."""
    return "{" + ",".join(f'{k}="{v}"' for k, v in key) + "}"


class _LabelledMixin:
    """Shared ``labels()`` machinery for Counter and Gauge.

    ``metric.labels(mode="thread")`` returns a *child* metric of the same
    kind keyed by the sorted label set — created once, then reused — so a
    hot path can cache the child and pay the same single-lock ``inc`` as
    an unlabelled metric.  Children ride along with the parent: snapshots
    key them as ``name{k="v"}`` and the Prometheus exposition renders them
    after the parent's bare sample (the unlabelled parent keeps the
    cross-label total, so existing dashboards never break).
    """

    __slots__ = ()

    def labels(self, **labelkv):
        key = _label_key(labelkv)
        with self._lock:
            if self._children is None:
                self._children = {}
            child = self._children.get(key)
            if child is None:
                child = type(self)(self.name, self.help)
                child._labelset = key
                self._children[key] = child
        return child

    def children(self) -> List[Tuple[Tuple[Tuple[str, str], ...], object]]:
        """``[(label_key, child_metric), ...]`` sorted by label key."""
        with self._lock:
            if not self._children:
                return []
            return sorted(self._children.items())


class Counter(_LabelledMixin):
    """A monotonically increasing count (events, items, bytes)."""

    kind = "counter"
    __slots__ = ("name", "help", "_lock", "_value", "_children", "_labelset")

    def __init__(self, name: str, help: str = ""):
        self.name = _check_name(name)
        self.help = help
        self._lock = threading.Lock()
        self._value = 0
        self._children = None
        self._labelset = None

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if not _ENABLED:
            return
        if amount < 0:
            raise ParameterError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self):
        with self._lock:
            return self._value

    def snapshot_value(self):
        return self.value


class Gauge(_LabelledMixin):
    """A value that goes up and down (queue depth, cache entries)."""

    kind = "gauge"
    __slots__ = ("name", "help", "_lock", "_value", "_children", "_labelset")

    def __init__(self, name: str, help: str = ""):
        self.name = _check_name(name)
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0
        self._children = None
        self._labelset = None

    def set(self, value: float) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    @property
    def value(self):
        with self._lock:
            return self._value

    def snapshot_value(self):
        return self.value


class Histogram:
    """Fixed-bucket distribution with quantile *estimation*.

    Observations land in the first bucket whose upper bound is ≥ the value
    (cumulative-bucket semantics, exactly Prometheus's); ``percentile(q)``
    linearly interpolates inside the winning bucket, so estimates are exact
    at bucket boundaries and bounded by the bucket width in between —
    fine for latency reporting, not for accounting.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "buckets", "_lock", "_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        self.name = _check_name(name)
        self.help = help
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ParameterError(f"histogram {name} needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ParameterError(
                f"histogram {name} buckets must be strictly increasing"
            )
        self.buckets = bounds
        self._lock = threading.Lock()
        # One slot per finite bound plus the +Inf overflow slot.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if not _ENABLED:
            return
        value = float(value)
        index = 0
        for bound in self.buckets:
            if value <= bound:
                break
            index += 1
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def _state(self) -> Tuple[List[int], float, int]:
        with self._lock:
            return list(self._counts), self._sum, self._count

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (``0 ≤ q ≤ 100``), 0.0 when empty.

        Linear interpolation within the winning bucket; observations past
        the last finite bound are reported *as* that bound (the histogram
        cannot see further).
        """
        if not 0 <= q <= 100:
            raise ParameterError(f"percentile must be in [0, 100], got {q}")
        counts, _, total = self._state()
        if total == 0:
            return 0.0
        rank = (q / 100.0) * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            lower_cumulative = cumulative
            cumulative += bucket_count
            if cumulative >= rank:
                if index >= len(self.buckets):
                    return self.buckets[-1]
                upper = self.buckets[index]
                lower = self.buckets[index - 1] if index > 0 else 0.0
                if bucket_count == 0:  # pragma: no cover - guarded above
                    return upper
                fraction = (rank - lower_cumulative) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return self.buckets[-1]  # pragma: no cover - rank <= total always

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p90(self) -> float:
        return self.percentile(90)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def snapshot_value(self) -> Dict[str, object]:
        counts, total_sum, total = self._state()
        return {
            "count": total,
            "sum": total_sum,
            "buckets": {
                ("+Inf" if index >= len(self.buckets) else repr(self.buckets[index])): c
                for index, c in enumerate(counts)
            },
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """A named collection of metrics with get-or-create registration.

    ``counter``/``gauge``/``histogram`` are idempotent: the first call
    creates, later calls with the same name return the same object (a
    *kind* mismatch raises).  The registry lock guards only the name table;
    every value mutation uses the metric's own lock.
    """

    def __init__(self):
        self._metrics: "Dict[str, object]" = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, factory, kind: str):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None:
                if metric.kind != kind:
                    raise ParameterError(
                        f"metric {name!r} already registered as "
                        f"{metric.kind}, not {kind}"
                    )
                return metric
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, help), "counter")

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help), "gauge")

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, help, buckets), "histogram"
        )

    def get(self, name: str):
        """The registered metric, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def __iter__(self):
        with self._lock:
            metrics = list(self._metrics.values())
        return iter(sorted(metrics, key=lambda metric: metric.name))

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def snapshot(self) -> Dict[str, object]:
        """``{name: value}`` for every metric (histograms expand to dicts).

        A point-in-time copy: safe to serialise, mutate, or diff against a
        later snapshot (counters are monotonic, so diffs are rates).
        Labelled children appear under ``name{k="v"}`` keys next to the
        parent's cross-label total.
        """
        out: Dict[str, object] = {}
        for metric in self:
            out[metric.name] = metric.snapshot_value()
            if isinstance(metric, _LabelledMixin):
                for key, child in metric.children():
                    out[metric.name + format_labels(key)] = (
                        child.snapshot_value()
                    )
        return out

    def dump_json(self, *, indent: Optional[int] = 1) -> str:
        """The snapshot as a JSON document (for benches and ``--stats-out``)."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(*registries: MetricsRegistry) -> str:
    """Text exposition (format 0.0.4) of every metric in the registries.

    Multiple registries concatenate — the serve endpoint merges the
    process-wide registry with the engine's own — so their metric names
    must not collide (the engine prefixes everything ``repro_engine_``).
    """
    lines: List[str] = []
    for registry in registries:
        for metric in registry:
            if metric.help:
                escaped = metric.help.replace("\\", "\\\\").replace("\n", "\\n")
                lines.append(f"# HELP {metric.name} {escaped}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if metric.kind == "histogram":
                counts, total_sum, total = metric._state()
                cumulative = 0
                for bound, count in zip(metric.buckets, counts):
                    cumulative += count
                    lines.append(
                        f'{metric.name}_bucket{{le="{_format_value(bound)}"}}'
                        f" {cumulative}"
                    )
                lines.append(f'{metric.name}_bucket{{le="+Inf"}} {total}')
                lines.append(f"{metric.name}_sum {_format_value(total_sum)}")
                lines.append(f"{metric.name}_count {total}")
            else:
                lines.append(f"{metric.name} {_format_value(metric.value)}")
                if isinstance(metric, _LabelledMixin):
                    for key, child in metric.children():
                        lines.append(
                            f"{metric.name}{format_labels(key)} "
                            f"{_format_value(child.value)}"
                        )
    return "\n".join(lines) + "\n"


#: The process-wide default registry every instrumented subsystem uses.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry (kernel, trees, executor families)."""
    return REGISTRY
