"""Lightweight per-query tracing: nested timed phases, zero cost when off.

A :class:`Trace` is a tree of :class:`Span` records — ``tree_build`` inside
``batch_coalesce`` inside the query root — built by the instrumented code
itself through the *ambient* API:

>>> from repro import obs
>>> trace = obs.Trace("demo")
>>> with trace.activate():
...     with obs.span("phase"):
...         obs.event("marker")
>>> [child.name for child in trace.root.children]
['phase']

The ambient design is what keeps instrumentation out of every function
signature: :func:`span`/:func:`event` look up the *current* trace in a
thread-local and are a no-op returning a shared null context when none is
active — one attribute load and a ``None`` check, cheap enough to leave in
the hot paths permanently.  A trace is bound to the thread that activated
it; the serving engine activates one around each batch it serves (its
dispatcher is single-threaded, so nested queries cannot interleave), and
the CLI activates one around a direct :func:`repro.api.single_source` call.

Tracing reads :func:`time.perf_counter` and nothing else — no RNG draws,
no reordering — so traced runs are byte-identical to untraced ones (the
identity suite pins this).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterator, List, Optional

__all__ = ["Span", "Trace", "span", "event", "current_trace"]

_ACTIVE = threading.local()


class Span:
    """One timed phase: name, wall-clock bounds, children, attributes."""

    __slots__ = ("name", "started", "elapsed", "children", "meta")

    def __init__(self, name: str, meta: Optional[Dict[str, object]] = None):
        self.name = name
        self.started = time.perf_counter()
        self.elapsed: Optional[float] = None  # None while still open
        self.children: List["Span"] = []
        self.meta = meta

    def close(self) -> None:
        if self.elapsed is None:
            self.elapsed = time.perf_counter() - self.started

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.name,
            "elapsed_s": self.elapsed,
        }
        if self.meta:
            payload["meta"] = dict(self.meta)
        if self.children:
            payload["children"] = [child.as_dict() for child in self.children]
        return payload

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()


class _SpanContext:
    """Context manager pushing one span onto its trace's open stack."""

    __slots__ = ("_trace", "_span")

    def __init__(self, trace: "Trace", name: str, meta):
        self._trace = trace
        self._span = Span(name, meta)

    def __enter__(self) -> Span:
        self._trace._push(self._span)
        return self._span

    def __exit__(self, *exc_info) -> None:
        self._trace._pop(self._span)


class _NullContext:
    """The shared do-nothing span context used when no trace is active."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info) -> None:
        return None


_NULL = _NullContext()


class Trace:
    """A per-query span tree plus the activation machinery.

    Single-threaded by design: activate in the thread doing the work.  The
    object stays inspectable after deactivation — the engine attaches it to
    the :class:`~repro.serve.engine.QueryResult` (and the score vector) it
    answers with.
    """

    __slots__ = ("root", "_stack", "_previous")

    def __init__(self, name: str = "query", meta: Optional[Dict[str, object]] = None):
        self.root = Span(name, meta)
        self._stack: List[Span] = [self.root]
        self._previous: Optional[Trace] = None

    # -- ambient binding -------------------------------------------------

    def activate(self) -> "Trace":
        """Bind as the thread's current trace; use as a context manager."""
        self._previous = getattr(_ACTIVE, "trace", None)
        _ACTIVE.trace = self
        return self

    def __enter__(self) -> "Trace":
        return self

    def __exit__(self, *exc_info) -> None:
        _ACTIVE.trace = self._previous
        self._previous = None
        self.root.close()

    # -- span plumbing ---------------------------------------------------

    def span(self, name: str, **meta) -> _SpanContext:
        return _SpanContext(self, name, meta or None)

    def event(self, name: str, **meta) -> Span:
        """A zero-duration marker under the innermost open span."""
        marker = Span(name, meta or None)
        marker.elapsed = 0.0
        self._stack[-1].children.append(marker)
        return marker

    def _push(self, child: Span) -> None:
        self._stack[-1].children.append(child)
        self._stack.append(child)

    def _pop(self, child: Span) -> None:
        child.close()
        # Tolerate exits out of order (an exception unwinding through
        # several spans): pop back to the span's parent.
        while len(self._stack) > 1:
            top = self._stack.pop()
            if top is child:
                break
            top.close()

    # -- reporting -------------------------------------------------------

    @property
    def elapsed(self) -> float:
        if self.root.elapsed is not None:
            return self.root.elapsed
        return time.perf_counter() - self.root.started

    def as_dict(self) -> Dict[str, object]:
        return self.root.as_dict()

    def render(self, *, unit_scale: float = 1000.0, unit: str = "ms") -> str:
        """An indented tree of phases and durations, for terminals.

        >>> trace = Trace("q")
        >>> with trace.activate():
        ...     with span("phase"):
        ...         pass
        >>> print(trace.render().split()[0])
        q
        """
        lines: List[str] = []

        def fmt(node: Span, depth: int) -> None:
            took = node.elapsed
            timing = (
                "open" if took is None else f"{took * unit_scale:.3f}{unit}"
            )
            extra = ""
            if node.meta:
                pairs = ", ".join(
                    f"{key}={value}" for key, value in sorted(node.meta.items())
                )
                extra = f"  [{pairs}]"
            lines.append(f"{'  ' * depth}{node.name}  {timing}{extra}")
            for child in node.children:
                fmt(child, depth + 1)

        fmt(self.root, 0)
        return "\n".join(lines)


def current_trace() -> Optional[Trace]:
    """The trace bound to this thread, or ``None``."""
    return getattr(_ACTIVE, "trace", None)


def span(name: str, **meta):
    """A span on the current trace, or a shared no-op context when none."""
    trace = getattr(_ACTIVE, "trace", None)
    if trace is None:
        return _NULL
    return trace.span(name, **meta)


def event(name: str, **meta) -> None:
    """A zero-duration marker on the current trace (no-op when none)."""
    trace = getattr(_ACTIVE, "trace", None)
    if trace is not None:
        trace.event(name, **meta)
