"""Unified observability: metrics registry + per-query tracing.

Two halves, one import surface:

* :mod:`repro.obs.registry` — process-wide counters, gauges, and
  fixed-bucket histograms; Prometheus text exposition; a kill switch
  (:func:`set_enabled` / ``REPRO_OBS=0``) that turns every mutation into
  an early return.
* :mod:`repro.obs.trace` — ambient per-query span trees; ``obs.span``
  and ``obs.event`` are no-ops unless a :class:`Trace` is active on the
  calling thread.

Both halves are *provably inert*: they never draw from an RNG, never
reorder work, and their entire hot-path cost is a handful of integer adds
— the seed-behaviour fixtures and the ``obs-smoke`` perf gate pin this.
"""

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    obs_enabled,
    render_prometheus,
    set_enabled,
)
from repro.obs.trace import Span, Trace, current_trace, event, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    "render_prometheus",
    "set_enabled",
    "obs_enabled",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Span",
    "Trace",
    "current_trace",
    "span",
    "event",
]
