"""The resident query engine: warm state, batching window, graceful load.

One :class:`Engine` owns everything a single-source CrashSim query needs —
the graph, per-sampler :class:`~repro.walks.kernel.WalkCrashKernel` buffers,
an LRU of source reverse trees, and a persistent
:class:`~repro.parallel.ParallelExecutor` — and answers concurrent requests
from many client threads.

Architecture
------------
Client threads :meth:`~Engine.submit` requests onto a FIFO queue and get a
future back; **one dispatcher thread** drains the queue.  Funnelling all
scoring through a single thread is what makes the warm kernels safe to
reuse (their scratch buffers are single-threaded by design) and it gives
the engine its batching point for free: after the first request arrives the
dispatcher keeps collecting for ``batch_window`` seconds (or until
``max_batch``), then serves the whole batch:

* requests with a ``deadline`` are served first and individually — their
  remaining budget (measured from *arrival*) flows into
  :func:`~repro.parallel.parallel_crashsim` on the persistent executor, so
  an overloaded engine degrades those answers (fewer trials, honest wider
  ``achieved_epsilon``) instead of failing them;
* the rest are partitioned by ``sampler`` and scored through
  :func:`~repro.core.batch.crashsim_batch`, which coalesces same-seed /
  same-candidate-set requests into one shared walk stream
  (``accumulate_multi``) and serves the remainder solo on warm state.

Seedless requests are assigned engine-drawn integer seeds; seedless
requests in the same batch that share an explicit candidate set are given
*one* drawn seed so they coalesce.  Explicitly seeded requests are never
re-seeded — their answers stay byte-identical to direct
:func:`repro.api.single_source` calls no matter how they were batched.

Shutdown drains: :meth:`~Engine.close` stops admissions (later submissions
raise :class:`~repro.errors.EngineClosedError`), lets the dispatcher finish
every request already queued, then tears down the executor.
"""

from __future__ import annotations

import logging
import queue
import threading
import time
import warnings
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.api import ScoreVector
from repro.core.batch import BatchQuery, crashsim_batch
from repro.core.params import CrashSimParams
from repro.core.revreach import revreach_levels
from repro.errors import (
    DeadlineExceededError,
    DegradedResultWarning,
    EngineClosedError,
    ParameterError,
)
from repro.graph.digraph import DiGraph
from repro.walks.kernel import WalkCrashKernel

__all__ = ["Engine", "EngineConfig", "QueryRequest", "QueryResult", "TreeLRU"]

_SHUTDOWN = object()

logger = logging.getLogger(__name__)

# Process-wide tree-LRU counters (every TreeLRU in the process folds in);
# the per-instance hits/misses/evictions attributes stay the API that
# Engine.stats() reports per engine.
_M_LRU_HITS = obs.REGISTRY.counter(
    "repro_tree_lru_hits_total", "Source-tree LRU lookups served from cache."
)
_M_LRU_MISSES = obs.REGISTRY.counter(
    "repro_tree_lru_misses_total", "Source-tree LRU lookups that built a tree."
)
_M_LRU_EVICTIONS = obs.REGISTRY.counter(
    "repro_tree_lru_evictions_total", "Source trees evicted by LRU pressure."
)

#: Legacy Engine._stats keys mirrored onto per-engine registry counters —
#: one entry per externally visible stats() key.
_ENGINE_COUNTER_HELP = {
    "queries": "Requests served (every admitted request ends up here).",
    "batches": "Dispatcher batches formed.",
    "deadline_queries": "Requests served on the deadline path.",
    "degraded": "Answers averaging fewer trials than planned.",
    "rejected": "Submissions refused because the engine was closed.",
    "shared_walk_groups": "Coalesced groups scored on one walk stream.",
    "coalesced_queries": "Queries that rode a shared walk stream.",
    "solo_queries": "Queries scored individually on warm state.",
}


class TreeLRU:
    """Thread-safe LRU of source reverse reachable trees.

    Keyed by source node; one engine fixes ``(c, l_max, variant)`` so they
    are not part of the key.  Trees are immutable, so a tree handed to one
    request stays valid after eviction.  Builds run outside the lock —
    concurrent misses on different sources overlap; racing builds of the
    same source produce deterministic duplicates and the first stored wins.
    """

    def __init__(
        self,
        graph: DiGraph,
        l_max: int,
        c: float,
        *,
        variant: str = "corrected",
        capacity: int = 256,
    ):
        if capacity < 1:
            raise ParameterError(f"capacity must be positive, got {capacity}")
        self._graph = graph
        self._l_max = l_max
        self._c = c
        self._variant = variant
        self._capacity = capacity
        self._entries: "OrderedDict[int, object]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __call__(self, source: int):
        return self.get(source)

    def get(self, source: int):
        source = int(source)
        with self._lock:
            tree = self._entries.get(source)
            if tree is not None:
                self.hits += 1
                self._entries.move_to_end(source)
                _M_LRU_HITS.inc()
                return tree
        built = revreach_levels(
            self._graph, source, self._l_max, self._c, variant=self._variant
        )
        evicted = 0
        with self._lock:
            tree = self._entries.get(source)
            if tree is not None:
                self.hits += 1
                self._entries.move_to_end(source)
                _M_LRU_HITS.inc()
                return tree
            self.misses += 1
            self._entries[source] = built
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                evicted += 1
        _M_LRU_MISSES.inc()
        if evicted:
            _M_LRU_EVICTIONS.inc(evicted)
        return built


@dataclass(frozen=True)
class EngineConfig:
    """Engine-wide knobs; one config covers every query the engine answers.

    ``c``/``epsilon``/``delta``/``n_r`` mirror
    :func:`repro.api.single_source`.  ``batch_window`` is how long the
    dispatcher waits for companions after the first request of a batch
    arrives (0 serves whatever is already queued, never sleeping);
    ``max_batch`` caps a batch.  ``tree_cache_size`` bounds the source-tree
    LRU.  ``workers`` is the persistent executor's worker count for
    deadline queries (``None`` → CPU count); ``mode`` picks its execution
    tier (``"process"``, ``"thread"``, or the default ``"auto"`` — see
    :func:`repro.parallel.resolve_mode`).
    """

    c: float = 0.6
    epsilon: float = 0.025
    delta: float = 0.01
    n_r: Optional[int] = None
    tree_variant: str = "corrected"
    batch_window: float = 0.002
    max_batch: int = 64
    tree_cache_size: int = 256
    workers: Optional[int] = None
    seed: Optional[int] = None
    mode: str = "auto"

    def __post_init__(self):
        if self.batch_window < 0:
            raise ParameterError(
                f"batch_window must be non-negative, got {self.batch_window}"
            )
        if self.max_batch < 1:
            raise ParameterError(
                f"max_batch must be positive, got {self.max_batch}"
            )
        from repro.parallel import resolve_mode

        resolve_mode(self.mode)  # validate eagerly; raises ParameterError


@dataclass(frozen=True)
class QueryRequest:
    """One admitted request.

    ``seed`` follows :func:`repro.api.single_source` (an explicit seed
    makes the answer deterministic and byte-identical to the direct call);
    ``deadline`` is a wall-clock budget in seconds measured from
    *submission*; ``top_k`` additionally extracts the k best non-source
    nodes from the dense vector.
    """

    source: int
    candidates: Optional[Tuple[int, ...]] = None
    seed: Optional[int] = None
    deadline: Optional[float] = None
    sampler: str = "cdf"
    top_k: Optional[int] = None

    @staticmethod
    def make(
        source: int,
        *,
        candidates: Optional[Iterable[int]] = None,
        seed: Optional[int] = None,
        deadline: Optional[float] = None,
        sampler: str = "cdf",
        top_k: Optional[int] = None,
    ) -> "QueryRequest":
        if candidates is not None:
            candidates = tuple(int(node) for node in candidates)
        if deadline is not None and deadline <= 0:
            raise ParameterError(f"deadline must be positive, got {deadline}")
        if top_k is not None and top_k < 1:
            raise ParameterError(f"top_k must be positive, got {top_k}")
        return QueryRequest(
            source=int(source),
            candidates=candidates,
            seed=None if seed is None else int(seed),
            deadline=deadline,
            sampler=sampler,
            top_k=top_k,
        )


@dataclass
class QueryResult:
    """An engine answer: the dense vector plus serving metadata.

    ``scores`` is the same :class:`~repro.api.ScoreVector` the direct API
    returns (resilience metadata included); ``top`` is the optional
    ``(node, score)`` ranking for ``top_k`` requests; ``batch_size``,
    ``coalesced``, and ``trace`` (the :class:`repro.obs.Trace` recorded
    while the request was served) describe how the request was served
    (diagnostics only — they carry no information about the scores
    themselves).
    """

    scores: ScoreVector
    source: int
    seed: Optional[int]
    elapsed: float
    top: Optional[List[Tuple[int, float]]] = None
    batch_size: int = 1
    coalesced: bool = False
    trace: Optional[object] = None

    @property
    def degraded(self) -> bool:
        return bool(self.scores.degraded)


@dataclass
class _Pending:
    request: QueryRequest
    future: Future
    arrival: float
    seed: Optional[int] = None
    coalesce_key: Optional[Tuple] = field(default=None, compare=False)


class Engine:
    """A long-lived single-source SimRank engine over one graph.

    Thread-safe: any number of client threads may call :meth:`submit` /
    :meth:`query` concurrently.  Use as a context manager or call
    :meth:`close` to shut down (queued requests are drained, not dropped).
    """

    def __init__(self, graph: DiGraph, config: Optional[EngineConfig] = None):
        self.graph = graph
        self.config = config or EngineConfig()
        self.params = CrashSimParams(
            c=self.config.c,
            epsilon=self.config.epsilon,
            delta=self.config.delta,
            n_r_override=self.config.n_r,
        )
        self.trees = TreeLRU(
            graph,
            self.params.l_max,
            self.params.c,
            variant=self.config.tree_variant,
            capacity=self.config.tree_cache_size,
        )
        self._kernels: Dict[str, WalkCrashKernel] = {}
        self._executor = None
        self._queue: "queue.Queue" = queue.Queue()
        self._lock = threading.RLock()
        self._closed = False
        self._seed_source = np.random.default_rng(self.config.seed)
        self._stats: Dict[str, int] = {
            "queries": 0,
            "batches": 0,
            "deadline_queries": 0,
            "degraded": 0,
            "rejected": 0,
            "shared_walk_groups": 0,
            "coalesced_queries": 0,
            "solo_queries": 0,
        }
        # Per-engine registry: `_stats` stays the legacy API; every bump is
        # mirrored onto these at event time so /metrics sees the same story.
        self.registry = obs.MetricsRegistry()
        self._counters = {
            key: self.registry.counter(f"repro_engine_{key}_total", help_text)
            for key, help_text in _ENGINE_COUNTER_HELP.items()
        }
        self._queue_depth = self.registry.gauge(
            "repro_engine_queue_depth",
            "Requests admitted but not yet picked into a batch.",
        )
        self._batch_size_hist = self.registry.histogram(
            "repro_engine_batch_size",
            "Requests per dispatcher batch.",
            buckets=obs.DEFAULT_SIZE_BUCKETS,
        )
        self._latency_hist = self.registry.histogram(
            "repro_engine_latency_seconds",
            "End-to-end request latency (submission to answer).",
            buckets=obs.DEFAULT_LATENCY_BUCKETS,
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatcher", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------ admission

    def submit(self, request: QueryRequest) -> Future:
        """Admit a request; returns a future resolving to a :class:`QueryResult`.

        Raises :class:`~repro.errors.EngineClosedError` once :meth:`close`
        has begun — admission and shutdown are serialised on one lock, so a
        request either makes it into the drain or is rejected, never lost.
        """
        if not 0 <= request.source < self.graph.num_nodes:
            raise ParameterError(
                f"source {request.source} outside the graph's node range "
                f"[0, {self.graph.num_nodes})"
            )
        future: Future = Future()
        pending = _Pending(request, future, arrival=time.monotonic())
        with self._lock:
            if self._closed:
                self._stats["rejected"] += 1
                self._counters["rejected"].inc()
                raise EngineClosedError("engine is shut down; no new queries")
            self._queue.put(pending)
            self._queue_depth.inc()
        return future

    def query(
        self,
        source: int,
        *,
        candidates: Optional[Iterable[int]] = None,
        seed: Optional[int] = None,
        deadline: Optional[float] = None,
        sampler: str = "cdf",
        top_k: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> QueryResult:
        """Blocking convenience wrapper: submit and wait for the answer."""
        request = QueryRequest.make(
            source,
            candidates=candidates,
            seed=seed,
            deadline=deadline,
            sampler=sampler,
            top_k=top_k,
        )
        return self.submit(request).result(timeout=timeout)

    def stats(self) -> Dict[str, int]:
        """A snapshot of serving counters (plus tree-LRU hit rates)."""
        with self._lock:
            snapshot = dict(self._stats)
        snapshot["tree_cache_hits"] = self.trees.hits
        snapshot["tree_cache_misses"] = self.trees.misses
        snapshot["tree_cache_evictions"] = self.trees.evictions
        snapshot["tree_cache_size"] = len(self.trees)
        return snapshot

    def registries(self) -> Tuple[obs.MetricsRegistry, ...]:
        """The registries describing this engine: global + per-engine."""
        return (obs.REGISTRY, self.registry)

    def metrics_snapshot(self) -> Dict[str, dict]:
        """One merged name→metric snapshot across :meth:`registries`."""
        merged: Dict[str, dict] = {}
        for registry in self.registries():
            merged.update(registry.snapshot())
        return merged

    # ------------------------------------------------------------------ lifecycle

    def close(self, timeout: Optional[float] = None) -> None:
        """Stop admissions, drain queued requests, release the executor.

        Idempotent.  Every request admitted before the close is answered
        (or failed with its own error) before this returns.
        """
        with self._lock:
            if self._closed:
                already = True
            else:
                already = False
                self._closed = True
                self._queue.put(_SHUTDOWN)
        if not already:
            self._dispatcher.join(timeout=timeout)
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.close()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ dispatch

    def _dispatch_loop(self) -> None:
        stop = False
        while not stop:
            item = self._queue.get()
            if item is _SHUTDOWN:
                break
            batch = [item]
            window_end = time.monotonic() + self.config.batch_window
            while len(batch) < self.config.max_batch:
                remaining = window_end - time.monotonic()
                if remaining <= 0:
                    # Window spent: still sweep anything already queued.
                    try:
                        nxt = self._queue.get_nowait()
                    except queue.Empty:
                        break
                else:
                    try:
                        nxt = self._queue.get(timeout=remaining)
                    except queue.Empty:
                        break
                if nxt is _SHUTDOWN:
                    # The sentinel is enqueued after the last admitted
                    # request, so everything to drain is in `batch` now.
                    stop = True
                    break
                batch.append(nxt)
            self._serve_batch(batch)

    def _serve_batch(self, batch: List[_Pending]) -> None:
        with self._lock:
            self._stats["queries"] += len(batch)
            self._stats["batches"] += 1
        self._queue_depth.dec(len(batch))
        self._counters["queries"].inc(len(batch))
        self._counters["batches"].inc()
        self._batch_size_hist.observe(len(batch))
        deadline_items = [p for p in batch if p.request.deadline is not None]
        coalescible = [p for p in batch if p.request.deadline is None]
        # Latency-bounded requests go first: their budget is already burning.
        for pending in deadline_items:
            self._serve_deadline(pending)
        by_sampler: Dict[str, List[_Pending]] = {}
        for pending in coalescible:
            by_sampler.setdefault(pending.request.sampler, []).append(pending)
        for sampler, group in by_sampler.items():
            self._serve_coalesced(sampler, group)

    def _assign_seeds(self, group: List[_Pending]) -> None:
        """Give every seedless request a drawn seed; share one per catalogue.

        Seedless requests over the same explicit candidate set get a single
        drawn seed so ``crashsim_batch`` coalesces them into one shared
        walk stream.  ``candidates=None`` requests keep individual seeds —
        their walk-target sets differ per source, so sharing gains nothing.
        Explicit seeds are never touched.
        """
        shared: Dict[Tuple, int] = {}
        for pending in group:
            request = pending.request
            if request.seed is not None:
                pending.seed = request.seed
                continue
            if request.candidates is None:
                pending.seed = int(self._seed_source.integers(0, 2**63))
                continue
            key = request.candidates
            if key not in shared:
                shared[key] = int(self._seed_source.integers(0, 2**63))
            pending.seed = shared[key]

    def _serve_coalesced(self, sampler: str, group: List[_Pending]) -> None:
        self._assign_seeds(group)
        queries = [
            BatchQuery(
                p.request.source, seed=p.seed, candidates=p.request.candidates
            )
            for p in group
        ]
        batch_stats: Dict[str, int] = {}
        trace = obs.Trace("batch", {"sampler": sampler, "size": len(group)})
        try:
            with trace.activate():
                results = crashsim_batch(
                    self.graph,
                    queries,
                    params=self.params,
                    tree_variant=self.config.tree_variant,
                    sampler=sampler,
                    kernel=self._kernel(sampler),
                    tree_provider=self.trees,
                    stats=batch_stats,
                )
        except Exception:
            if len(group) == 1:
                group[0].future.set_exception(_current_exception())
                return
            # One bad request must not fail its batch-mates: retry solo so
            # only the offender errors.
            for pending in group:
                self._serve_coalesced(sampler, [pending])
            return
        with self._lock:
            for key, value in batch_stats.items():
                self._stats[key] += value
        for key, value in batch_stats.items():
            self._counters[key].inc(value)
        coalesced = batch_stats.get("coalesced_queries", 0) > 0
        for pending, result in zip(group, results):
            self._finish(
                pending,
                result,
                batch_size=len(group),
                coalesced=coalesced,
                trace=trace,
            )

    def _serve_deadline(self, pending: _Pending) -> None:
        from repro.parallel import parallel_crashsim

        request = pending.request
        self._assign_seeds([pending])
        with self._lock:
            self._stats["deadline_queries"] += 1
        self._counters["deadline_queries"].inc()
        remaining = request.deadline - (time.monotonic() - pending.arrival)
        if remaining <= 0:
            pending.future.set_exception(
                DeadlineExceededError(
                    f"deadline of {request.deadline}s elapsed while the "
                    "request waited for dispatch",
                    deadline=request.deadline,
                    elapsed=time.monotonic() - pending.arrival,
                )
            )
            return
        trace = obs.Trace(
            "query", {"source": request.source, "deadline": request.deadline}
        )
        try:
            with trace.activate():
                tree = self.trees.get(request.source)
                with warnings.catch_warnings():
                    # The degradation signal reaches the caller through the
                    # ScoreVector metadata; the warning would only spam the
                    # server log once per overloaded request.
                    warnings.simplefilter("ignore", DegradedResultWarning)
                    result = parallel_crashsim(
                        self.graph,
                        request.source,
                        candidates=request.candidates,
                        params=self.params,
                        seed=pending.seed,
                        workers=self.config.workers,
                        executor=self._ensure_executor(),
                        deadline=remaining,
                        sampler=request.sampler,
                        tree=tree,
                    )
        except Exception:
            pending.future.set_exception(_current_exception())
            return
        self._finish(pending, result, batch_size=1, coalesced=False, trace=trace)

    # ------------------------------------------------------------------ helpers

    def _kernel(self, sampler: str) -> WalkCrashKernel:
        kernel = self._kernels.get(sampler)
        if kernel is None:
            kernel = WalkCrashKernel(self.graph, self.params.c, sampler=sampler)
            self._kernels[sampler] = kernel
        return kernel

    def _ensure_executor(self):
        from repro.parallel import ParallelExecutor

        with self._lock:
            if self._executor is None:
                self._executor = ParallelExecutor(
                    self.config.workers, mode=self.config.mode
                )
            return self._executor

    def _finish(
        self,
        pending: _Pending,
        result,
        *,
        batch_size: int,
        coalesced: bool,
        trace=None,
    ) -> None:
        # Exactly api.single_source's assembly, so engine vectors are
        # byte-identical to the direct call's.
        scores = np.zeros(self.graph.num_nodes)
        scores[result.candidates] = result.scores
        scores[int(result.source)] = 1.0
        vector = ScoreVector.wrap(
            scores,
            degraded=result.degraded,
            trials_completed=result.trials_completed,
            achieved_epsilon=result.achieved_epsilon,
            trace=trace,
        )
        if result.degraded:
            with self._lock:
                self._stats["degraded"] += 1
            self._counters["degraded"].inc()
            logger.warning(
                "degraded engine answer: source=%d seed=%s "
                "trials_completed=%s achieved_epsilon=%s",
                int(result.source),
                pending.seed,
                result.trials_completed,
                result.achieved_epsilon,
            )
        elapsed = time.monotonic() - pending.arrival
        self._latency_hist.observe(elapsed)
        top = None
        if pending.request.top_k is not None:
            top = _top_k(vector, int(result.source), pending.request.top_k)
        pending.future.set_result(
            QueryResult(
                scores=vector,
                source=int(result.source),
                seed=pending.seed,
                elapsed=elapsed,
                top=top,
                batch_size=batch_size,
                coalesced=coalesced,
                trace=trace,
            )
        )


def _top_k(scores: np.ndarray, source: int, k: int) -> List[Tuple[int, float]]:
    """The k best non-source nodes, score-descending, node id as tiebreak."""
    values = np.asarray(scores, dtype=np.float64).copy()
    values[source] = -np.inf
    k = min(k, values.size - 1)
    if k <= 0:
        return []
    top = np.argpartition(-values, k - 1)[:k]
    order = np.lexsort((top, -values[top]))
    ranked = top[order]
    return [(int(node), float(values[node])) for node in ranked]


def _current_exception() -> BaseException:
    import sys

    return sys.exc_info()[1]
