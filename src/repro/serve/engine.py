"""The resident query engine: warm state, batching window, graceful load.

One :class:`Engine` owns everything a single-source CrashSim query needs —
the graph, per-sampler :class:`~repro.walks.kernel.WalkCrashKernel` buffers,
an LRU of source reverse trees, and a persistent
:class:`~repro.parallel.ParallelExecutor` — and answers concurrent requests
from many client threads.

Architecture
------------
Client threads :meth:`~Engine.submit` requests onto a FIFO queue and get a
future back; **one dispatcher thread** drains the queue.  Funnelling all
scoring through a single thread is what makes the warm kernels safe to
reuse (their scratch buffers are single-threaded by design) and it gives
the engine its batching point for free: after the first request arrives the
dispatcher keeps collecting for ``batch_window`` seconds (or until
``max_batch``), then serves the whole batch:

* requests with a ``deadline`` are served first and individually — their
  remaining budget (measured from *arrival*, so queue wait counts) flows
  into :func:`~repro.parallel.parallel_crashsim` on the persistent
  executor, so an overloaded engine degrades those answers (fewer trials,
  honest wider ``achieved_epsilon``) instead of failing them; a request
  whose deadline already elapsed in the queue is failed *before* any
  kernel time is spent on it;
* the rest are partitioned by ``sampler`` and scored through
  :func:`~repro.core.batch.crashsim_batch`, which coalesces same-seed /
  same-candidate-set requests into one shared walk stream
  (``accumulate_multi``) and serves the remainder solo on warm state.

Seedless requests are assigned engine-drawn integer seeds; seedless
requests in the same batch that share an explicit candidate set are given
*one* drawn seed so they coalesce.  Explicitly seeded requests are never
re-seeded — their answers stay byte-identical to direct
:func:`repro.api.single_source` calls no matter how they were batched.

Overload resilience
-------------------
The queue is bounded when ``EngineConfig.max_queue_depth`` is set.  At
capacity, :meth:`~Engine.submit` applies the configured ``shed_policy``:
``"reject"`` raises :class:`~repro.errors.EngineOverloadedError` (carrying
a ``retry_after`` estimate from the engine's measured service rate), while
``"shed-oldest"`` displaces the oldest queued *deadline-less* request —
failing its future with the same error — to make room for the newcomer.

A :class:`~repro.serve.breaker.CircuitBreaker` watches the deadline path:
after ``breaker_threshold`` consecutive deadline-exceeded/degraded
outcomes it opens, and further deadline queries are answered from a cheap
``breaker_n_r``-trial degraded mode (microseconds of kernel time, honest
``achieved_epsilon`` against the engine's real parameters, annotated via
``QueryResult.breaker_state``) until a half-open probe succeeds.

A watchdog thread restarts a dead dispatcher (and, when
``dispatcher_stall_timeout`` is set, a hung one), failing only the
requests that were actually in flight with
:class:`~repro.errors.DispatcherError`; queued requests survive the
restart untouched.  Chaos sites for all of this live in
:mod:`repro.faults`: ``"queue_delay"`` (per-submission ordinal, fires in
the submitting thread before admission), ``"dispatcher"`` (per dispatch
iteration, fires in the dispatcher thread — ``"raise"`` kills it,
``"delay"`` hangs it), and ``"executor_stall"`` (per
:meth:`~repro.parallel.ParallelExecutor.run` call).

Shutdown drains: :meth:`~Engine.close` stops admissions (later submissions
raise :class:`~repro.errors.EngineClosedError`), lets the dispatcher finish
every request already queued, then tears down the executor.  ``close`` is
idempotent and safe to call concurrently — exactly one caller drains and
the rest wait for it.
"""

from __future__ import annotations

import logging
import threading
import time
import warnings
from collections import OrderedDict, deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro import faults, obs
from repro.api import ScoreVector
from repro.core.batch import BatchQuery, crashsim_batch
from repro.core.crashsim import crashsim
from repro.core.params import CrashSimParams
from repro.core.revreach import revreach_levels
from repro.errors import (
    DeadlineExceededError,
    DegradedResultWarning,
    DispatcherError,
    EngineClosedError,
    EngineOverloadedError,
    ParameterError,
)
from repro.graph.digraph import DiGraph
from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.walks.kernel import WalkCrashKernel

__all__ = [
    "Engine",
    "EngineConfig",
    "QueryRequest",
    "QueryResult",
    "TreeLRU",
    "SHED_POLICIES",
]

logger = logging.getLogger(__name__)

#: Accepted values for ``EngineConfig.shed_policy``.
SHED_POLICIES = ("reject", "shed-oldest")

#: Fallback per-request service-time estimate (seconds) used for
#: ``Retry-After`` before the engine has served anything.
_DEFAULT_SERVICE_ESTIMATE = 0.05

# Process-wide tree-LRU counters (every TreeLRU in the process folds in);
# the per-instance hits/misses/evictions attributes stay the API that
# Engine.stats() reports per engine.
_M_LRU_HITS = obs.REGISTRY.counter(
    "repro_tree_lru_hits_total", "Source-tree LRU lookups served from cache."
)
_M_LRU_MISSES = obs.REGISTRY.counter(
    "repro_tree_lru_misses_total", "Source-tree LRU lookups that built a tree."
)
_M_LRU_EVICTIONS = obs.REGISTRY.counter(
    "repro_tree_lru_evictions_total", "Source trees evicted by LRU pressure."
)

#: Legacy Engine._stats keys mirrored onto per-engine registry counters —
#: one entry per externally visible stats() key.
_ENGINE_COUNTER_HELP = {
    "queries": "Requests served (every admitted request ends up here).",
    "batches": "Dispatcher batches formed.",
    "deadline_queries": "Requests served on the deadline path.",
    "degraded": "Answers averaging fewer trials than planned.",
    "rejected": "Submissions refused because the engine was closed.",
    "overload_rejected": "Submissions refused because the queue was full.",
    "shed": "Queued deadline-less requests displaced by shed-oldest.",
    "expired": "Deadline requests that expired while still queued.",
    "breaker_trips": "Circuit-breaker transitions into the open state.",
    "breaker_degraded": "Queries answered from the breaker's cheap mode.",
    "breaker_probes": "Half-open probe queries issued at full size.",
    "dispatcher_restarts": "Dispatcher threads restarted by the watchdog.",
    "shared_walk_groups": "Coalesced groups scored on one walk stream.",
    "coalesced_queries": "Queries that rode a shared walk stream.",
    "solo_queries": "Queries scored individually on warm state.",
}

#: Numeric encoding of the breaker state for the gauge.
_BREAKER_GAUGE_VALUE = {
    BreakerState.CLOSED: 0,
    BreakerState.HALF_OPEN: 1,
    BreakerState.OPEN: 2,
}


def _fail_future(future: Future, exc: BaseException) -> None:
    """Set an exception, tolerating a future someone already resolved."""
    try:
        future.set_exception(exc)
    except InvalidStateError:  # watchdog/dispatcher race: first writer wins
        pass


def _resolve_future(future: Future, value) -> None:
    try:
        future.set_result(value)
    except InvalidStateError:
        pass


class TreeLRU:
    """Thread-safe LRU of source reverse reachable trees.

    Keyed by source node; one engine fixes ``(c, l_max, variant)`` so they
    are not part of the key.  Trees are immutable, so a tree handed to one
    request stays valid after eviction.  Builds run outside the lock —
    concurrent misses on different sources overlap; racing builds of the
    same source produce deterministic duplicates and the first stored wins.
    """

    def __init__(
        self,
        graph: DiGraph,
        l_max: int,
        c: float,
        *,
        variant: str = "corrected",
        capacity: int = 256,
    ):
        if capacity < 1:
            raise ParameterError(f"capacity must be positive, got {capacity}")
        self._graph = graph
        self._l_max = l_max
        self._c = c
        self._variant = variant
        self._capacity = capacity
        self._entries: "OrderedDict[int, object]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __call__(self, source: int):
        return self.get(source)

    def get(self, source: int):
        source = int(source)
        with self._lock:
            tree = self._entries.get(source)
            if tree is not None:
                self.hits += 1
                self._entries.move_to_end(source)
                _M_LRU_HITS.inc()
                return tree
        built = revreach_levels(
            self._graph, source, self._l_max, self._c, variant=self._variant
        )
        evicted = 0
        with self._lock:
            tree = self._entries.get(source)
            if tree is not None:
                self.hits += 1
                self._entries.move_to_end(source)
                _M_LRU_HITS.inc()
                return tree
            self.misses += 1
            self._entries[source] = built
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                evicted += 1
        _M_LRU_MISSES.inc()
        if evicted:
            _M_LRU_EVICTIONS.inc(evicted)
        return built


@dataclass(frozen=True)
class EngineConfig:
    """Engine-wide knobs; one config covers every query the engine answers.

    ``c``/``epsilon``/``delta``/``n_r`` mirror
    :func:`repro.api.single_source`.  ``batch_window`` is how long the
    dispatcher waits for companions after the first request of a batch
    arrives (0 serves whatever is already queued, never sleeping);
    ``max_batch`` caps a batch.  ``tree_cache_size`` bounds the source-tree
    LRU.  ``workers`` is the persistent executor's worker count for
    deadline queries (``None`` → CPU count); ``mode`` picks its execution
    tier (``"process"``, ``"thread"``, or the default ``"auto"`` — see
    :func:`repro.parallel.resolve_mode`).

    Overload knobs:

    ``max_queue_depth``
        Bound on queued (admitted, not yet dispatched) requests; ``None``
        keeps the legacy unbounded queue.
    ``shed_policy``
        What :meth:`Engine.submit` does at capacity — ``"reject"`` the
        newcomer, or ``"shed-oldest"`` queued deadline-less request (falls
        back to rejecting when everything queued carries a deadline).
    ``breaker_threshold`` / ``breaker_cooldown`` / ``breaker_n_r``
        Circuit breaker for the deadline path: trip after this many
        consecutive deadline-exceeded/degraded outcomes, stay open this
        many seconds before a half-open probe, and serve open-state
        queries with this many Monte-Carlo trials.  ``breaker_threshold=0``
        (default) disables the breaker.
    ``watchdog_interval`` / ``dispatcher_stall_timeout``
        How often the watchdog thread checks the dispatcher (0 disables
        the watchdog), and how long a busy dispatcher may go without a
        heartbeat before it is declared hung and replaced (``None``
        disables stall detection; death detection stays on).
    ``retry_budget`` / ``retry_backoff``
        Executor retry policy for deadline queries: a token-style budget
        bounding total resubmissions across the executor's lifetime
        (``None`` = unbounded, the legacy behaviour) and the base of the
        exponential, deterministically-jittered backoff slept before each
        resubmission.
    ``adaptive``
        Serve every query with empirical-Bernstein early stopping
        (:mod:`repro.core.adaptive`): trials run in geometrically growing
        rounds and stop as soon as the estimated error is within ε.
        Deadline queries pass ``adaptive=True`` into
        :func:`~repro.parallel.parallel_crashsim`; deadline-less queries
        are served individually through the adaptive serial path instead
        of ``crashsim_batch`` (adaptive rounds cannot share a coalesced
        walk stream across different sources' stopping decisions).
        Answers carry ``ScoreVector.stopped_early`` plus the honest
        ``trials_completed`` / ``achieved_epsilon``.
    """

    c: float = 0.6
    epsilon: float = 0.025
    delta: float = 0.01
    n_r: Optional[int] = None
    tree_variant: str = "corrected"
    batch_window: float = 0.002
    max_batch: int = 64
    tree_cache_size: int = 256
    workers: Optional[int] = None
    seed: Optional[int] = None
    mode: str = "auto"
    max_queue_depth: Optional[int] = None
    shed_policy: str = "reject"
    breaker_threshold: int = 0
    breaker_cooldown: float = 1.0
    breaker_n_r: int = 8
    watchdog_interval: float = 0.05
    dispatcher_stall_timeout: Optional[float] = None
    retry_budget: Optional[int] = 64
    retry_backoff: float = 0.01
    adaptive: bool = False

    def __post_init__(self):
        if self.batch_window < 0:
            raise ParameterError(
                f"batch_window must be non-negative, got {self.batch_window}"
            )
        if self.max_batch < 1:
            raise ParameterError(
                f"max_batch must be positive, got {self.max_batch}"
            )
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ParameterError(
                f"max_queue_depth must be positive, got {self.max_queue_depth}"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise ParameterError(
                f"shed_policy must be one of {', '.join(SHED_POLICIES)}; "
                f"got {self.shed_policy!r}"
            )
        if self.breaker_threshold < 0:
            raise ParameterError(
                f"breaker_threshold must be >= 0, got {self.breaker_threshold}"
            )
        if self.breaker_cooldown <= 0:
            raise ParameterError(
                f"breaker_cooldown must be positive, got {self.breaker_cooldown}"
            )
        if self.breaker_n_r < 1:
            raise ParameterError(
                f"breaker_n_r must be positive, got {self.breaker_n_r}"
            )
        if self.watchdog_interval < 0:
            raise ParameterError(
                "watchdog_interval must be non-negative, got "
                f"{self.watchdog_interval}"
            )
        if (
            self.dispatcher_stall_timeout is not None
            and self.dispatcher_stall_timeout <= 0
        ):
            raise ParameterError(
                "dispatcher_stall_timeout must be positive, got "
                f"{self.dispatcher_stall_timeout}"
            )
        if self.retry_budget is not None and self.retry_budget < 1:
            raise ParameterError(
                f"retry_budget must be positive, got {self.retry_budget}"
            )
        if self.retry_backoff < 0:
            raise ParameterError(
                f"retry_backoff must be non-negative, got {self.retry_backoff}"
            )
        from repro.parallel import resolve_mode

        resolve_mode(self.mode)  # validate eagerly; raises ParameterError


@dataclass(frozen=True)
class QueryRequest:
    """One admitted request.

    ``seed`` follows :func:`repro.api.single_source` (an explicit seed
    makes the answer deterministic and byte-identical to the direct call);
    ``deadline`` is a wall-clock budget in seconds measured from
    *submission*; ``top_k`` additionally extracts the k best non-source
    nodes from the dense vector.
    """

    source: int
    candidates: Optional[Tuple[int, ...]] = None
    seed: Optional[int] = None
    deadline: Optional[float] = None
    sampler: str = "cdf"
    top_k: Optional[int] = None

    @staticmethod
    def make(
        source: int,
        *,
        candidates: Optional[Iterable[int]] = None,
        seed: Optional[int] = None,
        deadline: Optional[float] = None,
        sampler: str = "cdf",
        top_k: Optional[int] = None,
    ) -> "QueryRequest":
        if candidates is not None:
            candidates = tuple(int(node) for node in candidates)
        if deadline is not None and deadline <= 0:
            raise ParameterError(f"deadline must be positive, got {deadline}")
        if top_k is not None and top_k < 1:
            raise ParameterError(f"top_k must be positive, got {top_k}")
        return QueryRequest(
            source=int(source),
            candidates=candidates,
            seed=None if seed is None else int(seed),
            deadline=deadline,
            sampler=sampler,
            top_k=top_k,
        )


@dataclass
class QueryResult:
    """An engine answer: the dense vector plus serving metadata.

    ``scores`` is the same :class:`~repro.api.ScoreVector` the direct API
    returns (resilience metadata included); ``top`` is the optional
    ``(node, score)`` ranking for ``top_k`` requests; ``batch_size``,
    ``coalesced``, and ``trace`` (the :class:`repro.obs.Trace` recorded
    while the request was served) describe how the request was served
    (diagnostics only — they carry no information about the scores
    themselves).  ``breaker_state`` records how the circuit breaker routed
    the request: ``"closed"`` (normal full-size serving), ``"half-open"``
    (this request was the probe), or ``"open"`` (answered from the cheap
    ``breaker_n_r`` degraded mode).
    """

    scores: ScoreVector
    source: int
    seed: Optional[int]
    elapsed: float
    top: Optional[List[Tuple[int, float]]] = None
    batch_size: int = 1
    coalesced: bool = False
    trace: Optional[object] = None
    breaker_state: str = "closed"

    @property
    def degraded(self) -> bool:
        return bool(self.scores.degraded)


@dataclass
class _Pending:
    request: QueryRequest
    future: Future
    arrival: float
    seed: Optional[int] = None
    coalesce_key: Optional[Tuple] = field(default=None, compare=False)


class Engine:
    """A long-lived single-source SimRank engine over one graph.

    Thread-safe: any number of client threads may call :meth:`submit` /
    :meth:`query` concurrently.  Use as a context manager or call
    :meth:`close` to shut down (queued requests are drained, not dropped).
    """

    def __init__(self, graph: DiGraph, config: Optional[EngineConfig] = None):
        self.graph = graph
        self.config = config or EngineConfig()
        self.params = CrashSimParams(
            c=self.config.c,
            epsilon=self.config.epsilon,
            delta=self.config.delta,
            n_r_override=self.config.n_r,
        )
        self.trees = TreeLRU(
            graph,
            self.params.l_max,
            self.params.c,
            variant=self.config.tree_variant,
            capacity=self.config.tree_cache_size,
        )
        self._kernels: Dict[str, WalkCrashKernel] = {}
        self._executor = None
        self._lock = threading.RLock()
        self._not_empty = threading.Condition(self._lock)
        self._pending: Deque[_Pending] = deque()
        self._inflight: List[_Pending] = []
        self._serving_since: Optional[float] = None
        self._heartbeat = time.monotonic()
        self._closed = False
        self._drained = threading.Event()
        self._submit_ordinal = 0
        self._dispatch_iterations = 0
        self._service_ewma: Optional[float] = None
        self._seed_source = np.random.default_rng(self.config.seed)
        self._breaker = CircuitBreaker(
            self.config.breaker_threshold, self.config.breaker_cooldown
        )
        # Same c/ε/δ (hence the same l_max, so warm trees and kernels are
        # shared), just far fewer trials — the breaker's cheap mode.
        self._breaker_params = CrashSimParams(
            c=self.config.c,
            epsilon=self.config.epsilon,
            delta=self.config.delta,
            n_r_override=self.config.breaker_n_r,
        )
        self._stats: Dict[str, int] = {key: 0 for key in _ENGINE_COUNTER_HELP}
        # Per-engine registry: `_stats` stays the legacy API; every bump is
        # mirrored onto these at event time so /metrics sees the same story.
        self.registry = obs.MetricsRegistry()
        self._counters = {
            key: self.registry.counter(f"repro_engine_{key}_total", help_text)
            for key, help_text in _ENGINE_COUNTER_HELP.items()
        }
        self._queue_depth = self.registry.gauge(
            "repro_engine_queue_depth",
            "Requests admitted but not yet picked into a batch.",
        )
        self._breaker_gauge = self.registry.gauge(
            "repro_engine_breaker_state",
            "Circuit-breaker state: 0 closed, 1 half-open, 2 open.",
        )
        self._batch_size_hist = self.registry.histogram(
            "repro_engine_batch_size",
            "Requests per dispatcher batch.",
            buckets=obs.DEFAULT_SIZE_BUCKETS,
        )
        self._latency_hist = self.registry.histogram(
            "repro_engine_latency_seconds",
            "End-to-end request latency (submission to answer).",
            buckets=obs.DEFAULT_LATENCY_BUCKETS,
        )
        self._queue_wait_hist = self.registry.histogram(
            "repro_engine_queue_wait_seconds",
            "Time a request spent queued before its batch was formed.",
            buckets=obs.DEFAULT_LATENCY_BUCKETS,
        )
        self._dispatcher: Optional[threading.Thread] = None
        self._dispatcher_gen = 0
        with self._lock:
            self._start_dispatcher_locked()
        self._watchdog: Optional[threading.Thread] = None
        self._watchdog_stop = threading.Event()
        if self.config.watchdog_interval > 0:
            self._watchdog = threading.Thread(
                target=self._watchdog_loop,
                name="repro-serve-watchdog",
                daemon=True,
            )
            self._watchdog.start()

    # ------------------------------------------------------------------ admission

    def submit(self, request: QueryRequest) -> Future:
        """Admit a request; returns a future resolving to a :class:`QueryResult`.

        Raises :class:`~repro.errors.EngineClosedError` once :meth:`close`
        has begun — admission and shutdown are serialised on one lock, so a
        request either makes it into the drain or is rejected, never lost.
        With ``max_queue_depth`` set, a full queue additionally raises
        :class:`~repro.errors.EngineOverloadedError` (``shed_policy
        ="reject"``) or displaces the oldest queued deadline-less request
        (``"shed-oldest"``) — its future fails with the same error.
        """
        if not 0 <= request.source < self.graph.num_nodes:
            raise ParameterError(
                f"source {request.source} outside the graph's node range "
                f"[0, {self.graph.num_nodes})"
            )
        with self._lock:
            ordinal = self._submit_ordinal
            self._submit_ordinal += 1
        pending = _Pending(request, Future(), arrival=time.monotonic())
        # Chaos site: stalls *this submitting thread* before admission, so
        # the injected delay burns the request's deadline the way a slow
        # client or saturated accept loop would.
        faults.inject("queue_delay", ordinal)
        with self._lock:
            if self._closed:
                self._bump("rejected")
                raise EngineClosedError("engine is shut down; no new queries")
            depth_cap = self.config.max_queue_depth
            if depth_cap is not None and len(self._pending) >= depth_cap:
                self._make_room_locked()  # sheds one or raises
            self._pending.append(pending)
            self._queue_depth.inc()
            self._not_empty.notify()
        return pending.future

    def _make_room_locked(self) -> None:
        """Apply the shed policy to a full queue (caller holds the lock)."""
        if self.config.shed_policy == "shed-oldest":
            for index, victim in enumerate(self._pending):
                if victim.request.deadline is not None:
                    continue  # deadline requests are never silently shed
                del self._pending[index]
                self._queue_depth.dec()
                self._bump("shed")
                _fail_future(
                    victim.future,
                    EngineOverloadedError(
                        "request shed from a full queue "
                        f"(max_queue_depth={self.config.max_queue_depth}) to "
                        "admit a newer one",
                        retry_after=self._retry_after_locked(),
                    ),
                )
                return
        self._bump("overload_rejected")
        raise EngineOverloadedError(
            f"admission queue is full ({len(self._pending)} queued, "
            f"max_queue_depth={self.config.max_queue_depth})",
            retry_after=self._retry_after_locked(),
        )

    def _retry_after_locked(self) -> float:
        """Seconds until the queue likely has room, from measured service rate."""
        estimate = self._service_ewma or _DEFAULT_SERVICE_ESTIMATE
        return max(0.001, estimate * (len(self._pending) + 1))

    def query(
        self,
        source: int,
        *,
        candidates: Optional[Iterable[int]] = None,
        seed: Optional[int] = None,
        deadline: Optional[float] = None,
        sampler: str = "cdf",
        top_k: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> QueryResult:
        """Blocking convenience wrapper: submit and wait for the answer."""
        request = QueryRequest.make(
            source,
            candidates=candidates,
            seed=seed,
            deadline=deadline,
            sampler=sampler,
            top_k=top_k,
        )
        return self.submit(request).result(timeout=timeout)

    def stats(self) -> Dict[str, object]:
        """A snapshot of serving counters (plus tree-LRU hit rates)."""
        with self._lock:
            snapshot: Dict[str, object] = dict(self._stats)
            snapshot["queue_depth"] = len(self._pending)
        snapshot["breaker_state"] = self._breaker.state.value
        snapshot["tree_cache_hits"] = self.trees.hits
        snapshot["tree_cache_misses"] = self.trees.misses
        snapshot["tree_cache_evictions"] = self.trees.evictions
        snapshot["tree_cache_size"] = len(self.trees)
        return snapshot

    def readiness(self) -> Tuple[bool, str, Optional[float]]:
        """Readiness for load balancers: ``(ready, reason, retry_after)``.

        Not ready while the engine is draining (``close`` begun) or the
        circuit breaker is open; ``retry_after`` is the breaker's remaining
        cooldown in the latter case.  Liveness is a different question —
        a draining engine is still alive.
        """
        if self.closed:
            return False, "draining", None
        if self._breaker.state is BreakerState.OPEN:
            return False, "breaker-open", self._breaker.retry_after()
        return True, "ready", None

    def registries(self) -> Tuple[obs.MetricsRegistry, ...]:
        """The registries describing this engine: global + per-engine."""
        return (obs.REGISTRY, self.registry)

    def metrics_snapshot(self) -> Dict[str, dict]:
        """One merged name→metric snapshot across :meth:`registries`."""
        merged: Dict[str, dict] = {}
        for registry in self.registries():
            merged.update(registry.snapshot())
        return merged

    # ------------------------------------------------------------------ lifecycle

    def close(self, timeout: Optional[float] = None) -> None:
        """Stop admissions, drain queued requests, release the executor.

        Idempotent and safe under concurrent callers (e.g. a signal
        handler racing a ``with`` block): the first caller performs the
        single drain, later callers wait for it to finish.  Every request
        admitted before the close is answered (or failed with its own
        error) before this returns; the queue-depth gauge ends at 0.
        """
        with self._lock:
            first = not self._closed
            self._closed = True
            self._not_empty.notify_all()
        if not first:
            self._drained.wait(timeout=timeout)
            return
        deadline_at = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                thread = self._dispatcher
            if thread is None:
                break
            join_timeout = (
                None
                if deadline_at is None
                else max(0.0, deadline_at - time.monotonic())
            )
            thread.join(timeout=join_timeout)
            if thread.is_alive():
                break  # caller's wait budget spent; drain continues async
            with self._lock:
                if self._dispatcher is not thread:
                    continue  # the watchdog replaced it; join the new one
                if self._pending or self._inflight:
                    # Died mid-drain with the watchdog off: revive it so
                    # the admitted requests still get answered.
                    self._recover_dispatcher_locked("died during drain")
                    continue
                self._dispatcher = None
                break
        self._watchdog_stop.set()
        if self._watchdog is not None:
            self._watchdog.join(
                timeout=None
                if deadline_at is None
                else max(0.0, deadline_at - time.monotonic())
            )
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.close()
        self._drained.set()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ dispatch

    def _start_dispatcher_locked(self) -> None:
        """Spawn a dispatcher under a fresh generation (caller holds lock).

        Bumping the generation makes any previous dispatcher thread exit
        at its next check instead of racing the new one for the queue.
        """
        self._dispatcher_gen += 1
        self._heartbeat = time.monotonic()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop,
            args=(self._dispatcher_gen,),
            name="repro-serve-dispatcher",
            daemon=True,
        )
        self._dispatcher.start()

    def _dispatch_loop(self, gen: int) -> None:
        while True:
            with self._lock:
                if self._dispatcher_gen != gen:
                    return  # superseded by a watchdog restart
                iteration = self._dispatch_iterations
                self._dispatch_iterations += 1
                self._heartbeat = time.monotonic()
            # Chaos site, indexed by dispatch iteration (a counter that
            # survives restarts, so a plan targets one specific iteration):
            # "raise" kills this thread before it picks up any request —
            # the watchdog restarts it and nothing admitted is lost;
            # "delay" hangs it for stall detection.  Fires outside the lock.
            faults.inject("dispatcher", iteration)
            batch = self._next_batch(gen)
            if batch is None:
                return
            try:
                self._serve_batch(batch)
            finally:
                with self._lock:
                    if self._dispatcher_gen == gen:
                        self._inflight = []
                        self._serving_since = None
                        self._heartbeat = time.monotonic()

    def _next_batch(self, gen: int) -> Optional[List[_Pending]]:
        """Pop the next batch, or ``None`` when this dispatcher should exit."""
        with self._lock:
            while True:
                if self._dispatcher_gen != gen:
                    return None
                if self._pending:
                    break
                if self._closed:
                    return None
                # Refresh the heartbeat on every wakeup so an *idle*
                # dispatcher is never mistaken for a hung one the moment
                # work arrives.
                self._heartbeat = time.monotonic()
                self._not_empty.wait(timeout=0.5)
            batch = [self._pending.popleft()]
            self._queue_depth.dec()
            window_end = time.monotonic() + self.config.batch_window
            while len(batch) < self.config.max_batch:
                if self._pending:
                    batch.append(self._pending.popleft())
                    self._queue_depth.dec()
                    continue
                remaining = window_end - time.monotonic()
                if remaining <= 0 or self._closed:
                    break
                self._heartbeat = time.monotonic()
                self._not_empty.wait(timeout=remaining)
                if self._dispatcher_gen != gen:
                    # Superseded mid-collection: hand the batch back intact.
                    for item in reversed(batch):
                        self._pending.appendleft(item)
                        self._queue_depth.inc()
                    return None
            now = time.monotonic()
            self._heartbeat = now
            for item in batch:
                self._queue_wait_hist.observe(now - item.arrival)
            self._inflight = list(batch)
            self._serving_since = now
            return batch

    def _serve_batch(self, batch: List[_Pending]) -> None:
        with self._lock:
            self._stats["queries"] += len(batch)
            self._stats["batches"] += 1
        self._counters["queries"].inc(len(batch))
        self._counters["batches"].inc()
        self._batch_size_hist.observe(len(batch))
        served_at = time.monotonic()
        deadline_items = [p for p in batch if p.request.deadline is not None]
        coalescible = [p for p in batch if p.request.deadline is None]
        # Latency-bounded requests go first: their budget is already burning.
        for pending in deadline_items:
            self._serve_deadline(pending)
        by_sampler: Dict[str, List[_Pending]] = {}
        for pending in coalescible:
            by_sampler.setdefault(pending.request.sampler, []).append(pending)
        for sampler, group in by_sampler.items():
            if self.config.adaptive:
                # Adaptive rounds stop per-query; a coalesced walk stream
                # would force every batch-mate to the slowest stopper, so
                # each request gets its own adaptive serial run on the
                # warm tree cache instead.
                self._assign_seeds(group)
                for pending in group:
                    self._serve_adaptive(sampler, pending, len(group))
            else:
                self._serve_coalesced(sampler, group)
        # Feed the measured per-request service time into the EWMA that
        # prices Retry-After for shed/rejected submissions.
        per_request = (time.monotonic() - served_at) / len(batch)
        with self._lock:
            if self._service_ewma is None:
                self._service_ewma = per_request
            else:
                self._service_ewma += 0.2 * (per_request - self._service_ewma)

    def _assign_seeds(self, group: List[_Pending]) -> None:
        """Give every seedless request a drawn seed; share one per catalogue.

        Seedless requests over the same explicit candidate set get a single
        drawn seed so ``crashsim_batch`` coalesces them into one shared
        walk stream.  ``candidates=None`` requests keep individual seeds —
        their walk-target sets differ per source, so sharing gains nothing.
        Explicit seeds are never touched.
        """
        shared: Dict[Tuple, int] = {}
        for pending in group:
            request = pending.request
            if request.seed is not None:
                pending.seed = request.seed
                continue
            if request.candidates is None:
                pending.seed = int(self._seed_source.integers(0, 2**63))
                continue
            key = request.candidates
            if key not in shared:
                shared[key] = int(self._seed_source.integers(0, 2**63))
            pending.seed = shared[key]

    def _serve_coalesced(self, sampler: str, group: List[_Pending]) -> None:
        self._assign_seeds(group)
        queries = [
            BatchQuery(
                p.request.source, seed=p.seed, candidates=p.request.candidates
            )
            for p in group
        ]
        batch_stats: Dict[str, int] = {}
        trace = obs.Trace("batch", {"sampler": sampler, "size": len(group)})
        try:
            with trace.activate():
                results = crashsim_batch(
                    self.graph,
                    queries,
                    params=self.params,
                    tree_variant=self.config.tree_variant,
                    sampler=sampler,
                    kernel=self._kernel(sampler),
                    tree_provider=self.trees,
                    stats=batch_stats,
                )
        except Exception:
            if len(group) == 1:
                _fail_future(group[0].future, _current_exception())
                return
            # One bad request must not fail its batch-mates: retry solo so
            # only the offender errors.
            for pending in group:
                self._serve_coalesced(sampler, [pending])
            return
        with self._lock:
            for key, value in batch_stats.items():
                self._stats[key] += value
        for key, value in batch_stats.items():
            self._counters[key].inc(value)
        coalesced = batch_stats.get("coalesced_queries", 0) > 0
        for pending, result in zip(group, results):
            self._finish(
                pending,
                result,
                batch_size=len(group),
                coalesced=coalesced,
                trace=trace,
            )

    def _serve_adaptive(
        self, sampler: str, pending: _Pending, batch_size: int
    ) -> None:
        """Serve one deadline-less request with adaptive early stopping.

        Byte-identical to ``single_source(..., adaptive=True)`` with the
        same seed: the warm LRU tree feeds the same serial adaptive driver
        the direct call uses.  ``batch_size`` is the dispatch group's size
        (diagnostics only — adaptive requests never coalesce).
        """
        request = pending.request
        trace = obs.Trace(
            "query", {"source": request.source, "adaptive": True}
        )
        try:
            with trace.activate():
                tree = self.trees.get(request.source)
                result = crashsim(
                    self.graph,
                    request.source,
                    candidates=request.candidates,
                    params=self.params,
                    tree=tree,
                    seed=pending.seed,
                    sampler=sampler,
                    adaptive=True,
                )
        except Exception:
            _fail_future(pending.future, _current_exception())
            return
        self._finish(
            pending,
            result,
            batch_size=batch_size,
            coalesced=False,
            trace=trace,
        )

    def _serve_deadline(self, pending: _Pending) -> None:
        from repro.parallel import parallel_crashsim

        request = pending.request
        self._assign_seeds([pending])
        self._bump("deadline_queries")
        remaining = request.deadline - (time.monotonic() - pending.arrival)
        if remaining <= 0:
            # Expired while queued: reject before burning any kernel time.
            # This is a pure overload signal, so the breaker hears it too.
            self._bump("expired")
            self._record_breaker(ok=False)
            _fail_future(
                pending.future,
                DeadlineExceededError(
                    f"deadline of {request.deadline}s elapsed while the "
                    "request waited for dispatch",
                    deadline=request.deadline,
                    elapsed=time.monotonic() - pending.arrival,
                ),
            )
            return
        route = self._breaker.before_query()
        if route is BreakerState.HALF_OPEN:
            self._bump("breaker_probes")
        self._sync_breaker_gauge()
        if route is BreakerState.OPEN:
            self._serve_breaker_degraded(pending)
            return
        trace = obs.Trace(
            "query", {"source": request.source, "deadline": request.deadline}
        )
        try:
            with trace.activate():
                tree = self.trees.get(request.source)
                with warnings.catch_warnings():
                    # The degradation signal reaches the caller through the
                    # ScoreVector metadata; the warning would only spam the
                    # server log once per overloaded request.
                    warnings.simplefilter("ignore", DegradedResultWarning)
                    result = parallel_crashsim(
                        self.graph,
                        request.source,
                        candidates=request.candidates,
                        params=self.params,
                        seed=pending.seed,
                        workers=self.config.workers,
                        executor=self._ensure_executor(),
                        deadline=remaining,
                        sampler=request.sampler,
                        tree=tree,
                        adaptive=self.config.adaptive,
                    )
        except Exception:
            exc = _current_exception()
            # Only overload-shaped outcomes count against the breaker; a
            # malformed request is no reason to stop trusting the executor.
            self._record_breaker(ok=not isinstance(exc, DeadlineExceededError))
            _fail_future(pending.future, exc)
            return
        self._record_breaker(ok=not result.degraded)
        self._finish(
            pending,
            result,
            batch_size=1,
            coalesced=False,
            trace=trace,
            breaker_state=route.value,
        )

    def _serve_breaker_degraded(self, pending: _Pending) -> None:
        """Answer a deadline query from the breaker's cheap low-n_r mode.

        Runs ``breaker_n_r`` trials through the warm batch path (shared
        trees and kernels, no executor round-trip) and labels the answer
        honestly: ``degraded=True`` with ``achieved_epsilon`` computed from
        the *engine's* real parameters at the reduced trial count, and
        ``QueryResult.breaker_state="open"``.  These answers never feed
        back into the breaker — only full-size outcomes move its state.
        """
        request = pending.request
        self._bump("breaker_degraded")
        trace = obs.Trace(
            "query",
            {
                "source": request.source,
                "deadline": request.deadline,
                "breaker": "open",
            },
        )
        try:
            with trace.activate():
                results = crashsim_batch(
                    self.graph,
                    [
                        BatchQuery(
                            request.source,
                            seed=pending.seed,
                            candidates=request.candidates,
                        )
                    ],
                    params=self._breaker_params,
                    tree_variant=self.config.tree_variant,
                    sampler=request.sampler,
                    kernel=self._kernel(request.sampler),
                    tree_provider=self.trees,
                )
        except Exception:
            _fail_future(pending.future, _current_exception())
            return
        self._finish(
            pending,
            results[0],
            batch_size=1,
            coalesced=False,
            trace=trace,
            breaker_state=BreakerState.OPEN.value,
            force_degraded=True,
        )

    # ------------------------------------------------------------------ watchdog

    def _watchdog_loop(self) -> None:
        interval = max(self.config.watchdog_interval, 0.01)
        while not self._watchdog_stop.wait(interval):
            with self._lock:
                thread = self._dispatcher
                if thread is None:
                    continue
                dead = not thread.is_alive()
                work = bool(self._pending) or bool(self._inflight)
                stall = self.config.dispatcher_stall_timeout
                hung = (
                    not dead
                    and stall is not None
                    and work
                    and time.monotonic() - self._heartbeat > stall
                )
                if dead and self._closed and not work:
                    continue  # normal drain exit, nothing to revive
                if dead or hung:
                    self._recover_dispatcher_locked(
                        "died"
                        if dead
                        else f"went {stall}s without a heartbeat"
                    )

    def _recover_dispatcher_locked(self, reason: str) -> None:
        """Fail in-flight futures, restart the dispatcher (lock held).

        Requests still in the queue are *not* failed — the fresh
        dispatcher serves them exactly as if nothing happened; only the
        batch the dead/hung thread had already popped is unrecoverable
        (its per-request state lives on that thread's stack).
        """
        self._bump("dispatcher_restarts")
        victims = [p for p in self._inflight if not p.future.done()]
        self._inflight = []
        self._serving_since = None
        logger.error(
            "dispatcher %s; failing %d in-flight request(s), "
            "%d queued request(s) survive the restart",
            reason,
            len(victims),
            len(self._pending),
        )
        for victim in victims:
            _fail_future(
                victim.future,
                DispatcherError(
                    f"dispatcher thread {reason} while this request was "
                    "being served; the engine restarted it — resubmit if "
                    "the answer is still wanted"
                ),
            )
        self._start_dispatcher_locked()
        self._not_empty.notify_all()

    # ------------------------------------------------------------------ helpers

    def _bump(self, key: str, n: int = 1) -> None:
        with self._lock:
            self._stats[key] += n
        self._counters[key].inc(n)

    def _record_breaker(self, ok: bool) -> None:
        """Feed a full-size deadline outcome into the breaker; mirror metrics."""
        if not self._breaker.enabled:
            return
        trips_before = self._breaker.trips
        if ok:
            self._breaker.record_success()
        else:
            state = self._breaker.record_failure()
            if self._breaker.trips > trips_before:
                self._bump("breaker_trips")
                logger.warning(
                    "circuit breaker opened (state=%s) after %d consecutive "
                    "deadline/degraded outcomes; deadline queries now served "
                    "at n_r=%d until a probe succeeds",
                    state.value,
                    self.config.breaker_threshold,
                    self.config.breaker_n_r,
                )
        self._sync_breaker_gauge()

    def _sync_breaker_gauge(self) -> None:
        if self._breaker.enabled:
            self._breaker_gauge.set(_BREAKER_GAUGE_VALUE[self._breaker.state])

    def _kernel(self, sampler: str) -> WalkCrashKernel:
        kernel = self._kernels.get(sampler)
        if kernel is None:
            kernel = WalkCrashKernel(self.graph, self.params.c, sampler=sampler)
            self._kernels[sampler] = kernel
        return kernel

    def _ensure_executor(self):
        from repro.parallel import ParallelExecutor, RetryBudget

        with self._lock:
            if self._executor is None:
                budget = None
                if self.config.retry_budget is not None:
                    budget = RetryBudget(
                        min_tokens=self.config.retry_budget,
                        max_tokens=max(256, self.config.retry_budget),
                    )
                self._executor = ParallelExecutor(
                    self.config.workers,
                    mode=self.config.mode,
                    retry_backoff=self.config.retry_backoff,
                    retry_budget=budget,
                )
            return self._executor

    def _finish(
        self,
        pending: _Pending,
        result,
        *,
        batch_size: int,
        coalesced: bool,
        trace=None,
        breaker_state: str = "closed",
        force_degraded: bool = False,
    ) -> None:
        # Exactly api.single_source's assembly, so engine vectors are
        # byte-identical to the direct call's.
        scores = np.zeros(self.graph.num_nodes)
        scores[result.candidates] = result.scores
        scores[int(result.source)] = 1.0
        degraded = bool(result.degraded) or force_degraded
        achieved = result.achieved_epsilon
        if force_degraded and achieved is None:
            # Breaker mode: the run *completed* at breaker_n_r trials, so
            # price the honest ε against the engine's real parameters.
            achieved = self.params.achieved_epsilon(
                max(self.graph.num_nodes, 2), result.trials_completed
            )
        vector = ScoreVector.wrap(
            scores,
            degraded=degraded,
            trials_completed=result.trials_completed,
            achieved_epsilon=achieved,
            stopped_early=getattr(result, "stopped_early", False),
            trace=trace,
        )
        if degraded:
            self._bump("degraded")
            if not force_degraded:
                logger.warning(
                    "degraded engine answer: source=%d seed=%s "
                    "trials_completed=%s achieved_epsilon=%s",
                    int(result.source),
                    pending.seed,
                    result.trials_completed,
                    result.achieved_epsilon,
                )
        elapsed = time.monotonic() - pending.arrival
        self._latency_hist.observe(elapsed)
        top = None
        if pending.request.top_k is not None:
            top = _top_k(vector, int(result.source), pending.request.top_k)
        _resolve_future(
            pending.future,
            QueryResult(
                scores=vector,
                source=int(result.source),
                seed=pending.seed,
                elapsed=elapsed,
                top=top,
                batch_size=batch_size,
                coalesced=coalesced,
                trace=trace,
                breaker_state=breaker_state,
            ),
        )


def _top_k(scores: np.ndarray, source: int, k: int) -> List[Tuple[int, float]]:
    """The k best non-source nodes, score-descending, node id as tiebreak."""
    values = np.asarray(scores, dtype=np.float64).copy()
    values[source] = -np.inf
    k = min(k, values.size - 1)
    if k <= 0:
        return []
    top = np.argpartition(-values, k - 1)[:k]
    order = np.lexsort((top, -values[top]))
    ranked = top[order]
    return [(int(node), float(values[node])) for node in ranked]


def _current_exception() -> BaseException:
    import sys

    return sys.exc_info()[1]
