"""Long-lived query serving: a resident engine over one graph.

Every standalone query pays the full setup bill — tree build, kernel
buffers, process-pool start-up — which is why workers=4 *loses* to serial
in ``BENCH_parallel.json`` and the multi-source walk-sharing win is
unreachable for independent callers.  This package keeps all of that state
resident:

* :class:`~repro.serve.engine.Engine` — holds the graph, warm per-sampler
  kernels, an LRU of source reverse trees, and one persistent
  :class:`~repro.parallel.ParallelExecutor`; admits concurrent requests,
  coalesces compatible ones inside a small batching window, and scores each
  batch through the kernel's shared-walk path.
* :func:`~repro.serve.http.create_server` — a threaded HTTP front door
  (``POST /v1/query``, ``GET /healthz``, ``GET /stats``) behind the
  ``repro serve`` CLI command.

Determinism contract: an engine answer for an explicitly seeded request is
byte-identical to the corresponding direct :func:`repro.api.single_source`
call, regardless of what else happened to share its batch (pinned by
``tests/serve/test_batching_properties.py``).
"""

from repro.serve.breaker import BreakerState, CircuitBreaker
from repro.serve.engine import (
    SHED_POLICIES,
    Engine,
    EngineConfig,
    QueryRequest,
    QueryResult,
    TreeLRU,
)
from repro.serve.http import create_server

__all__ = [
    "Engine",
    "EngineConfig",
    "QueryRequest",
    "QueryResult",
    "TreeLRU",
    "BreakerState",
    "CircuitBreaker",
    "SHED_POLICIES",
    "create_server",
]
