"""A circuit breaker for the engine's deadline path.

When the executor is saturated, every deadline query burns its full budget
only to come back degraded (or not at all) — and the work spent on those
doomed queries is exactly what keeps the executor saturated.  The breaker
cuts that feedback loop: after ``threshold`` *consecutive* bad outcomes
(deadline exceeded, or degraded below the planned trial count) it trips
**open**, and the engine answers subsequent deadline queries from a cheap
low-``n_r`` degraded mode — honest wider-ε estimates in microseconds of
kernel time — instead of feeding more full-size queries to a struggling
executor.  After ``cooldown`` seconds the breaker goes **half-open**: the
next query runs at full size as a probe.  A good probe closes the breaker;
a bad one reopens it for another cooldown.

State machine::

                 threshold consecutive failures
        CLOSED ────────────────────────────────────▶ OPEN
          ▲                                           │
          │ probe succeeds                            │ cooldown elapses
          │                                           ▼
          └─────────────────────────────────────── HALF_OPEN
                                                      │
                                OPEN ◀────────────────┘
                                       probe fails

The class is deliberately engine-agnostic: it never sleeps, spawns no
threads, and takes an injectable ``clock`` so tests can drive the state
machine without real waiting.  All methods are thread-safe, though the
engine only calls them from its single dispatcher thread.
"""

from __future__ import annotations

import enum
import threading
import time
from typing import Callable

from repro.errors import ParameterError

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState(enum.Enum):
    """The three circuit-breaker states; ``value`` is the wire label."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a half-open probe.

    Parameters
    ----------
    threshold:
        Consecutive failures that trip the breaker.  ``0`` disables it
        entirely: :meth:`before_query` always answers ``CLOSED`` and the
        record methods are no-ops.
    cooldown:
        Seconds the breaker stays open before offering a half-open probe.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        threshold: int = 0,
        cooldown: float = 1.0,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold < 0:
            raise ParameterError(
                f"breaker threshold must be >= 0, got {threshold}"
            )
        if cooldown <= 0:
            raise ParameterError(
                f"breaker cooldown must be positive, got {cooldown}"
            )
        self.threshold = int(threshold)
        self.cooldown = float(cooldown)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._opened_at: float = 0.0
        self._probe_inflight = False
        self.consecutive_failures = 0
        self.trips = 0  # CLOSED->OPEN transitions plus probe-failed reopens
        self.probes = 0  # half-open probes issued

    @property
    def enabled(self) -> bool:
        return self.threshold > 0

    @property
    def state(self) -> BreakerState:
        """The current state, promoting OPEN→HALF_OPEN once cooled down.

        Read-only peek: unlike :meth:`before_query` it never claims the
        probe slot, so a ``/readyz`` poll cannot eat the probe a real
        query should run.
        """
        with self._lock:
            if (
                self._state is BreakerState.OPEN
                and self._clock() - self._opened_at >= self.cooldown
            ):
                return BreakerState.HALF_OPEN
            return self._state

    def retry_after(self) -> float:
        """Seconds until a probe will be offered (0 when not open)."""
        with self._lock:
            if self._state is not BreakerState.OPEN:
                return 0.0
            return max(0.0, self.cooldown - (self._clock() - self._opened_at))

    def before_query(self) -> BreakerState:
        """Route one query: how should the engine serve it *right now*?

        ``CLOSED`` → serve at full size; ``OPEN`` → serve from the cheap
        degraded mode; ``HALF_OPEN`` → serve at full size *as the probe*
        (the caller must report the outcome via :meth:`record_success` /
        :meth:`record_failure`).  While a probe is in flight, other
        queries get ``OPEN`` so exactly one probe decides the transition.
        """
        if not self.enabled:
            return BreakerState.CLOSED
        with self._lock:
            if self._state is BreakerState.CLOSED:
                return BreakerState.CLOSED
            if self._state is BreakerState.OPEN:
                if self._clock() - self._opened_at < self.cooldown:
                    return BreakerState.OPEN
                self._state = BreakerState.HALF_OPEN
                self._probe_inflight = True
                self.probes += 1
                return BreakerState.HALF_OPEN
            # HALF_OPEN: one probe at a time.
            if self._probe_inflight:
                return BreakerState.OPEN
            self._probe_inflight = True
            self.probes += 1
            return BreakerState.HALF_OPEN

    def record_success(self) -> BreakerState:
        """A full-size query came back clean; closes a half-open breaker."""
        if not self.enabled:
            return BreakerState.CLOSED
        with self._lock:
            self.consecutive_failures = 0
            if self._state is BreakerState.HALF_OPEN:
                self._state = BreakerState.CLOSED
                self._probe_inflight = False
            return self._state

    def record_failure(self) -> BreakerState:
        """A full-size query missed its deadline or degraded.

        Returns the state *after* accounting the failure, so the caller
        can tell a fresh trip (``OPEN`` with a bumped ``trips``) apart
        from one more failure while already open.
        """
        if not self.enabled:
            return BreakerState.CLOSED
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                # The probe failed: reopen for another cooldown.
                self._state = BreakerState.OPEN
                self._opened_at = self._clock()
                self._probe_inflight = False
                self.trips += 1
                return self._state
            self.consecutive_failures += 1
            if (
                self._state is BreakerState.CLOSED
                and self.consecutive_failures >= self.threshold
            ):
                self._state = BreakerState.OPEN
                self._opened_at = self._clock()
                self.trips += 1
            return self._state
