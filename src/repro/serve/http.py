"""A threaded HTTP front door over one :class:`~repro.serve.engine.Engine`.

Deliberately dependency-free (``http.server`` from the standard library):
each connection gets a handler thread, every handler funnels into the
engine's queue, and the engine's single dispatcher does the actual scoring
— so the batching window naturally coalesces whatever concurrent HTTP
clients send.  This is the process behind ``repro serve``.

Endpoints
---------
``POST /v1/query``
    Body: ``{"source": 3, "candidates": [..]?, "seed": 42?,
    "deadline": 0.5?, "sampler": "cdf"?, "top_k": 10?}``.
    The ``X-Repro-Deadline`` request header (seconds, float) is an
    alternative way to carry the end-to-end budget — proxies can stamp it
    without parsing the body; when both are present the *tighter* budget
    wins.  Response carries the resilience metadata and either the dense
    ``scores`` list (small graphs / explicit ``"dense": true``) or the
    ``top`` ranking.  Requests without ``top_k`` on graphs larger than
    ``DENSE_RESPONSE_LIMIT`` nodes default to ``top_k=100`` rather than
    shipping a multi-megabyte vector.

    Status codes: ``200`` answered (possibly degraded — check the body);
    ``400`` malformed; ``429`` shed by admission control, with a
    ``Retry-After`` header from the engine's measured service rate;
    ``503`` engine shut down; ``504`` deadline expired with nothing to
    salvage.
``GET /healthz``
    Liveness only: ``200 {"status": "ok"}`` whenever the process can
    answer HTTP at all — even while draining.  Restart-deciders watch
    this; routing-deciders watch ``/readyz``.
``GET /readyz``
    Readiness: ``200 {"status": "ready"}`` while the engine accepts and
    serves at full quality; ``503`` (with ``Retry-After`` when known)
    while the engine is draining in ``close()`` or the circuit breaker is
    open — so load balancers stop routing before shutdown drops requests.
``GET /stats``
    The engine's serving counters, plus a ``metrics`` object carrying the
    merged registry snapshot (counters, gauges, histogram percentiles).
``GET /metrics``
    Prometheus text exposition (format 0.0.4) over the global registry and
    the engine's per-engine registry — kernel, tree, executor, and engine
    metric families in one scrape.
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro import obs
from repro import parallel as _parallel  # noqa: F401 - registers the
# executor/runner metric families so a /metrics scrape covers them even
# before the engine's first deadline query forces the lazy import.
from repro.errors import (
    DeadlineExceededError,
    DispatcherError,
    EngineClosedError,
    EngineOverloadedError,
    ReproError,
)
from repro.serve.engine import Engine

__all__ = ["create_server", "serve_forever", "DENSE_RESPONSE_LIMIT", "DEADLINE_HEADER"]

#: Request header carrying the end-to-end deadline budget in seconds.
DEADLINE_HEADER = "X-Repro-Deadline"

#: Above this node count, responses default to a top-k ranking instead of
#: the dense vector (which would be ~1 MB of JSON per 50k-node query).
DENSE_RESPONSE_LIMIT = 10_000


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # The engine rides on the server object (see create_server).
    @property
    def engine(self) -> Engine:
        return self.server.engine

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _reply(
        self,
        status: int,
        payload: dict,
        *,
        retry_after: Optional[float] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            # Retry-After is whole seconds on the wire; round up so a
            # compliant client never comes back before capacity frees.
            self.send_header("Retry-After", str(max(1, math.ceil(retry_after))))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/healthz":
            # Liveness: this handler running *is* the health signal.  A
            # draining engine still answers 200 here — /readyz is what
            # tells the load balancer to stop routing.
            self._reply(200, {"status": "ok"})
            return
        if self.path == "/readyz":
            ready, reason, retry_after = self.engine.readiness()
            if ready:
                self._reply(200, {"status": "ready"})
            else:
                self._reply(
                    503, {"status": reason}, retry_after=retry_after
                )
            return
        if self.path == "/stats":
            payload = self.engine.stats()
            payload["metrics"] = self.engine.metrics_snapshot()
            self._reply(200, payload)
            return
        if self.path == "/metrics":
            body = obs.render_prometheus(*self.engine.registries()).encode(
                "utf-8"
            )
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        self._reply(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path != "/v1/query":
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError) as exc:
            self._reply(400, {"error": f"malformed request body: {exc}"})
            return
        if not isinstance(payload, dict) or "source" not in payload:
            self._reply(400, {"error": "body must be an object with 'source'"})
            return
        top_k = payload.get("top_k")
        dense = bool(payload.get("dense", False))
        if (
            top_k is None
            and not dense
            and self.engine.graph.num_nodes > DENSE_RESPONSE_LIMIT
        ):
            top_k = 100
        deadline = payload.get("deadline")
        header_deadline = self.headers.get(DEADLINE_HEADER)
        if header_deadline is not None:
            try:
                header_deadline = float(header_deadline)
            except ValueError:
                self._reply(
                    400,
                    {
                        "error": f"malformed {DEADLINE_HEADER} header: "
                        f"{header_deadline!r} is not a number"
                    },
                )
                return
            if header_deadline <= 0:
                # The proxy says the budget is already gone: answer like
                # any other expired deadline, without engine round-trip.
                self._reply(
                    504,
                    {
                        "error": f"{DEADLINE_HEADER} budget already expired",
                        "deadline": header_deadline,
                    },
                )
                return
            deadline = (
                header_deadline
                if deadline is None
                else min(float(deadline), header_deadline)
            )
        try:
            result = self.engine.query(
                int(payload["source"]),
                candidates=payload.get("candidates"),
                seed=payload.get("seed"),
                deadline=deadline,
                sampler=payload.get("sampler", "cdf"),
                top_k=top_k,
            )
        except EngineOverloadedError as exc:
            self._reply(
                429,
                {"error": str(exc), "retry_after": exc.retry_after},
                retry_after=exc.retry_after or 1.0,
            )
            return
        except EngineClosedError as exc:
            self._reply(503, {"error": str(exc)})
            return
        except DeadlineExceededError as exc:
            self._reply(504, {"error": str(exc), "deadline": exc.deadline})
            return
        except DispatcherError as exc:
            # Server-side failure, not the client's: resubmittable.
            self._reply(500, {"error": str(exc)})
            return
        except (ReproError, TypeError) as exc:
            self._reply(400, {"error": str(exc)})
            return
        response = {
            "source": result.source,
            "seed": result.seed,
            "elapsed": result.elapsed,
            "degraded": result.degraded,
            "trials_completed": result.scores.trials_completed,
            "achieved_epsilon": result.scores.achieved_epsilon,
            "batch_size": result.batch_size,
            "coalesced": result.coalesced,
            "breaker_state": result.breaker_state,
        }
        if result.top is not None:
            response["top"] = [[node, score] for node, score in result.top]
        else:
            response["scores"] = [float(s) for s in result.scores]
        self._reply(200, response)


def create_server(
    engine: Engine,
    host: str = "127.0.0.1",
    port: int = 8321,
    *,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """Build the threaded HTTP server (not yet serving) over ``engine``.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.server_address``) — how the tests run a real client/server
    pair without port collisions.
    """
    server = ThreadingHTTPServer((host, port), _Handler)
    server.engine = engine
    server.verbose = verbose
    server.daemon_threads = True
    return server


def serve_forever(
    server: ThreadingHTTPServer, *, poll_interval: float = 0.5
) -> None:
    """Serve until interrupted, then drain the engine before returning."""
    try:
        server.serve_forever(poll_interval=poll_interval)
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown_requested = True
        threading.Thread(target=server.shutdown, daemon=True).start()
        server.engine.close()
        server.server_close()
