"""A threaded HTTP front door over one :class:`~repro.serve.engine.Engine`.

Deliberately dependency-free (``http.server`` from the standard library):
each connection gets a handler thread, every handler funnels into the
engine's queue, and the engine's single dispatcher does the actual scoring
— so the batching window naturally coalesces whatever concurrent HTTP
clients send.  This is the process behind ``repro serve``.

Endpoints
---------
``POST /v1/query``
    Body: ``{"source": 3, "candidates": [..]?, "seed": 42?,
    "deadline": 0.5?, "sampler": "cdf"?, "top_k": 10?}``.
    Response carries the resilience metadata and either the dense
    ``scores`` list (small graphs / explicit ``"dense": true``) or the
    ``top`` ranking.  Requests without ``top_k`` on graphs larger than
    ``DENSE_RESPONSE_LIMIT`` nodes default to ``top_k=100`` rather than
    shipping a multi-megabyte vector.
``GET /healthz``
    ``200 {"status": "ok"}`` while the engine accepts queries.
``GET /stats``
    The engine's serving counters, plus a ``metrics`` object carrying the
    merged registry snapshot (counters, gauges, histogram percentiles).
``GET /metrics``
    Prometheus text exposition (format 0.0.4) over the global registry and
    the engine's per-engine registry — kernel, tree, executor, and engine
    metric families in one scrape.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro import obs
from repro import parallel as _parallel  # noqa: F401 - registers the
# executor/runner metric families so a /metrics scrape covers them even
# before the engine's first deadline query forces the lazy import.
from repro.errors import DeadlineExceededError, EngineClosedError, ReproError
from repro.serve.engine import Engine

__all__ = ["create_server", "serve_forever", "DENSE_RESPONSE_LIMIT"]

#: Above this node count, responses default to a top-k ranking instead of
#: the dense vector (which would be ~1 MB of JSON per 50k-node query).
DENSE_RESPONSE_LIMIT = 10_000


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # The engine rides on the server object (see create_server).
    @property
    def engine(self) -> Engine:
        return self.server.engine

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/healthz":
            if self.engine.closed:
                self._reply(503, {"status": "closed"})
            else:
                self._reply(200, {"status": "ok"})
            return
        if self.path == "/stats":
            payload = self.engine.stats()
            payload["metrics"] = self.engine.metrics_snapshot()
            self._reply(200, payload)
            return
        if self.path == "/metrics":
            body = obs.render_prometheus(*self.engine.registries()).encode(
                "utf-8"
            )
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        self._reply(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path != "/v1/query":
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError) as exc:
            self._reply(400, {"error": f"malformed request body: {exc}"})
            return
        if not isinstance(payload, dict) or "source" not in payload:
            self._reply(400, {"error": "body must be an object with 'source'"})
            return
        top_k = payload.get("top_k")
        dense = bool(payload.get("dense", False))
        if (
            top_k is None
            and not dense
            and self.engine.graph.num_nodes > DENSE_RESPONSE_LIMIT
        ):
            top_k = 100
        try:
            result = self.engine.query(
                int(payload["source"]),
                candidates=payload.get("candidates"),
                seed=payload.get("seed"),
                deadline=payload.get("deadline"),
                sampler=payload.get("sampler", "cdf"),
                top_k=top_k,
            )
        except EngineClosedError as exc:
            self._reply(503, {"error": str(exc)})
            return
        except DeadlineExceededError as exc:
            self._reply(504, {"error": str(exc), "deadline": exc.deadline})
            return
        except (ReproError, TypeError) as exc:
            self._reply(400, {"error": str(exc)})
            return
        response = {
            "source": result.source,
            "seed": result.seed,
            "elapsed": result.elapsed,
            "degraded": result.degraded,
            "trials_completed": result.scores.trials_completed,
            "achieved_epsilon": result.scores.achieved_epsilon,
            "batch_size": result.batch_size,
            "coalesced": result.coalesced,
        }
        if result.top is not None:
            response["top"] = [[node, score] for node, score in result.top]
        else:
            response["scores"] = [float(s) for s in result.scores]
        self._reply(200, response)


def create_server(
    engine: Engine,
    host: str = "127.0.0.1",
    port: int = 8321,
    *,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """Build the threaded HTTP server (not yet serving) over ``engine``.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.server_address``) — how the tests run a real client/server
    pair without port collisions.
    """
    server = ThreadingHTTPServer((host, port), _Handler)
    server.engine = engine
    server.verbose = verbose
    server.daemon_threads = True
    return server


def serve_forever(
    server: ThreadingHTTPServer, *, poll_interval: float = 0.5
) -> None:
    """Serve until interrupted, then drain the engine before returning."""
    try:
        server.serve_forever(poll_interval=poll_interval)
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown_requested = True
        threading.Thread(target=server.shutdown, daemon=True).start()
        server.engine.close()
        server.server_close()
