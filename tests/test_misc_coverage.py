"""Coverage for corners not exercised elsewhere: CLI smoke paths, profile
invariants, weighted/always walk combinations, persistence path handling."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.revreach import revreach_levels
from repro.experiments.config import PROFILES
from repro.graph.digraph import DiGraph
from repro.walks.engine import BatchWalkStepper


class TestProfileInvariants:
    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_fields_sane(self, name):
        profile = PROFILES[name]
        assert 0.0 < profile.scale <= 1.0
        assert profile.fig7_snapshot_counts == tuple(
            sorted(profile.fig7_snapshot_counts)
        )
        assert profile.n_r_cap >= 1
        assert profile.fig6_snapshots >= 2
        assert all(0 < e < 1 for e in profile.crashsim_epsilons)
        assert set(profile.datasets) <= {
            "as733",
            "as_caida",
            "wiki_vote",
            "hepth",
            "hepph",
        }

    def test_quick_is_smallest(self):
        assert PROFILES["quick"].scale <= PROFILES["default"].scale
        assert PROFILES["default"].scale <= PROFILES["full"].scale


class TestCliSmoke:
    def test_sensitivity_theta(self, capsys):
        assert main(["sensitivity-theta", "--profile", "quick"]) == 0
        out = capsys.readouterr().out
        assert "theta" in out and "survivors" in out

    def test_scalability_prints_sparklines(self, capsys, monkeypatch):
        import repro.experiments.scalability as module

        monkeypatch.setattr(module, "DEFAULT_SCALES", (0.01, 0.02))
        assert main(["scalability", "--profile", "quick"]) == 0
        out = capsys.readouterr().out
        assert "taller = slower" in out


class TestWeightedAlwaysWalks:
    def test_weighted_survival_always(self, rng):
        graph = DiGraph.from_edges(
            3, [(1, 0), (2, 0), (0, 1), (0, 2)], weights=[9.0, 1.0, 1.0, 1.0]
        )
        stepper = BatchWalkStepper(graph, 0.5)
        first = next(
            iter(
                stepper.walk(
                    np.zeros(40000, dtype=np.int64),
                    1,
                    seed=rng,
                    survival="always",
                )
            )
        )
        assert first.num_alive == 40000
        heavy = float(np.mean(first.positions == 1))
        assert heavy == pytest.approx(0.9, abs=0.01)

    def test_weighted_prune_below(self):
        graph = DiGraph.from_edges(
            3, [(1, 0), (2, 0)], weights=[99.0, 1.0]
        )
        tree = revreach_levels(graph, 0, 2, 0.64, prune_below=0.05)
        # Node 2's share is 0.8 * 0.01 = 0.008 < 0.05: pruned away.
        assert tree.probability(1, 2) == 0.0
        assert tree.probability(1, 1) == pytest.approx(0.8 * 0.99)


class TestPersistencePaths:
    def test_npz_suffix_added(self, small_random_graph, tmp_path):
        from repro.baselines.persistence import (
            load_sling_index,
            save_sling_index,
        )
        from repro.baselines.sling import SlingIndex

        index = SlingIndex(small_random_graph, num_d_samples=5, seed=1)
        written = save_sling_index(index, tmp_path / "plain")
        assert written.suffix == ".npz"
        assert written.exists()
        loaded = load_sling_index(written, small_random_graph)
        assert np.array_equal(loaded.d, index.d)


class TestSinglePairOptions:
    def test_max_steps_truncation(self, tiny_pair_graph):
        from repro.api import single_pair

        # With zero steps the walks never move, so the estimate is 0.
        value = single_pair(
            tiny_pair_graph, 0, 1, num_samples=100, max_steps=0, seed=1
        )
        assert value == 0.0

    def test_stats_max_out_degree(self, paper_graph):
        from repro.graph.stats import graph_stats

        stats = graph_stats(paper_graph)
        assert stats.max_out_degree == max(
            paper_graph.out_degree(node) for node in paper_graph.nodes()
        )
