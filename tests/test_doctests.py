"""Run the doctests embedded in docstrings that promise exact behaviour."""

import doctest

import pytest

import repro.core.queries
import repro.graph.builder
import repro.metrics.timing

MODULES = [
    repro.graph.builder,
    repro.core.queries,
    repro.metrics.timing,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its doctests"
    assert results.failed == 0
