"""Regression tests: one ParallelExecutor shared by many query threads.

PR 3's executor was built for one query at a time; the serving engine keeps
a single executor alive and lets concurrent requests run through it.  These
tests pin the thread-safety contract documented in
``repro/parallel/executor.py``:

* concurrent ``run()`` calls all complete with correct, ordered results;
* ``cancel()`` stops every run in flight and nothing started afterwards;
* a worker killed while several runs are in flight breaks the pool exactly
  once — every run recovers its lost tasks on the rebuilt pool;
* a deadline expiring in one run does not tear down the pool under a
  concurrent run.
"""

import os
import signal
import threading
import time

import pytest

from repro.parallel import ParallelExecutor


def _square(x):
    return x * x


def _sleep_then_square(arg):
    delay, x = arg
    time.sleep(delay)
    return x * x


def _kill_if_marked(arg):
    """Die by SIGKILL exactly once per marker file, else square."""
    marked, directory, x = arg
    if marked:
        marker = os.path.join(directory, "killed-once")
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return x * x
        os.close(fd)
        os.kill(os.getpid(), signal.SIGKILL)
    return x * x


@pytest.fixture
def pool_executor():
    executor = ParallelExecutor(workers=2)
    if executor.serial:
        pytest.skip("process pools unavailable on this platform")
    try:
        yield executor
    finally:
        executor.close()


def _run_many(executor, n_threads, tasks_per_run, fn, make_tasks):
    outcomes = [None] * n_threads
    errors = []

    def worker(slot):
        try:
            outcomes[slot] = executor.run(fn, make_tasks(slot))
        except BaseException as exc:  # pragma: no cover - fail the test
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(slot,), daemon=True)
        for slot in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
        assert not thread.is_alive(), "executor run hung"
    assert not errors, errors
    return outcomes


class TestConcurrentRuns:
    def test_concurrent_runs_all_complete_in_order(self, pool_executor):
        n_threads, per_run = 4, 8
        outcomes = _run_many(
            pool_executor,
            n_threads,
            per_run,
            _square,
            lambda slot: [slot * per_run + i for i in range(per_run)],
        )
        for slot, outcome in enumerate(outcomes):
            assert outcome.all_completed
            expected = [(slot * per_run + i) ** 2 for i in range(per_run)]
            assert outcome.results == expected

    def test_concurrent_runs_serial_executor(self):
        with ParallelExecutor(workers=1) as executor:
            outcomes = _run_many(
                executor,
                4,
                4,
                _square,
                lambda slot: [slot * 4 + i for i in range(4)],
            )
        for slot, outcome in enumerate(outcomes):
            assert outcome.all_completed
            assert outcome.results == [(slot * 4 + i) ** 2 for i in range(4)]

    def test_worker_death_under_concurrency_recovers_every_run(
        self, pool_executor, tmp_path
    ):
        directory = str(tmp_path)

        def make_tasks(slot):
            # Exactly one task in thread 0 kills its worker, once.
            return [
                (slot == 0 and i == 1, directory, slot * 8 + i)
                for i in range(8)
            ]

        outcomes = _run_many(
            pool_executor, 3, 8, _kill_if_marked, make_tasks
        )
        for slot, outcome in enumerate(outcomes):
            assert outcome.all_completed, (slot, outcome.errors)
            assert outcome.results == [(slot * 8 + i) ** 2 for i in range(8)]
        # The breakage was observed at least once and recovered from.
        assert sum(outcome.pool_rebuilds for outcome in outcomes) >= 1
        # Executor still healthy for the next query.
        follow_up = pool_executor.run(_square, [5])
        assert follow_up.results == [25]

    def test_cancel_hits_every_inflight_run_but_not_later_ones(
        self, pool_executor
    ):
        started = threading.Barrier(3, timeout=30)

        def run_slow(slot):
            started.wait()
            return pool_executor.run(
                _sleep_then_square, [(0.2, i) for i in range(20)]
            )

        results = [None, None]
        threads = [
            threading.Thread(
                target=lambda s=slot: results.__setitem__(s, run_slow(s)),
                daemon=True,
            )
            for slot in (0, 1)
        ]
        for thread in threads:
            thread.start()
        started.wait()  # both runs are dispatching
        time.sleep(0.3)
        pool_executor.cancel()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive(), "cancelled run hung"
        assert all(outcome.cancelled for outcome in results)
        # Cancellation is not sticky: a later run completes normally.
        outcome = pool_executor.run(_square, [3, 4])
        assert not outcome.cancelled
        assert outcome.results == [9, 16]

    def test_deadline_in_one_run_leaves_concurrent_run_alone(
        self, pool_executor
    ):
        slow_outcome = {}

        def slow_run():
            slow_outcome["value"] = pool_executor.run(
                _sleep_then_square, [(0.4, i) for i in range(4)]
            )

        thread = threading.Thread(target=slow_run, daemon=True)
        thread.start()
        time.sleep(0.05)
        # This run's budget expires while the slow run is still in flight.
        hurried = pool_executor.run(
            _sleep_then_square,
            [(5.0, i) for i in range(4)],
            deadline=0.2,
        )
        assert hurried.deadline_hit
        thread.join(timeout=60)
        assert not thread.is_alive()
        outcome = slow_outcome["value"]
        # The deadline cleanup must not have torn down the shared pool:
        # every slow task completed without a pool rebuild in that run.
        assert outcome.all_completed
        assert outcome.results == [i * i for i in range(4)]
