"""ParallelExecutor: serial fallback, ordering, lifecycle."""

import pytest

from repro.errors import ParameterError
from repro.parallel import ParallelExecutor, resolve_workers, shard_sizes


def _square(x):
    # Module-level so it pickles under every start method.
    return x * x


class TestResolveWorkers:
    def test_none_uses_cpu_count(self):
        assert resolve_workers(None) >= 1

    def test_explicit_count_passes_through(self):
        assert resolve_workers(3) == 3

    def test_non_positive_rejected(self):
        with pytest.raises(ParameterError):
            resolve_workers(0)
        with pytest.raises(ParameterError):
            resolve_workers(-2)


class TestShardSizes:
    def test_sums_to_total_and_positive(self):
        for n_trials in (1, 5, 16, 17, 100, 12345):
            plan = shard_sizes(n_trials)
            assert sum(plan) == n_trials
            assert all(size > 0 for size in plan)
            assert len(plan) <= 16

    def test_fewer_trials_than_shards(self):
        assert shard_sizes(3, shards=16) == [1, 1, 1]

    def test_zero_trials(self):
        assert shard_sizes(0) == []

    def test_near_equal_split(self):
        plan = shard_sizes(100, shards=16)
        assert max(plan) - min(plan) <= 1

    def test_invalid_arguments(self):
        with pytest.raises(ParameterError):
            shard_sizes(-1)
        with pytest.raises(ParameterError):
            shard_sizes(10, shards=0)


class TestSerialFallback:
    def test_workers_one_is_serial(self):
        with ParallelExecutor(1) as executor:
            assert executor.serial
            assert executor.map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_map_preserves_order(self):
        with ParallelExecutor(1) as executor:
            assert executor.map(_square, range(20)) == [i * i for i in range(20)]


class TestProcessPool:
    def test_pool_map_ordered(self):
        with ParallelExecutor(2) as executor:
            assert not executor.serial
            assert executor.map(_square, range(10)) == [i * i for i in range(10)]

    def test_close_turns_serial(self):
        executor = ParallelExecutor(2)
        executor.close()
        assert executor.serial
        assert executor.map(_square, [4]) == [16]
        executor.close()  # idempotent

    def test_repr_names_mode(self):
        with ParallelExecutor(1) as executor:
            assert "serial" in repr(executor)
