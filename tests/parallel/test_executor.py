"""ParallelExecutor: serial fallback, ordering, lifecycle, resilience."""

import gc
import multiprocessing
import os
import threading
import time
import uuid

import pytest

from repro import faults
from repro.errors import ParameterError
from repro.parallel import ParallelExecutor, resolve_workers, shard_sizes


def _square(x):
    # Module-level so it pickles under every start method.
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("boom")
    return x


def _sleep_tenth(x):
    time.sleep(0.1)
    return x


def _record_run(arg):
    """Record this execution as a unique file, then hit the fault site.

    The file name carries the executing pid, so a test can prove both how
    many times each task ran and that nothing ran in the parent process.
    """
    index, directory = arg
    path = os.path.join(
        directory, f"ran-{index}-{os.getpid()}-{uuid.uuid4().hex}"
    )
    with open(path, "w"):
        pass
    faults.inject("exec", index)
    return index


def _executions(directory, index):
    return [
        name
        for name in os.listdir(directory)
        if name.startswith(f"ran-{index}-")
    ]


class TestResolveWorkers:
    def test_none_uses_cpu_count(self):
        assert resolve_workers(None) >= 1

    def test_explicit_count_passes_through(self):
        assert resolve_workers(3) == 3

    def test_non_positive_rejected(self):
        with pytest.raises(ParameterError):
            resolve_workers(0)
        with pytest.raises(ParameterError):
            resolve_workers(-2)


class TestShardSizes:
    def test_sums_to_total_and_positive(self):
        for n_trials in (1, 5, 16, 17, 100, 12345):
            plan = shard_sizes(n_trials)
            assert sum(plan) == n_trials
            assert all(size > 0 for size in plan)
            assert len(plan) <= 16

    def test_fewer_trials_than_shards(self):
        assert shard_sizes(3, shards=16) == [1, 1, 1]

    def test_zero_trials(self):
        assert shard_sizes(0) == []

    def test_near_equal_split(self):
        plan = shard_sizes(100, shards=16)
        assert max(plan) - min(plan) <= 1

    def test_invalid_arguments(self):
        with pytest.raises(ParameterError):
            shard_sizes(-1)
        with pytest.raises(ParameterError):
            shard_sizes(10, shards=0)


class TestSerialFallback:
    def test_workers_one_is_serial(self):
        with ParallelExecutor(1) as executor:
            assert executor.serial
            assert executor.map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_map_preserves_order(self):
        with ParallelExecutor(1) as executor:
            assert executor.map(_square, range(20)) == [i * i for i in range(20)]


class TestProcessPool:
    def test_pool_map_ordered(self):
        with ParallelExecutor(2) as executor:
            assert not executor.serial
            assert executor.map(_square, range(10)) == [i * i for i in range(10)]

    def test_close_turns_serial(self):
        executor = ParallelExecutor(2)
        executor.close()
        assert executor.serial
        assert executor.map(_square, [4]) == [16]
        executor.close()  # idempotent

    def test_repr_names_mode(self):
        with ParallelExecutor(1) as executor:
            assert "serial" in repr(executor)


@pytest.fixture
def pool_executor():
    executor = ParallelExecutor(2)
    if executor.serial:
        executor.close()
        pytest.skip("process pools unavailable on this platform")
    yield executor
    executor.close()


class TestStartMethodEnv:
    def test_invalid_env_value_rejected_by_name(self, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "bogus")
        with pytest.raises(ParameterError) as excinfo:
            ParallelExecutor(2)
        message = str(excinfo.value)
        assert "REPRO_START_METHOD" in message
        assert "bogus" in message
        for method in multiprocessing.get_all_start_methods():
            assert method in message

    def test_serial_executor_ignores_env(self, monkeypatch):
        # workers=1 never resolves a context, so a broken variable must
        # not block the serial path.
        monkeypatch.setenv("REPRO_START_METHOD", "bogus")
        with ParallelExecutor(1) as executor:
            assert executor.map(_square, [3]) == [9]


class TestPoolRelease:
    def test_finalizer_releases_pool_on_gc(self):
        executor = ParallelExecutor(2)
        if executor.serial:
            executor.close()
            pytest.skip("process pools unavailable on this platform")
        pool = executor._pool
        finalizer = executor._finalizer
        assert finalizer.alive
        del executor
        gc.collect()
        assert not finalizer.alive
        assert pool._shutdown_thread  # shutdown() reached the pool

    def test_close_detaches_finalizer(self, pool_executor):
        finalizer = pool_executor._finalizer
        pool_executor.close()
        assert not finalizer.alive
        assert pool_executor.serial


class TestRunSemantics:
    def test_records_error_after_retry_budget(self):
        with ParallelExecutor(1) as executor:
            outcome = executor.run(_fail_on_three, range(5), task_retries=1)
        assert outcome.completed == [True, True, True, False, True]
        assert isinstance(outcome.errors[3], ValueError)
        assert outcome.task_retries == 1
        assert outcome.first_error() is outcome.errors[3]
        assert not outcome.all_completed
        assert outcome.num_completed == 4

    def test_deadline_must_be_positive(self):
        with ParallelExecutor(1) as executor:
            with pytest.raises(ParameterError):
                executor.run(_square, [1], deadline=0)

    def test_serial_deadline_keeps_completed_prefix(self):
        with ParallelExecutor(1) as executor:
            outcome = executor.run(_sleep_tenth, range(50), deadline=0.35)
        assert outcome.deadline_hit
        assert not outcome.all_completed
        assert outcome.num_completed >= 1
        done = outcome.num_completed
        assert outcome.results[:done] == list(range(done))

    def test_cancel_returns_partial_outcome(self):
        with ParallelExecutor(1) as executor:
            timer = threading.Timer(0.25, executor.cancel)
            timer.start()
            try:
                outcome = executor.run(_sleep_tenth, range(100))
            finally:
                timer.cancel()
        assert outcome.cancelled
        assert not outcome.all_completed
        assert outcome.num_completed >= 1


class TestPoolBreakage:
    def test_run_resubmits_only_lost_tasks(self, pool_executor):
        # Task 0 kills its worker once.  The pool is rebuilt, the lost
        # task retried exactly once, and every completed result is kept —
        # proven by the per-execution files: task 0 ran twice, and no
        # task ran in the parent process.
        with faults.active({"exec": {"0": {"kind": "kill"}}}) as markers:
            tasks = [(index, markers) for index in range(8)]
            outcome = pool_executor.run(_record_run, tasks)
            assert outcome.all_completed
            assert outcome.results == list(range(8))
            assert outcome.pool_rebuilds == 1
            assert len(_executions(markers, 0)) == 2
            parent = str(os.getpid())
            for index in range(8):
                for name in _executions(markers, index):
                    assert name.split("-")[2] != parent

    def test_map_keeps_completed_results_across_breakage(self, pool_executor):
        with faults.active({"exec": {"2": {"kind": "kill"}}}) as markers:
            tasks = [(index, markers) for index in range(8)]
            results = pool_executor.map(_record_run, tasks)
            assert results == list(range(8))
            assert len(_executions(markers, 2)) == 2
            parent = str(os.getpid())
            for index in range(8):
                for name in _executions(markers, index):
                    assert name.split("-")[2] != parent
