"""Parallel snapshot driver: determinism and Ω-shrinking semantics."""

import numpy as np
import pytest

from repro.core.params import CrashSimParams
from repro.core.queries import ThresholdQuery, TrendQuery
from repro.errors import ParameterError, QueryError
from repro.parallel import parallel_crashsim_t

PARAMS = CrashSimParams(n_r_override=300)


class TestDeterminism:
    def test_identical_across_worker_counts(self, paper_temporal):
        query = ThresholdQuery(0.005)
        reference = parallel_crashsim_t(
            paper_temporal, 0, query, params=PARAMS, seed=17, workers=1
        )
        for workers in (2, 3):
            other = parallel_crashsim_t(
                paper_temporal, 0, query, params=PARAMS, seed=17, workers=workers
            )
            assert other.survivors == reference.survivors
            assert other.history == reference.history
            assert other.stats.as_dict() == reference.stats.as_dict()

    def test_repeat_run_identical(self, paper_temporal):
        query = TrendQuery("increasing")
        one = parallel_crashsim_t(
            paper_temporal, 1, query, params=PARAMS, seed=3, workers=2
        )
        two = parallel_crashsim_t(
            paper_temporal, 1, query, params=PARAMS, seed=3, workers=2
        )
        assert one.history == two.history


class TestSemantics:
    def test_omega_only_shrinks(self, paper_temporal):
        query = ThresholdQuery(0.005)
        result = parallel_crashsim_t(
            paper_temporal, 0, query, params=PARAMS, seed=1, workers=1
        )
        alive = [set(snapshot.keys()) for snapshot in result.history]
        # history[0] holds all candidates; Ω entering later snapshots only
        # ever loses members.
        for earlier, later in zip(alive[1:], alive[2:]):
            assert later <= earlier
        assert set(result.survivors) <= alive[-1]

    def test_history_first_snapshot_covers_all_candidates(self, paper_temporal):
        query = ThresholdQuery(0.0)
        result = parallel_crashsim_t(
            paper_temporal, 0, query, params=PARAMS, seed=1, workers=1
        )
        assert len(result.history[0]) == paper_temporal.num_nodes - 1

    def test_interval_subrange(self, paper_temporal):
        query = ThresholdQuery(0.0)
        result = parallel_crashsim_t(
            paper_temporal,
            0,
            query,
            interval=(1, 3),
            params=PARAMS,
            seed=1,
            workers=1,
        )
        assert result.interval == (1, 3)
        assert result.stats.snapshots_processed <= 2

    def test_invalid_interval_rejected(self, paper_temporal):
        with pytest.raises(QueryError):
            parallel_crashsim_t(
                paper_temporal,
                0,
                ThresholdQuery(0.0),
                interval=(2, 1),
                params=PARAMS,
                workers=1,
            )

    def test_invalid_source_rejected(self, paper_temporal):
        with pytest.raises(ParameterError):
            parallel_crashsim_t(
                paper_temporal, 999, ThresholdQuery(0.0), params=PARAMS, workers=1
            )

    def test_threshold_query_filters(self, paper_temporal):
        strict = parallel_crashsim_t(
            paper_temporal, 0, ThresholdQuery(0.9), params=PARAMS, seed=2, workers=1
        )
        lax = parallel_crashsim_t(
            paper_temporal, 0, ThresholdQuery(0.0), params=PARAMS, seed=2, workers=1
        )
        assert len(strict.survivors) <= len(lax.survivors)
