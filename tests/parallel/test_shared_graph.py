"""SharedGraph / SharedArray round-trips, views, and cleanup."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.parallel import SharedArray, SharedGraph, attach_array, attach_graph
from repro.walks.engine import BatchWalkStepper


def weighted_graph() -> DiGraph:
    edges = [(0, 1), (2, 1), (1, 3), (3, 0), (2, 3)]
    weights = [0.5, 2.0, 1.0, 4.0, 0.25]
    return DiGraph.from_edges(4, edges, weights=weights)


class TestSharedArray:
    def test_round_trip(self):
        original = np.arange(12, dtype=np.float64).reshape(3, 4)
        with SharedArray(original) as shared:
            view, handle = attach_array(shared.spec)
            assert np.array_equal(view, original)
            assert view.dtype == original.dtype
            handle.close()

    def test_empty_array_round_trips(self):
        original = np.empty(0, dtype=np.int64)
        with SharedArray(original) as shared:
            view, handle = attach_array(shared.spec)
            assert view.shape == (0,)
            assert view.dtype == np.int64
            handle.close()

    def test_creator_view_after_close_raises(self):
        shared = SharedArray(np.ones(3))
        shared.close()
        with pytest.raises(GraphError):
            shared.array()

    def test_close_is_idempotent(self):
        shared = SharedArray(np.ones(3))
        shared.close()
        shared.close()  # no error

    def test_unlinked_after_close(self):
        shared = SharedArray(np.ones(3))
        spec = shared.spec
        shared.close()
        with pytest.raises(FileNotFoundError):
            attach_array(spec)


class TestSharedGraphRoundTrip:
    @pytest.mark.parametrize("weighted", [False, True])
    def test_csr_arrays_identical(self, paper_graph, weighted):
        graph = weighted_graph() if weighted else paper_graph
        with SharedGraph(graph) as shared:
            view = attach_graph(shared.spec())
            assert view.num_nodes == graph.num_nodes
            assert np.array_equal(view.in_indptr, graph.in_indptr)
            assert np.array_equal(view.in_indices, graph.in_indices)
            assert np.array_equal(view.in_degrees(), graph.in_degrees())
            assert view.is_weighted == graph.is_weighted
            if weighted:
                assert np.array_equal(view.in_weights, graph.in_weights)
            # Bit-identical totals: the determinism contract depends on it.
            assert np.array_equal(view.in_weight_totals(), graph.in_weight_totals())
            view.close()

    def test_unweighted_view_rejects_weights_access(self, paper_graph):
        with SharedGraph(paper_graph) as shared:
            with attach_graph(shared.spec()) as view:
                with pytest.raises(GraphError):
                    view.in_weights

    @pytest.mark.parametrize("weighted", [False, True])
    def test_walks_identical_through_view(self, paper_graph, weighted):
        """The walk engine produces the same trajectories from the shared
        view as from the original graph — the strongest round-trip check."""
        graph = weighted_graph() if weighted else paper_graph
        starts = np.arange(graph.num_nodes, dtype=np.int64)
        direct = BatchWalkStepper(graph, 0.6).sample_paths(starts, 8, seed=123)
        with SharedGraph(graph) as shared:
            with attach_graph(shared.spec()) as view:
                attached = BatchWalkStepper(view, 0.6).sample_paths(
                    starts, 8, seed=123
                )
        assert np.array_equal(direct, attached)

    def test_creator_side_view(self, paper_graph):
        with SharedGraph(paper_graph) as shared:
            view = shared.view()
            assert np.array_equal(view.in_indptr, paper_graph.in_indptr)
            assert np.array_equal(view.in_indices, paper_graph.in_indices)


class TestCleanup:
    def test_segments_unlinked_on_close(self, paper_graph):
        shared = SharedGraph(paper_graph)
        spec = shared.spec()
        shared.close()
        with pytest.raises(FileNotFoundError):
            attach_graph(spec)

    def test_close_is_idempotent(self, paper_graph):
        shared = SharedGraph(paper_graph)
        shared.close()
        shared.close()

    def test_context_manager_cleans_up_weighted(self):
        graph = weighted_graph()
        with SharedGraph(graph) as shared:
            spec = shared.spec()
            view = attach_graph(spec)
            view.close()
        with pytest.raises(FileNotFoundError):
            attach_graph(spec)

    def test_view_close_does_not_unlink(self, paper_graph):
        with SharedGraph(paper_graph) as shared:
            spec = shared.spec()
            view = attach_graph(spec)
            view.close()
            view.close()  # idempotent
            second = attach_graph(spec)  # segment still there
            second.close()


class TestSharedTree:
    def _tree(self):
        from repro.core.revreach import revreach_levels
        from repro.graph.generators import preferential_attachment

        graph = preferential_attachment(60, 3, directed=True, seed=7)
        return revreach_levels(graph, 0, 5, 0.6)

    def test_round_trip_is_bit_exact(self):
        from repro.parallel import SharedTree, attach_tree

        tree = self._tree()
        with SharedTree(tree) as shared:
            attached, handles = attach_tree(shared.spec())
            try:
                assert attached.source == tree.source
                assert attached.c == tree.c
                assert attached.l_max == tree.l_max
                assert attached.variant == tree.variant
                assert attached.num_nodes == tree.num_nodes
                assert np.array_equal(attached.level_indptr, tree.level_indptr)
                assert np.array_equal(attached.nodes, tree.nodes)
                assert np.array_equal(attached.probs, tree.probs)
                assert attached.same_as(tree)
            finally:
                for handle in handles:
                    handle.close()

    def test_attached_gather_matches_creator(self):
        from repro.parallel import SharedTree, attach_tree

        tree = self._tree()
        positions = np.arange(tree.num_nodes, dtype=np.int64)
        with SharedTree(tree) as shared:
            attached, handles = attach_tree(shared.spec())
            try:
                for step in range(tree.l_max + 1):
                    assert np.array_equal(
                        attached.gather(step, positions),
                        tree.gather(step, positions),
                    )
            finally:
                for handle in handles:
                    handle.close()

    def test_segments_unlinked_on_close(self):
        from repro.parallel import SharedTree, attach_tree

        shared = SharedTree(self._tree())
        spec = shared.spec()
        shared.close()
        shared.close()  # idempotent
        with pytest.raises(FileNotFoundError):
            attach_tree(spec)
