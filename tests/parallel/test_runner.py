"""Seed-split determinism and correctness of the parallel CrashSim drivers."""

import numpy as np
import pytest

from repro.api import single_source
from repro.baselines.power_method import power_method_all_pairs
from repro.core.multi_source import crashsim_multi_source
from repro.core.params import CrashSimParams
from repro.errors import ParameterError
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi
from repro.parallel import (
    ParallelExecutor,
    parallel_crashsim,
    parallel_crashsim_multi_source,
)

PARAMS = CrashSimParams(n_r_override=300)


@pytest.fixture(scope="module")
def random_graph():
    return erdos_renyi(120, 600, seed=5)


@pytest.fixture(scope="module")
def weighted_random_graph():
    rng = np.random.default_rng(8)
    base = erdos_renyi(60, 240, seed=8)
    edges = [(int(s), int(t)) for s, t in base.edges()]
    weights = rng.uniform(0.1, 5.0, size=len(edges))
    return DiGraph.from_edges(60, edges, weights=weights)


class TestDeterminism:
    """Same master seed ⇒ byte-identical scores at every worker count."""

    def test_workers_1_vs_4_identical(self, random_graph):
        reference = parallel_crashsim(
            random_graph, 3, params=PARAMS, seed=42, workers=1
        )
        for workers in (2, 4):
            other = parallel_crashsim(
                random_graph, 3, params=PARAMS, seed=42, workers=workers
            )
            assert np.array_equal(reference.scores, other.scores)
            assert np.array_equal(reference.candidates, other.candidates)
            assert reference.n_r == other.n_r

    def test_weighted_graph_identical(self, weighted_random_graph):
        reference = parallel_crashsim(
            weighted_random_graph, 1, params=PARAMS, seed=9, workers=1
        )
        other = parallel_crashsim(
            weighted_random_graph, 1, params=PARAMS, seed=9, workers=2
        )
        assert np.array_equal(reference.scores, other.scores)

    def test_different_seeds_differ(self, random_graph):
        one = parallel_crashsim(random_graph, 3, params=PARAMS, seed=1, workers=1)
        two = parallel_crashsim(random_graph, 3, params=PARAMS, seed=2, workers=1)
        assert not np.array_equal(one.scores, two.scores)

    def test_repeat_with_same_int_seed_identical(self, random_graph):
        one = parallel_crashsim(random_graph, 0, params=PARAMS, seed=11, workers=2)
        two = parallel_crashsim(random_graph, 0, params=PARAMS, seed=11, workers=2)
        assert np.array_equal(one.scores, two.scores)

    def test_multi_source_identical_across_worker_counts(self, random_graph):
        sources = [0, 7, 19]
        reference = parallel_crashsim_multi_source(
            random_graph, sources, params=PARAMS, seed=33, workers=1
        )
        other = parallel_crashsim_multi_source(
            random_graph, sources, params=PARAMS, seed=33, workers=3
        )
        for left, right in zip(reference, other):
            assert left.source == right.source
            assert np.array_equal(left.scores, right.scores)


class TestCorrectness:
    def test_close_to_ground_truth(self, random_graph):
        truth = power_method_all_pairs(random_graph, 0.6)
        params = CrashSimParams(n_r_override=1500)
        result = parallel_crashsim(random_graph, 4, params=params, seed=0, workers=2)
        errors = np.abs(truth[4][result.candidates] - result.scores)
        assert errors.max() < 0.06

    def test_multi_source_close_to_serial_estimator(self, random_graph):
        """Parallel multi-source agrees with the serial amortised estimator
        up to Monte-Carlo noise (different RNG stream layout)."""
        sources = [2, 5]
        params = CrashSimParams(n_r_override=2000)
        serial = crashsim_multi_source(random_graph, sources, params=params, seed=1)
        par = parallel_crashsim_multi_source(
            random_graph, sources, params=params, seed=1, workers=2
        )
        for left, right in zip(serial, par):
            assert np.array_equal(left.candidates, right.candidates)
            assert np.abs(left.scores - right.scores).max() < 0.05

    def test_candidate_subset(self, random_graph):
        candidates = [1, 2, 3, 50]
        result = parallel_crashsim(
            random_graph, 0, candidates=candidates, params=PARAMS, seed=4, workers=2
        )
        assert list(result.candidates) == candidates

    def test_source_included_in_candidates_scores_one(self, random_graph):
        result = parallel_crashsim(
            random_graph, 2, candidates=[1, 2, 3], params=PARAMS, seed=4, workers=1
        )
        assert result.score(2) == 1.0

    def test_invalid_source_rejected(self, random_graph):
        with pytest.raises(ParameterError):
            parallel_crashsim(random_graph, 9999, params=PARAMS, workers=1)

    def test_empty_sources_list(self, random_graph):
        assert parallel_crashsim_multi_source(random_graph, [], workers=1) == []


class TestExecutorReuse:
    def test_shared_executor_across_queries(self, random_graph):
        with ParallelExecutor(2) as executor:
            one = parallel_crashsim(
                random_graph, 0, params=PARAMS, seed=5, executor=executor
            )
            two = parallel_crashsim(
                random_graph, 1, params=PARAMS, seed=5, executor=executor
            )
        solo = parallel_crashsim(random_graph, 0, params=PARAMS, seed=5, workers=1)
        assert np.array_equal(one.scores, solo.scores)
        assert two.source == 1


class TestApiWiring:
    def test_single_source_workers_identical(self, random_graph):
        serial = single_source(
            random_graph, 6, n_r=300, seed=21, workers=1
        )
        pooled = single_source(
            random_graph, 6, n_r=300, seed=21, workers=2
        )
        assert np.array_equal(serial, pooled)
        assert serial[6] == 1.0

    def test_workers_rejected_for_other_methods(self, random_graph):
        with pytest.raises(ParameterError):
            single_source(random_graph, 0, method="probesim", workers=2)
