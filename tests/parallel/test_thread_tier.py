"""Thread-tier execution: byte-identity, fault recovery, pools, autotuning.

The determinism contract (docs/internals.md §13) says the execution tier
can never touch a score bit: the shard plan defines the per-shard RNG
streams, totals are summed in shard order, so serial / thread / process
runs of the same plan are byte-identical.  This suite pins that for the
thread tier specifically, plus the machinery that makes threads worth
having: per-thread kernel pools, the persistent default executor, the
autotuned shard planner, and the mode-labelled executor metrics.

Thread-tier fault injection uses ``raise`` / ``delay`` kinds only — a
``kill`` fault SIGKILLs the *calling* process on the thread tier, which is
exactly why ``resolve_mode`` documentation steers chaos plans at processes.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults, obs
from repro.core.crashsim import crashsim
from repro.core.params import CrashSimParams
from repro.core.queries import ThresholdQuery
from repro.errors import DegradedResultWarning, ParameterError
from repro.graph.generators import erdos_renyi, evolve_snapshots
from repro.parallel import (
    MAX_SHARDS,
    ParallelExecutor,
    get_default_executor,
    parallel_crashsim,
    parallel_crashsim_multi_source,
    parallel_crashsim_t,
    plan_shards,
    reset_default_executors,
    resolve_mode,
)
from repro.walks.kernel import KernelPool, WalkCrashKernel

PARAMS = CrashSimParams(n_r_override=300)


@pytest.fixture(scope="module")
def random_graph():
    return erdos_renyi(120, 600, seed=5)


def to_hex(values):
    return [float.hex(float(v)) for v in values]


# ---------------------------------------------------------------------------
# Byte-identity: serial vs thread tier at several worker counts
# ---------------------------------------------------------------------------


class TestThreadTierIdentity:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_single_source_matches_serial(self, random_graph, workers):
        serial = parallel_crashsim(
            random_graph, 3, params=PARAMS, seed=42, workers=1
        )
        threaded = parallel_crashsim(
            random_graph, 3, params=PARAMS, seed=42, workers=workers,
            mode="thread",
        )
        assert to_hex(threaded.scores) == to_hex(serial.scores)
        assert np.array_equal(threaded.candidates, serial.candidates)

    def test_thread_matches_process_plan(self, random_graph):
        # Same explicit plan on both tiers ⇒ same bits (the tier only
        # decides *where* shards run, never which RNG stream they get).
        threaded = parallel_crashsim(
            random_graph, 0, params=PARAMS, seed=7, workers=2, mode="thread",
            shards=16,
        )
        with ParallelExecutor(2, mode="process") as executor:
            reference = parallel_crashsim(
                random_graph, 0, params=PARAMS, seed=7, executor=executor,
                shards=16,
            )
        assert to_hex(threaded.scores) == to_hex(reference.scores)

    def test_matches_classic_serial_estimator_layout(self, random_graph):
        # workers=1 and the thread tier share the shard decomposition, and
        # both differ from the unsharded crashsim() stream — the sharded
        # scheme is its own (documented) RNG layout.
        sharded = parallel_crashsim(
            random_graph, 5, params=PARAMS, seed=11, workers=2, mode="thread"
        )
        unsharded = crashsim(random_graph, 5, params=PARAMS, seed=11)
        assert sharded.scores.shape == unsharded.scores.shape
        # Statistically equivalent estimators: same walk targets, and both
        # within a loose tolerance of one another on a 300-trial run.
        assert np.allclose(sharded.scores, unsharded.scores, atol=0.12)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_multi_source_matches_serial(self, random_graph, workers):
        serial = parallel_crashsim_multi_source(
            random_graph, [0, 3, 9], params=PARAMS, seed=13, workers=1
        )
        threaded = parallel_crashsim_multi_source(
            random_graph, [0, 3, 9], params=PARAMS, seed=13, workers=workers,
            mode="thread",
        )
        assert len(threaded) == len(serial)
        for ours, theirs in zip(threaded, serial):
            assert to_hex(ours.scores) == to_hex(theirs.scores)

    def test_temporal_matches_serial(self, random_graph):
        temporal = evolve_snapshots(random_graph, 5, churn_rate=0.02, seed=9)
        query = ThresholdQuery(theta=0.001)
        serial = parallel_crashsim_t(
            temporal, 0, query, params=PARAMS, seed=77, workers=1
        )
        threaded = parallel_crashsim_t(
            temporal, 0, query, params=PARAMS, seed=77, workers=2,
            mode="thread",
        )
        assert threaded.survivors == serial.survivors
        assert threaded.history == serial.history

    def test_jit_env_leg_matches_serial(self, random_graph, monkeypatch):
        # With REPRO_JIT=1, auto resolves to threads when numba is
        # importable and to processes otherwise; either way the bits match
        # the serial reference.  (The dedicated numba CI leg runs this with
        # the compiled stepper actually active.)
        serial = parallel_crashsim(
            random_graph, 3, params=PARAMS, seed=21, workers=1
        )
        monkeypatch.setenv("REPRO_JIT", "1")
        result = parallel_crashsim(
            random_graph, 3, params=PARAMS, seed=21, workers=2, mode="thread"
        )
        assert to_hex(result.scores) == to_hex(serial.scores)


# ---------------------------------------------------------------------------
# Fault injection on the thread tier (raise / delay kinds)
# ---------------------------------------------------------------------------


class TestThreadTierFaults:
    def test_in_shard_exception_retried_to_identity(self, random_graph):
        reference = parallel_crashsim(
            random_graph, 0, params=PARAMS, seed=42, workers=1, shards=16
        )
        plan = {"shard": {"5": {"kind": "raise", "times": 2}}}
        with faults.active(plan):
            result = parallel_crashsim(
                random_graph, 0, params=PARAMS, seed=42, workers=2,
                mode="thread", shards=16,
            )
        assert not result.degraded
        assert to_hex(result.scores) == to_hex(reference.scores)

    def test_persistent_shard_failure_degrades(self, random_graph):
        plan = {"shard": {"5": {"kind": "raise", "times": 32}}}
        with faults.active(plan):
            with pytest.warns(DegradedResultWarning):
                result = parallel_crashsim(
                    random_graph, 0, params=PARAMS, seed=42, workers=2,
                    mode="thread", shards=16,
                )
        assert result.degraded
        assert 0 < result.trials_completed < result.n_r


# ---------------------------------------------------------------------------
# Executor surface: mode resolution, properties, persistent defaults
# ---------------------------------------------------------------------------


class TestExecutorModes:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ParameterError):
            ParallelExecutor(2, mode="fibers")
        with pytest.raises(ParameterError):
            resolve_mode("fibers")

    def test_auto_resolves_to_concrete_tier(self):
        assert resolve_mode("auto") in ("thread", "process")
        assert resolve_mode("thread") == "thread"
        assert resolve_mode("process") == "process"

    def test_auto_prefers_threads_only_with_jit(self, monkeypatch):
        from repro.walks import _jit

        monkeypatch.setenv("REPRO_JIT", "1")
        expected = "thread" if _jit.available() else "process"
        assert resolve_mode("auto") == expected
        monkeypatch.delenv("REPRO_JIT", raising=False)
        assert resolve_mode("auto") == "process"

    def test_thread_executor_properties(self):
        with ParallelExecutor(2, mode="thread") as executor:
            assert executor.uses_threads
            assert not executor.uses_processes
            assert not executor.serial
            assert executor.mode_label == "thread"
            assert "thread" in repr(executor)

    def test_serial_executor_properties(self):
        executor = ParallelExecutor(1, mode="thread")
        assert executor.serial
        assert not executor.uses_threads
        assert not executor.uses_processes
        assert executor.mode_label == "serial"

    def test_thread_pool_actually_runs_tasks(self):
        with ParallelExecutor(2, mode="thread") as executor:
            idents = executor.map(lambda _: threading.get_ident(), range(8))
        assert len(idents) == 8

    def test_run_flushes_mode_labelled_metrics(self):
        with ParallelExecutor(2, mode="thread") as executor:
            executor.run(lambda x: x, [1, 2, 3])
        snapshot = obs.REGISTRY.snapshot()
        assert snapshot['repro_executor_runs_total{mode="thread"}'] >= 1
        assert snapshot['repro_executor_tasks_total{mode="thread"}'] >= 3


class TestDefaultExecutors:
    def test_same_key_returns_same_instance(self):
        reset_default_executors()
        try:
            first = get_default_executor(2, mode="thread")
            second = get_default_executor(2, mode="thread")
            assert first is second
            assert get_default_executor(2, mode="process") is not first
        finally:
            reset_default_executors()

    def test_reset_closes_and_forgets(self):
        executor = get_default_executor(2, mode="thread")
        reset_default_executors()
        assert executor.serial  # closed ⇒ pool gone
        assert get_default_executor(2, mode="thread") is not executor
        reset_default_executors()

    def test_drivers_share_the_default_executor(self, random_graph):
        reset_default_executors()
        try:
            parallel_crashsim(
                random_graph, 0, params=PARAMS, seed=1, workers=2,
                mode="thread",
            )
            executor = get_default_executor(2, mode="thread")
            assert not executor.serial  # still open: drivers never close it
            parallel_crashsim(
                random_graph, 0, params=PARAMS, seed=2, workers=2,
                mode="thread",
            )
            assert get_default_executor(2, mode="thread") is executor
        finally:
            reset_default_executors()


# ---------------------------------------------------------------------------
# Kernel pool
# ---------------------------------------------------------------------------


class TestKernelPool:
    def test_one_kernel_per_thread(self, random_graph):
        pool = KernelPool(lambda: WalkCrashKernel(random_graph, 0.6))
        seen = {}
        # All four threads must be alive at once: thread idents (the pool
        # key) are recycled by the OS after a thread exits.
        barrier = threading.Barrier(4)

        def grab():
            kernel = pool.get()
            barrier.wait(timeout=10)
            seen[threading.get_ident()] = kernel

        threads = [threading.Thread(target=grab) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        kernels = list(seen.values())
        assert len(kernels) == 4
        assert len({id(kernel) for kernel in kernels}) == 4
        assert len(pool) == 4

    def test_same_thread_reuses_its_kernel(self, random_graph):
        pool = KernelPool(lambda: WalkCrashKernel(random_graph, 0.6))
        assert pool.get() is pool.get()
        assert len(pool) == 1


# ---------------------------------------------------------------------------
# Shard autotuning
# ---------------------------------------------------------------------------


class TestPlanShards:
    def test_small_query_collapses_to_one_shard(self):
        # The 120-node fixture query: parallel dispatch cannot win, so the
        # plan must not force 16 dispatches of ~1ms each.
        assert plan_shards(64, 119) == [64]

    def test_large_query_splits_to_cap(self):
        plan = plan_shards(512, 50_000)
        assert len(plan) == MAX_SHARDS
        assert sum(plan) == 512

    def test_plan_is_pure(self):
        assert plan_shards(512, 50_000) == plan_shards(512, 50_000)

    def test_zero_and_negative(self):
        assert plan_shards(0, 100) == []
        with pytest.raises(ParameterError):
            plan_shards(-1, 100)

    @given(
        n_trials=st.integers(min_value=0, max_value=100_000),
        num_targets=st.integers(min_value=0, max_value=1_000_000),
        n_r=st.one_of(st.none(), st.integers(min_value=1, max_value=100_000)),
    )
    @settings(max_examples=200, deadline=None)
    def test_plan_invariants(self, n_trials, num_targets, n_r):
        plan = plan_shards(n_trials, num_targets, n_r=n_r)
        # Conservation: every trial lands in exactly one shard.
        assert sum(plan) == n_trials
        # No empty shards, bounded count.
        assert all(size > 0 for size in plan)
        assert len(plan) <= min(MAX_SHARDS, max(n_trials, 1))
        # Near-equal split: the plan's RNG streams stay balanced.
        if plan:
            assert max(plan) - min(plan) <= 1
        # Purity / worker-count independence: the plan takes no worker or
        # machine input at all, so re-planning must reproduce it exactly.
        assert plan == plan_shards(n_trials, num_targets, n_r=n_r)

    def test_shard_plan_gauge_updates(self, random_graph):
        parallel_crashsim(
            random_graph, 0, params=PARAMS, seed=3, workers=1, shards=16
        )
        assert obs.REGISTRY.snapshot()["repro_shard_plan_size"] == 16


# ---------------------------------------------------------------------------
# Metrics registry labels (the mode= label machinery itself)
# ---------------------------------------------------------------------------


class TestMetricLabels:
    def test_labelled_child_renders_and_snapshots(self):
        from repro.obs.registry import MetricsRegistry, render_prometheus

        registry = MetricsRegistry()
        counter = registry.counter("test_total", "help text")
        counter.inc(2)
        counter.labels(mode="thread").inc(3)
        counter.labels(mode="process").inc()
        snapshot = registry.snapshot()
        assert snapshot["test_total"] == 2
        assert snapshot['test_total{mode="thread"}'] == 3
        assert snapshot['test_total{mode="process"}'] == 1
        exposition = render_prometheus(registry)
        assert 'test_total{mode="thread"} 3' in exposition

    def test_labels_are_cached_children(self):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        gauge = registry.gauge("test_gauge", "help")
        child = gauge.labels(mode="thread")
        assert gauge.labels(mode="thread") is child
        child.set(4.5)
        assert registry.snapshot()['test_gauge{mode="thread"}'] == 4.5

    def test_invalid_label_values_rejected(self):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        counter = registry.counter("test_bad", "help")
        with pytest.raises(ValueError):
            counter.labels(**{"bad name": "x"})
        with pytest.raises(ValueError):
            counter.labels(mode='quo"te')
