"""Cross-algorithm SimRank invariants, property-tested with hypothesis.

These pin mathematical facts every implementation must respect, on
arbitrary random graphs:

* SimRank bounds: ``sim(u, u) = 1``; ``0 ≤ sim(u, v) ≤ c`` for ``u ≠ v``.
* Symmetry: ``sim(u, v) = sim(v, u)``.
* Monotone decay: increasing ``c`` cannot decrease any similarity.
* revReach mass law: level ``k`` carries at most ``(√c)^k`` total mass.
* CrashSim-T: the candidate set only ever shrinks.
* Estimators live in ``[0, 1]`` and are seed-deterministic.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.power_method import power_method_all_pairs
from repro.core.crashsim import crashsim
from repro.core.crashsim_t import crashsim_t
from repro.core.params import CrashSimParams
from repro.core.queries import ThresholdQuery
from repro.core.revreach import revreach_levels
from repro.graph.digraph import DiGraph
from repro.graph.generators import erdos_renyi, evolve_snapshots


def graph_strategy(max_nodes=14, max_edges=40):
    return st.builds(
        lambda n, edges, directed: DiGraph.from_edges(
            n, [(s % n, t % n) for s, t in edges], directed=directed
        ),
        st.integers(min_value=2, max_value=max_nodes),
        st.lists(
            st.tuples(st.integers(0, max_nodes), st.integers(0, max_nodes)),
            max_size=max_edges,
        ),
        st.booleans(),
    )


class TestSimRankAxioms:
    @given(graph_strategy())
    @settings(max_examples=30, deadline=None)
    def test_bounds_and_symmetry(self, graph):
        c = 0.6
        sim = power_method_all_pairs(graph, c, iterations=40)
        n = graph.num_nodes
        assert np.allclose(np.diag(sim), 1.0)
        off_diagonal = sim[~np.eye(n, dtype=bool)]
        if off_diagonal.size:
            assert off_diagonal.min() >= 0.0
            assert off_diagonal.max() <= c + 1e-9
        assert np.allclose(sim, sim.T)

    @given(graph_strategy())
    @settings(max_examples=20, deadline=None)
    def test_monotone_in_c(self, graph):
        low = power_method_all_pairs(graph, 0.4, iterations=40)
        high = power_method_all_pairs(graph, 0.7, iterations=40)
        assert np.all(high >= low - 1e-9)

    @given(graph_strategy())
    @settings(max_examples=20, deadline=None)
    def test_zero_iff_no_common_ancestry(self, graph):
        """sim(u, v) > 0 requires some node reachable backwards from both
        at the same depth; a node with no in-neighbours has sim 0 to all."""
        sim = power_method_all_pairs(graph, 0.6, iterations=40)
        degrees = graph.in_degrees()
        for node in np.nonzero(degrees == 0)[0]:
            row = sim[node].copy()
            row[node] = 0.0
            assert np.all(row == 0.0)


class TestRevReachInvariants:
    @given(graph_strategy(), st.floats(min_value=0.1, max_value=0.9))
    @settings(max_examples=30, deadline=None)
    def test_level_mass_law(self, graph, c):
        tree = revreach_levels(graph, 0, 6, c)
        sqrt_c = np.sqrt(c)
        for step in range(7):
            assert tree.total_mass(step) <= sqrt_c**step + 1e-12

    @given(graph_strategy())
    @settings(max_examples=30, deadline=None)
    def test_support_is_backward_reachable(self, graph):
        tree = revreach_levels(graph, 0, 6, 0.5)
        # BFS over in-edges from the source.
        reachable = {0}
        frontier = [0]
        for _ in range(6):
            frontier = [
                int(x)
                for node in frontier
                for x in graph.in_neighbors(node)
            ]
            reachable.update(frontier)
        assert set(tree.support().tolist()) <= reachable


class TestEstimatorInvariants:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_crashsim_in_unit_interval_and_deterministic(self, seed):
        graph = erdos_renyi(25, 60, seed=seed % 100)
        params = CrashSimParams(c=0.6, epsilon=0.1, n_r_override=50)
        a = crashsim(graph, 1, params=params, seed=seed)
        b = crashsim(graph, 1, params=params, seed=seed)
        assert np.array_equal(a.scores, b.scores)
        assert a.scores.min() >= 0.0
        assert a.scores.max() <= 1.0

    def test_crashsim_expected_value_tracks_truth_across_c(self):
        graph = erdos_renyi(40, 140, seed=7)
        for c in (0.3, 0.6, 0.8):
            truth = power_method_all_pairs(graph, c)
            params = CrashSimParams(c=c, epsilon=0.1, n_r_override=1500)
            result = crashsim(graph, 3, params=params, seed=9)
            estimate = np.zeros(graph.num_nodes)
            estimate[result.candidates] = result.scores
            estimate[3] = 1.0
            assert np.abs(truth[3] - estimate).max() < 0.12, c


class TestTemporalInvariants:
    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_candidate_set_shrinks_monotonically(self, seed):
        base = erdos_renyi(20, 50, seed=seed % 50)
        temporal = evolve_snapshots(base, 4, churn_rate=0.05, seed=seed)
        params = CrashSimParams(c=0.6, epsilon=0.1, n_r_override=60)
        result = crashsim_t(
            temporal, 0, ThresholdQuery(theta=0.01), params=params, seed=seed
        )
        alive = [set(snapshot_scores) for snapshot_scores in result.history]
        for earlier, later in zip(alive, alive[1:]):
            assert later <= earlier
        assert result.survivor_set <= alive[-1] | set()
