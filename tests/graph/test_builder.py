"""Tests for GraphBuilder: interning, mutation, round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EdgeNotFoundError, GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph


class TestNodes:
    def test_add_node_idempotent(self):
        builder = GraphBuilder()
        first = builder.add_node("x")
        second = builder.add_node("x")
        assert first == second
        assert builder.num_nodes == 1

    def test_node_id_unknown_raises(self):
        builder = GraphBuilder()
        with pytest.raises(GraphError):
            builder.node_id("missing")

    def test_labels_preserved_in_build(self):
        builder = GraphBuilder()
        builder.add_edge("alpha", "beta")
        graph = builder.build()
        assert graph.node_labels == ("alpha", "beta")


class TestEdges:
    def test_add_remove_cycle(self):
        builder = GraphBuilder()
        builder.add_edge(1, 2)
        assert builder.has_edge(1, 2)
        builder.remove_edge(1, 2)
        assert not builder.has_edge(1, 2)
        with pytest.raises(EdgeNotFoundError):
            builder.remove_edge(1, 2)

    def test_remove_unknown_node_edge_raises(self):
        builder = GraphBuilder()
        with pytest.raises(EdgeNotFoundError):
            builder.remove_edge("a", "b")

    def test_self_loop_ignored(self):
        builder = GraphBuilder()
        builder.add_edge("a", "a")
        assert builder.num_edges == 0
        assert builder.num_nodes == 1

    def test_undirected_canonicalises(self):
        builder = GraphBuilder(directed=False)
        builder.add_edge("a", "b")
        builder.add_edge("b", "a")
        assert builder.num_edges == 1
        assert builder.has_edge("b", "a")
        builder.remove_edge("b", "a")
        assert builder.num_edges == 0

    def test_add_edges_bulk(self):
        builder = GraphBuilder()
        builder.add_edges([("a", "b"), ("b", "c"), ("a", "b")])
        assert builder.num_edges == 2


class TestBuild:
    def test_build_empty(self):
        graph = GraphBuilder().build()
        assert graph.num_nodes == 0
        assert graph.num_edges == 0

    def test_build_directed_structure(self):
        builder = GraphBuilder()
        builder.add_edges([("b", "a"), ("c", "a")])
        graph = builder.build()
        a = builder.node_id("a")
        assert graph.in_degree(a) == 2
        assert graph.out_degree(a) == 0

    def test_build_undirected_structure(self):
        builder = GraphBuilder(directed=False)
        builder.add_edges([("a", "b"), ("b", "c")])
        graph = builder.build()
        assert not graph.directed
        assert graph.num_edges == 2
        b = builder.node_id("b")
        assert graph.in_degree(b) == 2

    def test_from_graph_round_trip(self, paper_graph):
        rebuilt = GraphBuilder.from_graph(paper_graph).build()
        assert rebuilt.same_structure(paper_graph)
        assert rebuilt.node_labels == paper_graph.node_labels

    def test_from_graph_round_trip_undirected(self, small_undirected_graph):
        rebuilt = GraphBuilder.from_graph(small_undirected_graph).build()
        assert rebuilt.same_structure(small_undirected_graph)

    @given(
        st.lists(
            st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=40
        ),
        st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_build_matches_from_edges(self, edges, directed):
        """Builder output must equal the direct DiGraph construction when
        fed identical integer edges in identical insertion order."""
        builder = GraphBuilder(directed=directed)
        for node in range(9):
            builder.add_node(node)
        builder.add_edges(edges)
        built = builder.build()
        direct = DiGraph.from_edges(9, edges, directed=directed)
        assert built.num_edges == direct.num_edges
        assert built.edge_set() == direct.edge_set()
