"""Tests for temporal graphs: deltas, snapshot materialisation, windows."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SnapshotIndexError, TemporalError
from repro.graph.temporal import EdgeDelta, TemporalGraph, TemporalGraphBuilder


def build_simple():
    builder = TemporalGraphBuilder(4, directed=True, name="t")
    builder.push_snapshot([(0, 1), (1, 2)])
    builder.push_snapshot([(0, 1), (1, 2), (2, 3)])
    builder.push_snapshot([(0, 1), (2, 3)])
    return builder.build()


class TestEdgeDelta:
    def test_between(self):
        delta = EdgeDelta.between({(0, 1), (1, 2)}, {(1, 2), (2, 3)})
        assert delta.added == frozenset({(2, 3)})
        assert delta.removed == frozenset({(0, 1)})
        assert delta.num_changed == 2
        assert not delta.is_empty()

    def test_apply_round_trip(self):
        old = {(0, 1), (1, 2)}
        new = {(1, 2), (3, 1)}
        delta = EdgeDelta.between(old, new)
        assert delta.apply(old) == new

    def test_apply_rejects_missing_removal(self):
        delta = EdgeDelta(added=frozenset(), removed=frozenset({(9, 9)}))
        with pytest.raises(TemporalError):
            delta.apply({(0, 1)})

    def test_apply_rejects_duplicate_addition(self):
        delta = EdgeDelta(added=frozenset({(0, 1)}), removed=frozenset())
        with pytest.raises(TemporalError):
            delta.apply({(0, 1)})

    @given(
        st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=15),
        st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=15),
    )
    @settings(max_examples=50, deadline=None)
    def test_between_apply_inverse(self, old, new):
        """between(old, new) applied to old always reproduces new."""
        delta = EdgeDelta.between(old, new)
        assert delta.apply(set(old)) == new


class TestTemporalGraph:
    def test_horizon_and_indexing(self):
        temporal = build_simple()
        assert temporal.num_snapshots == 3
        assert len(temporal) == 3
        assert temporal.snapshot(-1).same_structure(temporal.snapshot(2))

    def test_snapshot_edges(self):
        temporal = build_simple()
        assert temporal.edges_at(0) == frozenset({(0, 1), (1, 2)})
        assert temporal.edges_at(1) == frozenset({(0, 1), (1, 2), (2, 3)})
        assert temporal.edges_at(2) == frozenset({(0, 1), (2, 3)})

    def test_snapshot_graphs_consistent(self):
        temporal = build_simple()
        for index in range(3):
            graph = temporal.snapshot(index)
            assert set(graph.edges()) == set(temporal.edges_at(index))

    def test_snapshot_cache_returns_same_object(self):
        temporal = build_simple()
        assert temporal.snapshot(1) is temporal.snapshot(1)

    def test_delta_access(self):
        temporal = build_simple()
        assert temporal.delta(1).added == frozenset({(2, 3)})
        assert temporal.delta(2).removed == frozenset({(1, 2)})
        with pytest.raises(TemporalError):
            temporal.delta(0)

    def test_out_of_range_raises(self):
        temporal = build_simple()
        with pytest.raises(SnapshotIndexError):
            temporal.snapshot(3)
        with pytest.raises(SnapshotIndexError):
            temporal.edges_at(-4)

    def test_window(self):
        temporal = build_simple()
        window = temporal.window(1, 3)
        assert window.num_snapshots == 2
        assert window.edges_at(0) == temporal.edges_at(1)
        assert window.edges_at(1) == temporal.edges_at(2)

    def test_window_invalid(self):
        temporal = build_simple()
        with pytest.raises(TemporalError):
            temporal.window(2, 2)
        with pytest.raises(TemporalError):
            temporal.window(0, 9)

    def test_edge_counts(self):
        assert build_simple().edge_counts() == [2, 3, 2]

    def test_paper_temporal_example(self, paper_temporal):
        # Fig. 1: H -> F removed after snapshot 0, G -> F added at snapshot 2.
        assert paper_temporal.num_snapshots == 3
        h, f, g = 7, 5, 6
        assert paper_temporal.snapshot(0).has_edge(h, f)
        assert not paper_temporal.snapshot(1).has_edge(h, f)
        assert paper_temporal.snapshot(2).has_edge(g, f)


class TestTemporalGraphBuilder:
    def test_empty_build_rejected(self):
        with pytest.raises(TemporalError):
            TemporalGraphBuilder(3).build()

    def test_delta_before_snapshot_rejected(self):
        builder = TemporalGraphBuilder(3)
        with pytest.raises(TemporalError):
            builder.push_delta(added=[(0, 1)])

    def test_push_delta_filters_redundant_changes(self):
        builder = TemporalGraphBuilder(3)
        builder.push_snapshot([(0, 1)])
        # Adding an existing edge and removing a missing one are no-ops.
        builder.push_delta(added=[(0, 1), (1, 2)], removed=[(2, 0)])
        temporal = builder.build()
        assert temporal.edges_at(1) == frozenset({(0, 1), (1, 2)})

    def test_out_of_range_edge_rejected(self):
        builder = TemporalGraphBuilder(2)
        with pytest.raises(TemporalError):
            builder.push_snapshot([(0, 5)])

    def test_undirected_canonicalisation(self):
        builder = TemporalGraphBuilder(3, directed=False)
        builder.push_snapshot([(1, 0), (2, 1)])
        builder.push_delta(removed=[(0, 1)])
        temporal = builder.build()
        assert temporal.edges_at(0) == frozenset({(0, 1), (1, 2)})
        assert temporal.edges_at(1) == frozenset({(1, 2)})
        graph = temporal.snapshot(0)
        assert graph.has_edge(0, 1) and graph.has_edge(1, 0)

    def test_self_loops_dropped(self):
        builder = TemporalGraphBuilder(3)
        builder.push_snapshot([(0, 0), (0, 1)])
        assert builder.build().edges_at(0) == frozenset({(0, 1)})

    @given(
        st.lists(
            st.sets(
                st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=10
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_snapshot_round_trip(self, snapshots):
        """push_snapshot then edges_at reproduces each (canonical) input."""
        builder = TemporalGraphBuilder(5, directed=True)
        for edges in snapshots:
            builder.push_snapshot(edges)
        temporal = builder.build()
        assert temporal.num_snapshots == len(snapshots)
        for index, edges in enumerate(snapshots):
            canonical = {(s, t) for s, t in edges if s != t}
            assert temporal.edges_at(index) == canonical
