"""Unit and property tests for the CSR DiGraph substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError, NodeNotFoundError
from repro.graph.digraph import DiGraph


def edge_list_strategy(max_nodes=12, max_edges=40):
    return st.integers(min_value=2, max_value=max_nodes).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(
                    st.integers(0, n - 1), st.integers(0, n - 1)
                ),
                max_size=max_edges,
            ),
        )
    )


class TestConstruction:
    def test_from_edges_basic(self):
        graph = DiGraph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        assert graph.num_nodes == 3
        assert graph.num_edges == 3
        assert graph.directed

    def test_self_loops_dropped(self):
        graph = DiGraph.from_edges(2, [(0, 0), (0, 1), (1, 1)])
        assert graph.num_edges == 1

    def test_parallel_edges_deduped(self):
        graph = DiGraph.from_edges(2, [(0, 1), (0, 1), (0, 1)])
        assert graph.num_edges == 1

    def test_undirected_mirrors_arcs(self):
        graph = DiGraph.from_edges(3, [(0, 1), (1, 2)], directed=False)
        assert graph.num_edges == 2
        assert graph.num_arcs == 4
        assert graph.has_edge(1, 0)
        assert graph.has_edge(2, 1)

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(GraphError):
            DiGraph(2, np.array([0]), np.array([5]))

    def test_negative_node_count_rejected(self):
        with pytest.raises(GraphError):
            DiGraph(-1, np.array([]), np.array([]))

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(GraphError):
            DiGraph(3, np.array([0, 1]), np.array([1]))

    def test_label_length_mismatch_rejected(self):
        with pytest.raises(GraphError):
            DiGraph.from_edges(2, [(0, 1)], node_labels=["only-one"])

    def test_empty_graph(self):
        graph = DiGraph.from_edges(0, [])
        assert graph.num_nodes == 0
        assert graph.num_edges == 0
        assert list(graph.edges()) == []


class TestAdjacency:
    def test_in_neighbors_sorted(self, paper_graph):
        for node in paper_graph.nodes():
            neighbors = paper_graph.in_neighbors(node)
            assert np.all(np.diff(neighbors) > 0) or neighbors.size <= 1

    def test_paper_graph_in_degrees(self, paper_graph):
        # The degrees Example 2's arithmetic relies on.
        labels = dict(zip(paper_graph.node_labels, paper_graph.nodes()))
        assert paper_graph.in_degree(labels["A"]) == 2
        assert paper_graph.in_degree(labels["B"]) == 2
        assert paper_graph.in_degree(labels["C"]) == 3
        assert paper_graph.in_degree(labels["D"]) == 2
        assert paper_graph.in_degree(labels["E"]) == 2
        assert paper_graph.in_degree(labels["H"]) == 2

    def test_has_edge(self, paper_graph):
        labels = dict(zip(paper_graph.node_labels, paper_graph.nodes()))
        assert paper_graph.has_edge(labels["B"], labels["A"])
        assert not paper_graph.has_edge(labels["A"], labels["H"])

    def test_unknown_node_raises(self, paper_graph):
        with pytest.raises(NodeNotFoundError):
            paper_graph.in_neighbors(99)
        with pytest.raises(NodeNotFoundError):
            paper_graph.in_degree(-9)

    def test_degree_arrays_match_scalars(self, small_random_graph):
        graph = small_random_graph
        in_degrees = graph.in_degrees()
        out_degrees = graph.out_degrees()
        for node in graph.nodes():
            assert in_degrees[node] == graph.in_degree(node)
            assert out_degrees[node] == graph.out_degree(node)

    def test_degree_sums_equal_arcs(self, small_random_graph):
        graph = small_random_graph
        assert graph.in_degrees().sum() == graph.num_arcs
        assert graph.out_degrees().sum() == graph.num_arcs


class TestDuality:
    @given(edge_list_strategy())
    @settings(max_examples=40, deadline=None)
    def test_in_out_duality(self, data):
        """u -> v stored as out-arc of u iff stored as in-arc of v."""
        n, edges = data
        graph = DiGraph.from_edges(n, edges)
        out_pairs = {
            (s, int(t)) for s in graph.nodes() for t in graph.out_neighbors(s)
        }
        in_pairs = {
            (int(s), t) for t in graph.nodes() for s in graph.in_neighbors(t)
        }
        assert out_pairs == in_pairs
        assert len(out_pairs) == graph.num_arcs

    @given(edge_list_strategy())
    @settings(max_examples=40, deadline=None)
    def test_edges_iterator_matches_has_edge(self, data):
        n, edges = data
        graph = DiGraph.from_edges(n, edges)
        listed = set(graph.edges())
        for source, target in listed:
            assert graph.has_edge(source, target)
        assert len(listed) == graph.num_arcs


class TestDerived:
    def test_reverse_transition_matrix_rows_stochastic(self, small_random_graph):
        matrix = small_random_graph.reverse_transition_matrix()
        sums = np.asarray(matrix.sum(axis=1)).ravel()
        degrees = small_random_graph.in_degrees()
        assert np.allclose(sums[degrees > 0], 1.0)
        assert np.allclose(sums[degrees == 0], 0.0)

    def test_transition_matrix_entries(self, tiny_pair_graph):
        matrix = tiny_pair_graph.reverse_transition_matrix().toarray()
        # nodes 0 and 1 each have the single in-neighbour 2.
        assert matrix[0, 2] == pytest.approx(1.0)
        assert matrix[1, 2] == pytest.approx(1.0)
        assert matrix[2].sum() == 0.0  # node 2 has no in-neighbours

    def test_edge_set_cached_and_correct(self, paper_graph):
        edge_set = paper_graph.edge_set()
        assert edge_set is paper_graph.edge_set()
        assert len(edge_set) == paper_graph.num_arcs
        assert all(paper_graph.has_edge(s, t) for s, t in edge_set)

    def test_arc_sources_aligned(self, small_random_graph):
        graph = small_random_graph
        sources = graph.arc_sources()
        targets = graph.out_indices
        assert sources.shape == targets.shape
        rebuilt = set(zip(sources.tolist(), targets.tolist()))
        assert rebuilt == set(graph.edges())

    def test_same_structure(self, paper_graph):
        other = DiGraph.from_edges(
            paper_graph.num_nodes, list(paper_graph.edges())
        )
        assert paper_graph.same_structure(other)
        different = DiGraph.from_edges(paper_graph.num_nodes, [(0, 1)])
        assert not paper_graph.same_structure(different)


class TestNetworkxInterop:
    def test_round_trip_directed(self, paper_graph):
        nx_graph = paper_graph.to_networkx()
        back = DiGraph.from_networkx(nx_graph)
        assert back.same_structure(paper_graph)
        assert back.node_labels == paper_graph.node_labels

    def test_round_trip_undirected(self, small_undirected_graph):
        nx_graph = small_undirected_graph.to_networkx()
        assert not nx_graph.is_directed()
        back = DiGraph.from_networkx(nx_graph)
        assert back.num_edges == small_undirected_graph.num_edges
        assert back.same_structure(small_undirected_graph)
