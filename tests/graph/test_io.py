"""Round-trip tests for the SNAP-style edge-list and snapshot-directory I/O."""

import pytest

from repro.errors import DatasetError
from repro.graph.generators import preferential_attachment
from repro.graph.io import (
    read_edge_list,
    read_snapshot_directory,
    write_edge_list,
    write_snapshot_directory,
)
from repro.graph.temporal import TemporalGraphBuilder


class TestEdgeList:
    def test_round_trip_directed(self, tmp_path, small_random_graph):
        path = tmp_path / "graph.txt"
        write_edge_list(small_random_graph, path, header="test graph")
        loaded = read_edge_list(path, directed=True)
        assert loaded.num_nodes == small_random_graph.num_nodes
        assert loaded.num_edges == small_random_graph.num_edges

    def test_round_trip_undirected(self, tmp_path, small_undirected_graph):
        path = tmp_path / "graph.txt"
        write_edge_list(small_undirected_graph, path)
        loaded = read_edge_list(path, directed=False)
        assert loaded.num_edges == small_undirected_graph.num_edges

    def test_snap_format_parsing(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text(
            "# Directed graph (each unordered pair of nodes is saved once)\n"
            "# FromNodeId\tToNodeId\n"
            "30\t1412\n"
            "30\t3352\n"
            "% alternate comment style\n"
            "3\t30\n"
        )
        graph = read_edge_list(path)
        assert graph.num_nodes == 4
        assert graph.num_edges == 3
        assert graph.node_labels == ("30", "1412", "3352", "3")

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("justone\n")
        with pytest.raises(DatasetError):
            read_edge_list(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            read_edge_list(tmp_path / "nope.txt")


class TestCaidaAsrel:
    def test_parses_pipe_format(self, tmp_path):
        from repro.graph.io import read_caida_asrel

        path = tmp_path / "as-rel.txt"
        path.write_text(
            "# source: CAIDA AS relationships\n"
            "1|2|-1\n"
            "3|2|-1\n"
            "2|4|0\n"
        )
        graph = read_caida_asrel(path)
        assert graph.num_nodes == 4
        labels = {label: i for i, label in enumerate(graph.node_labels)}
        assert graph.has_edge(labels["1"], labels["2"])
        # Peering (rel 0) is mutual.
        assert graph.has_edge(labels["2"], labels["4"])
        assert graph.has_edge(labels["4"], labels["2"])
        assert not graph.has_edge(labels["2"], labels["1"])

    def test_two_column_lines_accepted(self, tmp_path):
        from repro.graph.io import read_caida_asrel

        path = tmp_path / "rel.txt"
        path.write_text("5|6\n")
        graph = read_caida_asrel(path)
        assert graph.num_edges == 1

    def test_malformed_line_rejected(self, tmp_path):
        from repro.errors import DatasetError
        from repro.graph.io import read_caida_asrel

        path = tmp_path / "bad.txt"
        path.write_text("justone\n")
        with pytest.raises(DatasetError):
            read_caida_asrel(path)

    def test_missing_file(self, tmp_path):
        from repro.errors import DatasetError
        from repro.graph.io import read_caida_asrel

        with pytest.raises(DatasetError):
            read_caida_asrel(tmp_path / "nope.txt")


class TestSnapshotDirectory:
    def build_temporal(self):
        builder = TemporalGraphBuilder(4, directed=True, name="mini")
        builder.push_snapshot([(0, 1), (1, 2)])
        builder.push_snapshot([(0, 1), (2, 3)])
        builder.push_snapshot([(2, 3)])
        return builder.build()

    def test_round_trip(self, tmp_path):
        temporal = self.build_temporal()
        write_snapshot_directory(temporal, tmp_path / "snaps")
        loaded = read_snapshot_directory(tmp_path / "snaps", directed=True)
        assert loaded.num_snapshots == temporal.num_snapshots
        # Node identity can be renumbered by first-seen order; compare via
        # labels, which the writer emitted as original ids.
        for index in range(temporal.num_snapshots):
            original = temporal.snapshot(index)
            relabeled = loaded.snapshot(index)
            labels = relabeled.node_labels
            edges = {
                (labels[s], labels[t]) for s, t in relabeled.edges()
            }
            expected = {(str(s), str(t)) for s, t in original.edges()}
            assert edges == expected

    def test_empty_directory_rejected(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(DatasetError):
            read_snapshot_directory(tmp_path / "empty")

    def test_isolated_nodes_preserved_across_snapshots(self, tmp_path):
        # A node present only in snapshot 0 must still exist (isolated) in
        # later snapshots: the paper's temporal model fixes V.
        directory = tmp_path / "snaps"
        directory.mkdir()
        (directory / "a.txt").write_text("1\t2\n3\t1\n")
        (directory / "b.txt").write_text("1\t2\n")
        temporal = read_snapshot_directory(directory)
        assert temporal.num_nodes == 3
        assert temporal.snapshot(1).num_nodes == 3
