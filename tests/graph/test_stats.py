"""Tests for graph/temporal statistics (Table III inputs)."""

from repro.graph.digraph import DiGraph
from repro.graph.stats import graph_stats, temporal_stats
from repro.graph.temporal import TemporalGraphBuilder


class TestGraphStats:
    def test_basic(self, paper_graph):
        stats = graph_stats(paper_graph)
        assert stats.num_nodes == 8
        assert stats.num_edges == 15
        assert stats.directed
        assert stats.max_in_degree == 3  # node C
        assert stats.dangling_nodes == 0

    def test_dangling_counted(self, dangling_graph):
        stats = graph_stats(dangling_graph)
        # Nodes 0, 2, 3 have no in-neighbours.
        assert stats.dangling_nodes == 3

    def test_empty_graph(self):
        stats = graph_stats(DiGraph.from_edges(0, []))
        assert stats.num_nodes == 0
        assert stats.mean_in_degree == 0.0

    def test_as_row_keys(self, paper_graph):
        row = graph_stats(paper_graph).as_row()
        assert row["n"] == 8
        assert row["type"] == "Directed"


class TestTemporalStats:
    def test_deltas_summarised(self):
        builder = TemporalGraphBuilder(4, name="mini")
        builder.push_snapshot([(0, 1)])
        builder.push_snapshot([(0, 1), (1, 2), (2, 3)])
        builder.push_snapshot([(1, 2), (2, 3)])
        stats = temporal_stats(builder.build())
        assert stats.num_snapshots == 3
        assert stats.mean_delta_size == (2 + 1) / 2
        assert stats.max_delta_size == 2
        assert stats.first_snapshot.num_edges == 1
        assert stats.last_snapshot.num_edges == 2
        assert stats.as_row()["dataset"] == "mini"

    def test_single_snapshot(self):
        builder = TemporalGraphBuilder(2)
        builder.push_snapshot([(0, 1)])
        stats = temporal_stats(builder.build())
        assert stats.mean_delta_size == 0.0
        assert stats.max_delta_size == 0
