"""Tests for synthetic graph generators and temporal synthesis."""

import numpy as np
import pytest

from repro.errors import GraphError, TemporalError
from repro.graph.generators import (
    copying_model,
    erdos_renyi,
    evolve_snapshots,
    growing_snapshots,
    preferential_attachment,
)


class TestErdosRenyi:
    def test_exact_edge_count(self):
        graph = erdos_renyi(30, 60, seed=0)
        assert graph.num_edges == 60
        assert graph.num_nodes == 30

    def test_undirected(self):
        graph = erdos_renyi(20, 30, directed=False, seed=1)
        assert graph.num_edges == 30
        assert graph.num_arcs == 60

    def test_too_many_edges_rejected(self):
        with pytest.raises(GraphError):
            erdos_renyi(3, 100, seed=0)

    def test_deterministic(self):
        a = erdos_renyi(25, 50, seed=5)
        b = erdos_renyi(25, 50, seed=5)
        assert a.same_structure(b)


class TestPreferentialAttachment:
    def test_size(self):
        graph = preferential_attachment(100, 3, seed=0)
        assert graph.num_nodes == 100
        # seed clique + 3 per subsequent node
        assert graph.num_edges >= 3 * (100 - 4)

    def test_heavy_tail(self):
        graph = preferential_attachment(400, 2, directed=True, seed=0)
        degrees = np.sort(graph.in_degrees())[::-1]
        # Degree concentration: the top node should dominate the median.
        assert degrees[0] >= 5 * max(int(np.median(degrees)), 1)

    def test_undirected_degrees(self):
        graph = preferential_attachment(60, 2, directed=False, seed=3)
        assert not graph.directed
        assert int(graph.in_degrees().min()) >= 2

    def test_invalid_parameters(self):
        with pytest.raises(GraphError):
            preferential_attachment(5, 0)
        with pytest.raises(GraphError):
            preferential_attachment(3, 3)

    def test_deterministic(self):
        a = preferential_attachment(80, 3, seed=9)
        b = preferential_attachment(80, 3, seed=9)
        assert a.same_structure(b)


class TestCopyingModel:
    def test_size_and_out_degree(self):
        graph = copying_model(100, 5, seed=0)
        assert graph.num_nodes == 100
        out_degrees = graph.out_degrees()
        # All non-seed nodes emit exactly out_degree arcs.
        assert np.all(out_degrees[6:] == 5)

    def test_copy_probability_bounds(self):
        with pytest.raises(GraphError):
            copying_model(50, 3, copy_probability=1.5)
        with pytest.raises(GraphError):
            copying_model(50, 3, copy_probability=-0.1)

    def test_skew_increases_with_copy_probability(self):
        uniform = copying_model(300, 4, copy_probability=0.0, seed=2)
        skewed = copying_model(300, 4, copy_probability=0.9, seed=2)
        assert skewed.in_degrees().max() > uniform.in_degrees().max()


class TestEvolveSnapshots:
    def test_horizon_and_churn(self):
        base = preferential_attachment(80, 2, seed=0)
        temporal = evolve_snapshots(base, 5, churn_rate=0.02, seed=1)
        assert temporal.num_snapshots == 5
        expected_changes = max(1, round(0.02 * base.num_edges))
        for index in range(1, 5):
            delta = temporal.delta(index)
            assert len(delta.removed) == expected_changes
            # Additions may fall short only if sampling struggled; with this
            # density it must succeed.
            assert len(delta.added) == expected_changes

    def test_first_snapshot_is_base(self):
        base = preferential_attachment(40, 2, seed=3)
        temporal = evolve_snapshots(base, 3, seed=4)
        assert temporal.snapshot(0).same_structure(base)

    def test_edge_count_roughly_stable(self):
        base = preferential_attachment(60, 2, seed=5)
        temporal = evolve_snapshots(base, 10, churn_rate=0.05, seed=6)
        counts = temporal.edge_counts()
        assert max(counts) - min(counts) <= max(counts) // 4

    def test_invalid_parameters(self):
        base = preferential_attachment(20, 2, seed=0)
        with pytest.raises(TemporalError):
            evolve_snapshots(base, 0)
        with pytest.raises(TemporalError):
            evolve_snapshots(base, 3, churn_rate=2.0)

    def test_undirected_base(self):
        base = preferential_attachment(40, 2, directed=False, seed=7)
        temporal = evolve_snapshots(base, 4, seed=8)
        assert not temporal.directed
        for graph in temporal.snapshots():
            assert not graph.directed


class TestGrowingSnapshots:
    def test_monotone_growth(self):
        final = preferential_attachment(60, 2, seed=0)
        temporal = growing_snapshots(final, 6, initial_fraction=0.5, seed=1)
        counts = temporal.edge_counts()
        assert counts == sorted(counts)
        assert counts[-1] == final.num_edges
        for index in range(1, 6):
            assert not temporal.delta(index).removed

    def test_last_snapshot_equals_final(self):
        final = preferential_attachment(50, 2, seed=2)
        temporal = growing_snapshots(final, 4, seed=3)
        assert temporal.snapshot(3).same_structure(final)

    def test_single_snapshot(self):
        final = preferential_attachment(30, 2, seed=4)
        temporal = growing_snapshots(final, 1, initial_fraction=0.4, seed=5)
        assert temporal.num_snapshots == 1

    def test_invalid_fraction(self):
        final = preferential_attachment(30, 2, seed=4)
        with pytest.raises(TemporalError):
            growing_snapshots(final, 3, initial_fraction=0.0)
