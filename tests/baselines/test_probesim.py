"""Tests for the ProbeSim baseline."""

import numpy as np
import pytest

from repro.baselines.power_method import power_method_all_pairs
from repro.baselines.probesim import probesim, probesim_trial_count
from repro.errors import ParameterError


class TestAccuracy:
    def test_known_value_pair_graph(self, tiny_pair_graph):
        scores = probesim(tiny_pair_graph, 0, c=0.36, n_r=4000, seed=1)
        assert scores[1] == pytest.approx(0.36, abs=0.03)
        assert scores[2] == 0.0

    def test_matches_power_method(self, medium_random_graph):
        graph = medium_random_graph
        truth = power_method_all_pairs(graph, 0.6)
        scores = probesim(graph, 3, n_r=1200, seed=2)
        assert np.abs(truth[3] - scores).max() < 0.03

    def test_first_meeting_exclusion_on_cyclic_graph(self, paper_graph):
        # ProbeSim's probe excludes earlier walk positions, so the cyclic
        # example graph must not show multi-meeting inflation.
        truth = power_method_all_pairs(paper_graph, 0.6)
        scores = probesim(paper_graph, 0, n_r=5000, seed=3)
        assert np.abs(truth[0] - scores).max() < 0.03

    def test_source_score_is_one(self, paper_graph):
        scores = probesim(paper_graph, 2, n_r=20, seed=4)
        assert scores[2] == 1.0

    def test_dangling_source_all_zero(self, dangling_graph):
        scores = probesim(dangling_graph, 0, n_r=100, seed=5)
        expected = np.zeros(5)
        expected[0] = 1.0
        assert np.array_equal(scores, expected)


class TestTrialCount:
    def test_formula(self):
        import math

        expected = math.ceil(3 * 0.6 / 0.025**2 * math.log(1000 / 0.01))
        assert probesim_trial_count(1000, 0.6, 0.025, 0.01) == expected

    def test_validation(self):
        with pytest.raises(ParameterError):
            probesim_trial_count(100, 1.5, 0.025, 0.01)
        with pytest.raises(ParameterError):
            probesim_trial_count(100, 0.6, 0.0, 0.01)


class TestSparseProbeMode:
    def test_sparse_equals_dense(self, small_random_graph):
        """Both probe implementations compute the same estimator, so with
        identical walk randomness the results agree to float rounding."""
        dense = probesim(small_random_graph, 2, n_r=200, seed=9)
        sparse = probesim(
            small_random_graph, 2, n_r=200, probe_mode="sparse", seed=9
        )
        assert np.allclose(dense, sparse, atol=1e-12)

    def test_sparse_on_paper_graph(self, paper_graph):
        dense = probesim(paper_graph, 0, n_r=300, seed=10)
        sparse = probesim(paper_graph, 0, n_r=300, probe_mode="sparse", seed=10)
        assert np.allclose(dense, sparse, atol=1e-12)

    def test_sparse_weighted(self):
        from repro.baselines.power_method import power_method_all_pairs
        from repro.graph.digraph import DiGraph

        graph = DiGraph.from_edges(
            4, [(2, 0), (3, 0), (2, 1)], weights=[3.0, 1.0, 1.0]
        )
        truth = power_method_all_pairs(graph, 0.6)
        scores = probesim(graph, 0, n_r=4000, probe_mode="sparse", seed=11)
        assert scores[1] == pytest.approx(truth[0, 1], abs=0.03)

    def test_unknown_mode_rejected(self, paper_graph):
        with pytest.raises(ParameterError):
            probesim(paper_graph, 0, n_r=5, probe_mode="magic")


class TestInterface:
    def test_deterministic_with_seed(self, paper_graph):
        a = probesim(paper_graph, 0, n_r=100, seed=6)
        b = probesim(paper_graph, 0, n_r=100, seed=6)
        assert np.array_equal(a, b)

    def test_max_walk_length_cap(self, paper_graph):
        scores = probesim(paper_graph, 0, n_r=50, max_walk_length=1, seed=7)
        assert scores.max() <= 1.0

    def test_validation(self, paper_graph):
        with pytest.raises(ParameterError):
            probesim(paper_graph, 99)
        with pytest.raises(ParameterError):
            probesim(paper_graph, 0, n_r=0)
