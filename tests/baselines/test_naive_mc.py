"""Tests for the Fogaras & Rácz coupled-walk Monte Carlo baseline."""

import numpy as np
import pytest

from repro.baselines.naive_mc import naive_monte_carlo
from repro.baselines.power_method import power_method_all_pairs
from repro.errors import ParameterError


class TestAccuracy:
    def test_known_value_pair_graph(self, tiny_pair_graph):
        scores = naive_monte_carlo(
            tiny_pair_graph, 0, c=0.36, num_samples=4000, seed=1
        )
        assert scores[1] == pytest.approx(0.36, abs=0.03)
        assert scores[2] == 0.0
        assert scores[0] == 1.0

    def test_matches_power_method(self, medium_random_graph):
        graph = medium_random_graph
        truth = power_method_all_pairs(graph, 0.6)
        scores = naive_monte_carlo(graph, 3, num_samples=3000, seed=2)
        assert np.abs(truth[3] - scores).max() < 0.04

    def test_coupled_estimator_is_first_meeting(self, paper_graph):
        # On the cyclic example graph the coupled estimator must NOT show
        # the multi-meeting inflation (each sample contributes once).
        truth = power_method_all_pairs(paper_graph, 0.6)
        scores = naive_monte_carlo(paper_graph, 0, num_samples=8000, seed=3)
        assert np.abs(truth[0] - scores).max() < 0.03

    def test_scores_bounded(self, small_random_graph):
        scores = naive_monte_carlo(small_random_graph, 0, num_samples=50, seed=4)
        assert scores.min() >= 0.0
        assert scores.max() <= 1.0


class TestInterface:
    def test_candidates_subset(self, paper_graph):
        scores = naive_monte_carlo(
            paper_graph, 0, candidates=[2, 4], num_samples=100, seed=5
        )
        assert scores.shape == (2,)

    def test_deterministic_with_seed(self, paper_graph):
        a = naive_monte_carlo(paper_graph, 0, num_samples=200, seed=6)
        b = naive_monte_carlo(paper_graph, 0, num_samples=200, seed=6)
        assert np.array_equal(a, b)

    def test_dangling_source(self, dangling_graph):
        scores = naive_monte_carlo(dangling_graph, 0, num_samples=100, seed=7)
        assert scores[1] == 0.0  # source walk can never move

    def test_validation(self, paper_graph):
        with pytest.raises(ParameterError):
            naive_monte_carlo(paper_graph, 99)
        with pytest.raises(ParameterError):
            naive_monte_carlo(paper_graph, 0, c=1.2)
        with pytest.raises(ParameterError):
            naive_monte_carlo(paper_graph, 0, num_samples=0)
        with pytest.raises(ParameterError):
            naive_monte_carlo(paper_graph, 0, max_steps=-1)
        with pytest.raises(ParameterError):
            naive_monte_carlo(paper_graph, 0, candidates=[99])
