"""Tests for the SLING stored (hitting-probability list) index."""

import numpy as np
import pytest

from repro.baselines.power_method import power_method_all_pairs
from repro.baselines.sling import SlingIndex, SlingStoredIndex, exact_d_small_graph
from repro.errors import ParameterError


class TestStoredIndexQueries:
    def test_matches_power_method_with_exact_d(self, small_random_graph):
        graph = small_random_graph
        c = 0.6
        truth = power_method_all_pairs(graph, c)
        d = exact_d_small_graph(graph, c, iterations=120)
        index = SlingStoredIndex(
            graph, c=c, epsilon=0.02, d_values=d, threshold=1e-4
        )
        for source in (0, 11, 37):
            scores = index.query(source)
            # Thresholding drops tiny occupancy entries on both sides.
            assert np.abs(truth[source] - scores).max() < 0.02

    def test_agrees_with_decomposition_index(self, small_random_graph):
        graph = small_random_graph
        d = exact_d_small_graph(graph, 0.6, iterations=120)
        stored = SlingStoredIndex(
            graph, c=0.6, epsilon=0.02, d_values=d, threshold=1e-5
        )
        light = SlingIndex(graph, c=0.6, epsilon=0.001, d_values=d)
        for source in (3, 20):
            assert np.abs(stored.query(source) - light.query(source)).max() < 0.01

    def test_single_pair_matches_query(self, small_random_graph):
        graph = small_random_graph
        d = exact_d_small_graph(graph, 0.6)
        index = SlingStoredIndex(graph, c=0.6, d_values=d, threshold=1e-5)
        scores = index.query(5)
        for v in (0, 9, 23):
            if v == 5:
                continue
            assert index.single_pair(5, v) == pytest.approx(
                float(scores[v]), abs=1e-9
            )

    def test_single_pair_identity(self, small_random_graph):
        d = np.ones(small_random_graph.num_nodes)
        index = SlingStoredIndex(small_random_graph, d_values=d)
        assert index.single_pair(4, 4) == 1.0

    def test_source_scores_one(self, paper_graph):
        index = SlingStoredIndex(paper_graph, num_d_samples=20, seed=1)
        assert index.query(2)[2] == 1.0


class TestIndexStructure:
    def test_threshold_bounds_list_entries(self, small_random_graph):
        graph = small_random_graph
        d = np.ones(graph.num_nodes)
        loose = SlingStoredIndex(graph, d_values=d, threshold=0.05)
        tight = SlingStoredIndex(graph, d_values=d, threshold=0.001)
        assert loose.size_entries < tight.size_entries
        for entries in loose.hit_lists:
            for _, _, h in entries:
                assert h >= 0.05 or h == 1.0  # level-0 root entry is 1.0

    def test_inverted_index_consistent(self, paper_graph):
        index = SlingStoredIndex(paper_graph, num_d_samples=10, seed=2)
        for node, entries in enumerate(index.hit_lists):
            for t, x, h in entries:
                assert (node, h) in index.inverted[(t, x)]

    def test_weighted_graph_supported(self):
        from repro.graph.digraph import DiGraph

        graph = DiGraph.from_edges(
            4, [(2, 0), (3, 0), (2, 1)], weights=[3.0, 1.0, 1.0]
        )
        truth = power_method_all_pairs(graph, 0.6)
        d = exact_d_small_graph(graph, 0.6)
        index = SlingStoredIndex(graph, d_values=d, threshold=1e-6)
        assert index.query(0)[1] == pytest.approx(truth[0, 1], abs=1e-6)


class TestValidation:
    def test_bad_threshold(self, paper_graph):
        with pytest.raises(ParameterError):
            SlingStoredIndex(paper_graph, num_d_samples=5, threshold=0.0)

    def test_bad_d_shape(self, paper_graph):
        with pytest.raises(ParameterError):
            SlingStoredIndex(paper_graph, d_values=np.ones(3))

    def test_bad_source(self, paper_graph):
        index = SlingStoredIndex(paper_graph, num_d_samples=5, seed=3)
        with pytest.raises(ParameterError):
            index.query(99)
        with pytest.raises(ParameterError):
            index.single_pair(0, 99)
