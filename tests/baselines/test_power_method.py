"""Tests for the Power-Method ground truth."""

import numpy as np
import pytest

from repro.baselines.power_method import (
    power_method_all_pairs,
    power_method_single_source,
)
from repro.errors import ParameterError
from repro.graph.digraph import DiGraph


class TestFixedPoint:
    def test_simrank_recursion_satisfied(self, small_random_graph):
        """The converged matrix satisfies Jeh & Widom's recursion."""
        graph = small_random_graph
        c = 0.6
        sim = power_method_all_pairs(graph, c)
        for u in (0, 5, 20):
            for v in (3, 7, 33):
                if u == v:
                    continue
                in_u = graph.in_neighbors(u)
                in_v = graph.in_neighbors(v)
                if in_u.size == 0 or in_v.size == 0:
                    assert sim[u, v] == 0.0
                    continue
                expected = (
                    c
                    / (in_u.size * in_v.size)
                    * sim[np.ix_(in_u, in_v)].sum()
                )
                assert sim[u, v] == pytest.approx(expected, abs=1e-10)

    def test_diagonal_is_one(self, small_random_graph):
        sim = power_method_all_pairs(small_random_graph, 0.6)
        assert np.allclose(np.diag(sim), 1.0)

    def test_symmetry(self, small_random_graph):
        sim = power_method_all_pairs(small_random_graph, 0.6)
        assert np.allclose(sim, sim.T)

    def test_values_in_unit_interval(self, small_undirected_graph):
        sim = power_method_all_pairs(small_undirected_graph, 0.8)
        assert sim.min() >= 0.0
        assert sim.max() <= 1.0 + 1e-12


class TestKnownValues:
    def test_shared_single_in_neighbor(self, tiny_pair_graph):
        # I(0) = I(1) = {2}: sim(0, 1) = c · sim(2, 2) = c.
        sim = power_method_all_pairs(tiny_pair_graph, 0.42)
        assert sim[0, 1] == pytest.approx(0.42, abs=1e-12)
        assert sim[0, 2] == 0.0

    def test_two_hop_decay(self):
        # 4 <- chains: I(0)={2}, I(1)={3}, I(2)=I(3)={4}:
        # sim(2,3) = c, sim(0,1) = c·sim(2,3) = c².
        graph = DiGraph.from_edges(5, [(2, 0), (3, 1), (4, 2), (4, 3)])
        sim = power_method_all_pairs(graph, 0.5)
        assert sim[2, 3] == pytest.approx(0.5)
        assert sim[0, 1] == pytest.approx(0.25)

    def test_dangling_source_all_zero(self, dangling_graph):
        sim = power_method_all_pairs(dangling_graph, 0.6)
        # Node 0 has no in-neighbours: similarity to every other node is 0.
        row = sim[0].copy()
        row[0] = 0.0
        assert np.all(row == 0.0)

    def test_empty_graph(self):
        sim = power_method_all_pairs(DiGraph.from_edges(0, []), 0.6)
        assert sim.shape == (0, 0)


class TestConvergence:
    def test_iterates_converge_geometrically(self, paper_graph):
        coarse = power_method_all_pairs(paper_graph, 0.6, iterations=20)
        fine = power_method_all_pairs(paper_graph, 0.6, iterations=55)
        assert np.abs(coarse - fine).max() < 0.6**20

    def test_tolerance_early_stop_matches(self, paper_graph):
        fixed = power_method_all_pairs(paper_graph, 0.6, iterations=55)
        stopped = power_method_all_pairs(
            paper_graph, 0.6, iterations=200, tolerance=1e-12
        )
        assert np.allclose(fixed, stopped, atol=1e-10)

    def test_zero_iterations_is_identity(self, paper_graph):
        sim = power_method_all_pairs(paper_graph, 0.6, iterations=0)
        assert np.array_equal(sim, np.eye(paper_graph.num_nodes))


class TestSingleSource:
    def test_slice_matches_matrix(self, small_random_graph):
        matrix = power_method_all_pairs(small_random_graph, 0.6)
        row = power_method_single_source(
            small_random_graph, 7, 0.6, all_pairs=matrix
        )
        assert np.array_equal(row, matrix[7])

    def test_computes_when_not_supplied(self, tiny_pair_graph):
        row = power_method_single_source(tiny_pair_graph, 0, 0.42)
        assert row[1] == pytest.approx(0.42, abs=1e-12)

    def test_validation(self, tiny_pair_graph):
        with pytest.raises(ParameterError):
            power_method_single_source(tiny_pair_graph, 99, 0.6)
        with pytest.raises(ParameterError):
            power_method_single_source(
                tiny_pair_graph, 0, 0.6, all_pairs=np.zeros((2, 2))
            )
        with pytest.raises(ParameterError):
            power_method_all_pairs(tiny_pair_graph, 1.5)
        with pytest.raises(ParameterError):
            power_method_all_pairs(tiny_pair_graph, 0.6, iterations=-1)
